//! The Defer queue: second chances for near-miss tasks.
//!
//! The paper's admission test is binary — a task that fails the Fig. 2 test
//! is gone. Online, that wastes a common case: the test failed only because
//! the cluster is momentarily saturated, and the task's deadline still
//! leaves room to start later. Such *near-miss* tasks are parked in a
//! [`DeferredQueue`] and re-tested on every admission/completion event
//! until one of three things happens:
//!
//! * **rescued** — a re-test passes and the task is admitted (its deadline
//!   guarantee is exactly the one the Fig. 2 test always gives);
//! * **expired** — the clock passes the task's *latest feasible start*
//!   (even an idle cluster could no longer meet the deadline);
//! * **evicted** — the retry budget runs out (starvation bound).
//!
//! Re-tests sweep in **age order** (oldest ticket first), so a parked task
//! is never overtaken indefinitely by younger parked tasks, and the retry
//! bound guarantees every ticket leaves the queue after a finite number of
//! sweeps — the no-starvation property the service tests pin down.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{
    AlgorithmKind, ClusterParams, Infeasible, QosClass, SimTime, Task, TenantId,
};

/// Tunables for the defer queue.
///
/// The policy is part of the gateway's durable state: journals persist it in
/// every snapshot so a recovered gateway sweeps its restored tickets under
/// the *same* retry bound, capacity, and age limit it promised them under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeferPolicy {
    /// Re-test attempts before a ticket is evicted.
    pub max_retries: u32,
    /// Queue capacity; submissions beyond it are rejected outright.
    pub max_queue: usize,
    /// Re-tests per sweep (caps the per-event admission work; the sweep
    /// resumes from the oldest ticket next time, preserving age priority).
    pub retest_budget: usize,
    /// Maximum simulated-time age of a ticket: a ticket parked for longer
    /// than this expires on the next sweep even if its latest feasible start
    /// has not passed. `None` (default) leaves the latest feasible start as
    /// the only time bound.
    pub max_age: Option<f64>,
}

impl Default for DeferPolicy {
    fn default() -> Self {
        DeferPolicy {
            max_retries: 16,
            max_queue: 1024,
            retest_budget: usize::MAX,
            max_age: None,
        }
    }
}

/// A parked near-miss task.
///
/// Deserialization is hand-written: the tenant/QoS fields arrived with the
/// v2 request/verdict redesign, and tickets journaled before it must still
/// restore (they default to the anonymous tenant 0, Standard tier).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DeferTicket {
    /// Monotonic ticket id (issue order = age order).
    pub id: u64,
    /// The parked task.
    pub task: Task,
    /// The tenant whose quota this ticket counts against.
    pub tenant: TenantId,
    /// The QoS class of the original request.
    pub qos: QosClass,
    /// When the task was parked.
    pub deferred_at: SimTime,
    /// Latest instant at which planning could still meet the deadline
    /// (computed against an idle cluster; past it the ticket expires).
    pub latest_start: SimTime,
    /// The admission failure that caused the deferral.
    pub cause: Infeasible,
    /// Re-tests attempted so far.
    pub retries: u32,
}

impl Deserialize for DeferTicket {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        Ok(DeferTicket {
            id: field(v, "id")?,
            task: field(v, "task")?,
            tenant: field_or_default(v, "tenant")?,
            qos: field_or_default(v, "qos")?,
            deferred_at: field(v, "deferred_at")?,
            latest_start: field(v, "latest_start")?,
            cause: field(v, "cause")?,
            retries: field(v, "retries")?,
        })
    }
}

/// Why a ticket left the queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeferOutcome {
    /// Re-test passed; the task was admitted.
    Rescued,
    /// The latest feasible start passed before a re-test succeeded.
    Expired,
    /// The retry budget ran out.
    Evicted,
    /// The stream ended with the ticket still parked.
    Flushed,
}

/// The complete serializable state of a [`DeferredQueue`]: the policy it
/// promised its tickets, the parked tickets in age order, and the id counter
/// (so ticket ids stay unique across a crash/recovery boundary).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeferState {
    /// The queue's tunables (journaled so recovery sweeps under the same
    /// retry bound and age limit).
    pub policy: DeferPolicy,
    /// Next ticket id to issue.
    pub next_id: u64,
    /// Parked tickets, oldest first.
    pub tickets: Vec<DeferTicket>,
}

/// The age-ordered, retry-bounded queue of deferred tasks.
#[derive(Clone, Debug, Default)]
pub struct DeferredQueue {
    tickets: VecDeque<DeferTicket>,
    next_id: u64,
    policy: DeferPolicy,
}

impl DeferredQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: DeferPolicy) -> Self {
        DeferredQueue {
            tickets: VecDeque::new(),
            next_id: 0,
            policy,
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> &DeferPolicy {
        &self.policy
    }

    /// Currently parked tickets, oldest first.
    pub fn tickets(&self) -> impl Iterator<Item = &DeferTicket> {
        self.tickets.iter()
    }

    /// Number of parked tickets.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Parks a task for `tenant` at tier `qos`. Returns the ticket id, or
    /// `None` when the queue is at capacity (the caller should reject the
    /// task instead).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        task: Task,
        tenant: TenantId,
        qos: QosClass,
        now: SimTime,
        latest_start: SimTime,
        cause: Infeasible,
    ) -> Option<u64> {
        if self.tickets.len() >= self.policy.max_queue {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.tickets.push_back(DeferTicket {
            id,
            task,
            tenant,
            qos,
            deferred_at: now,
            latest_start,
            cause,
            retries: 0,
        });
        Some(id)
    }

    /// Number of parked tickets owned by `tenant` (a quota input).
    pub fn count_for(&self, tenant: TenantId) -> u32 {
        self.tickets.iter().filter(|t| t.tenant == tenant).count() as u32
    }

    /// One re-test sweep at time `now`: tickets are visited oldest-first, up
    /// to the policy's re-test budget. `try_admit` runs the actual
    /// schedulability test (and admits on success). Returns every ticket
    /// that left the queue, with its outcome, in departure order; the second
    /// return is the number of re-tests attempted.
    pub fn sweep(
        &mut self,
        now: SimTime,
        mut try_admit: impl FnMut(&Task) -> bool,
    ) -> (Vec<(DeferTicket, DeferOutcome)>, u64) {
        let mut departed = Vec::new();
        let mut kept = VecDeque::new();
        let mut budget = self.policy.retest_budget;
        let mut retests = 0u64;
        let aged_out = |t: &DeferTicket| match self.policy.max_age {
            Some(age) => now.definitely_after(t.deferred_at + SimTime::new(age)),
            None => false,
        };
        while let Some(mut ticket) = self.tickets.pop_front() {
            if now.definitely_after(ticket.latest_start) || aged_out(&ticket) {
                // Expiry costs no budget: it is a clock check, not a test.
                departed.push((ticket, DeferOutcome::Expired));
                continue;
            }
            if !now.definitely_after(ticket.deferred_at) {
                // A re-test at the deferral instant would replay the submit
                // that just failed; skip it without burning a retry.
                kept.push_back(ticket);
                continue;
            }
            if budget == 0 {
                kept.push_back(ticket);
                continue;
            }
            budget -= 1;
            retests += 1;
            if try_admit(&ticket.task) {
                departed.push((ticket, DeferOutcome::Rescued));
            } else {
                ticket.retries += 1;
                if ticket.retries >= self.policy.max_retries {
                    departed.push((ticket, DeferOutcome::Evicted));
                } else {
                    kept.push_back(ticket);
                }
            }
        }
        self.tickets = kept;
        (departed, retests)
    }

    /// The earliest instant at which a parked ticket's fate can change
    /// with no other cluster event: its latest feasible start passing, or
    /// its max-age expiring. Event-driven drivers (the network edge's
    /// reactor) use this as a sweep timer so expiries are detected — and
    /// their resolutions pushed — even on an otherwise idle gateway.
    /// `None` when nothing is parked.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.tickets
            .iter()
            .map(|t| {
                let expiry = t.latest_start;
                match self.policy.max_age {
                    Some(age) => expiry.min(t.deferred_at + SimTime::new(age)),
                    None => expiry,
                }
            })
            .min()
    }

    /// Snapshots the complete queue state for journaling.
    pub fn state(&self) -> DeferState {
        DeferState {
            policy: self.policy,
            next_id: self.next_id,
            tickets: self.tickets.iter().cloned().collect(),
        }
    }

    /// Rebuilds a queue from a journaled state (the inverse of
    /// [`state`](DeferredQueue::state)): same policy, same tickets in age
    /// order, and an id counter that never re-issues a live ticket's id.
    pub fn from_state(state: DeferState) -> Self {
        let next_id = state
            .tickets
            .iter()
            .map(|t| t.id + 1)
            .max()
            .unwrap_or(0)
            .max(state.next_id);
        DeferredQueue {
            tickets: state.tickets.into(),
            next_id,
            policy: state.policy,
        }
    }

    /// Empties the queue (stream over), marking every ticket flushed.
    pub fn flush(&mut self) -> Vec<(DeferTicket, DeferOutcome)> {
        self.tickets
            .drain(..)
            .map(|t| (t, DeferOutcome::Flushed))
            .collect()
    }
}

/// The latest instant at which planning could still meet `task`'s deadline,
/// assuming the whole cluster were idle from that instant on — the upper
/// bound on how long a deferral can stay alive. `None` when even an idle
/// cluster flat-out cannot meet the deadline (the task is hopeless, not a
/// near-miss).
///
/// Uses the *minimum achievable makespan* for the task's strategy — the
/// widest allocation the strategy would ever grant on an idle cluster
/// (`E(σ, N)` for the DLT/OPR family; the Eq. 15 timeline at the user's
/// requested node count for User-Split) — so `deadline − makespan` is the
/// true last-start bound, not the near-zero slack a minimum-node plan
/// leaves. A ticket past this instant can never be rescued and expires.
pub fn latest_feasible_start(
    params: &ClusterParams,
    algorithm: AlgorithmKind,
    task: &Task,
) -> Option<SimTime> {
    use rtdls_core::dlt::homogeneous;
    use rtdls_core::strategy::StrategyKind;

    let makespan = match algorithm.strategy {
        StrategyKind::UserSplit => {
            let n = task
                .user_nodes
                .filter(|&n| n >= 1 && n <= params.num_nodes)?;
            // Eq. 15 on an idle cluster: serialized transmissions, the last
            // node finishes last.
            let chunk = task.data_size / n as f64;
            let tx = chunk * params.cms;
            (n - 1) as f64 * tx + tx + chunk * params.cps
        }
        // DLT-IIT on a uniformly idle cluster with all N nodes coincides
        // with the homogeneous optimum E(σ, N); multi-round only improves on
        // it, so E(σ, N) stays a safe (at worst slightly conservative) bound.
        _ => homogeneous::exec_time(params, task.data_size, params.num_nodes),
    };
    let slack = task.rel_deadline - makespan;
    if slack <= 0.0 {
        return None;
    }
    Some(task.arrival + SimTime::new(slack))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, deadline: f64) -> Task {
        Task::new(id, 0.0, 100.0, deadline)
    }

    fn park(q: &mut DeferredQueue, id: u64, latest: f64) -> u64 {
        q.push(
            task(id, 1e6),
            TenantId(id as u32 % 2),
            QosClass::Standard,
            SimTime::ZERO,
            SimTime::new(latest),
            Infeasible::CompletionAfterDeadline,
        )
        .expect("capacity")
    }

    #[test]
    fn next_deadline_is_the_earliest_expiry_across_bounds() {
        let mut q = DeferredQueue::new(DeferPolicy::default());
        assert_eq!(q.next_deadline(), None);
        park(&mut q, 1, 50.0);
        park(&mut q, 2, 20.0);
        assert_eq!(q.next_deadline(), Some(SimTime::new(20.0)));
        // A max-age tighter than the latest feasible start wins.
        let mut aged = DeferredQueue::new(DeferPolicy {
            max_age: Some(5.0),
            ..Default::default()
        });
        park(&mut aged, 3, 50.0);
        assert_eq!(aged.next_deadline(), Some(SimTime::new(5.0)));
        // Sweeping past the deadline retires the ticket and the timer.
        let (departed, _) = aged.sweep(SimTime::new(6.0), |_| false);
        assert_eq!(departed.len(), 1);
        assert!(matches!(departed[0].1, DeferOutcome::Expired));
        assert_eq!(aged.next_deadline(), None);
    }

    #[test]
    fn sweep_visits_oldest_first_and_rescues() {
        let mut q = DeferredQueue::new(DeferPolicy::default());
        park(&mut q, 1, 1e6);
        park(&mut q, 2, 1e6);
        park(&mut q, 3, 1e6);
        // Admit only the first task offered: age order means task 1 wins.
        let mut offered = Vec::new();
        let (departed, retests) = q.sweep(SimTime::new(1.0), |t| {
            offered.push(t.id.0);
            offered.len() == 1
        });
        assert_eq!(offered, vec![1, 2, 3], "sweep must visit in age order");
        assert_eq!(retests, 3);
        assert_eq!(departed.len(), 1);
        assert_eq!(departed[0].0.task.id.0, 1);
        assert_eq!(departed[0].1, DeferOutcome::Rescued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn retry_budget_evicts_after_max_retries() {
        let policy = DeferPolicy {
            max_retries: 3,
            ..Default::default()
        };
        let mut q = DeferredQueue::new(policy);
        park(&mut q, 1, 1e6);
        for sweep in 1..=3u32 {
            let (departed, _) = q.sweep(SimTime::new(sweep as f64), |_| false);
            if sweep < 3 {
                assert!(departed.is_empty(), "sweep {sweep}");
                assert_eq!(q.tickets().next().unwrap().retries, sweep);
            } else {
                assert_eq!(departed.len(), 1);
                assert_eq!(departed[0].1, DeferOutcome::Evicted);
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn expiry_beats_retesting() {
        let mut q = DeferredQueue::new(DeferPolicy::default());
        park(&mut q, 1, 10.0);
        let (departed, retests) = q.sweep(SimTime::new(11.0), |_| {
            panic!("expired tickets must not be re-tested")
        });
        assert_eq!(retests, 0);
        assert_eq!(departed[0].1, DeferOutcome::Expired);
    }

    #[test]
    fn capacity_bound_rejects_overflow() {
        let policy = DeferPolicy {
            max_queue: 2,
            ..Default::default()
        };
        let mut q = DeferredQueue::new(policy);
        assert!(park_checked(&mut q, 1).is_some());
        assert!(park_checked(&mut q, 2).is_some());
        assert!(park_checked(&mut q, 3).is_none());
    }

    fn park_checked(q: &mut DeferredQueue, id: u64) -> Option<u64> {
        q.push(
            task(id, 1e6),
            TenantId::default(),
            QosClass::default(),
            SimTime::ZERO,
            SimTime::new(1e6),
            Infeasible::NotEnoughNodes,
        )
    }

    #[test]
    fn retest_budget_preserves_age_priority_across_sweeps() {
        let policy = DeferPolicy {
            retest_budget: 1,
            ..Default::default()
        };
        let mut q = DeferredQueue::new(policy);
        park(&mut q, 1, 1e6);
        park(&mut q, 2, 1e6);
        let mut offered = Vec::new();
        let (_, retests) = q.sweep(SimTime::new(1.0), |t| {
            offered.push(t.id.0);
            false
        });
        assert_eq!(retests, 1);
        q.sweep(SimTime::new(2.0), |t| {
            offered.push(t.id.0);
            false
        });
        // With budget 1, the oldest is retried first every sweep.
        assert_eq!(offered, vec![1, 1]);
    }

    #[test]
    fn max_age_expires_old_tickets_before_their_latest_start() {
        let policy = DeferPolicy {
            max_age: Some(5.0),
            ..Default::default()
        };
        let mut q = DeferredQueue::new(policy);
        park(&mut q, 1, 1e6); // latest start far away; age is the binding limit
        let (departed, retests) = q.sweep(SimTime::new(4.0), |_| false);
        assert!(departed.is_empty(), "within age limit: keep sweeping");
        assert_eq!(retests, 1);
        let (departed, retests) = q.sweep(SimTime::new(6.0), |_| {
            panic!("aged-out tickets must not be re-tested")
        });
        assert_eq!(retests, 0);
        assert_eq!(departed.len(), 1);
        assert_eq!(departed[0].1, DeferOutcome::Expired);
        assert!(q.is_empty());
    }

    #[test]
    fn state_round_trips_through_serde() {
        let policy = DeferPolicy {
            max_retries: 7,
            max_queue: 33,
            retest_budget: 5,
            max_age: Some(1234.5),
        };
        let mut q = DeferredQueue::new(policy);
        park(&mut q, 1, 5e5);
        park(&mut q, 2, 6e5);
        q.sweep(SimTime::new(1.0), |_| false); // give tickets some retries
        let state = q.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: DeferState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let restored = DeferredQueue::from_state(back);
        assert_eq!(restored.state(), state);
        assert_eq!(restored.policy(), &policy);
        let ids: Vec<u64> = restored.tickets().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1], "age order preserved");
        // New tickets never collide with restored ids.
        let mut restored = restored;
        let new_id = park_checked(&mut restored, 9).unwrap();
        assert_eq!(new_id, 2);
        // Tenant attribution round-tripped too.
        assert_eq!(restored.count_for(TenantId(1)), 1);
    }

    #[test]
    fn flush_empties_everything() {
        let mut q = DeferredQueue::new(DeferPolicy::default());
        park(&mut q, 1, 1e6);
        park(&mut q, 2, 1e6);
        let flushed = q.flush();
        assert_eq!(flushed.len(), 2);
        assert!(flushed.iter().all(|(_, o)| *o == DeferOutcome::Flushed));
        assert!(q.is_empty());
    }

    #[test]
    fn latest_feasible_start_matches_full_cluster_slack() {
        use rtdls_core::dlt::homogeneous;
        let params = ClusterParams::paper_baseline();
        // Plenty of slack: latest start is deadline minus E(sigma, N).
        let roomy = Task::new(1, 0.0, 200.0, 50_000.0);
        let latest = latest_feasible_start(&params, AlgorithmKind::EDF_DLT, &roomy)
            .expect("feasible when idle");
        let e_full = homogeneous::exec_time(&params, 200.0, 16);
        assert!((latest.as_f64() - (50_000.0 - e_full)).abs() < 1e-9);
        assert!(latest.definitely_after(SimTime::ZERO));
        assert!(latest < roomy.absolute_deadline());
        // Hopeless even when idle: no latest start.
        let hopeless = Task::new(2, 0.0, 200.0, 150.0);
        assert_eq!(
            latest_feasible_start(&params, AlgorithmKind::EDF_DLT, &hopeless),
            None
        );
        // User-split: bound follows the Eq. 15 timeline for the user's n.
        let us = Task::new(3, 0.0, 200.0, 50_000.0).with_user_nodes(Some(4));
        let algo = AlgorithmKind::EDF_USER_SPLIT;
        let latest_us = latest_feasible_start(&params, algo, &us).unwrap();
        let chunk = 50.0;
        let makespan = 3.0 * chunk * 1.0 + chunk * 1.0 + chunk * 100.0;
        assert!((latest_us.as_f64() - (50_000.0 - makespan)).abs() < 1e-9);
        // User-split without a request is hopeless.
        let none = Task::new(4, 0.0, 200.0, 50_000.0);
        assert_eq!(latest_feasible_start(&params, algo, &none), None);
    }
}
