//! Decision observation: the pull-based subscription channel the network
//! edge (and any other out-of-process consumer) uses to learn the fate of
//! *parked* tasks without polling the gateway's books.
//!
//! The `Verdict` a gateway returns at submission time is final for
//! `Accepted` / `Rejected` / `Throttled`, but `Reserved` and `Deferred`
//! are promises that resolve later — at a reservation's activation sweep,
//! at a defer re-test, or at end-of-stream flush. The simulation engine
//! learns those resolutions through `Frontend::drain_resolutions`; a
//! network edge cannot use that channel (the engine owns it) and needs
//! richer records anyway (tickets, activation outcomes) to push updates to
//! still-connected clients.
//!
//! [`DecisionUpdate`] is that record. The [`ServiceBook`] appends one for
//! every parked-task resolution and every reservation-activation attempt —
//! but only while observation is enabled
//! ([`ServiceBook::observe_decisions`]), so gateways driven purely by the
//! simulator pay nothing. The channel is process-local observer state like
//! the latency histograms: it is *not* part of the durable snapshot, and a
//! journal replay regenerates nothing into it (observation defaults to
//! off on a restored gateway; the edge re-enables it after recovery).
//!
//! [`ServiceBook`]: crate::book::ServiceBook
//! [`ServiceBook::observe_decisions`]: crate::book::ServiceBook::observe_decisions

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Infeasible, SimTime};

/// One observable decision event for a previously parked task.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DecisionUpdate {
    /// A parked task (defer ticket, or a reservation that missed its
    /// promise and fell back) reached its final verdict.
    Resolved {
        /// The task id.
        task: u64,
        /// The defer/reservation ticket the task was parked under, when it
        /// resolved out of a book (`None` for a terminal reject straight
        /// from an activation miss).
        ticket: Option<u64>,
        /// `true` when the task was admitted with its full deadline
        /// guarantee; `false` when it was rejected.
        admitted: bool,
        /// The rejection cause (`None` exactly when `admitted`).
        cause: Option<Infeasible>,
    },
    /// A reservation's activation sweep ran its admission test.
    Activated {
        /// The reservation ticket.
        ticket: u64,
        /// The task id.
        task: u64,
        /// The activation instant.
        at: SimTime,
        /// `true`: the promise held and the task is admitted (terminal).
        /// `false`: the promise was missed; the task fell back to the
        /// defer-or-reject protocol and a [`DecisionUpdate::Resolved`]
        /// follows (immediately for a terminal reject, later for a defer).
        admitted: bool,
    },
}

impl DecisionUpdate {
    /// The task id the update concerns.
    pub fn task(&self) -> u64 {
        match self {
            DecisionUpdate::Resolved { task, .. } | DecisionUpdate::Activated { task, .. } => *task,
        }
    }

    /// `true` when no further update for this task will follow.
    pub fn is_terminal(&self) -> bool {
        match self {
            DecisionUpdate::Resolved { .. } => true,
            DecisionUpdate::Activated { admitted, .. } => *admitted,
        }
    }

    /// The same update retagged to a different task id. The network edge
    /// namespaces task ids per connection (server-minted ids inside the
    /// gateway, the client's own id on the wire), so every update crossing
    /// back out of a reactor is rewritten to the id the submitting client
    /// knows.
    pub fn retagged(self, task: u64) -> Self {
        match self {
            DecisionUpdate::Resolved {
                ticket,
                admitted,
                cause,
                ..
            } => DecisionUpdate::Resolved {
                task,
                ticket,
                admitted,
                cause,
            },
            DecisionUpdate::Activated {
                ticket,
                at,
                admitted,
                ..
            } => DecisionUpdate::Activated {
                ticket,
                task,
                at,
                admitted,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminality_follows_the_protocol() {
        let resolved = DecisionUpdate::Resolved {
            task: 1,
            ticket: Some(3),
            admitted: false,
            cause: Some(Infeasible::CompletionAfterDeadline),
        };
        assert!(resolved.is_terminal());
        assert_eq!(resolved.task(), 1);
        let hit = DecisionUpdate::Activated {
            ticket: 0,
            task: 2,
            at: SimTime::ZERO,
            admitted: true,
        };
        assert!(hit.is_terminal());
        let miss = DecisionUpdate::Activated {
            ticket: 0,
            task: 2,
            at: SimTime::ZERO,
            admitted: false,
        };
        assert!(!miss.is_terminal(), "a miss resolves later");
    }

    #[test]
    fn updates_round_trip_through_serde() {
        let updates = [
            DecisionUpdate::Resolved {
                task: 9,
                ticket: None,
                admitted: true,
                cause: None,
            },
            DecisionUpdate::Activated {
                ticket: 4,
                task: 9,
                at: SimTime::new(12.5),
                admitted: false,
            },
        ];
        for u in updates {
            let json = serde_json::to_string(&u).unwrap();
            let back: DecisionUpdate = serde_json::from_str(&json).unwrap();
            assert_eq!(back, u);
        }
    }
}
