//! The tenant ledger: who owns which undispatched liability.
//!
//! Admission engines plan bare [`Task`]s — tenancy is a gateway-level
//! concept. The ledger maps each *waiting* (admitted, undispatched) task
//! back to the tenant whose quota it counts against; deferred tickets and
//! reservations carry their tenant inline, so
//! `ledger + defer queue + reservation book` together give the per-tenant
//! inflight count [`QuotaPolicy`](crate::request::QuotaPolicy) enforces.
//! Entries leave the ledger when their task dispatches (the liability
//! becomes committed cluster work) or is demoted back out of the queue.

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Task, TaskId, TenantId};

/// Serializable ledger image: `(task id, tenant id)` pairs, task-id
/// sorted so two equal ledgers serialize identically.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantLedgerState {
    /// The waiting-task → tenant pairs.
    pub entries: Vec<(u64, u32)>,
}

/// The live ledger of waiting-task tenant ownership.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantLedger {
    entries: Vec<(TaskId, TenantId)>,
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked waiting tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records that `task` (now waiting) belongs to `tenant`. A re-insert
    /// for an already-tracked id overwrites the owner.
    pub fn insert(&mut self, task: TaskId, tenant: TenantId) {
        match self.entries.iter_mut().find(|(id, _)| *id == task) {
            Some(entry) => entry.1 = tenant,
            None => self.entries.push((task, tenant)),
        }
    }

    /// Removes one task's entry, returning its tenant (None for untracked
    /// ids — e.g. tasks admitted through a pre-tenancy path).
    pub fn remove(&mut self, task: TaskId) -> Option<TenantId> {
        let pos = self.entries.iter().position(|(id, _)| *id == task)?;
        Some(self.entries.remove(pos).1)
    }

    /// The tenant a waiting task belongs to, if tracked.
    pub fn tenant_of(&self, task: TaskId) -> Option<TenantId> {
        self.entries
            .iter()
            .find(|(id, _)| *id == task)
            .map(|(_, t)| *t)
    }

    /// Number of waiting tasks owned by `tenant`.
    pub fn count_for(&self, tenant: TenantId) -> u32 {
        self.entries.iter().filter(|(_, t)| *t == tenant).count() as u32
    }

    /// Drops the entries of every dispatched task in `due` (a
    /// `take_due` result).
    pub fn prune_dispatched(&mut self, due: &[(Task, rtdls_core::prelude::TaskPlan)]) {
        for (task, _) in due {
            let _ = self.remove(task.id);
        }
    }

    /// Snapshots the ledger for journaling (task-id sorted).
    pub fn state(&self) -> TenantLedgerState {
        let mut entries: Vec<(u64, u32)> = self
            .entries
            .iter()
            .map(|(task, tenant)| (task.0, tenant.0))
            .collect();
        entries.sort_unstable();
        TenantLedgerState { entries }
    }

    /// Rebuilds a ledger from a journaled state.
    pub fn from_state(state: TenantLedgerState) -> Self {
        TenantLedger {
            entries: state
                .entries
                .into_iter()
                .map(|(task, tenant)| (TaskId(task), TenantId(tenant)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut l = TenantLedger::new();
        l.insert(TaskId(1), TenantId(0));
        l.insert(TaskId(2), TenantId(1));
        l.insert(TaskId(3), TenantId(0));
        assert_eq!(l.len(), 3);
        assert_eq!(l.count_for(TenantId(0)), 2);
        assert_eq!(l.tenant_of(TaskId(2)), Some(TenantId(1)));
        assert_eq!(l.remove(TaskId(1)), Some(TenantId(0)));
        assert_eq!(l.remove(TaskId(1)), None);
        assert_eq!(l.count_for(TenantId(0)), 1);
        // Re-insert overwrites the owner.
        l.insert(TaskId(2), TenantId(5));
        assert_eq!(l.tenant_of(TaskId(2)), Some(TenantId(5)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn state_round_trips_sorted() {
        let mut l = TenantLedger::new();
        l.insert(TaskId(9), TenantId(2));
        l.insert(TaskId(3), TenantId(1));
        let state = l.state();
        assert_eq!(state.entries, vec![(3, 1), (9, 2)], "task-id sorted");
        let json = serde_json::to_string(&state).unwrap();
        let back: TenantLedgerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let restored = TenantLedger::from_state(back);
        assert_eq!(restored.count_for(TenantId(1)), 1);
        assert_eq!(restored.count_for(TenantId(2)), 1);
    }
}
