//! The reservation book: promised future admissions.
//!
//! A [`Reservation`] records a [`Verdict::Reserved`] promise: the task, who
//! asked, the instant `start_at` at which the engine's
//! `earliest_feasible_start` said the schedulability test will pass, and
//! the rejection cause that made the reservation necessary in the first
//! place. The gateway *activates* due reservations after the dispatches at
//! each instant commit: activation re-runs the real admission test, so an
//! activated reservation carries exactly the Fig. 2 deadline guarantee —
//! and if the book changed underneath the promise (a competing arrival, an
//! early-release replan), activation falls back to the defer-or-reject
//! protocol instead of ever faking an admission.
//!
//! [`Verdict::Reserved`]: crate::request::Verdict::Reserved

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Infeasible, QosClass, SimTime, Task, TenantId};

/// One booked future admission.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    /// Monotonic reservation ticket id (a namespace of its own, distinct
    /// from defer-ticket ids).
    pub ticket: u64,
    /// The task awaiting its start instant.
    pub task: Task,
    /// The tenant the promise was made to.
    pub tenant: TenantId,
    /// The QoS class of the original request.
    pub qos: QosClass,
    /// When the reservation was booked.
    pub booked_at: SimTime,
    /// The promised admission instant (`booked_at + δ`).
    pub start_at: SimTime,
    /// Why the task was not admissible at `booked_at` (the admission
    /// failure the reservation answers; used as the rejection cause if the
    /// stream ends before activation).
    pub cause: Infeasible,
}

/// The complete serializable state of a [`ReservationBook`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReservationState {
    /// Next ticket id to issue.
    pub next_ticket: u64,
    /// Live reservations in activation order (`start_at`, then ticket).
    pub reservations: Vec<Reservation>,
}

/// How an activation attempt went (audit record for journaling; not part
/// of the durable state — replay regenerates it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivationRecord {
    /// The activated reservation's ticket.
    pub ticket: u64,
    /// The task id.
    pub task: u64,
    /// The activation instant.
    pub at: SimTime,
    /// `true` when the activation admission test passed; `false` when the
    /// promise was missed and the task fell back to defer-or-reject.
    pub admitted: bool,
}

/// The ordered book of live reservations.
#[derive(Clone, Debug, Default)]
pub struct ReservationBook {
    /// Sorted by `(start_at, ticket)` — activation order.
    reservations: Vec<Reservation>,
    next_ticket: u64,
}

impl ReservationBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// `true` when nothing is booked.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// Live reservations in activation order.
    pub fn iter(&self) -> impl Iterator<Item = &Reservation> {
        self.reservations.iter()
    }

    /// Live reservations held by one tenant.
    pub fn count_for(&self, tenant: TenantId) -> u32 {
        self.reservations
            .iter()
            .filter(|r| r.tenant == tenant)
            .count() as u32
    }

    /// Books a reservation; returns its ticket id.
    #[allow(clippy::too_many_arguments)]
    pub fn book(
        &mut self,
        task: Task,
        tenant: TenantId,
        qos: QosClass,
        booked_at: SimTime,
        start_at: SimTime,
        cause: Infeasible,
    ) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let res = Reservation {
            ticket,
            task,
            tenant,
            qos,
            booked_at,
            start_at,
            cause,
        };
        let pos = self
            .reservations
            .partition_point(|r| (r.start_at, r.ticket) <= (start_at, ticket));
        self.reservations.insert(pos, res);
        ticket
    }

    /// The earliest `start_at` across live reservations — when the gateway
    /// next needs the clock to reach it.
    pub fn next_activation(&self) -> Option<SimTime> {
        self.reservations.first().map(|r| r.start_at)
    }

    /// Removes and returns every reservation whose `start_at` has been
    /// reached at `now` (within tolerance), in activation order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<Reservation> {
        let due = self
            .reservations
            .partition_point(|r| r.start_at.at_or_before_eps(now));
        self.reservations.drain(..due).collect()
    }

    /// Empties the book (stream over); the caller resolves each as
    /// rejected under its original cause.
    pub fn flush(&mut self) -> Vec<Reservation> {
        std::mem::take(&mut self.reservations)
    }

    /// Snapshots the complete book state for journaling.
    pub fn state(&self) -> ReservationState {
        ReservationState {
            next_ticket: self.next_ticket,
            reservations: self.reservations.clone(),
        }
    }

    /// Rebuilds a book from a journaled state; the ticket counter never
    /// re-issues a live ticket's id, and activation order is restored
    /// regardless of the serialized order.
    pub fn from_state(state: ReservationState) -> Self {
        let next_ticket = state
            .reservations
            .iter()
            .map(|r| r.ticket + 1)
            .max()
            .unwrap_or(0)
            .max(state.next_ticket);
        let mut reservations = state.reservations;
        reservations.sort_by_key(|r| (r.start_at, r.ticket));
        ReservationBook {
            reservations,
            next_ticket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_one(b: &mut ReservationBook, id: u64, start: f64) -> u64 {
        b.book(
            Task::new(id, 0.0, 100.0, 1e6),
            TenantId(id as u32 % 3),
            QosClass::Standard,
            SimTime::ZERO,
            SimTime::new(start),
            Infeasible::CompletionAfterDeadline,
        )
    }

    #[test]
    fn activation_order_is_start_then_ticket() {
        let mut b = ReservationBook::new();
        book_one(&mut b, 1, 50.0);
        book_one(&mut b, 2, 10.0);
        book_one(&mut b, 3, 50.0);
        assert_eq!(b.next_activation(), Some(SimTime::new(10.0)));
        let due = b.take_due(SimTime::new(50.0));
        let ids: Vec<u64> = due.iter().map(|r| r.task.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3], "start_at order, ticket tie-break");
        assert!(b.is_empty());
        assert_eq!(b.next_activation(), None);
    }

    #[test]
    fn take_due_leaves_future_reservations() {
        let mut b = ReservationBook::new();
        book_one(&mut b, 1, 10.0);
        book_one(&mut b, 2, 99.0);
        let due = b.take_due(SimTime::new(20.0));
        assert_eq!(due.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.next_activation(), Some(SimTime::new(99.0)));
    }

    #[test]
    fn per_tenant_counts_and_flush() {
        let mut b = ReservationBook::new();
        for id in 0..6 {
            book_one(&mut b, id, 10.0 + id as f64);
        }
        assert_eq!(b.count_for(TenantId(0)), 2);
        assert_eq!(b.count_for(TenantId(7)), 0);
        let flushed = b.flush();
        assert_eq!(flushed.len(), 6);
        assert!(b.is_empty());
    }

    #[test]
    fn state_round_trips_and_never_reissues_tickets() {
        let mut b = ReservationBook::new();
        let t0 = book_one(&mut b, 1, 30.0);
        let t1 = book_one(&mut b, 2, 20.0);
        assert_eq!((t0, t1), (0, 1));
        let state = b.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ReservationState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = ReservationBook::from_state(back);
        assert_eq!(restored.state(), state);
        let t2 = book_one(&mut restored, 3, 5.0);
        assert_eq!(t2, 2, "restored counter continues");
        assert_eq!(restored.next_activation(), Some(SimTime::new(5.0)));
    }
}
