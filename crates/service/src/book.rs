//! Shared bookkeeping between the single-cluster [`Gateway`] and the
//! [`ShardedGateway`]: defer-queue departures, the defer-or-reject verdict,
//! end-of-stream flushing, and decision latency accounting. One copy, so
//! counters and resolutions can never drift between the two gateways.
//!
//! [`Gateway`]: crate::gateway::Gateway
//! [`ShardedGateway`]: crate::shard::ShardedGateway

use std::time::Instant;

use rtdls_core::prelude::{Admission, AlgorithmKind, ClusterParams, Infeasible, SimTime, Task};

use crate::defer::{latest_feasible_start, DeferOutcome, DeferTicket, DeferredQueue};
use crate::gateway::GatewayDecision;
use crate::metrics::ServiceMetrics;

/// Books the tickets that left the defer queue in one sweep: metric
/// counters plus the engine-visible resolutions (`None` = rescued/accepted,
/// `Some(cause)` = rejected).
pub(crate) fn apply_departures(
    departed: Vec<(DeferTicket, DeferOutcome)>,
    metrics: &mut ServiceMetrics,
    resolutions: &mut Vec<(Task, Option<Infeasible>)>,
) {
    for (ticket, outcome) in departed {
        match outcome {
            DeferOutcome::Rescued => {
                metrics.rescued += 1;
                resolutions.push((ticket.task, None));
            }
            DeferOutcome::Expired => {
                metrics.defer_expired += 1;
                resolutions.push((ticket.task, Some(ticket.cause)));
            }
            DeferOutcome::Evicted => {
                metrics.defer_evicted += 1;
                resolutions.push((ticket.task, Some(ticket.cause)));
            }
            DeferOutcome::Flushed => {
                metrics.defer_flushed += 1;
                resolutions.push((ticket.task, Some(ticket.cause)));
            }
        }
    }
}

/// The Defer-or-Reject verdict for a task every admission target rejected:
/// park it when a cluster of `widest_params` shape could still meet the
/// deadline with slack (and the queue has room), reject otherwise.
pub(crate) fn defer_or_reject(
    defer: &mut DeferredQueue,
    metrics: &mut ServiceMetrics,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    task: Task,
    now: SimTime,
    cause: Infeasible,
) -> GatewayDecision {
    if let Some(latest) = latest_feasible_start(widest_params, algorithm, &task) {
        if latest.definitely_after(now) {
            if let Some(id) = defer.push(task, now, latest, cause) {
                metrics.deferred += 1;
                return GatewayDecision::Deferred(id);
            }
        }
    }
    metrics.rejected_immediate += 1;
    GatewayDecision::Rejected(cause)
}

/// End of stream: every still-parked ticket resolves as rejected.
pub(crate) fn flush_all(
    defer: &mut DeferredQueue,
    metrics: &mut ServiceMetrics,
    resolutions: &mut Vec<(Task, Option<Infeasible>)>,
) {
    let flushed = defer.flush();
    apply_departures(flushed, metrics, resolutions);
}

/// Post-recovery re-verification of one controller's waiting queue: re-runs
/// the strict Fig. 2 test (a replan) at `now`, and while it fails, removes
/// the infeasible task and re-enters it through Defer-or-Reject — *demotion*.
/// Every remaining plan afterwards carries the usual deadline guarantee.
///
/// Demotion is deliberately conservative: a replan failure can also stem
/// from the FixedPoint `ñ_min` non-monotonicity (see the engine's `settle`),
/// in which case the demoted task was arguably still servable under its old
/// plan — but parking it in the defer queue never breaks a guarantee, and
/// the very next re-test sweep can rescue it.
///
/// Returns the demoted tasks in demotion order.
pub(crate) fn reverify_controller<A: Admission>(
    ctl: &mut A,
    defer: &mut DeferredQueue,
    metrics: &mut ServiceMetrics,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    now: SimTime,
) -> Vec<Task> {
    let mut demoted = Vec::new();
    while let Err(failure) = ctl.replan(now) {
        let Some(task) = ctl.remove_waiting(failure.task) else {
            // Defensive: an infeasibility blamed on a task we do not hold
            // cannot be fixed by demotion; keep the admission-time plans.
            break;
        };
        metrics.demoted += 1;
        let decision = defer_or_reject(
            defer,
            metrics,
            widest_params,
            algorithm,
            task,
            now,
            failure.reason,
        );
        if matches!(decision, GatewayDecision::Rejected(_)) {
            // Defer-or-Reject books rejections under `rejected_immediate`
            // (its submission-path meaning); a demotion past hope is a
            // *withdrawn* guarantee, not a submission verdict — move it to
            // its own counter so the two histories stay distinguishable.
            metrics.rejected_immediate -= 1;
            metrics.demote_rejected += 1;
        }
        demoted.push(task);
    }
    demoted
}

/// Stamps the wall-clock window and records `n_decisions` latency samples
/// (the elapsed time split evenly) for a submit or submit_batch call.
pub(crate) fn record_decisions(metrics: &mut ServiceMetrics, start: Instant, n_decisions: usize) {
    metrics.submitted += n_decisions as u64;
    metrics.stamp_decision_window(start);
    let elapsed = start.elapsed();
    let per_decision = elapsed
        .checked_div(n_decisions.max(1) as u32)
        .unwrap_or(elapsed);
    for _ in 0..n_decisions {
        metrics.decision_latency.record(per_decision);
    }
}
