//! [`ServiceBook`]: the gateway-level bookkeeping shared between the
//! single-cluster [`Gateway`] and the [`ShardedGateway`] — the defer
//! queue, the reservation book, the tenant ledger, quota policy, metrics,
//! and the engine-visible resolutions — plus the one copy of the v2
//! request/verdict decision flow both gateways drive with their own
//! engine closures. One copy, so verdicts, counters, and resolutions can
//! never drift between the two gateways.
//!
//! [`Gateway`]: crate::gateway::Gateway
//! [`ShardedGateway`]: crate::shard::ShardedGateway

use std::time::Instant;

use rtdls_core::prelude::{
    AlgorithmKind, ClusterParams, Decision, Infeasible, QosClass, SimTime, SubmitRequest, Task,
    TenantId,
};
use rtdls_telemetry::{Profiler, Stage, Telemetry};

use crate::defer::{latest_feasible_start, DeferOutcome, DeferPolicy, DeferTicket, DeferredQueue};
use crate::metrics::ServiceMetrics;
use crate::observe::DecisionUpdate;
use crate::request::{QuotaPolicy, Verdict};
use crate::reserve::{ActivationRecord, ReservationBook};
use crate::slo::{SloBreach, SloObjective, SloTracker, SLO_BREACH_VERSION};
use crate::tenant::TenantLedger;

/// Recently decided task ids retained per tenant for breach forensics.
const RECENT_TASKS_PER_TENANT: usize = 8;

/// The shared serving-layer state both gateways embed: everything a
/// journal snapshots besides the admission engines themselves.
#[derive(Clone, Debug)]
pub struct ServiceBook {
    /// Parked near-miss tickets.
    pub defer: DeferredQueue,
    /// Booked future admissions.
    pub reservations: ReservationBook,
    /// Waiting-task → tenant ownership (quota input).
    pub ledger: TenantLedger,
    /// Per-tenant admission quotas.
    pub quota: QuotaPolicy,
    /// Cumulative gateway statistics.
    pub metrics: ServiceMetrics,
    /// Verdicts reached for pending (deferred/reserved) tasks since the
    /// last engine drain.
    pub resolutions: Vec<(Task, Option<Infeasible>)>,
    /// Activation attempts since the last audit drain (journal-only;
    /// regenerated on replay, so not part of the captured state).
    activation_log: Vec<ActivationRecord>,
    /// Parked-task updates since the last observer drain (edge-only;
    /// recorded only while `observe` is set, so simulator-driven gateways
    /// pay nothing). Process-local like the latency samples: not captured
    /// in snapshots, and a journal replay regenerates nothing into it.
    updates: Vec<DecisionUpdate>,
    /// Whether parked-task updates are being recorded.
    observe: bool,
    /// Decision-tracing handle. Process-local like `observe`: disabled by
    /// default (the zero-telemetry path is one `Option` check), never
    /// captured in snapshots, re-attached by the owner after recovery.
    telemetry: Telemetry,
    /// Hot-path profiler handle (phase timing on the plan path). Same
    /// discipline as `telemetry`: disabled by default, process-local.
    profiler: Profiler,
    /// Deadline-SLO tracker. Durable: sim-time driven and deterministic, it
    /// rides inside gateway snapshots so alarm states and breach counts
    /// survive kill/recover.
    pub slo: SloTracker,
    /// Breach audit records cut since the last journal drain. The records
    /// themselves are made durable by the journal's audit append; the
    /// *channel* is process-local like `activation_log`.
    breach_log: Vec<SloBreach>,
    /// Per-tenant recently decided task ids (forensics context for breach
    /// records), id-sorted. Process-local.
    recents: Vec<(u32, Vec<u64>)>,
    /// Whether refusal verdicts carry an [`AdmissionExplanation`]. Off by
    /// default — the counterfactual searches cost real planning work — and
    /// enabled by the network edge. Process-local, like `observe`.
    ///
    /// [`AdmissionExplanation`]: rtdls_core::prelude::AdmissionExplanation
    explain_enabled: bool,
}

impl ServiceBook {
    /// A fresh book under the given defer and quota policies.
    pub fn new(defer_policy: DeferPolicy, quota: QuotaPolicy) -> Self {
        ServiceBook {
            defer: DeferredQueue::new(defer_policy),
            reservations: ReservationBook::new(),
            ledger: TenantLedger::new(),
            quota,
            metrics: ServiceMetrics::new(),
            resolutions: Vec::new(),
            activation_log: Vec::new(),
            updates: Vec::new(),
            observe: false,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            slo: SloTracker::default(),
            breach_log: Vec::new(),
            recents: Vec::new(),
            explain_enabled: false,
        }
    }

    /// Reassembles a book from journaled parts (the recovery-side
    /// counterpart of the field accessors). The SLO tracker starts fresh
    /// here; recovery assigns the snapshotted tracker afterwards (the
    /// field is public precisely so the journal layer can restore it).
    pub fn from_parts(
        defer: DeferredQueue,
        reservations: ReservationBook,
        ledger: TenantLedger,
        quota: QuotaPolicy,
        metrics: ServiceMetrics,
        resolutions: Vec<(Task, Option<Infeasible>)>,
    ) -> Self {
        ServiceBook {
            defer,
            reservations,
            ledger,
            quota,
            metrics,
            resolutions,
            activation_log: Vec::new(),
            updates: Vec::new(),
            observe: false,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            slo: SloTracker::default(),
            breach_log: Vec::new(),
            recents: Vec::new(),
            explain_enabled: false,
        }
    }

    /// Attaches a decision-tracing handle (a clone; all clones share one
    /// recorder). Like [`observe_decisions`](ServiceBook::observe_decisions)
    /// this is process-local state the owner re-attaches after recovery.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached tracing handle (disabled unless the owner enabled it).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a hot-path profiler handle (a clone; all clones share one
    /// phase table). Process-local like the telemetry handle.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The attached profiler handle (disabled unless the owner enabled it).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// A tenant's current undispatched liabilities: waiting + deferred +
    /// reserved tasks.
    pub fn inflight(&self, tenant: TenantId) -> u32 {
        self.ledger.count_for(tenant)
            + self.defer.count_for(tenant)
            + self.reservations.count_for(tenant)
    }

    /// Drains the activation audit records accumulated since the last
    /// call (for write-ahead journaling; process-local, like latency).
    pub fn take_activation_log(&mut self) -> Vec<ActivationRecord> {
        std::mem::take(&mut self.activation_log)
    }

    /// Enables or disables parked-task decision observation (see
    /// [`DecisionUpdate`]). Off by default so simulator-driven gateways
    /// never accumulate an undrained channel; the network edge turns it on.
    pub fn observe_decisions(&mut self, on: bool) {
        self.observe = on;
        if !on {
            self.updates.clear();
        }
    }

    /// Drains the parked-task updates recorded since the last call.
    pub fn take_updates(&mut self) -> Vec<DecisionUpdate> {
        std::mem::take(&mut self.updates)
    }

    fn push_update(&mut self, update: DecisionUpdate) {
        if self.observe {
            self.updates.push(update);
        }
    }

    /// Enables or disables admission explanations on refusal verdicts.
    /// Off by default (the counterfactual searches replan repeatedly);
    /// the network edge turns it on.
    pub fn enable_explanations(&mut self, on: bool) {
        self.explain_enabled = on;
    }

    /// Whether refusal verdicts carry explanations.
    pub fn explanations_enabled(&self) -> bool {
        self.explain_enabled
    }

    /// Drains the SLO-breach audit records cut since the last call (for
    /// write-ahead journaling; process-local, like `activation_log`).
    pub fn take_breach_log(&mut self) -> Vec<SloBreach> {
        std::mem::take(&mut self.breach_log)
    }

    /// Breach records currently awaiting a journal drain.
    pub fn pending_breaches(&self) -> &[SloBreach] {
        &self.breach_log
    }

    /// A tenant's most recently decided task ids, oldest first.
    pub fn recent_tasks(&self, tenant: TenantId) -> Vec<u64> {
        self.recents
            .iter()
            .find(|(id, _)| *id == tenant.0)
            .map(|(_, ring)| ring.clone())
            .unwrap_or_default()
    }

    fn note_recent(&mut self, tenant: TenantId, task: u64) {
        let pos = self.recents.partition_point(|(id, _)| *id < tenant.0);
        if self.recents.get(pos).is_none_or(|(id, _)| *id != tenant.0) {
            self.recents.insert(pos, (tenant.0, Vec::new()));
        }
        let ring = &mut self.recents[pos].1;
        ring.push(task);
        if ring.len() > RECENT_TASKS_PER_TENANT {
            ring.remove(0);
        }
    }
}

/// Feeds one objective event into the SLO tracker and cuts breach
/// forensics for every transition into `Breached`: the offending tenant's
/// recent tasks and their flight-recorder timelines go into a versioned
/// [`SloBreach`] record (journaled by the owner via
/// [`ServiceBook::take_breach_log`]), and the flight recorder dumps to
/// stderr — the black box fires exactly when the promise breaks.
pub(crate) fn record_slo(
    book: &mut ServiceBook,
    tenant: TenantId,
    qos: QosClass,
    objective: SloObjective,
    good: bool,
    now: SimTime,
) {
    if now == SimTime::FAR_FUTURE {
        // End-of-stream flushes carry no meaningful clock; feeding them
        // would teleport every window into the far future.
        return;
    }
    for transition in book.slo.record(tenant, qos, objective, good, now) {
        if !transition.is_breach() {
            continue;
        }
        let row = book
            .slo
            .row_for(transition.tenant, transition.qos, transition.objective)
            .expect("a transition's scope always has a row");
        let recent_tasks = match transition.tenant {
            Some(id) => book.recent_tasks(TenantId(id)),
            None => Vec::new(),
        };
        let mut timelines = Vec::new();
        if book.telemetry.is_enabled() {
            for &task in &recent_tasks {
                if let Some(trace) = book.telemetry.trace_of(task) {
                    for span in book.telemetry.trace_spans(trace) {
                        timelines.push(span.to_string());
                    }
                }
            }
            book.telemetry.dump_to_stderr(&format!(
                "slo breach: {} {} at t={}",
                row.scope(),
                transition.objective.label(),
                now.as_f64(),
            ));
        }
        book.breach_log.push(SloBreach {
            version: SLO_BREACH_VERSION,
            transition,
            row,
            recent_tasks,
            timelines,
        });
    }
}

/// Books one admission into the waiting queue: ledger ownership plus the
/// global and per-tenant accept counters. The single copy behind every
/// accept path (request flow, legacy batch, spillover) so the books can
/// never drift between them.
pub(crate) fn book_accept(
    book: &mut ServiceBook,
    task: rtdls_core::prelude::TaskId,
    tenant: TenantId,
) {
    book.ledger.insert(task, tenant);
    book.metrics.accepted_immediate += 1;
    book.metrics.tenants.counters_mut(tenant).accepted += 1;
}

/// Books the tickets that left the defer queue in one sweep: metric
/// counters (global and per-tenant), ledger entries for rescued tasks,
/// and the engine-visible resolutions (`None` = rescued/accepted,
/// `Some(cause)` = rejected).
pub(crate) fn apply_departures(
    book: &mut ServiceBook,
    departed: Vec<(DeferTicket, DeferOutcome)>,
    now: SimTime,
) {
    for (ticket, outcome) in departed {
        let admitted = matches!(outcome, DeferOutcome::Rescued);
        if book.telemetry.is_enabled() {
            let trace = book.telemetry.trace_of(ticket.task.id.0).unwrap_or(0);
            let outcome_label = match outcome {
                DeferOutcome::Rescued => "Rescued",
                DeferOutcome::Expired => "Expired",
                DeferOutcome::Evicted => "Evicted",
                DeferOutcome::Flushed => "Flushed",
            };
            book.telemetry.record(
                trace,
                Stage::Resolve,
                None,
                ticket.task.id.0,
                outcome_label,
                now,
                None,
            );
        }
        book.push_update(DecisionUpdate::Resolved {
            task: ticket.task.id.0,
            ticket: Some(ticket.id),
            admitted,
            cause: (!admitted).then_some(ticket.cause),
        });
        // A deferred request's acceptance SLO is judged here, where its
        // fate becomes known; a rescue is also an attained guarantee.
        record_slo(
            book,
            ticket.tenant,
            ticket.qos,
            SloObjective::Acceptance,
            admitted,
            now,
        );
        if admitted {
            record_slo(
                book,
                ticket.tenant,
                ticket.qos,
                SloObjective::Attainment,
                true,
                now,
            );
        }
        let tenant = book.metrics.tenants.counters_mut(ticket.tenant);
        match outcome {
            DeferOutcome::Rescued => {
                tenant.accepted += 1;
                book.metrics.rescued += 1;
                book.ledger.insert(ticket.task.id, ticket.tenant);
                book.resolutions.push((ticket.task, None));
            }
            DeferOutcome::Expired => {
                tenant.rejected += 1;
                book.metrics.defer_expired += 1;
                book.resolutions.push((ticket.task, Some(ticket.cause)));
            }
            DeferOutcome::Evicted => {
                tenant.rejected += 1;
                book.metrics.defer_evicted += 1;
                book.resolutions.push((ticket.task, Some(ticket.cause)));
            }
            DeferOutcome::Flushed => {
                tenant.rejected += 1;
                book.metrics.defer_flushed += 1;
                book.resolutions.push((ticket.task, Some(ticket.cause)));
            }
        }
    }
}

/// The Defer-or-Reject verdict for a request every admission target
/// rejected (and that did not qualify for a reservation): park it when a
/// cluster of `widest_params` shape could still meet the deadline with
/// slack (and the queue has room), reject otherwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn defer_or_reject(
    book: &mut ServiceBook,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    task: Task,
    tenant: TenantId,
    qos: QosClass,
    now: SimTime,
    cause: Infeasible,
) -> Verdict {
    if let Some(latest) = latest_feasible_start(widest_params, algorithm, &task) {
        if latest.definitely_after(now) {
            if let Some(id) = book.defer.push(task, tenant, qos, now, latest, cause) {
                book.metrics.deferred += 1;
                book.metrics.tenants.counters_mut(tenant).deferred += 1;
                return Verdict::deferred(id);
            }
        }
    }
    book.metrics.rejected_immediate += 1;
    book.metrics.rejection_causes.record(cause);
    book.metrics.tenants.counters_mut(tenant).rejected += 1;
    Verdict::rejected(cause)
}

/// The engine-side operations the shared decision flow needs — one
/// adapter per gateway shape (a bare engine for [`Gateway`], the routed
/// shard set for [`ShardedGateway`]).
///
/// [`Gateway`]: crate::gateway::Gateway
/// [`ShardedGateway`]: crate::shard::ShardedGateway
pub(crate) trait EngineOps {
    /// The mutating admission test. Also reports which shard the task was
    /// routed to, when the adapter routes at all (`None` for the
    /// single-cluster gateway) — the decision-tracing `Route` span input.
    fn submit(&mut self, task: &Task, now: SimTime) -> (Decision, Option<u32>);
    /// The reservation search (non-mutating on the engine).
    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime>;
    /// `true` when per-shard quota caps leave this request no shard to
    /// route to (the sharded adapter under `QuotaPolicy::max_shard_inflight`;
    /// single-engine adapters never throttle here).
    fn all_routes_throttled(&self) -> bool {
        false
    }
    /// The admission explanation for a request this engine refuses
    /// (non-mutating; `None` when the request is feasible as-is or the
    /// adapter does not support explanations).
    fn explain(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        let _ = (request, now);
        None
    }
}

/// The v2 decision flow, shared by both gateways via their [`EngineOps`]
/// adapter: the core verdict ([`decide_request_inner`]) plus the
/// observability wrap-up — refusal explanations (when enabled), the
/// forensics recent-task ring, and the acceptance/attainment SLO feeds.
///
/// SLO bookkeeping: Accepted and Reserved count as acceptance-good at
/// decision time (Accepted also attains immediately; a reservation's
/// attainment is judged at activation). Rejected and Throttled count as
/// acceptance-bad. Deferred counts nothing yet — its fate lands in
/// [`apply_departures`] when the ticket resolves.
pub(crate) fn decide_request(
    book: &mut ServiceBook,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    request: &SubmitRequest,
    now: SimTime,
    engine: &mut impl EngineOps,
) -> Verdict {
    let mut verdict = decide_request_inner(book, widest_params, algorithm, request, now, engine);
    book.note_recent(request.tenant, request.task.id.0);
    if book.explain_enabled
        && matches!(verdict, Verdict::Rejected { .. } | Verdict::Deferred { .. })
    {
        verdict = verdict.with_explanation(engine.explain(request, now));
    }
    match verdict {
        Verdict::Accepted => {
            record_slo(
                book,
                request.tenant,
                request.qos,
                SloObjective::Acceptance,
                true,
                now,
            );
            record_slo(
                book,
                request.tenant,
                request.qos,
                SloObjective::Attainment,
                true,
                now,
            );
        }
        Verdict::Reserved { .. } => {
            record_slo(
                book,
                request.tenant,
                request.qos,
                SloObjective::Acceptance,
                true,
                now,
            );
        }
        Verdict::Rejected { .. } | Verdict::Throttled => {
            record_slo(
                book,
                request.tenant,
                request.qos,
                SloObjective::Acceptance,
                false,
                now,
            );
        }
        Verdict::Deferred { .. } => {}
    }
    verdict
}

/// Order of business: quota gate → admission test → reservation search →
/// defer-or-reject. The caller books the submission count and latency
/// afterwards via [`record_request`].
fn decide_request_inner(
    book: &mut ServiceBook,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    request: &SubmitRequest,
    now: SimTime,
    engine: &mut impl EngineOps,
) -> Verdict {
    let tenant = request.tenant;
    // Count the tenant's liabilities only when a cap could actually bind:
    // the three book scans are O(queue) and sit on the hot path.
    let quota_binds = book.quota.applies_to(request.qos) && book.quota.max_inflight.is_some();
    if quota_binds
        && !book
            .quota
            .admits_inflight(request.qos, book.inflight(tenant))
    {
        book.metrics.throttled += 1;
        book.metrics.tenants.counters_mut(tenant).throttled += 1;
        book.telemetry.record(
            request.trace,
            Stage::Plan,
            None,
            request.task.id.0,
            "Throttled",
            now,
            None,
        );
        return Verdict::Throttled;
    }
    // Per-shard caps: when the tenant is at `max_shard_inflight` on every
    // shard there is nowhere to route, which is a quota refusal like any
    // other (the admission test never runs).
    if engine.all_routes_throttled() {
        book.metrics.throttled += 1;
        book.metrics.tenants.counters_mut(tenant).throttled += 1;
        book.telemetry.record(
            request.trace,
            Stage::Plan,
            None,
            request.task.id.0,
            "Throttled",
            now,
            None,
        );
        return Verdict::Throttled;
    }
    let task_id = request.task.id.0;
    let trace = request.trace;
    let plan_timer = book.telemetry.timer();
    let plan_phase = book.profiler.start();
    let (decision, shard) = engine.submit(&request.task, now);
    book.profiler.stop("gateway/plan", plan_phase);
    if let Some(s) = shard {
        book.telemetry
            .record(trace, Stage::Route, Some(s), task_id, "routed", now, None);
    }
    match decision {
        Decision::Accepted => {
            book.telemetry.record(
                trace,
                Stage::Plan,
                shard,
                task_id,
                "Accepted",
                now,
                plan_timer,
            );
            book.telemetry.remember(task_id, trace);
            book_accept(book, request.task.id, tenant);
            Verdict::Accepted
        }
        Decision::Rejected(cause) => {
            if book.telemetry.is_enabled() {
                book.telemetry.record(
                    trace,
                    Stage::Plan,
                    shard,
                    task_id,
                    &format!("{cause:?}"),
                    now,
                    plan_timer,
                );
            }
            if let Some(max_delay) = request.max_delay {
                let can_book = book
                    .quota
                    .admits_reservation(request.qos, book.reservations.count_for(tenant));
                if can_book {
                    let reserve_timer = book.telemetry.timer();
                    if let Some(start_at) = engine.earliest_feasible_start(&request.task, now) {
                        if start_at.at_or_before_eps(now + SimTime::new(max_delay)) {
                            let ticket = book.reservations.book(
                                request.task,
                                tenant,
                                request.qos,
                                now,
                                start_at,
                                cause,
                            );
                            book.metrics.reserved += 1;
                            book.metrics.tenants.counters_mut(tenant).reserved += 1;
                            book.telemetry.record(
                                trace,
                                Stage::Reserve,
                                shard,
                                task_id,
                                "Reserved",
                                now,
                                reserve_timer,
                            );
                            book.telemetry.remember(task_id, trace);
                            return Verdict::Reserved { start_at, ticket };
                        }
                    }
                }
            }
            let verdict = defer_or_reject(
                book,
                widest_params,
                algorithm,
                request.task,
                tenant,
                request.qos,
                now,
                cause,
            );
            if let Verdict::Deferred { .. } = verdict {
                book.telemetry.record(
                    trace,
                    Stage::DeferPark,
                    shard,
                    task_id,
                    "Deferred",
                    now,
                    None,
                );
                book.telemetry.remember(task_id, trace);
            }
            verdict
        }
    }
}

/// Activates every reservation whose `start_at` has been reached: the real
/// admission test re-runs at `now`; a pass admits the task with the full
/// deadline guarantee, a miss falls back to the defer-or-reject protocol.
/// Shared by both gateways via their engine `submit` closure.
pub(crate) fn activate_due(
    book: &mut ServiceBook,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    now: SimTime,
    engine: &mut impl EngineOps,
) {
    for res in book.reservations.take_due(now) {
        let trace = book.telemetry.trace_of(res.task.id.0).unwrap_or(0);
        let activate_timer = book.telemetry.timer();
        let (decision, shard) = engine.submit(&res.task, now);
        let admitted = decision.is_accepted();
        if admitted {
            // The initial reserved submit never routed (the engine punted to
            // the reservation book), so a reserved flow's routing decision
            // happens here — record it so the timeline carries one.
            book.telemetry.record(
                trace,
                Stage::Route,
                shard,
                res.task.id.0,
                "routed",
                now,
                None,
            );
        }
        book.telemetry.record(
            trace,
            Stage::Activate,
            shard,
            res.task.id.0,
            if admitted { "admitted" } else { "miss" },
            now,
            activate_timer,
        );
        book.activation_log.push(ActivationRecord {
            ticket: res.ticket,
            task: res.task.id.0,
            at: now,
            admitted,
        });
        book.push_update(DecisionUpdate::Activated {
            ticket: res.ticket,
            task: res.task.id.0,
            at: now,
            admitted,
        });
        // A reservation was an issued guarantee: activation is where it
        // either holds (attained) or is withdrawn (a miss).
        record_slo(
            book,
            res.tenant,
            res.qos,
            SloObjective::Attainment,
            admitted,
            now,
        );
        if admitted {
            book.ledger.insert(res.task.id, res.tenant);
            book.metrics.reservations_activated += 1;
            book.metrics.tenants.counters_mut(res.tenant).accepted += 1;
            book.resolutions.push((res.task, None));
        } else {
            let cause = match decision {
                Decision::Rejected(cause) => cause,
                Decision::Accepted => unreachable!("admitted handled above"),
            };
            book.metrics.reservation_misses += 1;
            let verdict = defer_or_reject(
                book,
                widest_params,
                algorithm,
                res.task,
                res.tenant,
                res.qos,
                now,
                cause,
            );
            if let Verdict::Rejected { cause, .. } = verdict {
                // The miss resolved terminally right here; deferred misses
                // resolve later through the sweep like any other ticket.
                book.resolutions.push((res.task, Some(cause)));
                book.telemetry.record(
                    trace,
                    Stage::Resolve,
                    None,
                    res.task.id.0,
                    "Rejected",
                    now,
                    None,
                );
                book.push_update(DecisionUpdate::Resolved {
                    task: res.task.id.0,
                    ticket: None,
                    admitted: false,
                    cause: Some(cause),
                });
            }
        }
    }
}

/// End of stream: every still-parked ticket and unactivated reservation
/// resolves as rejected.
pub(crate) fn flush_all(book: &mut ServiceBook) {
    for res in book.reservations.flush() {
        book.metrics.reservations_flushed += 1;
        book.metrics.tenants.counters_mut(res.tenant).rejected += 1;
        book.resolutions.push((res.task, Some(res.cause)));
        if book.telemetry.is_enabled() {
            let trace = book.telemetry.trace_of(res.task.id.0).unwrap_or(0);
            book.telemetry.record(
                trace,
                Stage::Resolve,
                None,
                res.task.id.0,
                "Flushed",
                SimTime::FAR_FUTURE,
                None,
            );
        }
        book.push_update(DecisionUpdate::Resolved {
            task: res.task.id.0,
            ticket: Some(res.ticket),
            admitted: false,
            cause: Some(res.cause),
        });
    }
    let flushed = book.defer.flush();
    // End of stream: there is no meaningful clock left to stamp.
    apply_departures(book, flushed, SimTime::FAR_FUTURE);
}

/// Post-recovery re-verification of one controller's waiting queue: re-runs
/// the strict Fig. 2 test (a replan) at `now`, and while it fails, removes
/// the infeasible task and re-enters it through Defer-or-Reject — *demotion*.
/// Every remaining plan afterwards carries the usual deadline guarantee.
///
/// Demotion is deliberately conservative: a replan failure can also stem
/// from the FixedPoint `ñ_min` non-monotonicity (see the engine's `settle`),
/// in which case the demoted task was arguably still servable under its old
/// plan — but parking it in the defer queue never breaks a guarantee, and
/// the very next re-test sweep can rescue it.
///
/// Returns the demoted tasks in demotion order.
pub(crate) fn reverify_controller<A: rtdls_core::prelude::Admission>(
    ctl: &mut A,
    book: &mut ServiceBook,
    widest_params: &ClusterParams,
    algorithm: AlgorithmKind,
    now: SimTime,
) -> Vec<Task> {
    let mut demoted = Vec::new();
    while let Err(failure) = ctl.replan(now) {
        let Some(task) = ctl.remove_waiting(failure.task) else {
            // Defensive: an infeasibility blamed on a task we do not hold
            // cannot be fixed by demotion; keep the admission-time plans.
            break;
        };
        // The demoted task's liability leaves the waiting ledger; its
        // tenant follows it into the defer queue (anonymous when the task
        // predates tenancy tracking). The tenant book mirrors the global
        // correction: the original accept stays gross, `demoted` nets it
        // out, and the defer/reject re-entry below books the new fate.
        let tenant = book.ledger.remove(task.id).unwrap_or_default();
        book.metrics.demoted += 1;
        book.metrics.tenants.counters_mut(tenant).demoted += 1;
        // A demotion withdraws an already-issued guarantee — the
        // attainment SLO's bad event, whatever the re-entry verdict.
        record_slo(
            book,
            tenant,
            QosClass::default(),
            SloObjective::Attainment,
            false,
            now,
        );
        let verdict = defer_or_reject(
            book,
            widest_params,
            algorithm,
            task,
            tenant,
            QosClass::default(),
            now,
            failure.reason,
        );
        if matches!(verdict, Verdict::Rejected { .. }) {
            // Defer-or-Reject books rejections under `rejected_immediate`
            // (its submission-path meaning); a demotion past hope is a
            // *withdrawn* guarantee, not a submission verdict — move it to
            // its own counter so the two histories stay distinguishable.
            book.metrics.rejected_immediate -= 1;
            book.metrics.demote_rejected += 1;
        }
        demoted.push(task);
    }
    demoted
}

/// Stamps the wall-clock window and records `n_decisions` latency samples
/// (the elapsed time split evenly) for a legacy submit_batch call. Batch
/// members travel under the anonymous tenant, whose book gets the
/// submission counts (latency samples stay global-only on this path).
pub(crate) fn record_decisions(metrics: &mut ServiceMetrics, start: Instant, n_decisions: usize) {
    metrics.submitted += n_decisions as u64;
    metrics.tenants.counters_mut(TenantId::default()).submitted += n_decisions as u64;
    metrics.stamp_decision_window(start);
    let elapsed = start.elapsed();
    let per_decision = elapsed
        .checked_div(n_decisions.max(1) as u32)
        .unwrap_or(elapsed);
    for _ in 0..n_decisions {
        metrics.decision_latency.record(per_decision);
    }
}

/// The request-path variant of [`record_decisions`]: one decision, booked
/// globally and under the request's tenant.
pub(crate) fn record_request(metrics: &mut ServiceMetrics, start: Instant, tenant: TenantId) {
    let elapsed = start.elapsed();
    metrics.submitted += 1;
    metrics.stamp_decision_window(start);
    metrics.decision_latency.record(elapsed);
    let counters = metrics.tenants.counters_mut(tenant);
    counters.submitted += 1;
    counters.decision_latency.record(elapsed);
}
