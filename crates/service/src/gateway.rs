//! The single-cluster online admission gateway.
//!
//! [`Gateway`] wraps one [`AdmissionController`] and turns its binary
//! Accept/Reject into the request/verdict serving protocol
//! ([`Gateway::submit_request`] → [`Verdict`]):
//!
//! * **Accepted** — the Fig. 2 test passed; the task joins the waiting
//!   queue with its full deadline guarantee.
//! * **Reserved** — the test failed now, but the engine's
//!   `earliest_feasible_start` found an instant `start_at` within the
//!   request's `max_delay` tolerance at which it passes: the task is
//!   booked in a [`ReservationBook`] and auto-activates when the clock
//!   reaches `start_at` (activation re-runs the real test, so the
//!   guarantee is never faked).
//! * **Deferred** — the test failed, no reservation was possible, but only
//!   for lack of *current* capacity: the task parks in a
//!   [`DeferredQueue`] and is re-tested on every admission/completion
//!   event.
//! * **Rejected** — the test failed and no later start could succeed.
//! * **Throttled** — the tenant is over its [`QuotaPolicy`] limits.
//!
//! The legacy v1 surface ([`Gateway::submit`] → [`GatewayDecision`])
//! remains as a thin bridge over the default request envelope.
//!
//! A batched path ([`Gateway::submit_batch`]) amortizes the schedulability
//! test across a burst via [`AdmissionController::submit_batch`], and
//! [`ServiceMetrics`] tracks throughput, defer-rescue rate, per-tenant
//! counters, and per-decision latency histograms.
//!
//! The gateway implements the simulator's [`Frontend`] trait, so a
//! discrete-event run can route every arrival through it:
//! `Simulation::with_frontend(cfg, gateway).run(tasks)`.

use std::time::Instant;

use rtdls_core::prelude::{
    Admission, AdmissionController, AdmissionFailure, AlgorithmKind, ClusterParams, Infeasible,
    PlanConfig, SimTime, SubmitRequest, Task, TaskId, TaskPlan,
};
use rtdls_sim::frontend::{Frontend, SubmitOutcome};

use crate::book::{self, ServiceBook};
use crate::defer::{DeferPolicy, DeferredQueue};
use crate::metrics::ServiceMetrics;
use crate::request::{QuotaPolicy, Verdict};
use crate::reserve::{ActivationRecord, ReservationBook};
use crate::tenant::TenantLedger;

/// The gateway's legacy three-way admission verdict (v1).
///
/// New code should drive [`Gateway::submit_request`] and consume
/// [`Verdict`], which adds the `Reserved` and `Throttled` outcomes; this
/// enum remains as the bridge target (`Verdict → GatewayDecision`) so v1
/// call sites keep compiling. A reservation surfaces here as `Deferred`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GatewayDecision {
    /// Admitted now; the deadline guarantee holds.
    Accepted,
    /// Parked (defer queue or reservation book) under the given ticket id.
    Deferred(u64),
    /// Rejected for good.
    Rejected(Infeasible),
}

impl GatewayDecision {
    /// `true` for [`GatewayDecision::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, GatewayDecision::Accepted)
    }

    /// `true` for [`GatewayDecision::Deferred`].
    pub fn is_deferred(&self) -> bool {
        matches!(self, GatewayDecision::Deferred(_))
    }
}

/// Online admission gateway over one cluster, generic over the admission
/// engine `A` (the reference full-replan controller by default; the
/// incremental diff engine via [`Gateway::with_engine`]).
#[derive(Clone, Debug)]
pub struct Gateway<A: Admission = AdmissionController> {
    ctl: A,
    book: ServiceBook,
}

/// The single-engine [`book::EngineOps`] adapter: the shared decision flow
/// drives the one controller directly.
struct EngineAdapter<'a, A: Admission>(&'a mut A);

impl<A: Admission> book::EngineOps for EngineAdapter<'_, A> {
    fn submit(
        &mut self,
        task: &Task,
        now: SimTime,
    ) -> (rtdls_core::prelude::Decision, Option<u32>) {
        (self.0.submit(*task, now), None)
    }

    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        self.0.earliest_feasible_start(task, now)
    }

    fn explain(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        self.0.explain(request, now)
    }
}

impl Gateway<AdmissionController> {
    /// A gateway over an idle cluster, on the reference full-replan engine.
    pub fn new(
        params: ClusterParams,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        defer_policy: DeferPolicy,
    ) -> Self {
        Gateway::with_engine(params, algorithm, cfg, defer_policy)
    }
}

impl<A: Admission> Gateway<A> {
    /// A gateway over an idle cluster, on the admission engine `A` (e.g.
    /// `Gateway::<IncrementalController>::with_engine(...)`). Quotas are
    /// unlimited by default; see [`Gateway::with_quota`].
    pub fn with_engine(
        params: ClusterParams,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        defer_policy: DeferPolicy,
    ) -> Self {
        Gateway {
            ctl: A::new(params, algorithm, cfg),
            book: ServiceBook::new(defer_policy, QuotaPolicy::default()),
        }
    }

    /// Sets the per-tenant quota policy (builder style).
    pub fn with_quota(mut self, quota: QuotaPolicy) -> Self {
        self.book.quota = quota;
        self
    }

    /// The underlying admission engine.
    pub fn controller(&self) -> &A {
        &self.ctl
    }

    /// Gateway statistics so far.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.book.metrics
    }

    /// Currently parked defer tickets.
    pub fn deferred(&self) -> &DeferredQueue {
        &self.book.defer
    }

    /// Currently booked reservations.
    pub fn reservations(&self) -> &ReservationBook {
        &self.book.reservations
    }

    /// The waiting-task tenant ledger.
    pub fn ledger(&self) -> &TenantLedger {
        &self.book.ledger
    }

    /// The per-tenant quota policy in force.
    pub fn quota(&self) -> &QuotaPolicy {
        &self.book.quota
    }

    /// Verdicts reached for pending (deferred/reserved) tasks but not yet
    /// drained by the engine (`None` = accepted, `Some(cause)` =
    /// rejected). Part of the durable state: a snapshot taken between a
    /// re-test sweep and the engine's drain must not lose these.
    pub fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)] {
        &self.book.resolutions
    }

    /// Drains the reservation-activation audit records accumulated since
    /// the last call (for write-ahead journaling; process-local state,
    /// regenerated on replay).
    pub fn take_activation_log(&mut self) -> Vec<ActivationRecord> {
        self.book.take_activation_log()
    }

    /// Enables or disables parked-task decision observation — the network
    /// edge's subscription channel (see
    /// [`DecisionUpdate`](crate::observe::DecisionUpdate)). Off by default.
    pub fn observe_decisions(&mut self, on: bool) {
        self.book.observe_decisions(on);
    }

    /// Drains the parked-task decision updates recorded since the last
    /// call (empty unless observation is enabled).
    pub fn take_decision_updates(&mut self) -> Vec<crate::observe::DecisionUpdate> {
        self.book.take_updates()
    }

    /// Enables or disables admission explanations on refusal verdicts
    /// (off by default; the edge turns it on).
    pub fn enable_explanations(&mut self, on: bool) {
        self.book.enable_explanations(on);
    }

    /// The deadline-SLO tracker (durable gateway state).
    pub fn slo(&self) -> &crate::slo::SloTracker {
        &self.book.slo
    }

    /// Replaces the SLO tracker — recovery installs the snapshotted
    /// tracker here, and owners use it to set a non-default [`SloPolicy`]
    /// (via `SloTracker::new`).
    ///
    /// [`SloPolicy`]: crate::slo::SloPolicy
    pub fn set_slo(&mut self, slo: crate::slo::SloTracker) {
        self.book.slo = slo;
    }

    /// Drains the SLO-breach audit records cut since the last call (for
    /// write-ahead journaling; process-local, like the activation log).
    pub fn take_breach_log(&mut self) -> Vec<crate::slo::SloBreach> {
        self.book.take_breach_log()
    }

    /// The non-mutating explanation for a request the engine would refuse
    /// right now (`None` when it is feasible as-is) — the `Ops::Explain`
    /// query surface, independent of the per-verdict attachment.
    pub fn explain(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        self.ctl.explain(request, now)
    }

    /// Reassembles a gateway from journaled parts — the recovery-side
    /// counterpart of [`controller`](Gateway::controller) and the
    /// [`ServiceBook`] accessors.
    pub fn from_parts(ctl: A, book: ServiceBook) -> Self {
        Gateway { ctl, book }
    }

    /// Re-verifies every waiting plan against the strict admission test at
    /// time `now`, demoting any no-longer-feasible task to the defer queue
    /// (or rejecting it when even an idle cluster could not make its
    /// deadline any more). Recovery runs this after a snapshot + tail-replay
    /// restore; it is also safe to call at any quiescent point. Returns the
    /// demoted tasks.
    pub fn reverify(&mut self, now: SimTime) -> Vec<Task> {
        let params = *self.ctl.params();
        let algorithm = self.ctl.algorithm();
        book::reverify_controller(&mut self.ctl, &mut self.book, &params, algorithm, now)
    }

    /// Attaches a decision-tracing handle: spans from this gateway's
    /// decision flow land in the handle's shared flight recorder, and
    /// untraced in-process submissions get a trace id minted here.
    pub fn attach_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        self.book.set_telemetry(telemetry.clone());
    }

    /// Attaches a hot-path profiler handle: the admission/plan phase of
    /// every decision starts timing into `gateway/plan`.
    pub fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        self.book.set_profiler(profiler.clone());
    }

    /// Folds this gateway's native stats — service counters, tenant books,
    /// the engine's planning profile, and queue depth — into the unified
    /// registry. The edge's ops channel polls this.
    pub fn fold_metrics(&self, reg: &mut rtdls_telemetry::MetricsRegistry) {
        crate::telemetry::fold_service_metrics(reg, self.metrics());
        crate::telemetry::fold_slo(reg, &self.book.slo);
        if let Some(profile) = self.ctl.profile() {
            crate::telemetry::fold_engine_profile(reg, &profile, None);
        }
        reg.gauge("rtdls_gateway_waiting", &[], self.ctl.queue_len() as f64);
    }

    /// Decides one v2 submission envelope at time `now` — the primary
    /// serving surface. See the module docs for the verdict vocabulary.
    pub fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict {
        let start = Instant::now();
        let params = *self.ctl.params();
        let algorithm = self.ctl.algorithm();
        // In-process callers submit untraced requests; mint the trace id
        // here (the ingress point) when tracing is on. `mint` returns the
        // untraced sentinel 0 when the handle is disabled.
        let mut request = *request;
        if request.trace == 0 {
            request.trace = self.book.telemetry().mint();
        }
        let verdict = book::decide_request(
            &mut self.book,
            &params,
            algorithm,
            &request,
            now,
            &mut EngineAdapter(&mut self.ctl),
        );
        book::record_request(&mut self.book.metrics, start, request.tenant);
        verdict
    }

    /// Decides one streaming submission at time `now` through the legacy
    /// v1 bridge: the default request envelope (anonymous tenant, no
    /// reservation tolerance), verdict narrowed to [`GatewayDecision`].
    pub fn submit(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        self.submit_request(&crate::request::legacy_request(task), now)
            .into()
    }

    /// Decides a whole burst at once. Equivalent to one [`Gateway::submit`]
    /// per task in policy order, but the schedulability test is amortized
    /// into (usually) a single temp-schedule pass — see
    /// [`AdmissionController::submit_batch`]. Batch members travel under
    /// the legacy envelope (anonymous tenant, no reservations).
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        let start = Instant::now();
        let decisions = self.ctl.submit_batch(batch, now);
        let out: Vec<GatewayDecision> = batch
            .iter()
            .zip(decisions)
            .map(|(task, d)| match d {
                rtdls_core::prelude::Decision::Accepted => {
                    book::book_accept(&mut self.book, task.id, Default::default());
                    GatewayDecision::Accepted
                }
                rtdls_core::prelude::Decision::Rejected(cause) => {
                    self.defer_or_reject(*task, now, cause).into()
                }
            })
            .collect();
        self.book.metrics.batch_calls += 1;
        self.book.metrics.batch_tasks += batch.len() as u64;
        book::record_decisions(&mut self.book.metrics, start, batch.len());
        out
    }

    /// Re-tests the defer queue against current capacity. Driven by the
    /// engine after every admission/completion event; may also be called
    /// directly by custom drivers.
    pub fn retest_deferred(&mut self, now: SimTime) {
        let ctl = &mut self.ctl;
        let (departed, retests) = self
            .book
            .defer
            .sweep(now, |task| ctl.submit(*task, now).is_accepted());
        self.book.metrics.retests += retests;
        book::apply_departures(&mut self.book, departed, now);
    }

    /// Activates every reservation whose `start_at` has been reached. The
    /// engine drives this after the dispatches at each instant commit
    /// ([`Frontend::activate`]); custom drivers must uphold the same order.
    pub fn activate_reservations(&mut self, now: SimTime) {
        let params = *self.ctl.params();
        let algorithm = self.ctl.algorithm();
        book::activate_due(
            &mut self.book,
            &params,
            algorithm,
            now,
            &mut EngineAdapter(&mut self.ctl),
        );
    }

    fn defer_or_reject(&mut self, task: Task, now: SimTime, cause: Infeasible) -> Verdict {
        let params = *self.ctl.params();
        book::defer_or_reject(
            &mut self.book,
            &params,
            self.ctl.algorithm(),
            task,
            Default::default(),
            Default::default(),
            now,
            cause,
        )
    }
}

impl<A: Admission> Frontend for Gateway<A> {
    fn submit(&mut self, task: Task, now: SimTime) -> SubmitOutcome {
        match Gateway::submit(self, task, now) {
            GatewayDecision::Accepted => SubmitOutcome::Accepted,
            GatewayDecision::Deferred(_) => SubmitOutcome::Pending,
            GatewayDecision::Rejected(cause) => SubmitOutcome::Rejected(cause),
        }
    }

    fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> SubmitOutcome {
        match Gateway::submit_request(self, request, now) {
            Verdict::Accepted => SubmitOutcome::Accepted,
            Verdict::Reserved { .. } | Verdict::Deferred { .. } => SubmitOutcome::Pending,
            Verdict::Rejected { cause, .. } => SubmitOutcome::Rejected(cause),
            Verdict::Throttled => SubmitOutcome::Rejected(Infeasible::NotEnoughNodes),
        }
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        self.ctl.replan(now)
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        let due = self.ctl.take_due(now);
        self.book.ledger.prune_dispatched(&due);
        due
    }

    fn next_dispatch_due(&self) -> Option<SimTime> {
        self.ctl.next_dispatch_due()
    }

    fn committed_release(&self, node: usize) -> SimTime {
        self.ctl.committed_releases()[node]
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.ctl.set_node_release(node, time);
    }

    fn waiting_len(&self) -> usize {
        self.ctl.queue_len()
    }

    fn find_plan(&self, task: TaskId) -> Option<&TaskPlan> {
        Admission::find_plan(&self.ctl, task)
    }

    fn on_event(&mut self, now: SimTime) {
        self.retest_deferred(now);
    }

    fn activate(&mut self, now: SimTime) {
        self.activate_reservations(now);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.book.reservations.next_activation()
    }

    fn drain_resolutions(&mut self) -> Vec<(Task, Option<Infeasible>)> {
        std::mem::take(&mut self.book.resolutions)
    }

    fn finalize(&mut self, _now: SimTime) {
        book::flush_all(&mut self.book);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::dlt::homogeneous;
    use rtdls_core::prelude::{QosClass, TenantId};

    fn gateway() -> Gateway {
        Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        )
    }

    #[test]
    fn feasible_task_is_accepted() {
        let mut g = gateway();
        let d = g.submit(Task::new(1, 0.0, 200.0, 30_000.0), SimTime::ZERO);
        assert_eq!(d, GatewayDecision::Accepted);
        assert_eq!(g.metrics().accepted_immediate, 1);
        assert_eq!(g.metrics().submitted, 1);
        assert!(g.metrics().decision_latency.count() == 1);
        // The legacy bridge still books the anonymous tenant.
        let t0 = g.metrics().tenants.get(TenantId(0)).unwrap();
        assert_eq!(t0.submitted, 1);
        assert_eq!(t0.accepted, 1);
        assert_eq!(t0.decision_latency.count(), 1);
        assert_eq!(g.ledger().count_for(TenantId(0)), 1);
    }

    #[test]
    fn hopeless_task_is_rejected_not_deferred() {
        let mut g = gateway();
        // Deadline below the transmission time: even an idle cluster fails.
        let d = g.submit(Task::new(1, 0.0, 200.0, 100.0), SimTime::ZERO);
        assert_eq!(
            d,
            GatewayDecision::Rejected(Infeasible::NoTimeForTransmission)
        );
        assert_eq!(g.metrics().deferred, 0);
        assert!(g.deferred().is_empty());
    }

    #[test]
    fn near_miss_task_is_deferred_then_rescued() {
        let p = ClusterParams::paper_baseline();
        let mut g = gateway();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        // Saturate the cluster with a task that holds every node until e16…
        assert!(g
            .submit(Task::new(1, 0.0, 800.0, e16 * 1.05), SimTime::ZERO)
            .is_accepted());
        // …then offer a task that cannot finish behind it (queued completion
        // ≈ 2·e16 > 1.5·e16) but would fit an idle cluster with slack.
        let near_miss = Task::new(2, 0.0, 800.0, e16 * 1.5);
        let d = g.submit(near_miss, SimTime::ZERO);
        assert!(d.is_deferred(), "expected Deferred, got {d:?}");
        assert_eq!(g.metrics().deferred, 1);
        // Dispatch the blocker, then let its nodes come back *earlier* than
        // the committed estimate (the slack conservative release estimates
        // produce); the re-test sweep must rescue the parked task.
        Frontend::take_due(&mut g, SimTime::ZERO);
        let early = SimTime::new(e16 * 0.3);
        for node in 0..16 {
            Frontend::set_node_release(&mut g, node, early);
        }
        g.retest_deferred(early);
        assert_eq!(g.metrics().rescued, 1);
        assert!(g.deferred().is_empty());
        let resolutions = Frontend::drain_resolutions(&mut g);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].0.id, near_miss.id);
        assert!(resolutions[0].1.is_none(), "rescued = accepted resolution");
        assert!((g.metrics().defer_rescue_rate() - 1.0).abs() < 1e-12);
        // The rescued plan carries the usual deadline guarantee.
        let (_, plan) = &g.controller().queue()[0];
        assert!(!plan
            .est_completion
            .definitely_after(near_miss.absolute_deadline()));
    }

    /// The canonical reservation scenario: an EDF-early small task starves
    /// a waiting all-node OPR task (rejected now), but becomes admissible
    /// the instant that task dispatches — the priority inversion the
    /// "accept at t₀+δ" verdict resolves. Returns the gateway (all 16
    /// nodes committed to `t=1000`, the big task waiting with
    /// `first_start = 1000`) and the small candidate.
    fn reservation_scenario() -> (Gateway, Task, SimTime) {
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        let e15 = homogeneous::exec_time(&p, 800.0, 15);
        // Slacks: the waiting task's slack is below the 15-node penalty (so
        // it needs all 16 nodes), and the candidate's slack accommodates a
        // full-cluster run of its small load but not a 1-node run.
        let slack_w = (e15 - e16) * 0.75;
        let slack_c = slack_w * 0.8;
        assert!(homogeneous::exec_time(&p, 10.0, 16) < slack_c);
        let mut g = Gateway::new(
            p,
            AlgorithmKind::EDF_OPR_MN,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let avail = SimTime::new(1000.0);
        for node in 0..16 {
            Frontend::set_node_release(&mut g, node, avail);
        }
        let w = Task::new(1, 0.0, 800.0, 1000.0 + e16 + slack_w);
        assert!(g.submit(w, SimTime::ZERO).is_accepted());
        assert_eq!(g.controller().queue()[0].1.first_start(), avail);
        let c = Task::new(2, 0.0, 10.0, 1000.0 + e16 + slack_c);
        // Sanity: the plain submission is rejected (c would be planned
        // before w under EDF and starve it).
        assert!(!g.clone().submit(c, SimTime::ZERO).is_accepted());
        (g, c, avail)
    }

    #[test]
    fn reservation_is_booked_and_activates_on_time() {
        let (mut g, c, avail) = reservation_scenario();
        let req = SubmitRequest::new(c)
            .with_tenant(TenantId(7))
            .with_max_delay(Some(2000.0));
        let verdict = g.submit_request(&req, SimTime::ZERO);
        let Verdict::Reserved { start_at, ticket } = verdict else {
            panic!("expected Reserved, got {verdict:?}");
        };
        assert_eq!(ticket, 0);
        assert_eq!(start_at, avail, "earliest start = the blocker's dispatch");
        assert_eq!(g.reservations().len(), 1);
        assert_eq!(g.metrics().reserved, 1);
        assert_eq!(Frontend::next_wakeup(&g), Some(start_at));
        // Honesty: dispatch the blocker, then activating exactly at
        // start_at admits the task.
        let due = Frontend::take_due(&mut g, start_at);
        assert_eq!(due.len(), 1, "the waiting blocker dispatches");
        g.activate_reservations(start_at);
        assert_eq!(g.metrics().reservations_activated, 1);
        assert!(g.reservations().is_empty());
        assert_eq!(Frontend::next_wakeup(&g), None);
        let resolutions = Frontend::drain_resolutions(&mut g);
        assert_eq!(resolutions.len(), 1);
        assert!(resolutions[0].1.is_none(), "activated = accepted");
        let log = g.take_activation_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].admitted);
        assert_eq!(log[0].ticket, 0);
        // Tenant books the accept; the admitted plan holds the guarantee.
        assert_eq!(g.metrics().tenants.get(TenantId(7)).unwrap().accepted, 1);
        assert_eq!(g.metrics().accepted_total(), 2);
        let (_, plan) = &g.controller().queue()[0];
        assert!(!plan.est_completion.definitely_after(c.absolute_deadline()));
    }

    #[test]
    fn decision_updates_stream_parked_task_fates_only_while_observed() {
        use crate::observe::DecisionUpdate;
        // Activation path: a booked reservation's activation is pushed.
        let (mut g, c, _) = reservation_scenario();
        g.observe_decisions(true);
        let req = SubmitRequest::new(c).with_max_delay(Some(2000.0));
        let Verdict::Reserved { start_at, ticket } = g.submit_request(&req, SimTime::ZERO) else {
            panic!("expected Reserved");
        };
        Frontend::take_due(&mut g, start_at);
        g.activate_reservations(start_at);
        let updates = g.take_decision_updates();
        assert_eq!(
            updates,
            vec![DecisionUpdate::Activated {
                ticket,
                task: c.id.0,
                at: start_at,
                admitted: true,
            }]
        );
        assert!(updates[0].is_terminal());
        assert!(g.take_decision_updates().is_empty(), "channel drains");
        // Rescue path: a defer ticket's departure is pushed.
        let p = ClusterParams::paper_baseline();
        let mut g = gateway();
        g.observe_decisions(true);
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        assert!(g
            .submit(Task::new(1, 0.0, 800.0, e16 * 1.05), SimTime::ZERO)
            .is_accepted());
        let near_miss = Task::new(2, 0.0, 800.0, e16 * 1.5);
        let GatewayDecision::Deferred(ticket) = g.submit(near_miss, SimTime::ZERO) else {
            panic!("expected Deferred");
        };
        Frontend::take_due(&mut g, SimTime::ZERO);
        let early = SimTime::new(e16 * 0.3);
        for node in 0..16 {
            Frontend::set_node_release(&mut g, node, early);
        }
        g.retest_deferred(early);
        let updates = g.take_decision_updates();
        assert_eq!(
            updates,
            vec![DecisionUpdate::Resolved {
                task: near_miss.id.0,
                ticket: Some(ticket),
                admitted: true,
                cause: None,
            }]
        );
        // Observation off (the default): nothing accumulates.
        let (mut g, c, _) = reservation_scenario();
        let req = SubmitRequest::new(c).with_max_delay(Some(2000.0));
        assert!(g.submit_request(&req, SimTime::ZERO).is_reserved());
        Frontend::take_due(&mut g, SimTime::new(1000.0));
        g.activate_reservations(SimTime::new(1000.0));
        assert!(g.take_decision_updates().is_empty());
    }

    #[test]
    fn reservation_beyond_tolerance_falls_back_to_defer() {
        let (mut g, c, _) = reservation_scenario();
        // The earliest feasible start is t=1000; a tolerance of 500 cannot
        // reach it: no reservation, ordinary defer-or-reject.
        let req = SubmitRequest::new(c).with_max_delay(Some(500.0));
        let verdict = g.submit_request(&req, SimTime::ZERO);
        assert!(!verdict.is_reserved(), "got {verdict:?}");
        assert_eq!(g.metrics().reserved, 0);
    }

    #[test]
    fn tenant_quota_throttles_before_the_admission_test() {
        let mut g = gateway().with_quota(QuotaPolicy {
            max_inflight: Some(2),
            ..Default::default()
        });
        let mk =
            |id: u64| SubmitRequest::new(Task::new(id, 0.0, 50.0, 1e6)).with_tenant(TenantId(1));
        assert!(g.submit_request(&mk(1), SimTime::ZERO).is_accepted());
        assert!(g.submit_request(&mk(2), SimTime::ZERO).is_accepted());
        let v = g.submit_request(&mk(3), SimTime::ZERO);
        assert_eq!(v, Verdict::Throttled);
        assert_eq!(g.metrics().throttled, 1);
        assert_eq!(g.metrics().tenants.get(TenantId(1)).unwrap().throttled, 1);
        // Another tenant is unaffected…
        let other = SubmitRequest::new(Task::new(4, 0.0, 50.0, 1e6)).with_tenant(TenantId(2));
        assert!(g.submit_request(&other, SimTime::ZERO).is_accepted());
        // …and a premium request from the throttled tenant bypasses quota.
        let premium = mk(5).with_qos(QosClass::Premium);
        assert!(g.submit_request(&premium, SimTime::ZERO).is_accepted());
        // Dispatch frees the liability: the tenant can submit again.
        Frontend::take_due(&mut g, SimTime::ZERO);
        assert_eq!(g.ledger().count_for(TenantId(1)), 0);
        assert!(g.submit_request(&mk(6), SimTime::ZERO).is_accepted());
        // Books balance: accepted + rejected = submitted.
        let m = g.metrics();
        assert_eq!(m.accepted_total() + m.rejected_total(), m.submitted);
    }

    #[test]
    fn incremental_engine_gateway_mirrors_full_engine_gateway() {
        use rtdls_core::prelude::IncrementalController;
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        let mut full = gateway();
        let mut inc = Gateway::<IncrementalController>::with_engine(
            p,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        // Accept, defer, reject — all three verdicts must coincide, and so
        // must the controller books underneath.
        let stream = [
            Task::new(1, 0.0, 800.0, e16 * 1.05),
            Task::new(2, 0.0, 800.0, e16 * 1.5), // deferred
            Task::new(3, 0.0, 200.0, 100.0),     // hopeless
            Task::new(4, 1.0, 100.0, e16 * 40.0),
        ];
        for t in &stream {
            let a = full.submit(*t, t.arrival);
            let b = inc.submit(*t, t.arrival);
            assert_eq!(a, b, "{t:?}");
        }
        assert_eq!(full.controller().state(), inc.controller().state());
        assert_eq!(full.metrics().deferred, inc.metrics().deferred);
        // The defer re-test sweep rescues identically after early releases.
        Frontend::take_due(&mut full, SimTime::new(1.0));
        Frontend::take_due(&mut inc, SimTime::new(1.0));
        let early = SimTime::new(e16 * 0.3);
        for node in 0..16 {
            Frontend::set_node_release(&mut full, node, early);
            Frontend::set_node_release(&mut inc, node, early);
        }
        full.retest_deferred(early);
        inc.retest_deferred(early);
        assert_eq!(full.metrics().rescued, inc.metrics().rescued);
        assert_eq!(full.controller().state(), inc.controller().state());
        // And reservations book identically on both engines.
        let probe =
            SubmitRequest::new(Task::new(9, 1.0, 800.0, e16 * 3.0)).with_max_delay(Some(e16 * 4.0));
        let va = full.submit_request(&probe, SimTime::new(1.0));
        let vb = inc.submit_request(&probe, SimTime::new(1.0));
        assert_eq!(va, vb);
    }

    #[test]
    fn batch_matches_sequential_semantics() {
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let burst: Vec<Task> = (0..12)
            .map(|i| Task::new(i, 0.0, 400.0, e16 * (2.0 + (i % 5) as f64)))
            .collect();
        let mut batched = gateway();
        let batch_decisions = batched.submit_batch(&burst, SimTime::ZERO);
        let mut sequential = gateway();
        // Sequential submission must follow policy order for equivalence.
        let mut ordered = burst.clone();
        ordered.sort_by(|a, b| {
            a.absolute_deadline()
                .cmp(&b.absolute_deadline())
                .then(a.id.cmp(&b.id))
        });
        for t in &ordered {
            sequential.submit(*t, SimTime::ZERO);
        }
        let seq_accepted: Vec<u64> = sequential
            .controller()
            .queue()
            .iter()
            .map(|(t, _)| t.id.0)
            .collect();
        let batch_accepted: Vec<u64> = batched
            .controller()
            .queue()
            .iter()
            .map(|(t, _)| t.id.0)
            .collect();
        assert_eq!(seq_accepted, batch_accepted, "same queue either way");
        assert_eq!(
            batch_decisions.iter().filter(|d| d.is_accepted()).count(),
            batch_accepted.len()
        );
        assert_eq!(batched.metrics().batch_calls, 1);
        assert_eq!(batched.metrics().batch_tasks, 12);
        // Both paths track the waiting liabilities in the ledger.
        assert_eq!(batched.ledger().len(), batch_accepted.len());
    }

    #[test]
    fn finalize_flushes_remaining_tickets_and_reservations_as_rejections() {
        let (mut g, c, _) = reservation_scenario();
        // A near-miss without a tolerance parks in the defer queue…
        assert!(g.submit(c, SimTime::ZERO).is_deferred());
        // …and the same shape with one books a reservation.
        let c2 = Task::new(3, 0.0, c.data_size, c.rel_deadline);
        let req = SubmitRequest::new(c2).with_max_delay(Some(2000.0));
        assert!(g.submit_request(&req, SimTime::ZERO).is_reserved());
        // The stream ends before either resolves.
        Frontend::finalize(&mut g, SimTime::ZERO);
        let resolutions = Frontend::drain_resolutions(&mut g);
        assert_eq!(resolutions.len(), 2);
        assert!(
            resolutions.iter().all(|(_, cause)| cause.is_some()),
            "flushed = rejected resolution"
        );
        assert_eq!(g.metrics().defer_flushed, 1);
        assert_eq!(g.metrics().reservations_flushed, 1);
        assert!(g.reservations().is_empty());
        assert_eq!(
            g.metrics().accepted_total() + g.metrics().rejected_total(),
            g.metrics().submitted
        );
    }
}
