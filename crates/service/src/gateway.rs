//! The single-cluster online admission gateway.
//!
//! [`Gateway`] wraps one [`AdmissionController`] and turns its binary
//! Accept/Reject into the three-way serving protocol:
//!
//! * **Accept** — the Fig. 2 test passed; the task joins the waiting queue
//!   with its full deadline guarantee.
//! * **Defer** — the test failed, but only for lack of *current* capacity
//!   (an idle cluster would still make the deadline, with slack): the task
//!   parks in a [`DeferredQueue`] and is re-tested on every
//!   admission/completion event.
//! * **Reject** — the test failed and no later start could succeed.
//!
//! A batched path ([`Gateway::submit_batch`]) amortizes the schedulability
//! test across a burst via [`AdmissionController::submit_batch`], and
//! [`ServiceMetrics`] tracks throughput, defer-rescue rate, and
//! per-decision latency histograms.
//!
//! The gateway implements the simulator's [`Frontend`] trait, so a
//! discrete-event run can route every arrival through it:
//! `Simulation::with_frontend(cfg, gateway).run(tasks)`.

use std::time::Instant;

use rtdls_core::prelude::{
    Admission, AdmissionController, AdmissionFailure, AlgorithmKind, ClusterParams, Decision,
    Infeasible, PlanConfig, SimTime, Task, TaskId, TaskPlan,
};
use rtdls_sim::frontend::{Frontend, SubmitOutcome};

use crate::book;
use crate::defer::{DeferPolicy, DeferredQueue};
use crate::metrics::ServiceMetrics;

/// The gateway's three-way admission verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GatewayDecision {
    /// Admitted now; the deadline guarantee holds.
    Accepted,
    /// Parked in the defer queue under the given ticket id.
    Deferred(u64),
    /// Rejected for good.
    Rejected(Infeasible),
}

impl GatewayDecision {
    /// `true` for [`GatewayDecision::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, GatewayDecision::Accepted)
    }

    /// `true` for [`GatewayDecision::Deferred`].
    pub fn is_deferred(&self) -> bool {
        matches!(self, GatewayDecision::Deferred(_))
    }
}

/// Online admission gateway over one cluster, generic over the admission
/// engine `A` (the reference full-replan controller by default; the
/// incremental diff engine via [`Gateway::with_engine`]).
#[derive(Clone, Debug)]
pub struct Gateway<A: Admission = AdmissionController> {
    ctl: A,
    defer: DeferredQueue,
    metrics: ServiceMetrics,
    /// Verdicts reached for deferred tasks since the last drain.
    resolutions: Vec<(Task, Option<Infeasible>)>,
}

impl Gateway<AdmissionController> {
    /// A gateway over an idle cluster, on the reference full-replan engine.
    pub fn new(
        params: ClusterParams,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        defer_policy: DeferPolicy,
    ) -> Self {
        Gateway::with_engine(params, algorithm, cfg, defer_policy)
    }
}

impl<A: Admission> Gateway<A> {
    /// A gateway over an idle cluster, on the admission engine `A` (e.g.
    /// `Gateway::<IncrementalController>::with_engine(...)`).
    pub fn with_engine(
        params: ClusterParams,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        defer_policy: DeferPolicy,
    ) -> Self {
        Gateway {
            ctl: A::new(params, algorithm, cfg),
            defer: DeferredQueue::new(defer_policy),
            metrics: ServiceMetrics::new(),
            resolutions: Vec::new(),
        }
    }

    /// The underlying admission engine.
    pub fn controller(&self) -> &A {
        &self.ctl
    }

    /// Gateway statistics so far.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Currently parked defer tickets.
    pub fn deferred(&self) -> &DeferredQueue {
        &self.defer
    }

    /// Verdicts reached for deferred tasks but not yet drained by the engine
    /// (`None` = accepted, `Some(cause)` = rejected). Part of the durable
    /// state: a snapshot taken between a re-test sweep and the engine's
    /// drain must not lose these.
    pub fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)] {
        &self.resolutions
    }

    /// Reassembles a gateway from journaled parts — the recovery-side
    /// counterpart of [`controller`](Gateway::controller),
    /// [`deferred`](Gateway::deferred), [`metrics`](Gateway::metrics), and
    /// [`pending_resolutions`](Gateway::pending_resolutions).
    pub fn from_parts(
        ctl: A,
        defer: DeferredQueue,
        metrics: ServiceMetrics,
        resolutions: Vec<(Task, Option<Infeasible>)>,
    ) -> Self {
        Gateway {
            ctl,
            defer,
            metrics,
            resolutions,
        }
    }

    /// Re-verifies every waiting plan against the strict admission test at
    /// time `now`, demoting any no-longer-feasible task to the defer queue
    /// (or rejecting it when even an idle cluster could not make its
    /// deadline any more). Recovery runs this after a snapshot + tail-replay
    /// restore; it is also safe to call at any quiescent point. Returns the
    /// demoted tasks.
    pub fn reverify(&mut self, now: SimTime) -> Vec<Task> {
        let params = *self.ctl.params();
        let algorithm = self.ctl.algorithm();
        book::reverify_controller(
            &mut self.ctl,
            &mut self.defer,
            &mut self.metrics,
            &params,
            algorithm,
            now,
        )
    }

    /// Decides one streaming submission at time `now`.
    pub fn submit(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        let start = Instant::now();
        let decision = match self.ctl.submit(task, now) {
            Decision::Accepted => {
                self.metrics.accepted_immediate += 1;
                GatewayDecision::Accepted
            }
            Decision::Rejected(cause) => self.defer_or_reject(task, now, cause),
        };
        book::record_decisions(&mut self.metrics, start, 1);
        decision
    }

    /// Decides a whole burst at once. Equivalent to one [`Gateway::submit`]
    /// per task in policy order, but the schedulability test is amortized
    /// into (usually) a single temp-schedule pass — see
    /// [`AdmissionController::submit_batch`].
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        let start = Instant::now();
        let decisions = self.ctl.submit_batch(batch, now);
        let out: Vec<GatewayDecision> = batch
            .iter()
            .zip(decisions)
            .map(|(task, d)| match d {
                Decision::Accepted => {
                    self.metrics.accepted_immediate += 1;
                    GatewayDecision::Accepted
                }
                Decision::Rejected(cause) => self.defer_or_reject(*task, now, cause),
            })
            .collect();
        self.metrics.batch_calls += 1;
        self.metrics.batch_tasks += batch.len() as u64;
        book::record_decisions(&mut self.metrics, start, batch.len());
        out
    }

    /// Re-tests the defer queue against current capacity. Driven by the
    /// engine after every admission/completion event; may also be called
    /// directly by custom drivers.
    pub fn retest_deferred(&mut self, now: SimTime) {
        let ctl = &mut self.ctl;
        let (departed, retests) = self
            .defer
            .sweep(now, |task| ctl.submit(*task, now).is_accepted());
        self.metrics.retests += retests;
        book::apply_departures(departed, &mut self.metrics, &mut self.resolutions);
    }

    fn defer_or_reject(&mut self, task: Task, now: SimTime, cause: Infeasible) -> GatewayDecision {
        let params = *self.ctl.params();
        book::defer_or_reject(
            &mut self.defer,
            &mut self.metrics,
            &params,
            self.ctl.algorithm(),
            task,
            now,
            cause,
        )
    }
}

impl<A: Admission> Frontend for Gateway<A> {
    fn submit(&mut self, task: Task, now: SimTime) -> SubmitOutcome {
        match Gateway::submit(self, task, now) {
            GatewayDecision::Accepted => SubmitOutcome::Accepted,
            GatewayDecision::Deferred(_) => SubmitOutcome::Pending,
            GatewayDecision::Rejected(cause) => SubmitOutcome::Rejected(cause),
        }
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        self.ctl.replan(now)
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        self.ctl.take_due(now)
    }

    fn next_dispatch_due(&self) -> Option<SimTime> {
        self.ctl.next_dispatch_due()
    }

    fn committed_release(&self, node: usize) -> SimTime {
        self.ctl.committed_releases()[node]
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.ctl.set_node_release(node, time);
    }

    fn waiting_len(&self) -> usize {
        self.ctl.queue_len()
    }

    fn find_plan(&self, task: TaskId) -> Option<&TaskPlan> {
        Admission::find_plan(&self.ctl, task)
    }

    fn on_event(&mut self, now: SimTime) {
        self.retest_deferred(now);
    }

    fn drain_resolutions(&mut self) -> Vec<(Task, Option<Infeasible>)> {
        std::mem::take(&mut self.resolutions)
    }

    fn finalize(&mut self, _now: SimTime) {
        book::flush_all(&mut self.defer, &mut self.metrics, &mut self.resolutions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::dlt::homogeneous;

    fn gateway() -> Gateway {
        Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        )
    }

    #[test]
    fn feasible_task_is_accepted() {
        let mut g = gateway();
        let d = g.submit(Task::new(1, 0.0, 200.0, 30_000.0), SimTime::ZERO);
        assert_eq!(d, GatewayDecision::Accepted);
        assert_eq!(g.metrics().accepted_immediate, 1);
        assert_eq!(g.metrics().submitted, 1);
        assert!(g.metrics().decision_latency.count() == 1);
    }

    #[test]
    fn hopeless_task_is_rejected_not_deferred() {
        let mut g = gateway();
        // Deadline below the transmission time: even an idle cluster fails.
        let d = g.submit(Task::new(1, 0.0, 200.0, 100.0), SimTime::ZERO);
        assert_eq!(
            d,
            GatewayDecision::Rejected(Infeasible::NoTimeForTransmission)
        );
        assert_eq!(g.metrics().deferred, 0);
        assert!(g.deferred().is_empty());
    }

    #[test]
    fn near_miss_task_is_deferred_then_rescued() {
        let p = ClusterParams::paper_baseline();
        let mut g = gateway();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        // Saturate the cluster with a task that holds every node until e16…
        assert!(g
            .submit(Task::new(1, 0.0, 800.0, e16 * 1.05), SimTime::ZERO)
            .is_accepted());
        // …then offer a task that cannot finish behind it (queued completion
        // ≈ 2·e16 > 1.5·e16) but would fit an idle cluster with slack.
        let near_miss = Task::new(2, 0.0, 800.0, e16 * 1.5);
        let d = g.submit(near_miss, SimTime::ZERO);
        assert!(d.is_deferred(), "expected Deferred, got {d:?}");
        assert_eq!(g.metrics().deferred, 1);
        // Dispatch the blocker, then let its nodes come back *earlier* than
        // the committed estimate (the slack conservative release estimates
        // produce); the re-test sweep must rescue the parked task.
        Frontend::take_due(&mut g, SimTime::ZERO);
        let early = SimTime::new(e16 * 0.3);
        for node in 0..16 {
            Frontend::set_node_release(&mut g, node, early);
        }
        g.retest_deferred(early);
        assert_eq!(g.metrics().rescued, 1);
        assert!(g.deferred().is_empty());
        let resolutions = Frontend::drain_resolutions(&mut g);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].0.id, near_miss.id);
        assert!(resolutions[0].1.is_none(), "rescued = accepted resolution");
        assert!((g.metrics().defer_rescue_rate() - 1.0).abs() < 1e-12);
        // The rescued plan carries the usual deadline guarantee.
        let (_, plan) = &g.controller().queue()[0];
        assert!(!plan
            .est_completion
            .definitely_after(near_miss.absolute_deadline()));
    }

    #[test]
    fn incremental_engine_gateway_mirrors_full_engine_gateway() {
        use rtdls_core::prelude::IncrementalController;
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        let mut full = gateway();
        let mut inc = Gateway::<IncrementalController>::with_engine(
            p,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        // Accept, defer, reject — all three verdicts must coincide, and so
        // must the controller books underneath.
        let stream = [
            Task::new(1, 0.0, 800.0, e16 * 1.05),
            Task::new(2, 0.0, 800.0, e16 * 1.5), // deferred
            Task::new(3, 0.0, 200.0, 100.0),     // hopeless
            Task::new(4, 1.0, 100.0, e16 * 40.0),
        ];
        for t in &stream {
            let a = full.submit(*t, t.arrival);
            let b = inc.submit(*t, t.arrival);
            assert_eq!(a, b, "{t:?}");
        }
        assert_eq!(full.controller().state(), inc.controller().state());
        assert_eq!(full.metrics().deferred, inc.metrics().deferred);
        // The defer re-test sweep rescues identically after early releases.
        Frontend::take_due(&mut full, SimTime::new(1.0));
        Frontend::take_due(&mut inc, SimTime::new(1.0));
        let early = SimTime::new(e16 * 0.3);
        for node in 0..16 {
            Frontend::set_node_release(&mut full, node, early);
            Frontend::set_node_release(&mut inc, node, early);
        }
        full.retest_deferred(early);
        inc.retest_deferred(early);
        assert_eq!(full.metrics().rescued, inc.metrics().rescued);
        assert_eq!(full.controller().state(), inc.controller().state());
    }

    #[test]
    fn batch_matches_sequential_semantics() {
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let burst: Vec<Task> = (0..12)
            .map(|i| Task::new(i, 0.0, 400.0, e16 * (2.0 + (i % 5) as f64)))
            .collect();
        let mut batched = gateway();
        let batch_decisions = batched.submit_batch(&burst, SimTime::ZERO);
        let mut sequential = gateway();
        // Sequential submission must follow policy order for equivalence.
        let mut ordered = burst.clone();
        ordered.sort_by(|a, b| {
            a.absolute_deadline()
                .cmp(&b.absolute_deadline())
                .then(a.id.cmp(&b.id))
        });
        for t in &ordered {
            sequential.submit(*t, SimTime::ZERO);
        }
        let seq_accepted: Vec<u64> = sequential
            .controller()
            .queue()
            .iter()
            .map(|(t, _)| t.id.0)
            .collect();
        let batch_accepted: Vec<u64> = batched
            .controller()
            .queue()
            .iter()
            .map(|(t, _)| t.id.0)
            .collect();
        assert_eq!(seq_accepted, batch_accepted, "same queue either way");
        assert_eq!(
            batch_decisions.iter().filter(|d| d.is_accepted()).count(),
            batch_accepted.len()
        );
        assert_eq!(batched.metrics().batch_calls, 1);
        assert_eq!(batched.metrics().batch_tasks, 12);
    }

    #[test]
    fn finalize_flushes_remaining_tickets_as_rejections() {
        let p = ClusterParams::paper_baseline();
        let mut g = gateway();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        assert!(g
            .submit(Task::new(1, 0.0, 800.0, e16 * 1.05), SimTime::ZERO)
            .is_accepted());
        assert!(g
            .submit(Task::new(2, 0.0, 800.0, e16 * 1.5), SimTime::ZERO)
            .is_deferred());
        Frontend::finalize(&mut g, SimTime::ZERO);
        let resolutions = Frontend::drain_resolutions(&mut g);
        assert_eq!(resolutions.len(), 1);
        assert!(resolutions[0].1.is_some(), "flushed = rejected resolution");
        assert_eq!(g.metrics().defer_flushed, 1);
        assert_eq!(
            g.metrics().accepted_total() + g.metrics().rejected_total(),
            g.metrics().submitted
        );
    }
}
