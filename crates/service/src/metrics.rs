//! Gateway observability: decision counters, defer-queue accounting, and
//! per-decision latency histograms — plus the serializable
//! [`MetricsSnapshot`] a journal persists so a recovered gateway keeps its
//! cumulative counters and histograms instead of resetting to zero.

use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Infeasible, TenantId};

/// A log₂-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` ns; quantiles are read off
/// the bucket boundaries (≤ 2× resolution error, plenty for admission-path
/// latencies that span orders of magnitude).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.leading_zeros()).saturating_sub(1).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The occupied buckets as `(upper_bound_ns, count)` pairs, bounds
    /// ascending — the exposition shape the telemetry registry ingests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << (i + 1).min(63), n))
            .collect()
    }

    /// Sum of all recorded samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.min(u64::MAX as u128) as u64
    }

    /// Upper bucket bound (ns) below which `q` of the samples fall
    /// (`q ∈ [0, 1]`; 0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }
}

// Hand-written serde: the in-repo derive stand-in has no fixed-size-array
// support, so the 64 buckets travel as a sequence. Trailing zero buckets are
// dropped on the way out to keep snapshots small.
impl Serialize for LatencyHistogram {
    fn to_value(&self) -> serde::Value {
        let used = 64 - self.buckets.iter().rev().take_while(|&&b| b == 0).count();
        serde::Value::Map(vec![
            (
                "buckets".to_string(),
                self.buckets[..used].to_vec().to_value(),
            ),
            ("count".to_string(), self.count.to_value()),
            (
                "sum_ns".to_string(),
                (self.sum_ns.min(u64::MAX as u128) as u64).to_value(),
            ),
            ("max_ns".to_string(), self.max_ns.to_value()),
        ])
    }
}

impl Deserialize for LatencyHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let flat: Vec<u64> = serde::helpers::field(v, "buckets")?;
        if flat.len() > 64 {
            return Err(serde::Error::msg("histogram has more than 64 buckets"));
        }
        let mut buckets = [0u64; 64];
        buckets[..flat.len()].copy_from_slice(&flat);
        Ok(LatencyHistogram {
            buckets,
            count: serde::helpers::field(v, "count")?,
            sum_ns: serde::helpers::field::<u64>(v, "sum_ns")? as u128,
            max_ns: serde::helpers::field(v, "max_ns")?,
        })
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs p50≤{:.1}µs p90≤{:.1}µs p99≤{:.1}µs max={:.1}µs",
            self.count,
            self.mean_ns() / 1e3,
            self.quantile_ns(0.50) as f64 / 1e3,
            self.quantile_ns(0.90) as f64 / 1e3,
            self.quantile_ns(0.99) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

/// Cumulative per-tenant decision counters plus the tenant's own decision
/// latency histogram. Lives inside [`TenantMetrics`], keyed by tenant id.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Requests submitted by this tenant.
    pub submitted: u64,
    /// Requests admitted (immediately, by rescue, or by reservation
    /// activation).
    pub accepted: u64,
    /// Reservations booked for this tenant.
    pub reserved: u64,
    /// Requests parked in the defer queue.
    pub deferred: u64,
    /// Requests finally rejected (immediately or after deferral /
    /// reservation fallback, including recovery demotions past hope).
    pub rejected: u64,
    /// Requests refused over quota.
    pub throttled: u64,
    /// Previously accepted requests demoted back out of the waiting queue
    /// by a recovery re-verification (each re-enters as a deferral or a
    /// rejection — net admitted = `accepted − demoted`, mirroring
    /// [`MetricsSnapshot::accepted_total`]).
    pub demoted: u64,
    /// Wall-clock latency of this tenant's admission decisions.
    pub decision_latency: LatencyHistogram,
}

impl TenantCounters {
    /// Net admitted count: gross accepts minus recovery demotions — the
    /// tenant-level counterpart of [`MetricsSnapshot::accepted_total`].
    pub fn accepted_net(&self) -> u64 {
        self.accepted.saturating_sub(self.demoted)
    }
}

/// Tenant-keyed decision metrics: one [`TenantCounters`] per tenant that
/// has ever submitted, id-sorted so equal books serialize identically and
/// both admission engines produce byte-identical snapshots.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// `(tenant id, counters)` pairs, sorted by tenant id.
    entries: Vec<(u32, TenantCounters)>,
}

impl TenantMetrics {
    /// Number of tenants observed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no tenant has submitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters of one tenant, if it ever submitted.
    pub fn get(&self, tenant: TenantId) -> Option<&TenantCounters> {
        self.entries
            .iter()
            .find(|(id, _)| *id == tenant.0)
            .map(|(_, c)| c)
    }

    /// The counters of one tenant, created zeroed on first touch.
    pub fn counters_mut(&mut self, tenant: TenantId) -> &mut TenantCounters {
        let pos = self.entries.partition_point(|(id, _)| *id < tenant.0);
        if self.entries.get(pos).is_none_or(|(id, _)| *id != tenant.0) {
            self.entries
                .insert(pos, (tenant.0, TenantCounters::default()));
        }
        &mut self.entries[pos].1
    }

    /// Iterates `(tenant, counters)` in tenant-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &TenantCounters)> {
        self.entries.iter().map(|(id, c)| (TenantId(*id), c))
    }

    /// The metrics with every per-tenant latency histogram cleared.
    /// Latencies measure real elapsed time and differ between a live run
    /// and its replay; everything else is deterministic (see
    /// `GatewaySnapshot::normalized` in `rtdls-journal`).
    pub fn normalized(mut self) -> Self {
        for (_, counters) in &mut self.entries {
            counters.decision_latency = LatencyHistogram::default();
        }
        self
    }
}

/// Rejection counts broken down by [`Infeasible`] cause — one named field
/// per variant so the breakdown is durable, diffable, and folds into the
/// registry as a labeled counter family (`rtdls_gateway_rejections{cause=…}`).
///
/// Counts every `Verdict::Rejected` construction (submission-time
/// rejections, defer/reservation fallbacks, and recovery demotions past
/// hope), so the per-cause sum can exceed `rejected_immediate` alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionCauses {
    /// `Infeasible::DeadlineBeforeStart` rejections.
    pub deadline_before_start: u64,
    /// `Infeasible::NoTimeForTransmission` rejections.
    pub no_time_for_transmission: u64,
    /// `Infeasible::NotEnoughNodes` rejections.
    pub not_enough_nodes: u64,
    /// `Infeasible::UserRequestInfeasible` rejections.
    pub user_request_infeasible: u64,
    /// `Infeasible::CompletionAfterDeadline` rejections.
    pub completion_after_deadline: u64,
}

impl RejectionCauses {
    /// Books one rejection under its cause.
    pub fn record(&mut self, cause: Infeasible) {
        *self.slot(cause) += 1;
    }

    /// The count for one cause.
    pub fn get(&self, cause: Infeasible) -> u64 {
        match cause {
            Infeasible::DeadlineBeforeStart => self.deadline_before_start,
            Infeasible::NoTimeForTransmission => self.no_time_for_transmission,
            Infeasible::NotEnoughNodes => self.not_enough_nodes,
            Infeasible::UserRequestInfeasible => self.user_request_infeasible,
            Infeasible::CompletionAfterDeadline => self.completion_after_deadline,
        }
    }

    /// All rejections across causes.
    pub fn total(&self) -> u64 {
        self.deadline_before_start
            + self.no_time_for_transmission
            + self.not_enough_nodes
            + self.user_request_infeasible
            + self.completion_after_deadline
    }

    /// `(label, count)` pairs in declaration order — the exposition shape
    /// (labels match the registry's `cause` label values).
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("deadline_before_start", self.deadline_before_start),
            ("no_time_for_transmission", self.no_time_for_transmission),
            ("not_enough_nodes", self.not_enough_nodes),
            ("user_request_infeasible", self.user_request_infeasible),
            ("completion_after_deadline", self.completion_after_deadline),
        ]
    }

    fn slot(&mut self, cause: Infeasible) -> &mut u64 {
        match cause {
            Infeasible::DeadlineBeforeStart => &mut self.deadline_before_start,
            Infeasible::NoTimeForTransmission => &mut self.no_time_for_transmission,
            Infeasible::NotEnoughNodes => &mut self.not_enough_nodes,
            Infeasible::UserRequestInfeasible => &mut self.user_request_infeasible,
            Infeasible::CompletionAfterDeadline => &mut self.completion_after_deadline,
        }
    }
}

/// The durable image of the gateway's cumulative counters and latency
/// histogram — everything in [`ServiceMetrics`] except the process-local
/// wall-clock window. Journals persist this inside gateway snapshots, and
/// [`ServiceMetrics`] embeds it directly (reachable through `Deref`), so
/// the two can never drift apart field-wise.
///
/// Deserialization is hand-written (see below): the reservation/tenant
/// fields arrived with the v2 request/verdict redesign, and snapshots
/// journaled before it must still restore — missing fields default to
/// zero/empty.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Tasks submitted (single and batched).
    pub submitted: u64,
    /// Accepted immediately at submission.
    pub accepted_immediate: u64,
    /// Rejected immediately at submission.
    pub rejected_immediate: u64,
    /// Parked in the defer queue at submission.
    pub deferred: u64,
    /// Deferred tasks later admitted by a re-test.
    pub rescued: u64,
    /// Deferred tasks dropped after exhausting their retry budget.
    pub defer_evicted: u64,
    /// Deferred tasks dropped because their latest feasible start passed.
    pub defer_expired: u64,
    /// Deferred tasks flushed when the stream ended.
    pub defer_flushed: u64,
    /// Previously accepted tasks pushed back out of the waiting queue by a
    /// post-recovery re-verification (each re-enters as a deferral, or
    /// counts under [`demote_rejected`](MetricsSnapshot::demote_rejected)
    /// when past hope — the books stay balanced either way).
    pub demoted: u64,
    /// Demoted tasks that could not re-enter the defer queue (even an idle
    /// cluster could no longer meet the deadline, or the queue was full):
    /// withdrawn guarantees, counted in
    /// [`rejected_total`](MetricsSnapshot::rejected_total) but kept apart
    /// from submission-time rejections.
    pub demote_rejected: u64,
    /// Re-test attempts performed across all defer-queue sweeps.
    pub retests: u64,
    /// `submit_batch` invocations.
    pub batch_calls: u64,
    /// Tasks that went through the batched path.
    pub batch_tasks: u64,
    /// Reservations booked (`Verdict::Reserved`).
    pub reserved: u64,
    /// Reservations whose activation admission test passed at `start_at`.
    pub reservations_activated: u64,
    /// Reservations whose activation test failed (the book changed under
    /// the promise); the task fell back to the defer-or-reject protocol.
    pub reservation_misses: u64,
    /// Reservations flushed unactivated when the stream ended.
    pub reservations_flushed: u64,
    /// Requests refused over tenant quota, before any admission test.
    pub throttled: u64,
    /// Rejections broken down by [`Infeasible`] cause.
    pub rejection_causes: RejectionCauses,
    /// Per-tenant decision counters and latency histograms.
    pub tenants: TenantMetrics,
    /// Wall-clock latency of each admission decision.
    pub decision_latency: LatencyHistogram,
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        Ok(MetricsSnapshot {
            submitted: field(v, "submitted")?,
            accepted_immediate: field(v, "accepted_immediate")?,
            rejected_immediate: field(v, "rejected_immediate")?,
            deferred: field(v, "deferred")?,
            rescued: field(v, "rescued")?,
            defer_evicted: field(v, "defer_evicted")?,
            defer_expired: field(v, "defer_expired")?,
            defer_flushed: field(v, "defer_flushed")?,
            demoted: field(v, "demoted")?,
            demote_rejected: field(v, "demote_rejected")?,
            retests: field(v, "retests")?,
            batch_calls: field(v, "batch_calls")?,
            batch_tasks: field(v, "batch_tasks")?,
            // v2 request/verdict fields: absent in pre-redesign snapshots.
            reserved: field_or_default(v, "reserved")?,
            reservations_activated: field_or_default(v, "reservations_activated")?,
            reservation_misses: field_or_default(v, "reservation_misses")?,
            reservations_flushed: field_or_default(v, "reservations_flushed")?,
            throttled: field_or_default(v, "throttled")?,
            // Added with the explain/SLO layer: absent in older snapshots.
            rejection_causes: field_or_default(v, "rejection_causes")?,
            tenants: field_or_default(v, "tenants")?,
            decision_latency: field(v, "decision_latency")?,
        })
    }
}

impl MetricsSnapshot {
    /// Final admitted count: immediate accepts, rescued defers, and
    /// activated reservations, minus tasks a recovery re-verification
    /// demoted back out of the queue.
    pub fn accepted_total(&self) -> u64 {
        (self.accepted_immediate + self.rescued + self.reservations_activated)
            .saturating_sub(self.demoted)
    }

    /// Final rejected count: submission-time rejects, every way a deferred
    /// task can fall out of the queue, quota refusals, flushed
    /// reservations, and recovery demotions past hope.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_immediate
            + self.defer_evicted
            + self.defer_expired
            + self.defer_flushed
            + self.demote_rejected
            + self.throttled
            + self.reservations_flushed
    }

    /// Fraction of deferred tasks eventually admitted (0 when none were
    /// deferred) — the headline number for the Defer queue's usefulness.
    pub fn defer_rescue_rate(&self) -> f64 {
        if self.deferred == 0 {
            0.0
        } else {
            self.rescued as f64 / self.deferred as f64
        }
    }

    /// Final acceptance ratio over all submissions.
    pub fn accept_ratio(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.accepted_total() as f64 / self.submitted as f64
        }
    }
}

/// Aggregated gateway statistics: the durable [`MetricsSnapshot`] counters
/// (all reachable directly on this type through `Deref`) plus the
/// process-local wall-clock decision window.
///
/// Counters split decisions into their *initial* verdict (accepted /
/// deferred / rejected at submission) and the *final* fate of deferred
/// tasks (rescued / evicted after max retries / expired past the latest
/// feasible start). `accepted_total()` is the final admitted count.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    counters: MetricsSnapshot,
    first_decision: Option<Instant>,
    last_decision: Option<Instant>,
}

impl std::ops::Deref for ServiceMetrics {
    type Target = MetricsSnapshot;
    fn deref(&self) -> &MetricsSnapshot {
        &self.counters
    }
}

impl std::ops::DerefMut for ServiceMetrics {
    fn deref_mut(&mut self) -> &mut MetricsSnapshot {
        &mut self.counters
    }
}

impl ServiceMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps the wall-clock window around one decision (or batch).
    pub fn stamp_decision_window(&mut self, at: Instant) {
        if self.first_decision.is_none() {
            self.first_decision = Some(at);
        }
        self.last_decision = Some(at);
    }

    /// Admission decisions per wall-clock second over the observed window
    /// (0 with fewer than two decisions).
    pub fn decisions_per_sec(&self) -> f64 {
        match (self.first_decision, self.last_decision) {
            (Some(a), Some(b)) if b > a => self.submitted as f64 / (b - a).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Serializable copy of every cumulative counter and histogram. The
    /// wall-clock decision window ([`decisions_per_sec`]) is process-local
    /// state (`Instant`s) and intentionally not captured — it restarts with
    /// the process.
    ///
    /// [`decisions_per_sec`]: ServiceMetrics::decisions_per_sec
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.counters.clone()
    }

    /// Rebuilds metrics from a snapshot so a recovered gateway continues its
    /// cumulative counters instead of resetting to zero. The inverse of
    /// [`snapshot`](ServiceMetrics::snapshot) up to the (uncaptured)
    /// wall-clock window.
    pub fn restore(snap: &MetricsSnapshot) -> Self {
        ServiceMetrics {
            counters: snap.clone(),
            first_decision: None,
            last_decision: None,
        }
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {} | accepted {} ({} immediate + {} rescued) | rejected {} | \
             deferred {} (rescue rate {:.1}%)",
            self.submitted,
            self.accepted_total(),
            self.accepted_immediate,
            self.rescued,
            self.rejected_total(),
            self.deferred,
            self.defer_rescue_rate() * 100.0,
        )?;
        writeln!(
            f,
            "defer outcomes: rescued {} evicted {} expired {} flushed {} | retests {} | \
             demoted {} ({} past hope)",
            self.rescued,
            self.defer_evicted,
            self.defer_expired,
            self.defer_flushed,
            self.retests,
            self.demoted,
            self.demote_rejected,
        )?;
        if self.reserved + self.throttled > 0 {
            writeln!(
                f,
                "reservations: {} booked, {} activated, {} missed, {} flushed | throttled {} \
                 | tenants {}",
                self.reserved,
                self.reservations_activated,
                self.reservation_misses,
                self.reservations_flushed,
                self.throttled,
                self.tenants.len(),
            )?;
        }
        if self.decisions_per_sec() > 0.0 {
            writeln!(
                f,
                "throughput: {:.0} decisions/s (wall)",
                self.decisions_per_sec()
            )?;
        }
        write!(f, "decision latency: {}", self.decision_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert!(h.mean_ns() > 0.0);
        // p50 bound is at least the 3rd smallest sample and at most 2× it.
        let p50 = h.quantile_ns(0.5);
        assert!(p50 >= 4_000, "p50 {p50}");
        assert!(p50 <= 16_000, "p50 {p50}");
        // p100 bound covers the max.
        assert!(h.quantile_ns(1.0) >= h.max_ns() || h.quantile_ns(1.0) >= 1_000_000);
        assert!(h.max_ns() >= 1_000_000);
    }

    #[test]
    fn rates_and_totals_are_consistent() {
        let mut m = ServiceMetrics::new();
        m.submitted = 10;
        m.accepted_immediate = 5;
        m.rejected_immediate = 2;
        m.deferred = 3;
        m.rescued = 2;
        m.defer_evicted = 1;
        assert_eq!(m.accepted_total(), 7);
        assert_eq!(m.rejected_total(), 3);
        assert!((m.defer_rescue_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accept_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(m.accepted_total() + m.rejected_total(), m.submitted);
        let text = m.to_string();
        assert!(text.contains("rescue rate"));
    }

    #[test]
    fn snapshot_restore_round_trips_counters_and_histogram() {
        let mut m = ServiceMetrics::new();
        m.submitted = 11;
        m.accepted_immediate = 6;
        m.deferred = 3;
        m.rescued = 2;
        m.defer_expired = 1;
        m.demoted = 1;
        m.retests = 40;
        m.batch_calls = 2;
        m.batch_tasks = 8;
        for us in [3u64, 17, 210, 9000] {
            m.decision_latency.record(Duration::from_micros(us));
        }
        m.stamp_decision_window(Instant::now());
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let restored = ServiceMetrics::restore(&back);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.accepted_total(), m.accepted_total());
        assert_eq!(restored.rejected_total(), m.rejected_total());
        assert_eq!(restored.decision_latency, m.decision_latency);
        assert_eq!(
            restored.decision_latency.quantile_ns(0.5),
            m.decision_latency.quantile_ns(0.5)
        );
        // The wall-clock window is process-local and resets.
        assert_eq!(restored.decisions_per_sec(), 0.0);
    }

    #[test]
    fn demotion_keeps_totals_balanced() {
        let mut m = ServiceMetrics::new();
        m.submitted = 2;
        m.accepted_immediate = 2;
        // One accepted task is demoted at recovery and re-enters deferred…
        m.demoted = 1;
        m.deferred = 1;
        assert_eq!(m.accepted_total(), 1);
        // …and later expires: the books close.
        m.defer_expired = 1;
        assert_eq!(m.accepted_total() + m.rejected_total(), m.submitted);
    }

    #[test]
    fn empty_metrics_have_zero_rates() {
        let m = ServiceMetrics::new();
        assert_eq!(m.defer_rescue_rate(), 0.0);
        assert_eq!(m.accept_ratio(), 0.0);
        assert_eq!(m.decisions_per_sec(), 0.0);
        assert_eq!(m.decision_latency.quantile_ns(0.99), 0);
    }
}
