//! The v2 request/verdict protocol: [`Verdict`] and [`QuotaPolicy`].
//!
//! The v1 surface answered `submit(Task, now)` with the three-way
//! [`GatewayDecision`]. The v2 surface takes a full
//! [`SubmitRequest`](rtdls_core::request::SubmitRequest) envelope (task +
//! tenant + QoS class + reservation tolerance) and answers with a
//! [`Verdict`], which adds two outcomes the binary admission test cannot
//! express:
//!
//! * [`Verdict::Reserved`] — the task is not admissible *now*, but the
//!   gateway computed the earliest instant `start_at ≤ now + max_delay` at
//!   which it becomes admissible (the engine's
//!   `earliest_feasible_start`) and booked it: the reservation
//!   auto-activates when the clock reaches `start_at`.
//! * [`Verdict::Throttled`] — the tenant is over its [`QuotaPolicy`]
//!   limits; the task was never offered to the admission test.
//!
//! The legacy enum remains as a thin bridge ([`From<Verdict>`]) so v1 call
//! sites keep compiling; new code should consume [`Verdict`] directly.

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{AdmissionExplanation, Infeasible, QosClass, SimTime, SubmitRequest};

use crate::gateway::GatewayDecision;

/// The gateway's v2 admission verdict.
///
/// Serialization is hand-written (the derive stand-in does not cover the
/// omitted-when-absent field below): unit variants render as strings, the
/// data-bearing ones as single-key objects — `"Accepted"`,
/// `{"Reserved":{"start_at":…, "ticket":…}}`, `{"Deferred":{"ticket":…}}`,
/// `{"Rejected":{"cause":…}}`, `"Throttled"` — which is the network edge's
/// wire representation, so the encoding is part of the protocol surface,
/// not an implementation detail.
///
/// `Deferred` and `Rejected` optionally carry an [`AdmissionExplanation`]
/// (the explain engine's structured account + honest counterfactuals) as
/// an **additive** wire field: the `explain` key is emitted only when
/// present, so verdicts without one encode byte-identically to the
/// pre-explain protocol, and decoders treat an absent key as `None`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Admitted now; the deadline guarantee holds from this instant.
    Accepted,
    /// Not admissible now, but booked to be admitted at `start_at` — the
    /// earliest instant within the request's `max_delay` tolerance at
    /// which the schedulability test passes against the current book. The
    /// reservation auto-activates when the clock reaches `start_at`.
    Reserved {
        /// The promised admission instant (`now + δ`).
        start_at: SimTime,
        /// The reservation ticket id.
        ticket: u64,
    },
    /// Parked in the defer queue under the given ticket id (no promised
    /// start instant; re-tested opportunistically on every event).
    Deferred {
        /// The defer ticket id.
        ticket: u64,
        /// Why the admission test failed, when explanation is enabled.
        explain: Option<AdmissionExplanation>,
    },
    /// Rejected for good.
    Rejected {
        /// The binding infeasibility cause.
        cause: Infeasible,
        /// Why, in detail, when explanation is enabled.
        explain: Option<AdmissionExplanation>,
    },
    /// Refused before the admission test ran: the tenant is over quota.
    Throttled,
}

impl Verdict {
    /// An unexplained deferral (the common construction).
    pub fn deferred(ticket: u64) -> Self {
        Verdict::Deferred {
            ticket,
            explain: None,
        }
    }

    /// An unexplained rejection (the common construction).
    pub fn rejected(cause: Infeasible) -> Self {
        Verdict::Rejected {
            cause,
            explain: None,
        }
    }

    /// Attaches an explanation to a `Deferred`/`Rejected` verdict; other
    /// verdicts pass through unchanged.
    pub fn with_explanation(self, explain: Option<AdmissionExplanation>) -> Self {
        match self {
            Verdict::Deferred { ticket, .. } => Verdict::Deferred { ticket, explain },
            Verdict::Rejected { cause, .. } => Verdict::Rejected { cause, explain },
            other => other,
        }
    }

    /// The attached explanation, if any.
    pub fn explanation(&self) -> Option<AdmissionExplanation> {
        match self {
            Verdict::Deferred { explain, .. } | Verdict::Rejected { explain, .. } => *explain,
            _ => None,
        }
    }

    /// `true` for [`Verdict::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }

    /// `true` for [`Verdict::Reserved`].
    pub fn is_reserved(&self) -> bool {
        matches!(self, Verdict::Reserved { .. })
    }

    /// `true` for [`Verdict::Deferred`].
    pub fn is_deferred(&self) -> bool {
        matches!(self, Verdict::Deferred { .. })
    }

    /// `true` for [`Verdict::Throttled`].
    pub fn is_throttled(&self) -> bool {
        matches!(self, Verdict::Throttled)
    }
}

impl Serialize for Verdict {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        match self {
            Verdict::Accepted => Value::Str("Accepted".to_string()),
            Verdict::Reserved { start_at, ticket } => Value::Map(vec![(
                "Reserved".to_string(),
                Value::Map(vec![
                    ("start_at".to_string(), start_at.to_value()),
                    ("ticket".to_string(), ticket.to_value()),
                ]),
            )]),
            Verdict::Deferred { ticket, explain } => {
                let mut body = vec![("ticket".to_string(), ticket.to_value())];
                if let Some(e) = explain {
                    body.push(("explain".to_string(), e.to_value()));
                }
                Value::Map(vec![("Deferred".to_string(), Value::Map(body))])
            }
            Verdict::Rejected { cause, explain } => {
                let mut body = vec![("cause".to_string(), cause.to_value())];
                if let Some(e) = explain {
                    body.push(("explain".to_string(), e.to_value()));
                }
                Value::Map(vec![("Rejected".to_string(), Value::Map(body))])
            }
            Verdict::Throttled => Value::Str("Throttled".to_string()),
        }
    }
}

impl Deserialize for Verdict {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        use serde::Value;
        match v {
            Value::Str(s) if s == "Accepted" => Ok(Verdict::Accepted),
            Value::Str(s) if s == "Throttled" => Ok(Verdict::Throttled),
            Value::Map(entries) if entries.len() == 1 => {
                let (variant, body) = &entries[0];
                match variant.as_str() {
                    "Reserved" => Ok(Verdict::Reserved {
                        start_at: field(body, "start_at")?,
                        ticket: field(body, "ticket")?,
                    }),
                    "Deferred" => Ok(Verdict::Deferred {
                        ticket: field(body, "ticket")?,
                        // Additive: absent on pre-explain encodings.
                        explain: field_or_default(body, "explain")?,
                    }),
                    "Rejected" => Ok(Verdict::Rejected {
                        cause: field(body, "cause")?,
                        explain: field_or_default(body, "explain")?,
                    }),
                    other => Err(serde::Error::msg(format!(
                        "unknown Verdict variant `{other}`"
                    ))),
                }
            }
            other => Err(serde::Error::msg(format!(
                "expected Verdict, found {other:?}"
            ))),
        }
    }
}

impl From<Verdict> for GatewayDecision {
    /// The v2 → v1 bridge. A reservation surfaces as a deferral (the
    /// closest legacy notion of "parked, admitted later"); a quota
    /// rejection surfaces as [`Infeasible::NotEnoughNodes`] (the closest
    /// legacy cause: the cluster will not allocate nodes to this tenant
    /// right now).
    fn from(v: Verdict) -> GatewayDecision {
        match v {
            Verdict::Accepted => GatewayDecision::Accepted,
            Verdict::Reserved { ticket, .. } => GatewayDecision::Deferred(ticket),
            Verdict::Deferred { ticket, .. } => GatewayDecision::Deferred(ticket),
            Verdict::Rejected { cause, .. } => GatewayDecision::Rejected(cause),
            Verdict::Throttled => GatewayDecision::Rejected(Infeasible::NotEnoughNodes),
        }
    }
}

/// Per-tenant admission quotas, enforced before the schedulability test.
///
/// Like [`DeferPolicy`](crate::defer::DeferPolicy), the quota policy is
/// part of the gateway's durable state: journals persist it so a recovered
/// gateway throttles exactly as the live one did. Deserialization is
/// hand-written: `max_shard_inflight` arrived with quota-aware routing,
/// and snapshots written before it must still restore (it defaults to
/// unlimited, the pre-existing behavior).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct QuotaPolicy {
    /// Maximum undispatched liabilities (waiting + deferred + reserved
    /// tasks) per tenant; `None` = unlimited.
    pub max_inflight: Option<u32>,
    /// Maximum live reservations per tenant; `None` = unlimited. A request
    /// over this limit is not throttled — it just falls back to the
    /// defer-or-reject protocol instead of booking a reservation.
    pub max_reservations: Option<u32>,
    /// Maximum *waiting* tasks one tenant may hold on a single shard;
    /// `None` = unlimited. The sharded gateway's routing skips shards
    /// where the tenant is at this cap (anti-concentration: a tenant's
    /// admitted-but-undispatched work spreads across shards, so no shard
    /// failure or backlog spike lands on one tenant disproportionately).
    /// When *every* shard is at the cap the request is throttled before
    /// the admission test, like the other limits. Single-cluster gateways
    /// ignore it.
    pub max_shard_inflight: Option<u32>,
    /// Whether [`QosClass::Premium`] submissions bypass both limits.
    pub exempt_premium: bool,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            max_inflight: None,
            max_reservations: None,
            max_shard_inflight: None,
            exempt_premium: true,
        }
    }
}

impl Deserialize for QuotaPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        Ok(QuotaPolicy {
            max_inflight: field(v, "max_inflight")?,
            max_reservations: field(v, "max_reservations")?,
            // Added with quota-aware routing: absent in earlier snapshots.
            max_shard_inflight: field_or_default(v, "max_shard_inflight")?,
            exempt_premium: field(v, "exempt_premium")?,
        })
    }
}

impl QuotaPolicy {
    /// Whether a request at this tier is subject to the limits at all.
    pub fn applies_to(&self, qos: QosClass) -> bool {
        !(self.exempt_premium && qos == QosClass::Premium)
    }

    /// Whether a tenant with `inflight` current liabilities may submit.
    pub fn admits_inflight(&self, qos: QosClass, inflight: u32) -> bool {
        !self.applies_to(qos) || self.max_inflight.is_none_or(|cap| inflight < cap)
    }

    /// Whether a tenant with `live` current reservations may book another.
    pub fn admits_reservation(&self, qos: QosClass, live: u32) -> bool {
        !self.applies_to(qos) || self.max_reservations.is_none_or(|cap| live < cap)
    }
}

/// Convenience: the legacy envelope for a bare task (used by the v1
/// bridge methods).
pub(crate) fn legacy_request(task: rtdls_core::prelude::Task) -> SubmitRequest {
    SubmitRequest::new(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::{Task, TenantId};

    #[test]
    fn bridge_maps_every_verdict() {
        assert_eq!(
            GatewayDecision::from(Verdict::Accepted),
            GatewayDecision::Accepted
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Reserved {
                start_at: SimTime::new(5.0),
                ticket: 9
            }),
            GatewayDecision::Deferred(9)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::deferred(3)),
            GatewayDecision::Deferred(3)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::rejected(Infeasible::NoTimeForTransmission)),
            GatewayDecision::Rejected(Infeasible::NoTimeForTransmission)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Throttled),
            GatewayDecision::Rejected(Infeasible::NotEnoughNodes)
        );
    }

    #[test]
    fn default_quota_is_unlimited() {
        let q = QuotaPolicy::default();
        assert!(q.admits_inflight(QosClass::BestEffort, u32::MAX - 1));
        assert!(q.admits_reservation(QosClass::Standard, u32::MAX - 1));
    }

    #[test]
    fn limits_bind_and_premium_is_exempt() {
        let q = QuotaPolicy {
            max_inflight: Some(2),
            max_reservations: Some(1),
            ..Default::default()
        };
        assert!(q.admits_inflight(QosClass::Standard, 1));
        assert!(!q.admits_inflight(QosClass::Standard, 2));
        assert!(!q.admits_reservation(QosClass::BestEffort, 1));
        assert!(q.admits_inflight(QosClass::Premium, 100));
        assert!(q.admits_reservation(QosClass::Premium, 100));
        let strict = QuotaPolicy {
            exempt_premium: false,
            ..q
        };
        assert!(!strict.admits_inflight(QosClass::Premium, 2));
    }

    #[test]
    fn legacy_request_is_the_default_envelope() {
        let t = Task::new(4, 0.0, 10.0, 10.0);
        let req = legacy_request(t);
        assert_eq!(req.tenant, TenantId(0));
        assert_eq!(req.max_delay, None);
    }
}
