//! The v2 request/verdict protocol: [`Verdict`] and [`QuotaPolicy`].
//!
//! The v1 surface answered `submit(Task, now)` with the three-way
//! [`GatewayDecision`]. The v2 surface takes a full
//! [`SubmitRequest`](rtdls_core::request::SubmitRequest) envelope (task +
//! tenant + QoS class + reservation tolerance) and answers with a
//! [`Verdict`], which adds two outcomes the binary admission test cannot
//! express:
//!
//! * [`Verdict::Reserved`] — the task is not admissible *now*, but the
//!   gateway computed the earliest instant `start_at ≤ now + max_delay` at
//!   which it becomes admissible (the engine's
//!   `earliest_feasible_start`) and booked it: the reservation
//!   auto-activates when the clock reaches `start_at`.
//! * [`Verdict::Throttled`] — the tenant is over its [`QuotaPolicy`]
//!   limits; the task was never offered to the admission test.
//!
//! The legacy enum remains as a thin bridge ([`From<Verdict>`]) so v1 call
//! sites keep compiling; new code should consume [`Verdict`] directly.

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Infeasible, QosClass, SimTime, SubmitRequest};

use crate::gateway::GatewayDecision;

/// The gateway's v2 admission verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Admitted now; the deadline guarantee holds from this instant.
    Accepted,
    /// Not admissible now, but booked to be admitted at `start_at` — the
    /// earliest instant within the request's `max_delay` tolerance at
    /// which the schedulability test passes against the current book. The
    /// reservation auto-activates when the clock reaches `start_at`.
    Reserved {
        /// The promised admission instant (`now + δ`).
        start_at: SimTime,
        /// The reservation ticket id.
        ticket: u64,
    },
    /// Parked in the defer queue under the given ticket id (no promised
    /// start instant; re-tested opportunistically on every event).
    Deferred(u64),
    /// Rejected for good.
    Rejected(Infeasible),
    /// Refused before the admission test ran: the tenant is over quota.
    Throttled,
}

impl Verdict {
    /// `true` for [`Verdict::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }

    /// `true` for [`Verdict::Reserved`].
    pub fn is_reserved(&self) -> bool {
        matches!(self, Verdict::Reserved { .. })
    }

    /// `true` for [`Verdict::Deferred`].
    pub fn is_deferred(&self) -> bool {
        matches!(self, Verdict::Deferred(_))
    }

    /// `true` for [`Verdict::Throttled`].
    pub fn is_throttled(&self) -> bool {
        matches!(self, Verdict::Throttled)
    }
}

impl From<Verdict> for GatewayDecision {
    /// The v2 → v1 bridge. A reservation surfaces as a deferral (the
    /// closest legacy notion of "parked, admitted later"); a quota
    /// rejection surfaces as [`Infeasible::NotEnoughNodes`] (the closest
    /// legacy cause: the cluster will not allocate nodes to this tenant
    /// right now).
    fn from(v: Verdict) -> GatewayDecision {
        match v {
            Verdict::Accepted => GatewayDecision::Accepted,
            Verdict::Reserved { ticket, .. } => GatewayDecision::Deferred(ticket),
            Verdict::Deferred(ticket) => GatewayDecision::Deferred(ticket),
            Verdict::Rejected(cause) => GatewayDecision::Rejected(cause),
            Verdict::Throttled => GatewayDecision::Rejected(Infeasible::NotEnoughNodes),
        }
    }
}

/// Per-tenant admission quotas, enforced before the schedulability test.
///
/// Like [`DeferPolicy`](crate::defer::DeferPolicy), the quota policy is
/// part of the gateway's durable state: journals persist it so a recovered
/// gateway throttles exactly as the live one did.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuotaPolicy {
    /// Maximum undispatched liabilities (waiting + deferred + reserved
    /// tasks) per tenant; `None` = unlimited.
    pub max_inflight: Option<u32>,
    /// Maximum live reservations per tenant; `None` = unlimited. A request
    /// over this limit is not throttled — it just falls back to the
    /// defer-or-reject protocol instead of booking a reservation.
    pub max_reservations: Option<u32>,
    /// Whether [`QosClass::Premium`] submissions bypass both limits.
    pub exempt_premium: bool,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            max_inflight: None,
            max_reservations: None,
            exempt_premium: true,
        }
    }
}

impl QuotaPolicy {
    /// Whether a request at this tier is subject to the limits at all.
    pub fn applies_to(&self, qos: QosClass) -> bool {
        !(self.exempt_premium && qos == QosClass::Premium)
    }

    /// Whether a tenant with `inflight` current liabilities may submit.
    pub fn admits_inflight(&self, qos: QosClass, inflight: u32) -> bool {
        !self.applies_to(qos) || self.max_inflight.is_none_or(|cap| inflight < cap)
    }

    /// Whether a tenant with `live` current reservations may book another.
    pub fn admits_reservation(&self, qos: QosClass, live: u32) -> bool {
        !self.applies_to(qos) || self.max_reservations.is_none_or(|cap| live < cap)
    }
}

/// Convenience: the legacy envelope for a bare task (used by the v1
/// bridge methods).
pub(crate) fn legacy_request(task: rtdls_core::prelude::Task) -> SubmitRequest {
    SubmitRequest::new(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::{Task, TenantId};

    #[test]
    fn bridge_maps_every_verdict() {
        assert_eq!(
            GatewayDecision::from(Verdict::Accepted),
            GatewayDecision::Accepted
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Reserved {
                start_at: SimTime::new(5.0),
                ticket: 9
            }),
            GatewayDecision::Deferred(9)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Deferred(3)),
            GatewayDecision::Deferred(3)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Rejected(Infeasible::NoTimeForTransmission)),
            GatewayDecision::Rejected(Infeasible::NoTimeForTransmission)
        );
        assert_eq!(
            GatewayDecision::from(Verdict::Throttled),
            GatewayDecision::Rejected(Infeasible::NotEnoughNodes)
        );
    }

    #[test]
    fn default_quota_is_unlimited() {
        let q = QuotaPolicy::default();
        assert!(q.admits_inflight(QosClass::BestEffort, u32::MAX - 1));
        assert!(q.admits_reservation(QosClass::Standard, u32::MAX - 1));
    }

    #[test]
    fn limits_bind_and_premium_is_exempt() {
        let q = QuotaPolicy {
            max_inflight: Some(2),
            max_reservations: Some(1),
            exempt_premium: true,
        };
        assert!(q.admits_inflight(QosClass::Standard, 1));
        assert!(!q.admits_inflight(QosClass::Standard, 2));
        assert!(!q.admits_reservation(QosClass::BestEffort, 1));
        assert!(q.admits_inflight(QosClass::Premium, 100));
        assert!(q.admits_reservation(QosClass::Premium, 100));
        let strict = QuotaPolicy {
            exempt_premium: false,
            ..q
        };
        assert!(!strict.admits_inflight(QosClass::Premium, 2));
    }

    #[test]
    fn legacy_request_is_the_default_envelope() {
        let t = Task::new(4, 0.0, 10.0, 10.0);
        let req = legacy_request(t);
        assert_eq!(req.tenant, TenantId(0));
        assert_eq!(req.max_delay, None);
    }
}
