//! Deadline-SLO tracking: per-tenant and per-QoS-class service-level
//! objectives over sim-time rolling windows, with multi-window burn-rate
//! alarming.
//!
//! The paper's contract is a *promise*: every accepted load finishes by its
//! deadline. This module observes promise quality along the two axes the
//! related work consumes as reward/trade-off signals:
//!
//! * **Acceptance** — of the requests a tenant submitted, how many ended
//!   admitted (immediately, by rescue, or by activation) vs refused
//!   (rejected, throttled, or fallen out of the defer queue).
//! * **Attainment** — of the guarantees the gateway *issued*, how many
//!   held vs were withdrawn (recovery demotions, reservation misses).
//!
//! Each `(scope, objective)` pair runs a **fast** and a **slow**
//! [`RollingWindow`] over sim time. The *burn rate* is the windowed bad
//! fraction divided by the objective's error budget (`1 − target`); burning
//! at rate 1 consumes exactly the budget over the window. Alarm states
//! follow the SRE multi-window convention:
//!
//! * [`SloHealth::Burning`] — the short *or* long window burns over its
//!   threshold: the budget is being consumed too fast, but the damage is
//!   not yet sustained.
//! * [`SloHealth::Breached`] — *both* windows burn over threshold: the
//!   overload is sustained. Entering this state latches a breach count and
//!   emits a transition the gateway turns into forensics (flight-recorder
//!   dumps + a journaled `SloBreach` audit record).
//!
//! Everything here is driven by **sim time** and the decision stream, so
//! the tracker is deterministic: both admission engines, and a journal
//! replay of either, produce byte-identical tracker state — which is why
//! the whole tracker can live inside durable gateway snapshots.

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{QosClass, SimTime, TenantId};
use rtdls_telemetry::RollingWindow;

/// Which promise an objective guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloObjective {
    /// Submitted requests ending admitted vs refused.
    Acceptance,
    /// Issued guarantees holding vs being withdrawn.
    Attainment,
}

impl SloObjective {
    /// Stable lowercase label (metric label values, ops rendering).
    pub fn label(&self) -> &'static str {
        match self {
            SloObjective::Acceptance => "acceptance",
            SloObjective::Attainment => "attainment",
        }
    }
}

/// The alarm state of one `(scope, objective)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloHealth {
    /// Within budget on both windows.
    Healthy,
    /// One window burns over threshold: budget consumed too fast.
    Burning,
    /// Both windows burn over threshold: sustained violation.
    Breached,
}

// Not derived: the vendored serde derive must see a plain variant list.
#[allow(clippy::derivable_impls)]
impl Default for SloHealth {
    fn default() -> Self {
        SloHealth::Healthy
    }
}

impl SloHealth {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            SloHealth::Healthy => "healthy",
            SloHealth::Burning => "burning",
            SloHealth::Breached => "breached",
        }
    }

    /// Numeric severity for gauge exposition (0 / 1 / 2).
    pub fn severity(&self) -> u64 {
        match self {
            SloHealth::Healthy => 0,
            SloHealth::Burning => 1,
            SloHealth::Breached => 2,
        }
    }
}

/// Serializable SLO configuration: targets, window spans, and burn-rate
/// thresholds. Part of the gateway's durable state (journal snapshots
/// carry it), so a recovered gateway alarms exactly as the live one did.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Acceptance-rate target in `(0, 1)`; error budget `1 − target`.
    pub acceptance_target: f64,
    /// Deadline-attainment target in `(0, 1)`.
    pub attainment_target: f64,
    /// Fast window span, sim-time units.
    pub short_window: f64,
    /// Slow window span, sim-time units.
    pub long_window: f64,
    /// Burn-rate threshold on the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold on the slow window.
    pub slow_burn: f64,
    /// Events required in a window before its burn rate can alarm —
    /// keeps a single early rejection from paging.
    pub min_events: u64,
    /// Ring resolution: buckets per window.
    pub buckets: usize,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            acceptance_target: 0.95,
            attainment_target: 0.999,
            short_window: 60.0,
            long_window: 600.0,
            fast_burn: 6.0,
            slow_burn: 3.0,
            min_events: 10,
            buckets: 12,
        }
    }
}

impl SloPolicy {
    /// The target for one objective.
    pub fn target(&self, objective: SloObjective) -> f64 {
        match objective {
            SloObjective::Acceptance => self.acceptance_target,
            SloObjective::Attainment => self.attainment_target,
        }
    }

    /// The error budget for one objective, floored away from zero so the
    /// burn-rate division is always defined.
    pub fn budget(&self, objective: SloObjective) -> f64 {
        (1.0 - self.target(objective)).max(1e-9)
    }
}

/// One objective's windows and alarm state within one scope.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveState {
    short: RollingWindow,
    long: RollingWindow,
    state: SloHealth,
    breaches: u64,
}

impl ObjectiveState {
    fn new(policy: &SloPolicy) -> Self {
        ObjectiveState {
            short: RollingWindow::new(policy.short_window, policy.buckets),
            long: RollingWindow::new(policy.long_window, policy.buckets),
            state: SloHealth::Healthy,
            breaches: 0,
        }
    }

    /// Current alarm state.
    pub fn state(&self) -> SloHealth {
        self.state
    }

    /// Times this objective has entered [`SloHealth::Breached`].
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Burn rates `(short, long)` at sim-time `now`.
    pub fn burn_rates(&self, policy: &SloPolicy, objective: SloObjective, now: f64) -> (f64, f64) {
        let budget = policy.budget(objective);
        (
            self.short.bad_rate(now) / budget,
            self.long.bad_rate(now) / budget,
        )
    }

    /// Records one event and re-evaluates the alarm; returns the
    /// `(from, to)` states when they differ.
    fn observe(
        &mut self,
        policy: &SloPolicy,
        objective: SloObjective,
        good: bool,
        now: f64,
    ) -> Option<(SloHealth, SloHealth)> {
        self.short.record(now, good);
        self.long.record(now, good);
        let (short_burn, long_burn) = self.burn_rates(policy, objective, now);
        let armed_short = self.short.count(now) >= policy.min_events;
        let armed_long = self.long.count(now) >= policy.min_events;
        let fast = armed_short && short_burn >= policy.fast_burn;
        let slow = armed_long && long_burn >= policy.slow_burn;
        let next = match (fast, slow) {
            (true, true) => SloHealth::Breached,
            (false, false) => SloHealth::Healthy,
            _ => SloHealth::Burning,
        };
        let prev = self.state;
        if next == prev {
            return None;
        }
        self.state = next;
        if next == SloHealth::Breached {
            self.breaches += 1;
        }
        Some((prev, next))
    }
}

/// Both objectives within one scope (a tenant, or a QoS class).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloKeyState {
    /// Acceptance objective state.
    pub acceptance: ObjectiveState,
    /// Attainment objective state.
    pub attainment: ObjectiveState,
}

impl SloKeyState {
    fn new(policy: &SloPolicy) -> Self {
        SloKeyState {
            acceptance: ObjectiveState::new(policy),
            attainment: ObjectiveState::new(policy),
        }
    }

    /// The state for one objective.
    pub fn objective(&self, objective: SloObjective) -> &ObjectiveState {
        match objective {
            SloObjective::Acceptance => &self.acceptance,
            SloObjective::Attainment => &self.attainment,
        }
    }

    fn objective_mut(&mut self, objective: SloObjective) -> &mut ObjectiveState {
        match objective {
            SloObjective::Acceptance => &mut self.acceptance,
            SloObjective::Attainment => &mut self.attainment,
        }
    }
}

/// One alarm-state change, emitted by [`SloTracker::record`]. A transition
/// into [`SloHealth::Breached`] is what triggers forensics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloTransition {
    /// The tenant scope, when tenant-scoped.
    pub tenant: Option<u32>,
    /// The QoS scope, when QoS-scoped.
    pub qos: Option<QosClass>,
    /// Which objective moved.
    pub objective: SloObjective,
    /// Previous alarm state.
    pub from: SloHealth,
    /// New alarm state.
    pub to: SloHealth,
    /// Sim time of the event that tripped the change.
    pub at: SimTime,
}

impl SloTransition {
    /// `true` when this transition entered [`SloHealth::Breached`].
    pub fn is_breach(&self) -> bool {
        self.to == SloHealth::Breached
    }
}

/// One row of the SLO status table — the `Ops::Slo` wire shape and the
/// source for the Prometheus SLO gauges.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloStatusRow {
    /// The tenant scope, when tenant-scoped.
    pub tenant: Option<u32>,
    /// The QoS scope, when QoS-scoped.
    pub qos: Option<QosClass>,
    /// Which objective this row reports.
    pub objective: SloObjective,
    /// Good events in the long window at the tracker's last event time.
    pub good: u64,
    /// Bad events in the long window.
    pub bad: u64,
    /// Fast-window burn rate.
    pub short_burn: f64,
    /// Slow-window burn rate.
    pub long_burn: f64,
    /// Current alarm state.
    pub state: SloHealth,
    /// Times this scope/objective has breached.
    pub breaches: u64,
}

/// Current version of the [`SloBreach`] audit-record shape. The journal
/// persists breach records verbatim; the version field lets future shapes
/// coexist with archived ones in the same log.
pub const SLO_BREACH_VERSION: u32 = 1;

/// The forensic record cut when a scope enters [`SloHealth::Breached`]:
/// the transition itself, the scope's status row at breach time, and —
/// when the breaching scope is a tenant — that tenant's recently decided
/// tasks plus their flight-recorder timelines (rendered span lines). The
/// gateway's journal appends these as durable audit events, so the breach
/// and its evidence survive a crash.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloBreach {
    /// Record-shape version ([`SLO_BREACH_VERSION`]).
    pub version: u32,
    /// The state change that constituted the breach.
    pub transition: SloTransition,
    /// The breaching scope's status row at breach time.
    pub row: SloStatusRow,
    /// The offending tenant's most recently decided task ids (empty for
    /// QoS-scoped breaches).
    pub recent_tasks: Vec<u64>,
    /// Rendered flight-recorder timelines for `recent_tasks` (empty when
    /// tracing is disabled — the breach record itself is still cut).
    pub timelines: Vec<String>,
}

impl SloStatusRow {
    /// Human-readable scope label (`tenant 7` / `qos premium` / `global`).
    pub fn scope(&self) -> String {
        match (self.tenant, self.qos) {
            (Some(t), _) => format!("tenant {t}"),
            (None, Some(q)) => format!("qos {}", qos_label(q)),
            (None, None) => "global".to_string(),
        }
    }
}

/// Stable lowercase label for a QoS class.
pub fn qos_label(qos: QosClass) -> &'static str {
    match qos {
        QosClass::Premium => "premium",
        QosClass::Standard => "standard",
        QosClass::BestEffort => "best_effort",
    }
}

const QOS_ORDER: [QosClass; 3] = [QosClass::Premium, QosClass::Standard, QosClass::BestEffort];

/// The per-tenant + per-QoS SLO tracker. Fully serializable and
/// deterministic (sim-time driven), so it rides inside durable gateway
/// snapshots and survives kill/recover with its alarm states and breach
/// counts intact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloTracker {
    policy: SloPolicy,
    /// `(tenant id, state)` pairs, id-sorted (deterministic encoding).
    tenants: Vec<(u32, SloKeyState)>,
    /// One state per QoS class, in [`QOS_ORDER`].
    qos: Vec<(QosClass, SloKeyState)>,
    /// Sim time of the most recent recorded event (burn rates and status
    /// rows are evaluated here — the tracker's own notion of "now").
    last_now: f64,
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(SloPolicy::default())
    }
}

impl SloTracker {
    /// A fresh tracker under `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloTracker {
            policy,
            tenants: Vec::new(),
            qos: QOS_ORDER
                .iter()
                .map(|&q| (q, SloKeyState::new(&policy)))
                .collect(),
            last_now: 0.0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Sim time of the most recent recorded event.
    pub fn last_now(&self) -> f64 {
        self.last_now
    }

    /// One tenant's SLO state, if it has ever recorded an event.
    pub fn tenant(&self, tenant: TenantId) -> Option<&SloKeyState> {
        self.tenants
            .iter()
            .find(|(id, _)| *id == tenant.0)
            .map(|(_, s)| s)
    }

    fn tenant_mut(&mut self, tenant: TenantId) -> &mut SloKeyState {
        let pos = self.tenants.partition_point(|(id, _)| *id < tenant.0);
        if self.tenants.get(pos).is_none_or(|(id, _)| *id != tenant.0) {
            let state = SloKeyState::new(&self.policy);
            self.tenants.insert(pos, (tenant.0, state));
        }
        &mut self.tenants[pos].1
    }

    /// Records one objective event under both scopes (the tenant and the
    /// QoS class) at sim-time `now`, returning every alarm-state change it
    /// caused (at most two: one per scope).
    pub fn record(
        &mut self,
        tenant: TenantId,
        qos: QosClass,
        objective: SloObjective,
        good: bool,
        now: SimTime,
    ) -> Vec<SloTransition> {
        let at = now.as_f64();
        self.last_now = self.last_now.max(at);
        let policy = self.policy;
        let mut out = Vec::new();
        if let Some((from, to)) = self
            .tenant_mut(tenant)
            .objective_mut(objective)
            .observe(&policy, objective, good, at)
        {
            out.push(SloTransition {
                tenant: Some(tenant.0),
                qos: None,
                objective,
                from,
                to,
                at: now,
            });
        }
        if let Some(slot) = self.qos.iter_mut().find(|(q, _)| *q == qos) {
            if let Some((from, to)) = slot
                .1
                .objective_mut(objective)
                .observe(&policy, objective, good, at)
            {
                out.push(SloTransition {
                    tenant: None,
                    qos: Some(qos),
                    objective,
                    from,
                    to,
                    at: now,
                });
            }
        }
        out
    }

    /// The full status table at the tracker's last event time: one row per
    /// `(scope, objective)`, tenants first (id order), then QoS classes.
    pub fn rows(&self) -> Vec<SloStatusRow> {
        let mut out = Vec::new();
        for (id, state) in &self.tenants {
            for objective in [SloObjective::Acceptance, SloObjective::Attainment] {
                out.push(self.row(Some(*id), None, objective, state.objective(objective)));
            }
        }
        for (qos, state) in &self.qos {
            for objective in [SloObjective::Acceptance, SloObjective::Attainment] {
                out.push(self.row(None, Some(*qos), objective, state.objective(objective)));
            }
        }
        out
    }

    /// The status row for one scope/objective, if the scope exists.
    pub fn row_for(
        &self,
        tenant: Option<u32>,
        qos: Option<QosClass>,
        objective: SloObjective,
    ) -> Option<SloStatusRow> {
        let state = match (tenant, qos) {
            (Some(id), _) => self.tenant(TenantId(id))?,
            (None, Some(q)) => &self.qos.iter().find(|(qq, _)| *qq == q)?.1,
            (None, None) => return None,
        };
        Some(self.row(tenant, qos, objective, state.objective(objective)))
    }

    fn row(
        &self,
        tenant: Option<u32>,
        qos: Option<QosClass>,
        objective: SloObjective,
        state: &ObjectiveState,
    ) -> SloStatusRow {
        let (short_burn, long_burn) = state.burn_rates(&self.policy, objective, self.last_now);
        let (good, bad) = state.long.totals(self.last_now);
        SloStatusRow {
            tenant,
            qos,
            objective,
            good,
            bad,
            short_burn,
            long_burn,
            state: state.state(),
            breaches: state.breaches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy {
            acceptance_target: 0.9,
            short_window: 10.0,
            long_window: 100.0,
            fast_burn: 5.0,
            slow_burn: 2.0,
            min_events: 5,
            buckets: 10,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_through_burning_to_breached_and_back() {
        let mut t = SloTracker::new(policy());
        let tenant = TenantId(7);
        let qos = QosClass::Standard;
        // A healthy history: 50 accepts spread over 50 time units.
        for i in 0..50 {
            let moved = t.record(
                tenant,
                qos,
                SloObjective::Acceptance,
                true,
                SimTime::new(i as f64),
            );
            assert!(moved.is_empty(), "healthy stream must not alarm");
        }
        let state = |t: &SloTracker| t.tenant(tenant).unwrap().acceptance.state();
        assert_eq!(state(&t), SloHealth::Healthy);
        // Step overload: rejections from t=50 on. The fast window fills with
        // bad events quickly (Burning) while the long window still holds the
        // healthy history; sustained overload then breaches.
        let mut saw_burning = false;
        let mut breach_at = None;
        for i in 0..80 {
            let now = SimTime::new(50.0 + i as f64 * 0.5);
            let moved = t.record(tenant, qos, SloObjective::Acceptance, false, now);
            for m in &moved {
                if m.tenant == Some(7) && m.to == SloHealth::Burning && m.from == SloHealth::Healthy
                {
                    saw_burning = true;
                }
                if m.tenant == Some(7) && m.is_breach() {
                    assert!(saw_burning, "breach must pass through burning first");
                    breach_at = Some(now);
                }
            }
        }
        assert!(saw_burning);
        assert!(breach_at.is_some(), "sustained overload must breach");
        assert_eq!(state(&t), SloHealth::Breached);
        assert_eq!(t.tenant(tenant).unwrap().acceptance.breaches(), 1);
        // Recovery: a long healthy stream rolls the bad events out.
        for i in 0..300 {
            t.record(
                tenant,
                qos,
                SloObjective::Acceptance,
                true,
                SimTime::new(100.0 + i as f64),
            );
        }
        assert_eq!(state(&t), SloHealth::Healthy);
        // The breach count is latched.
        assert_eq!(t.tenant(tenant).unwrap().acceptance.breaches(), 1);
    }

    #[test]
    fn min_events_gate_suppresses_early_alarms() {
        let mut t = SloTracker::new(policy());
        // 4 straight rejections: under min_events, no alarm.
        for i in 0..4 {
            let moved = t.record(
                TenantId(1),
                QosClass::Standard,
                SloObjective::Acceptance,
                false,
                SimTime::new(i as f64),
            );
            assert!(moved.is_empty(), "below min_events nothing alarms");
        }
    }

    #[test]
    fn qos_scope_aggregates_across_tenants() {
        let mut t = SloTracker::new(policy());
        // Two tenants each contribute 3 rejections — below the per-tenant
        // gate, but the shared QoS scope crosses it and alarms.
        let mut qos_alarmed = false;
        for i in 0..6 {
            let tenant = TenantId(if i % 2 == 0 { 1 } else { 2 });
            let moved = t.record(
                tenant,
                QosClass::BestEffort,
                SloObjective::Acceptance,
                false,
                SimTime::new(i as f64),
            );
            qos_alarmed |= moved
                .iter()
                .any(|m| m.qos == Some(QosClass::BestEffort) && m.to != SloHealth::Healthy);
        }
        assert!(qos_alarmed);
    }

    #[test]
    fn rows_cover_tenants_and_qos_and_serde_round_trips() {
        let mut t = SloTracker::new(SloPolicy::default());
        t.record(
            TenantId(3),
            QosClass::Premium,
            SloObjective::Attainment,
            true,
            SimTime::new(1.0),
        );
        let rows = t.rows();
        // 1 tenant × 2 objectives + 3 QoS classes × 2 objectives.
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.tenant == Some(3)
            && r.objective == SloObjective::Attainment
            && r.good == 1));
        assert!(rows
            .iter()
            .any(|r| r.qos == Some(QosClass::Premium) && r.scope() == "qos premium"));
        let json = serde_json::to_string(&t).unwrap();
        let back: SloTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.rows(), rows);
    }

    #[test]
    fn determinism_across_identical_streams() {
        let mk = || {
            let mut t = SloTracker::new(policy());
            for i in 0..200 {
                t.record(
                    TenantId((i % 3) as u32),
                    QosClass::Standard,
                    if i % 2 == 0 {
                        SloObjective::Acceptance
                    } else {
                        SloObjective::Attainment
                    },
                    i % 5 != 0,
                    SimTime::new(i as f64 * 0.3),
                );
            }
            t
        };
        assert_eq!(mk(), mk());
    }
}
