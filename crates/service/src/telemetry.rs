//! Fold adapters: the service layer's native stats into the unified
//! telemetry [`MetricsRegistry`].
//!
//! The registry is a snapshot container (see `rtdls-telemetry`); the
//! gateway keeps counting in [`ServiceMetrics`] / [`TenantMetrics`] exactly
//! as before, and an ops poll folds the current values in here. Metric
//! names are stable API surface — the README's observability section
//! catalogs them.

use rtdls_core::prelude::EngineProfile;
use rtdls_telemetry::MetricsRegistry;

use crate::metrics::ServiceMetrics;

/// Folds the gateway's cumulative counters, per-tenant books, and decision
/// latency histogram into `reg`.
pub fn fold_service_metrics(reg: &mut MetricsRegistry, metrics: &ServiceMetrics) {
    // Verdict-shaped counters under one name, keyed by the verdict label.
    let verdicts: [(&str, u64); 6] = [
        ("accepted", metrics.accepted_immediate),
        ("rejected", metrics.rejected_immediate),
        ("deferred", metrics.deferred),
        ("reserved", metrics.reserved),
        ("throttled", metrics.throttled),
        ("rescued", metrics.rescued),
    ];
    for (verdict, value) in verdicts {
        reg.counter("rtdls_gateway_verdicts", &[("verdict", verdict)], value);
    }
    reg.counter("rtdls_gateway_submitted", &[], metrics.submitted);
    reg.counter("rtdls_gateway_defer_evicted", &[], metrics.defer_evicted);
    reg.counter("rtdls_gateway_defer_expired", &[], metrics.defer_expired);
    reg.counter("rtdls_gateway_defer_flushed", &[], metrics.defer_flushed);
    reg.counter("rtdls_gateway_demoted", &[], metrics.demoted);
    reg.counter(
        "rtdls_gateway_demote_rejected",
        &[],
        metrics.demote_rejected,
    );
    reg.counter("rtdls_gateway_retests", &[], metrics.retests);
    reg.counter("rtdls_gateway_batch_calls", &[], metrics.batch_calls);
    reg.counter("rtdls_gateway_batch_tasks", &[], metrics.batch_tasks);
    reg.counter(
        "rtdls_gateway_reservations_activated",
        &[],
        metrics.reservations_activated,
    );
    reg.counter(
        "rtdls_gateway_reservation_misses",
        &[],
        metrics.reservation_misses,
    );
    reg.counter(
        "rtdls_gateway_reservations_flushed",
        &[],
        metrics.reservations_flushed,
    );
    reg.gauge(
        "rtdls_gateway_decisions_per_sec",
        &[],
        metrics.decisions_per_sec(),
    );
    reg.histogram(
        "rtdls_decision_latency_ns",
        &[],
        metrics.decision_latency.nonzero_buckets(),
        metrics.decision_latency.count(),
        metrics.decision_latency.sum_ns() as f64,
    );
    // Per-tenant books: verdict-labeled counters keyed by tenant id.
    for (tenant, counters) in metrics.tenants.iter() {
        let id = tenant.0.to_string();
        let tenant_verdicts: [(&str, u64); 6] = [
            ("submitted", counters.submitted),
            ("accepted", counters.accepted),
            ("reserved", counters.reserved),
            ("deferred", counters.deferred),
            ("rejected", counters.rejected),
            ("throttled", counters.throttled),
        ];
        for (verdict, value) in tenant_verdicts {
            reg.counter(
                "rtdls_tenant_requests",
                &[("tenant", &id), ("verdict", verdict)],
                value,
            );
        }
        if counters.demoted > 0 {
            reg.counter("rtdls_tenant_demoted", &[("tenant", &id)], counters.demoted);
        }
    }
}

/// Folds an engine's planning-cost profile into `reg`, labeled with its
/// shard index when the engine is one shard of a sharded gateway.
pub fn fold_engine_profile(reg: &mut MetricsRegistry, profile: &EngineProfile, shard: Option<u32>) {
    let shard_label = shard.map(|s| s.to_string());
    let labels: Vec<(&str, &str)> = match &shard_label {
        Some(s) => vec![("shard", s.as_str())],
        None => Vec::new(),
    };
    reg.counter("rtdls_engine_plans_reused", &labels, profile.plans_reused);
    reg.counter(
        "rtdls_engine_plans_computed",
        &labels,
        profile.plans_computed,
    );
    reg.counter("rtdls_engine_plan_nanos", &labels, profile.plan_nanos);
    reg.gauge(
        "rtdls_engine_plan_reuse_rate",
        &labels,
        profile.reuse_rate(),
    );
    reg.gauge(
        "rtdls_engine_mean_plan_nanos",
        &labels,
        profile.mean_plan_nanos(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::TenantId;
    use std::time::Duration;

    #[test]
    fn service_metrics_fold_covers_counters_tenants_and_latency() {
        let mut metrics = ServiceMetrics::new();
        metrics.submitted = 10;
        metrics.accepted_immediate = 6;
        metrics.reserved = 2;
        metrics.throttled = 1;
        metrics.decision_latency.record(Duration::from_micros(5));
        metrics.tenants.counters_mut(TenantId(3)).accepted = 4;
        let mut reg = MetricsRegistry::new();
        fold_service_metrics(&mut reg, &metrics);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_gateway_submitted 10"));
        assert!(text.contains("rtdls_gateway_verdicts{verdict=\"accepted\"} 6"));
        assert!(text.contains("rtdls_gateway_verdicts{verdict=\"reserved\"} 2"));
        assert!(text.contains("rtdls_tenant_requests{tenant=\"3\",verdict=\"accepted\"} 4"));
        assert!(text.contains("rtdls_decision_latency_ns_count 1"));
    }

    #[test]
    fn engine_profile_fold_labels_the_shard() {
        let profile = EngineProfile {
            plans_reused: 30,
            plans_computed: 10,
            plan_nanos: 1000,
        };
        let mut reg = MetricsRegistry::new();
        fold_engine_profile(&mut reg, &profile, Some(2));
        fold_engine_profile(&mut reg, &profile, None);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_engine_plans_reused{shard=\"2\"} 30"));
        assert!(text.contains("rtdls_engine_plan_reuse_rate{shard=\"2\"} 0.75"));
        assert!(text.contains("rtdls_engine_plans_computed 10"));
    }
}
