//! Fold adapters: the service layer's native stats into the unified
//! telemetry [`MetricsRegistry`].
//!
//! The registry is a snapshot container (see `rtdls-telemetry`); the
//! gateway keeps counting in [`ServiceMetrics`] / [`TenantMetrics`] exactly
//! as before, and an ops poll folds the current values in here. Metric
//! names are stable API surface — the README's observability section
//! catalogs them.

use rtdls_core::prelude::EngineProfile;
use rtdls_telemetry::MetricsRegistry;

use crate::metrics::ServiceMetrics;
use crate::slo::{qos_label, SloTracker};

/// Folds the gateway's cumulative counters, per-tenant books, and decision
/// latency histogram into `reg`.
pub fn fold_service_metrics(reg: &mut MetricsRegistry, metrics: &ServiceMetrics) {
    // Verdict-shaped counters under one name, keyed by the verdict label.
    let verdicts: [(&str, u64); 6] = [
        ("accepted", metrics.accepted_immediate),
        ("rejected", metrics.rejected_immediate),
        ("deferred", metrics.deferred),
        ("reserved", metrics.reserved),
        ("throttled", metrics.throttled),
        ("rescued", metrics.rescued),
    ];
    for (verdict, value) in verdicts {
        reg.counter("rtdls_gateway_verdicts", &[("verdict", verdict)], value);
    }
    // Rejection breakdown: every `Verdict::Rejected` construction, keyed
    // by its Fig. 2 cause (includes post-recovery demote-rejections).
    for (cause, value) in metrics.rejection_causes.entries() {
        reg.counter("rtdls_gateway_rejections", &[("cause", cause)], value);
    }
    reg.counter("rtdls_gateway_submitted", &[], metrics.submitted);
    reg.counter("rtdls_gateway_defer_evicted", &[], metrics.defer_evicted);
    reg.counter("rtdls_gateway_defer_expired", &[], metrics.defer_expired);
    reg.counter("rtdls_gateway_defer_flushed", &[], metrics.defer_flushed);
    reg.counter("rtdls_gateway_demoted", &[], metrics.demoted);
    reg.counter(
        "rtdls_gateway_demote_rejected",
        &[],
        metrics.demote_rejected,
    );
    reg.counter("rtdls_gateway_retests", &[], metrics.retests);
    reg.counter("rtdls_gateway_batch_calls", &[], metrics.batch_calls);
    reg.counter("rtdls_gateway_batch_tasks", &[], metrics.batch_tasks);
    reg.counter(
        "rtdls_gateway_reservations_activated",
        &[],
        metrics.reservations_activated,
    );
    reg.counter(
        "rtdls_gateway_reservation_misses",
        &[],
        metrics.reservation_misses,
    );
    reg.counter(
        "rtdls_gateway_reservations_flushed",
        &[],
        metrics.reservations_flushed,
    );
    reg.gauge(
        "rtdls_gateway_decisions_per_sec",
        &[],
        metrics.decisions_per_sec(),
    );
    reg.histogram(
        "rtdls_decision_latency_ns",
        &[],
        metrics.decision_latency.nonzero_buckets(),
        metrics.decision_latency.count(),
        metrics.decision_latency.sum_ns() as f64,
    );
    // Per-tenant books: verdict-labeled counters keyed by tenant id.
    for (tenant, counters) in metrics.tenants.iter() {
        let id = tenant.0.to_string();
        let tenant_verdicts: [(&str, u64); 6] = [
            ("submitted", counters.submitted),
            ("accepted", counters.accepted),
            ("reserved", counters.reserved),
            ("deferred", counters.deferred),
            ("rejected", counters.rejected),
            ("throttled", counters.throttled),
        ];
        for (verdict, value) in tenant_verdicts {
            reg.counter(
                "rtdls_tenant_requests",
                &[("tenant", &id), ("verdict", verdict)],
                value,
            );
        }
        if counters.demoted > 0 {
            reg.counter("rtdls_tenant_demoted", &[("tenant", &id)], counters.demoted);
        }
    }
}

/// Folds the deadline-SLO status table into `reg`: per-scope burn-rate
/// gauges (`window="short"|"long"`), the numeric alarm state
/// (0 = healthy, 1 = burning, 2 = breached), and the latched breach
/// counters. Scope labels: `tenant="<id>"` for tenant rows,
/// `qos="<class>"` for QoS rows.
pub fn fold_slo(reg: &mut MetricsRegistry, slo: &SloTracker) {
    for row in slo.rows() {
        let tenant_label = row.tenant.map(|t| t.to_string());
        let mut labels: Vec<(&str, &str)> = Vec::new();
        if let Some(t) = &tenant_label {
            labels.push(("tenant", t.as_str()));
        }
        if let Some(q) = row.qos {
            labels.push(("qos", qos_label(q)));
        }
        labels.push(("objective", row.objective.label()));
        let mut with_window = labels.clone();
        with_window.push(("window", "short"));
        reg.gauge("rtdls_slo_burn", &with_window, row.short_burn);
        *with_window.last_mut().expect("pushed above") = ("window", "long");
        reg.gauge("rtdls_slo_burn", &with_window, row.long_burn);
        reg.gauge("rtdls_slo_state", &labels, row.state.severity() as f64);
        reg.counter("rtdls_slo_breaches", &labels, row.breaches);
        let mut outcome = labels.clone();
        outcome.push(("outcome", "good"));
        reg.gauge("rtdls_slo_window_events", &outcome, row.good as f64);
        *outcome.last_mut().expect("pushed above") = ("outcome", "bad");
        reg.gauge("rtdls_slo_window_events", &outcome, row.bad as f64);
    }
}

/// Folds an engine's planning-cost profile into `reg`, labeled with its
/// shard index when the engine is one shard of a sharded gateway.
pub fn fold_engine_profile(reg: &mut MetricsRegistry, profile: &EngineProfile, shard: Option<u32>) {
    let shard_label = shard.map(|s| s.to_string());
    let labels: Vec<(&str, &str)> = match &shard_label {
        Some(s) => vec![("shard", s.as_str())],
        None => Vec::new(),
    };
    reg.counter("rtdls_engine_plans_reused", &labels, profile.plans_reused);
    reg.counter(
        "rtdls_engine_plans_computed",
        &labels,
        profile.plans_computed,
    );
    reg.counter("rtdls_engine_plan_nanos", &labels, profile.plan_nanos);
    reg.gauge(
        "rtdls_engine_plan_reuse_rate",
        &labels,
        profile.reuse_rate(),
    );
    reg.gauge(
        "rtdls_engine_mean_plan_nanos",
        &labels,
        profile.mean_plan_nanos(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::TenantId;
    use std::time::Duration;

    #[test]
    fn service_metrics_fold_covers_counters_tenants_and_latency() {
        let mut metrics = ServiceMetrics::new();
        metrics.submitted = 10;
        metrics.accepted_immediate = 6;
        metrics.reserved = 2;
        metrics.throttled = 1;
        metrics.decision_latency.record(Duration::from_micros(5));
        metrics.tenants.counters_mut(TenantId(3)).accepted = 4;
        let mut reg = MetricsRegistry::new();
        fold_service_metrics(&mut reg, &metrics);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_gateway_submitted 10"));
        assert!(text.contains("rtdls_gateway_verdicts{verdict=\"accepted\"} 6"));
        assert!(text.contains("rtdls_gateway_verdicts{verdict=\"reserved\"} 2"));
        assert!(text.contains("rtdls_tenant_requests{tenant=\"3\",verdict=\"accepted\"} 4"));
        assert!(text.contains("rtdls_decision_latency_ns_count 1"));
    }

    #[test]
    fn engine_profile_fold_labels_the_shard() {
        let profile = EngineProfile {
            plans_reused: 30,
            plans_computed: 10,
            plan_nanos: 1000,
        };
        let mut reg = MetricsRegistry::new();
        fold_engine_profile(&mut reg, &profile, Some(2));
        fold_engine_profile(&mut reg, &profile, None);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_engine_plans_reused{shard=\"2\"} 30"));
        assert!(text.contains("rtdls_engine_plan_reuse_rate{shard=\"2\"} 0.75"));
        assert!(text.contains("rtdls_engine_plans_computed 10"));
    }
}
