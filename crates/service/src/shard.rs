//! Sharded multi-cluster dispatch.
//!
//! The Fig. 2 schedulability test rebuilds a temp schedule over the whole
//! waiting queue on every arrival — `O(queue × nodes)` per decision. On one
//! big cluster both factors grow with cluster size, so admission cost grows
//! superlinearly with offered load. [`ShardedGateway`] partitions the
//! cluster into `K` independent shards, each with its own
//! [`AdmissionController`] over `N/K` nodes and its own (shorter) waiting
//! queue: one decision touches a single shard, keeping admission cost
//! sub-linear in total cluster size at the price of losing cross-shard
//! task placement (a task runs entirely within one shard).
//!
//! Routing between shards is pluggable ([`Routing`]):
//!
//! * **RoundRobin** — cheapest; statistically balanced under uniform load;
//! * **LeastLoaded** — routes by committed-backlog estimate
//!   ([`AdmissionController::backlog`]);
//! * **BestFit** — probes every shard ([`AdmissionController::probe_plan`])
//!   and picks the earliest estimated completion among the acceptors.
//!
//! If the routed shard rejects, the other shards are tried in routing order
//! before the task is deferred or rejected, so a sharded gateway never
//! phantom-rejects a task some shard could take. The defer queue and
//! metrics are gateway-global, shared across shards.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use rtdls_core::error::ModelError;
use rtdls_core::prelude::{
    Admission, AdmissionController, AdmissionFailure, AlgorithmKind, ClusterParams,
    ControllerState, Decision, Infeasible, NodeId, PlanConfig, SimTime, SubmitRequest, Task,
    TaskId, TaskPlan,
};
use rtdls_sim::frontend::{Frontend, SubmitOutcome};

use crate::book::{self, ServiceBook};
use crate::defer::{DeferPolicy, DeferredQueue};
use crate::gateway::GatewayDecision;
use crate::metrics::ServiceMetrics;
use crate::request::{QuotaPolicy, Verdict};
use crate::reserve::{ActivationRecord, ReservationBook};
use crate::tenant::TenantLedger;

/// How submissions are routed across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Routing {
    /// Cycle through shards; O(1) routing work.
    RoundRobin,
    /// Route to the shard with the smallest committed backlog.
    LeastLoaded,
    /// Probe all shards, pick the earliest estimated completion.
    BestFit,
}

/// One shard: an admission engine plus its node-id offset into the
/// global cluster.
#[derive(Clone, Debug)]
struct Shard<A: Admission> {
    ctl: A,
    offset: usize,
}

impl<A: Admission> Shard<A> {
    fn len(&self) -> usize {
        self.ctl.params().num_nodes
    }
}

/// Translates a shard-local plan into the engine's global node space.
fn globalize(mut plan: TaskPlan, offset: usize) -> TaskPlan {
    for node in &mut plan.nodes {
        *node = NodeId(node.0 + offset as u32);
    }
    plan
}

/// No routing restrictions: the empty per-shard skip mask.
const NO_SKIP: &[bool] = &[];

/// Whether routing may consider shard `s` under the skip mask (empty mask
/// = no restriction; a fully-set mask is the caller's responsibility to
/// catch beforehand — here it simply excludes everything).
fn routable(skip: &[bool], s: usize) -> bool {
    skip.get(s).copied() != Some(true)
}

/// Tries shards in routing order, skipping `exclude` (a shard already known
/// to reject, e.g. from a batch pass) and every shard whose `skip` bit is
/// set (quota-throttled for this request's tenant); `Ok(shard)` on the
/// first acceptance, `Err(a rejection cause)` when every candidate rejects
/// (or none remain).
fn try_admit<A: Admission>(
    shards: &mut [Shard<A>],
    routing: Routing,
    cursor: &mut usize,
    task: &Task,
    now: SimTime,
    exclude: Option<usize>,
    skip: &[bool],
) -> Result<usize, Infeasible> {
    let k = shards.len();
    if routing == Routing::BestFit {
        // Probe every shard once; the probe *is* the submit's test, so the
        // winner's submit is guaranteed to accept and losers are never
        // re-tested.
        let mut best: Option<(SimTime, usize)> = None;
        let mut first_cause = None;
        for (i, shard) in shards.iter().enumerate() {
            if Some(i) == exclude || !routable(skip, i) {
                continue;
            }
            match shard.ctl.probe_plan(task, now) {
                Ok(plan) => {
                    let key = (plan.est_completion, i);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                Err(failure) => {
                    first_cause.get_or_insert(failure.reason);
                }
            }
        }
        return match best {
            Some((_, s)) => {
                let accepted = shards[s].ctl.submit(*task, now).is_accepted();
                debug_assert!(accepted, "probe and submit run the same test");
                Ok(s)
            }
            None => Err(first_cause.unwrap_or(Infeasible::NotEnoughNodes)),
        };
    }
    let order: Vec<usize> = match routing {
        Routing::RoundRobin => {
            let start = *cursor;
            *cursor = (*cursor + 1) % k;
            (0..k).map(|i| (start + i) % k).collect()
        }
        Routing::LeastLoaded => {
            let mut idx: Vec<usize> = (0..k).collect();
            let backlogs: Vec<f64> = shards.iter().map(|s| s.ctl.backlog(now)).collect();
            idx.sort_by(|&a, &b| backlogs[a].total_cmp(&backlogs[b]).then(a.cmp(&b)));
            idx
        }
        Routing::BestFit => unreachable!("handled above"),
    };
    let mut first_cause = None;
    for s in order {
        if Some(s) == exclude || !routable(skip, s) {
            continue;
        }
        match shards[s].ctl.submit(*task, now) {
            Decision::Accepted => return Ok(s),
            Decision::Rejected(cause) => {
                first_cause.get_or_insert(cause);
            }
        }
    }
    Err(first_cause.unwrap_or(Infeasible::NotEnoughNodes))
}

/// The routed [`book::EngineOps`] adapter: the shared decision flow
/// submits through [`try_admit`] (routing order, spillover) and takes the
/// reservation search over all shards. `skip` is the per-shard
/// quota-throttle mask for the request in flight (empty = unrestricted —
/// activation and defer re-tests route freely so promises are honored).
struct RoutedAdapter<'a, A: Admission> {
    shards: &'a mut [Shard<A>],
    routing: Routing,
    cursor: &'a mut usize,
    skip: &'a [bool],
}

impl<A: Admission> book::EngineOps for RoutedAdapter<'_, A> {
    fn submit(&mut self, task: &Task, now: SimTime) -> (Decision, Option<u32>) {
        match try_admit(
            self.shards,
            self.routing,
            self.cursor,
            task,
            now,
            None,
            self.skip,
        ) {
            Ok(shard) => (Decision::Accepted, Some(shard as u32)),
            Err(cause) => (Decision::Rejected(cause), None),
        }
    }

    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.ctl.earliest_feasible_start(task, now))
            .min()
    }

    fn all_routes_throttled(&self) -> bool {
        !self.skip.is_empty() && self.skip.iter().all(|&s| s)
    }

    fn explain(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        best_explanation(self.shards, request, now)
    }
}

/// The cluster-level explanation for a request every shard refuses: each
/// shard explains independently, and the shard offering the *smallest*
/// feasible counterfactual deadline wins — a resubmission relaxed to that
/// deadline would be admitted by that shard, so the suggestion stays
/// honest across the whole fleet. Shards without a feasible deadline lose
/// to any shard with one; `None` only when no shard refuses (feasible
/// somewhere as-is).
fn best_explanation<A: Admission>(
    shards: &[Shard<A>],
    request: &SubmitRequest,
    now: SimTime,
) -> Option<rtdls_core::prelude::AdmissionExplanation> {
    let mut best: Option<rtdls_core::prelude::AdmissionExplanation> = None;
    for shard in shards {
        let Some(ex) = shard.ctl.explain(request, now) else {
            // Feasible as-is on this shard: nothing to explain.
            return None;
        };
        best = Some(match best {
            None => ex,
            Some(cur) => {
                let better = match (ex.has_feasible_deadline(), cur.has_feasible_deadline()) {
                    (true, true) => ex.min_feasible_deadline < cur.min_feasible_deadline,
                    (true, false) => true,
                    _ => false,
                };
                if better {
                    ex
                } else {
                    cur
                }
            }
        });
    }
    best
}

/// Online admission gateway over `K` independent cluster shards, generic
/// over the per-shard admission engine `A` (the reference full-replan
/// controller by default; the incremental diff engine via
/// [`ShardedGateway::with_engine`]).
#[derive(Clone, Debug)]
pub struct ShardedGateway<A: Admission = AdmissionController> {
    params: ClusterParams,
    algorithm: AlgorithmKind,
    shards: Vec<Shard<A>>,
    routing: Routing,
    cursor: usize,
    book: ServiceBook,
}

impl ShardedGateway<AdmissionController> {
    /// Partitions `params.num_nodes` nodes into `num_shards` contiguous
    /// shards (sizes differing by at most one), each on the reference
    /// full-replan engine. Errors when `num_shards` is zero or exceeds the
    /// node count.
    pub fn new(
        params: ClusterParams,
        num_shards: usize,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        routing: Routing,
        defer_policy: DeferPolicy,
    ) -> Result<Self, ModelError> {
        ShardedGateway::with_engine(params, num_shards, algorithm, cfg, routing, defer_policy)
    }
}

impl<A: Admission> ShardedGateway<A> {
    /// Like [`ShardedGateway::new`], with every shard on the admission
    /// engine `A` (e.g.
    /// `ShardedGateway::<IncrementalController>::with_engine(...)`).
    pub fn with_engine(
        params: ClusterParams,
        num_shards: usize,
        algorithm: AlgorithmKind,
        cfg: PlanConfig,
        routing: Routing,
        defer_policy: DeferPolicy,
    ) -> Result<Self, ModelError> {
        if num_shards == 0 {
            return Err(ModelError::InvalidParams("num_shards must be >= 1"));
        }
        if num_shards > params.num_nodes {
            return Err(ModelError::InvalidParams("num_shards exceeds node count"));
        }
        let base = params.num_nodes / num_shards;
        let extra = params.num_nodes % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut offset = 0;
        for i in 0..num_shards {
            let size = base + usize::from(i < extra);
            let shard_params = ClusterParams::new(size, params.cms, params.cps)?;
            shards.push(Shard {
                ctl: A::new(shard_params, algorithm, cfg),
                offset,
            });
            offset += size;
        }
        Ok(ShardedGateway {
            params,
            algorithm,
            shards,
            routing,
            cursor: 0,
            book: ServiceBook::new(defer_policy, QuotaPolicy::default()),
        })
    }

    /// Sets the per-tenant quota policy (builder style).
    pub fn with_quota(mut self, quota: QuotaPolicy) -> Self {
        self.book.quota = quota;
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global cluster parameters this gateway fronts.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// The routing policy.
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// The algorithm every shard runs.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// Gateway statistics so far.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.book.metrics
    }

    /// Currently parked defer tickets.
    pub fn deferred(&self) -> &DeferredQueue {
        &self.book.defer
    }

    /// Currently booked reservations (gateway-global; activation routes
    /// across all shards).
    pub fn reservations(&self) -> &ReservationBook {
        &self.book.reservations
    }

    /// The waiting-task tenant ledger.
    pub fn ledger(&self) -> &TenantLedger {
        &self.book.ledger
    }

    /// The per-tenant quota policy in force.
    pub fn quota(&self) -> &QuotaPolicy {
        &self.book.quota
    }

    /// Drains the reservation-activation audit records accumulated since
    /// the last call (for write-ahead journaling; process-local state,
    /// regenerated on replay).
    pub fn take_activation_log(&mut self) -> Vec<ActivationRecord> {
        self.book.take_activation_log()
    }

    /// Enables or disables parked-task decision observation — the network
    /// edge's subscription channel (see
    /// [`DecisionUpdate`](crate::observe::DecisionUpdate)). Off by default.
    pub fn observe_decisions(&mut self, on: bool) {
        self.book.observe_decisions(on);
    }

    /// Drains the parked-task decision updates recorded since the last
    /// call (empty unless observation is enabled).
    pub fn take_decision_updates(&mut self) -> Vec<crate::observe::DecisionUpdate> {
        self.book.take_updates()
    }

    /// Enables or disables admission explanations on refusal verdicts
    /// (off by default; the edge turns it on).
    pub fn enable_explanations(&mut self, on: bool) {
        self.book.enable_explanations(on);
    }

    /// The deadline-SLO tracker (durable gateway state).
    pub fn slo(&self) -> &crate::slo::SloTracker {
        &self.book.slo
    }

    /// Replaces the SLO tracker — recovery installs the snapshotted
    /// tracker here, and owners use it to set a non-default policy.
    pub fn set_slo(&mut self, slo: crate::slo::SloTracker) {
        self.book.slo = slo;
    }

    /// Drains the SLO-breach audit records cut since the last call (for
    /// write-ahead journaling; process-local, like the activation log).
    pub fn take_breach_log(&mut self) -> Vec<crate::slo::SloBreach> {
        self.book.take_breach_log()
    }

    /// The cluster-level explanation for a request every shard would
    /// refuse right now (`None` when some shard admits it as-is) — the
    /// `Ops::Explain` query surface. The best (smallest) feasible
    /// counterfactual deadline across shards wins.
    pub fn explain(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        best_explanation(&self.shards, request, now)
    }

    /// Waiting-queue lengths per shard (a load-balance diagnostic).
    pub fn shard_queue_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.ctl.queue_len()).collect()
    }

    /// The round-robin routing cursor (part of the durable state: replaying
    /// a journal must deal submissions to the same shards).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Per-shard controller states, in shard order — the durable image of
    /// the gateway book a journal snapshots.
    pub fn shard_states(&self) -> Vec<ControllerState> {
        self.shards.iter().map(|s| s.ctl.state()).collect()
    }

    /// Verdicts reached for deferred tasks but not yet drained by the
    /// engine. See [`Gateway::pending_resolutions`].
    ///
    /// [`Gateway::pending_resolutions`]: crate::gateway::Gateway::pending_resolutions
    pub fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)] {
        &self.book.resolutions
    }

    /// Reassembles a sharded gateway from journaled parts. Shard offsets are
    /// re-derived from the shard sizes in order; errors when the shard
    /// node counts do not tile `params.num_nodes` or a shard's unit costs
    /// disagree with the cluster's.
    pub fn from_parts(
        params: ClusterParams,
        algorithm: AlgorithmKind,
        routing: Routing,
        cursor: usize,
        shard_states: Vec<ControllerState>,
        book: ServiceBook,
    ) -> Result<Self, ModelError> {
        if shard_states.is_empty() {
            return Err(ModelError::InvalidParams("at least one shard state"));
        }
        let mut shards = Vec::with_capacity(shard_states.len());
        let mut offset = 0;
        for state in shard_states {
            let shard_params = state.params;
            if shard_params.cms != params.cms || shard_params.cps != params.cps {
                return Err(ModelError::InvalidParams(
                    "shard unit costs disagree with the cluster's",
                ));
            }
            shards.push(Shard {
                ctl: A::from_state(state)?,
                offset,
            });
            offset += shard_params.num_nodes;
        }
        if offset != params.num_nodes {
            return Err(ModelError::InvalidParams(
                "shard sizes do not tile the cluster's node count",
            ));
        }
        if cursor >= shards.len() {
            // The live gateway keeps its cursor strictly below the shard
            // count; anything else is a corrupted or version-skewed image.
            return Err(ModelError::InvalidParams(
                "routing cursor outside the shard range",
            ));
        }
        Ok(ShardedGateway {
            params,
            algorithm,
            shards,
            routing,
            cursor,
            book,
        })
    }

    /// Re-verifies every shard's waiting plans against the strict admission
    /// test at time `now`, demoting any no-longer-feasible task to the
    /// shared defer queue. See [`Gateway::reverify`]; returns all demoted
    /// tasks across shards.
    ///
    /// [`Gateway::reverify`]: crate::gateway::Gateway::reverify
    pub fn reverify(&mut self, now: SimTime) -> Vec<Task> {
        let widest_params = self.widest_params();
        let algorithm = self.algorithm;
        let mut demoted = Vec::new();
        for shard in &mut self.shards {
            demoted.extend(book::reverify_controller(
                &mut shard.ctl,
                &mut self.book,
                &widest_params,
                algorithm,
                now,
            ));
        }
        demoted
    }

    /// How many *waiting* tasks `tenant` holds on each shard, by joining
    /// the shard queues against the tenant ledger — O(shards × queue),
    /// paid only when a per-shard cap is in force.
    fn shard_held_counts(&self, tenant: rtdls_core::prelude::TenantId) -> Vec<u32> {
        let ledger = &self.book.ledger;
        self.shards
            .iter()
            .map(|s| {
                s.ctl
                    .queue()
                    .iter()
                    .filter(|(t, _)| ledger.tenant_of(t.id) == Some(tenant))
                    .count() as u32
            })
            .collect()
    }

    /// The per-shard quota-throttle mask for one submission: `mask[s]` is
    /// `true` when `tenant` already holds [`QuotaPolicy::max_shard_inflight`]
    /// waiting tasks on shard `s`, so routing must skip it. Empty (no
    /// restriction) when no per-shard cap is set or the tier is exempt.
    fn shard_throttle_mask(
        &self,
        tenant: rtdls_core::prelude::TenantId,
        qos: rtdls_core::prelude::QosClass,
    ) -> Vec<bool> {
        let Some(cap) = self.book.quota.max_shard_inflight else {
            return Vec::new();
        };
        if !self.book.quota.applies_to(qos) {
            return Vec::new();
        }
        self.shard_held_counts(tenant)
            .into_iter()
            .map(|held| held >= cap)
            .collect()
    }

    /// The largest shard's cluster shape — what defer eligibility and
    /// reservation bounds are judged against (tasks never span shards, so
    /// it is the best any future re-test can offer).
    fn widest_params(&self) -> ClusterParams {
        let widest = self
            .shards
            .iter()
            .map(|s| s.len())
            .max()
            .expect("at least one shard");
        ClusterParams::new(widest, self.params.cms, self.params.cps).expect("valid by construction")
    }

    /// Attaches a decision-tracing handle: spans from the shared decision
    /// flow land in the handle's flight recorder, `Route` spans carry the
    /// chosen shard index, and untraced in-process submissions get a trace
    /// id minted here.
    pub fn attach_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        self.book.set_telemetry(telemetry.clone());
    }

    /// Attaches a hot-path profiler handle: the routed admission/plan phase
    /// of every decision starts timing into `gateway/plan`.
    pub fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        self.book.set_profiler(profiler.clone());
    }

    /// Folds this gateway's native stats — service counters, tenant books,
    /// per-shard planning profiles and queue depths — into the unified
    /// registry. The edge's ops channel polls this.
    pub fn fold_metrics(&self, reg: &mut rtdls_telemetry::MetricsRegistry) {
        crate::telemetry::fold_service_metrics(reg, self.metrics());
        crate::telemetry::fold_slo(reg, &self.book.slo);
        let mut waiting = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let depth = shard.ctl.queue_len();
            waiting += depth;
            let label = i.to_string();
            reg.gauge(
                "rtdls_shard_queue_depth",
                &[("shard", &label)],
                depth as f64,
            );
            if let Some(profile) = shard.ctl.profile() {
                crate::telemetry::fold_engine_profile(reg, &profile, Some(i as u32));
            }
        }
        reg.gauge("rtdls_gateway_waiting", &[], waiting as f64);
    }

    /// Decides one v2 submission envelope at time `now` — the primary
    /// serving surface. The admission test routes across shards
    /// ([`Routing`]); the reservation search takes the earliest feasible
    /// start over *all* shards (activation re-routes, so any shard may
    /// honor the promise).
    pub fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict {
        let start = Instant::now();
        let widest_params = self.widest_params();
        let algorithm = self.algorithm;
        let skip = self.shard_throttle_mask(request.tenant, request.qos);
        // Mint a trace id for untraced in-process submissions (see
        // `Gateway::submit_request`).
        let mut request = *request;
        if request.trace == 0 {
            request.trace = self.book.telemetry().mint();
        }
        let request = &request;
        let verdict = book::decide_request(
            &mut self.book,
            &widest_params,
            algorithm,
            request,
            now,
            &mut RoutedAdapter {
                shards: &mut self.shards,
                routing: self.routing,
                cursor: &mut self.cursor,
                skip: &skip,
            },
        );
        book::record_request(&mut self.book.metrics, start, request.tenant);
        verdict
    }

    /// Decides one streaming submission at time `now` through the legacy
    /// v1 bridge (anonymous tenant, no reservation tolerance).
    pub fn submit(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        self.submit_request(&crate::request::legacy_request(task), now)
            .into()
    }

    /// Decides a whole burst at once. Tasks are dealt to shards up front
    /// (cyclically for round-robin, greedily by backlog estimate otherwise),
    /// each shard amortizes its group through one temp-schedule pass
    /// ([`AdmissionController::submit_batch`]), and shard-rejected tasks
    /// fall back to individual routing before being deferred or rejected.
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        let start = Instant::now();
        let k = self.shards.len();
        // Batch members travel under the legacy envelope (anonymous
        // tenant, default tier); under a per-shard cap the deal must skip
        // shards already at — or, counting this batch's own assignments,
        // reaching — the tenant's cap, so a batch cannot concentrate past
        // what the single-submit path enforces. Assignments count at deal
        // time (before acceptance is known): conservative, like the
        // backlog estimate itself. With every shard at cap the deal
        // degenerates to unrestricted (the batch path has no Throttled
        // verdict to give).
        let cap = self
            .book
            .quota
            .max_shard_inflight
            .filter(|_| self.book.quota.applies_to(Default::default()));
        let mut held: Vec<u32> = match cap {
            Some(_) => self.shard_held_counts(Default::default()),
            None => Vec::new(),
        };
        let at_cap =
            |held: &[u32], s: usize| cap.is_some_and(|cap| held.get(s).is_some_and(|&h| h >= cap));
        let allowed = |held: &[u32], s: usize| !at_cap(held, s) || (0..k).all(|j| at_cap(held, j));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        match self.routing {
            Routing::RoundRobin => {
                let mut dealt = 0usize;
                for i in 0..batch.len() {
                    while !allowed(&held, (self.cursor + dealt) % k) {
                        dealt += 1;
                    }
                    let s = (self.cursor + dealt) % k;
                    groups[s].push(i);
                    if cap.is_some() {
                        held[s] += 1;
                    }
                    dealt += 1;
                }
                self.cursor = (self.cursor + dealt) % k;
            }
            Routing::LeastLoaded | Routing::BestFit => {
                // Greedy balance on the backlog estimate, updated with each
                // assignment's demand (per-node, so shard sizes compare).
                let mut est: Vec<f64> = self
                    .shards
                    .iter()
                    .map(|s| s.ctl.backlog(now) / s.len() as f64)
                    .collect();
                for (i, task) in batch.iter().enumerate() {
                    let s = (0..k)
                        .filter(|&s| allowed(&held, s))
                        .min_by(|&a, &b| est[a].total_cmp(&est[b]).then(a.cmp(&b)))
                        .expect("at least one allowed shard");
                    groups[s].push(i);
                    if cap.is_some() {
                        held[s] += 1;
                    }
                    est[s] += task.data_size * (self.params.cms + self.params.cps)
                        / self.shards[s].len() as f64;
                }
            }
        }
        let mut out: Vec<Option<GatewayDecision>> = vec![None; batch.len()];
        let mut spilled: Vec<(usize, usize, Infeasible)> = Vec::new();
        for (s, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let tasks: Vec<Task> = group.iter().map(|&i| batch[i]).collect();
            let decisions = self.shards[s].ctl.submit_batch(&tasks, now);
            for (&i, decision) in group.iter().zip(decisions) {
                match decision {
                    Decision::Accepted => {
                        book::book_accept(&mut self.book, batch[i].id, Default::default());
                        out[i] = Some(GatewayDecision::Accepted);
                    }
                    Decision::Rejected(cause) => {
                        spilled.push((i, s, cause));
                    }
                }
            }
        }
        // Spillover: a shard-rejected task retries the *other* shards (its
        // own shard's verdict is deterministic and final for this instant),
        // still under the cap the deal maintained (a landed spillover
        // counts against its shard like any assignment).
        for (i, home, cause) in spilled {
            let all_capped = (0..k).all(|j| at_cap(&held, j));
            let skip: Vec<bool> = if cap.is_some() && !all_capped {
                (0..k).map(|s| at_cap(&held, s)).collect()
            } else {
                Vec::new()
            };
            let d = match try_admit(
                &mut self.shards,
                self.routing,
                &mut self.cursor,
                &batch[i],
                now,
                Some(home),
                &skip,
            ) {
                Ok(s) => {
                    if cap.is_some() {
                        held[s] += 1;
                    }
                    book::book_accept(&mut self.book, batch[i].id, Default::default());
                    GatewayDecision::Accepted
                }
                Err(_) => self.defer_or_reject(batch[i], now, cause).into(),
            };
            out[i] = Some(d);
        }
        self.book.metrics.batch_calls += 1;
        self.book.metrics.batch_tasks += batch.len() as u64;
        book::record_decisions(&mut self.book.metrics, start, batch.len());
        out.into_iter().map(|d| d.expect("decided")).collect()
    }

    /// Re-tests the defer queue against current capacity across all shards.
    pub fn retest_deferred(&mut self, now: SimTime) {
        let shards = &mut self.shards;
        let routing = self.routing;
        let cursor = &mut self.cursor;
        let (departed, retests) = self.book.defer.sweep(now, |task| {
            try_admit(shards, routing, cursor, task, now, None, NO_SKIP).is_ok()
        });
        self.book.metrics.retests += retests;
        book::apply_departures(&mut self.book, departed, now);
    }

    /// Activates every reservation whose `start_at` has been reached,
    /// routing each across shards like any submission. The engine drives
    /// this after the dispatches at each instant commit.
    pub fn activate_reservations(&mut self, now: SimTime) {
        let widest_params = self.widest_params();
        let algorithm = self.algorithm;
        book::activate_due(
            &mut self.book,
            &widest_params,
            algorithm,
            now,
            &mut RoutedAdapter {
                shards: &mut self.shards,
                routing: self.routing,
                cursor: &mut self.cursor,
                skip: NO_SKIP,
            },
        );
    }

    fn defer_or_reject(&mut self, task: Task, now: SimTime, cause: Infeasible) -> Verdict {
        // Eligibility is judged against the *largest* shard: tasks never
        // span shards, so that is the best any future re-test can offer.
        let widest_params = self.widest_params();
        book::defer_or_reject(
            &mut self.book,
            &widest_params,
            self.algorithm,
            task,
            Default::default(),
            Default::default(),
            now,
            cause,
        )
    }

    fn shard_of(&self, node: usize) -> (usize, usize) {
        for (i, shard) in self.shards.iter().enumerate() {
            if node >= shard.offset && node < shard.offset + shard.len() {
                return (i, node - shard.offset);
            }
        }
        panic!(
            "node {node} outside the {}-node cluster",
            self.params.num_nodes
        );
    }
}

impl<A: Admission> Frontend for ShardedGateway<A> {
    fn submit(&mut self, task: Task, now: SimTime) -> SubmitOutcome {
        match ShardedGateway::submit(self, task, now) {
            GatewayDecision::Accepted => SubmitOutcome::Accepted,
            GatewayDecision::Deferred(_) => SubmitOutcome::Pending,
            GatewayDecision::Rejected(cause) => SubmitOutcome::Rejected(cause),
        }
    }

    fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> SubmitOutcome {
        match ShardedGateway::submit_request(self, request, now) {
            Verdict::Accepted => SubmitOutcome::Accepted,
            Verdict::Reserved { .. } | Verdict::Deferred { .. } => SubmitOutcome::Pending,
            Verdict::Rejected { cause, .. } => SubmitOutcome::Rejected(cause),
            Verdict::Throttled => SubmitOutcome::Rejected(Infeasible::NotEnoughNodes),
        }
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        for shard in &mut self.shards {
            shard.ctl.replan(now)?;
        }
        Ok(())
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        // Shard-major, controller order within each shard. The within-shard
        // order is load-bearing: a shard's temp schedule commits nodes in
        // policy order, and dispatching a successor before its predecessor
        // would let it occupy a node the predecessor's plan still needs
        // (shards never share nodes, so cross-shard order is free — keeping
        // shard-major order is simply deterministic).
        let mut due = Vec::new();
        for shard in &mut self.shards {
            for (task, plan) in shard.ctl.take_due(now) {
                due.push((task, globalize(plan, shard.offset)));
            }
        }
        self.book.ledger.prune_dispatched(&due);
        due
    }

    fn next_dispatch_due(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.ctl.next_dispatch_due())
            .min()
    }

    fn committed_release(&self, node: usize) -> SimTime {
        let (s, local) = self.shard_of(node);
        self.shards[s].ctl.committed_releases()[local]
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        let (s, local) = self.shard_of(node);
        self.shards[s].ctl.set_node_release(local, time);
    }

    fn waiting_len(&self) -> usize {
        self.shards.iter().map(|s| s.ctl.queue_len()).sum()
    }

    /// Note: the returned plan is in *shard-local* node ids (the engine only
    /// reads its timing fields here; dispatched plans go through
    /// [`Frontend::take_due`], which globalizes them).
    fn find_plan(&self, task: TaskId) -> Option<&TaskPlan> {
        self.shards.iter().find_map(|s| {
            s.ctl
                .queue()
                .iter()
                .find(|(t, _)| t.id == task)
                .map(|(_, p)| p)
        })
    }

    fn on_event(&mut self, now: SimTime) {
        self.retest_deferred(now);
    }

    fn activate(&mut self, now: SimTime) {
        self.activate_reservations(now);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.book.reservations.next_activation()
    }

    fn drain_resolutions(&mut self) -> Vec<(Task, Option<Infeasible>)> {
        std::mem::take(&mut self.book.resolutions)
    }

    fn finalize(&mut self, _now: SimTime) {
        book::flush_all(&mut self.book);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::dlt::homogeneous;

    fn sharded(k: usize, routing: Routing) -> ShardedGateway {
        ShardedGateway::new(
            ClusterParams::paper_baseline(),
            k,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            routing,
            DeferPolicy::default(),
        )
        .unwrap()
    }

    #[test]
    fn shard_partition_covers_all_nodes_exactly_once() {
        for k in [1, 3, 4, 5, 16] {
            let g = sharded(k, Routing::RoundRobin);
            let mut covered = [false; 16];
            for shard in &g.shards {
                for i in 0..shard.len() {
                    let global = shard.offset + i;
                    assert!(!covered[global], "node {global} covered twice (k={k})");
                    covered[global] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "k={k} leaves nodes uncovered");
            let sizes: Vec<usize> = g.shards.iter().map(Shard::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn invalid_shard_counts_error() {
        let p = ClusterParams::paper_baseline();
        let mk = |k| {
            ShardedGateway::new(
                p,
                k,
                AlgorithmKind::EDF_DLT,
                PlanConfig::default(),
                Routing::RoundRobin,
                DeferPolicy::default(),
            )
        };
        assert!(mk(0).is_err());
        assert!(mk(17).is_err());
        assert!(mk(16).is_ok());
    }

    #[test]
    fn round_robin_spreads_accepted_tasks() {
        let mut g = sharded(4, Routing::RoundRobin);
        for i in 0..8 {
            let d = g.submit(Task::new(i, 0.0, 50.0, 1e6), SimTime::ZERO);
            assert!(d.is_accepted());
        }
        assert_eq!(g.shard_queue_lens(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn least_loaded_balances_uneven_bursts() {
        let mut g = sharded(4, Routing::LeastLoaded);
        // A big task lands somewhere; the next ones must avoid that shard.
        assert!(g
            .submit(Task::new(0, 0.0, 800.0, 1e6), SimTime::ZERO)
            .is_accepted());
        for i in 1..4 {
            assert!(g
                .submit(Task::new(i, 0.0, 50.0, 1e6), SimTime::ZERO)
                .is_accepted());
        }
        let lens = g.shard_queue_lens();
        assert_eq!(lens.iter().sum::<usize>(), 4);
        assert_eq!(
            *lens.iter().max().unwrap(),
            1,
            "no shard should get two: {lens:?}"
        );
    }

    #[test]
    fn best_fit_prefers_the_earliest_completion() {
        let p = ClusterParams::paper_baseline();
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        let mut g = sharded(2, Routing::BestFit);
        // A deadline-tight task grabs all of shard 0 (idle tie breaks to 0)…
        assert!(g
            .submit(Task::new(0, 0.0, 400.0, e8 * 1.2), SimTime::ZERO)
            .is_accepted());
        // …so the next task completes at ≈2·e8 there but ≈e8 on shard 1:
        // best-fit must route it to shard 1 even though both would accept.
        assert!(g
            .submit(Task::new(1, 0.0, 400.0, e8 * 2.5), SimTime::ZERO)
            .is_accepted());
        let lens = g.shard_queue_lens();
        assert_eq!(lens, vec![1, 1], "best-fit avoids the busy shard: {lens:?}");
    }

    #[test]
    fn spillover_tries_other_shards_before_rejecting() {
        // Shard 0 saturated; round-robin still admits via shard 1.
        let p = ClusterParams::paper_baseline();
        let mut g = sharded(2, Routing::RoundRobin);
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        // Two tight tasks fill both shards' immediate capacity...
        assert!(g
            .submit(Task::new(0, 0.0, 400.0, e8 * 1.05), SimTime::ZERO)
            .is_accepted());
        assert!(g
            .submit(Task::new(1, 0.0, 400.0, e8 * 1.05), SimTime::ZERO)
            .is_accepted());
        // ...a third tight task fails on its routed shard AND the other.
        let d = g.submit(Task::new(2, 0.0, 400.0, e8 * 1.05), SimTime::ZERO);
        assert!(!d.is_accepted());
        // But a task with queueing slack is accepted by *some* shard even
        // though round-robin would naively route it to the busy one.
        let d = g.submit(Task::new(3, 0.0, 400.0, e8 * 4.0), SimTime::ZERO);
        assert!(d.is_accepted(), "spillover must find shard capacity: {d:?}");
    }

    #[test]
    fn take_due_globalizes_node_ids() {
        let mut g = sharded(4, Routing::RoundRobin);
        for i in 0..4 {
            assert!(g
                .submit(Task::new(i, 0.0, 50.0, 1e6), SimTime::ZERO)
                .is_accepted());
        }
        let due = Frontend::take_due(&mut g, SimTime::ZERO);
        assert_eq!(due.len(), 4);
        let mut seen_nodes: Vec<u32> = Vec::new();
        for (_, plan) in &due {
            for node in &plan.nodes {
                assert!(node.index() < 16, "global node id out of range");
                seen_nodes.push(node.0);
            }
        }
        seen_nodes.sort_unstable();
        seen_nodes.dedup();
        // Four tasks on four distinct shards: nodes from all four quarters.
        assert!(seen_nodes.iter().any(|&n| n < 4));
        assert!(seen_nodes.iter().any(|&n| n >= 12));
    }

    #[test]
    fn quota_aware_routing_skips_tenant_saturated_shards() {
        use crate::request::QuotaPolicy;
        use rtdls_core::prelude::{QosClass, SubmitRequest, TenantId};
        let mut g = sharded(2, Routing::LeastLoaded).with_quota(QuotaPolicy {
            max_shard_inflight: Some(1),
            ..Default::default()
        });
        let mk = |id| SubmitRequest::new(Task::new(id, 0.0, 50.0, 1e6)).with_tenant(TenantId(3));
        // Tenant 3 parks one task on shard 0 (idle tie breaks to 0)…
        assert!(g.submit_request(&mk(1), SimTime::ZERO).is_accepted());
        // …then another tenant loads shard 1 heavily.
        let big = SubmitRequest::new(Task::new(2, 0.0, 800.0, 1e6)).with_tenant(TenantId(9));
        assert!(g.submit_request(&big, SimTime::ZERO).is_accepted());
        assert_eq!(g.shard_queue_lens(), vec![1, 1]);
        // Tenant 3's next task: least-loaded favors shard 0, but the tenant
        // is at its per-shard cap there — routing must skip to shard 1.
        assert!(g.submit_request(&mk(3), SimTime::ZERO).is_accepted());
        assert_eq!(
            g.shard_queue_lens(),
            vec![1, 2],
            "the saturated shard was skipped"
        );
        // At cap on every shard: throttled before the admission test.
        let v = g.submit_request(&mk(4), SimTime::ZERO);
        assert_eq!(v, Verdict::Throttled);
        assert_eq!(g.metrics().throttled, 1);
        // Another tenant routes freely, and premium bypasses the cap.
        let other = SubmitRequest::new(Task::new(5, 0.0, 50.0, 1e6)).with_tenant(TenantId(7));
        assert!(g.submit_request(&other, SimTime::ZERO).is_accepted());
        let premium = mk(6).with_qos(QosClass::Premium);
        assert!(g.submit_request(&premium, SimTime::ZERO).is_accepted());
        // Dispatch frees the waiting liabilities: the tenant submits again.
        Frontend::take_due(&mut g, SimTime::ZERO);
        assert!(g.submit_request(&mk(7), SimTime::ZERO).is_accepted());
    }

    #[test]
    fn batch_dealing_skips_shards_throttled_for_the_anonymous_tenant() {
        use crate::request::QuotaPolicy;
        use rtdls_core::prelude::{SubmitRequest, TenantId};
        let mut g = sharded(2, Routing::LeastLoaded).with_quota(QuotaPolicy {
            max_shard_inflight: Some(1),
            ..Default::default()
        });
        // The anonymous tenant holds one task on shard 0; another tenant
        // makes shard 1 the heavier one.
        assert!(g
            .submit(Task::new(1, 0.0, 50.0, 1e6), SimTime::ZERO)
            .is_accepted());
        let big = SubmitRequest::new(Task::new(2, 0.0, 800.0, 1e6)).with_tenant(TenantId(9));
        assert!(g.submit_request(&big, SimTime::ZERO).is_accepted());
        assert_eq!(g.shard_queue_lens(), vec![1, 1]);
        // Backlog-greedy dealing would hand the batch member to shard 0;
        // the per-shard cap forces it to shard 1.
        let ds = g.submit_batch(&[Task::new(3, 0.0, 50.0, 1e6)], SimTime::ZERO);
        assert!(ds[0].is_accepted());
        assert_eq!(
            g.shard_queue_lens(),
            vec![1, 2],
            "batch dealing skipped the throttled shard"
        );
    }

    #[test]
    fn batch_members_count_against_the_per_shard_cap_as_they_are_dealt() {
        use crate::request::QuotaPolicy;
        use rtdls_core::prelude::{SubmitRequest, TenantId};
        let mut g = sharded(2, Routing::LeastLoaded).with_quota(QuotaPolicy {
            max_shard_inflight: Some(1),
            ..Default::default()
        });
        // Another tenant makes shard 0 the heavy one, so backlog-greedy
        // dealing would put BOTH batch members on shard 1 — the cap must
        // count the batch's own first assignment and push the second back
        // to shard 0.
        let big = SubmitRequest::new(Task::new(10, 0.0, 800.0, 1e6)).with_tenant(TenantId(9));
        assert!(g.submit_request(&big, SimTime::ZERO).is_accepted());
        assert_eq!(g.shard_queue_lens(), vec![1, 0]);
        let burst = [Task::new(1, 0.0, 50.0, 1e6), Task::new(2, 0.0, 50.0, 1e6)];
        let ds = g.submit_batch(&burst, SimTime::ZERO);
        assert!(ds.iter().all(|d| d.is_accepted()));
        assert_eq!(
            g.shard_queue_lens(),
            vec![2, 1],
            "the deal's own accounting enforced the cap mid-batch"
        );
    }

    #[test]
    fn batch_and_single_paths_close_the_books() {
        let p = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let burst: Vec<Task> = (0..20)
            .map(|i| Task::new(i, 0.0, 400.0, e16 * (1.5 + (i % 7) as f64)))
            .collect();
        for routing in [Routing::RoundRobin, Routing::LeastLoaded, Routing::BestFit] {
            let mut g = sharded(4, routing);
            let ds = g.submit_batch(&burst, SimTime::ZERO);
            assert_eq!(ds.len(), 20);
            let m = g.metrics();
            assert_eq!(m.submitted, 20);
            assert_eq!(
                m.accepted_immediate + m.rejected_immediate + m.deferred,
                20,
                "{routing:?}"
            );
            assert_eq!(m.batch_calls, 1);
        }
    }
}
