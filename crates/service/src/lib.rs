//! # rtdls-service
//!
//! The online serving subsystem: an admission **gateway** that turns the
//! paper's per-cluster scheduler (`rtdls-core`) into a high-throughput
//! streaming service.
//!
//! The paper evaluates its Fig. 2 schedulability test offline — a pre-built
//! task list fed to one [`AdmissionController`]. A production front door
//! needs more:
//!
//! * **Request/verdict protocol** ([`Gateway::submit_request`]): a
//!   [`SubmitRequest`] envelope (task + tenant + QoS class + reservation
//!   tolerance) is answered with a five-way [`Verdict`]:
//!   `Accepted / Reserved{start_at, ticket} / Deferred(ticket) /
//!   Rejected(cause) / Throttled`. A *reservation* books the earliest
//!   instant within the tolerance at which the schedulability test passes
//!   (the engine's `earliest_feasible_start`) and auto-activates when the
//!   clock reaches it; near-miss tasks without a usable tolerance park in
//!   an age-aware, retry-bounded [`DeferredQueue`] and are re-tested on
//!   every task completion/admission event. Rescued and activated tasks
//!   carry the same hard deadline guarantee as directly admitted ones
//!   (both re-run the Fig. 2 test at admission).
//! * **Tenant awareness**: per-tenant quotas
//!   ([`QuotaPolicy`](request::QuotaPolicy)) enforced before the test,
//!   and tenant-keyed counters/latency histograms in [`ServiceMetrics`].
//! * **Sharded dispatch** ([`ShardedGateway`]): a large cluster is
//!   partitioned into `K` independent shards, each with its own admission
//!   controller, behind pluggable [`Routing`] (round-robin, least-loaded,
//!   best-fit by earliest estimated completion) — admission cost stays
//!   sub-linear in cluster size.
//! * **Batched submission** (`submit_batch`): a burst is decided through
//!   one amortized temp-schedule pass instead of one full test per task.
//! * **Observability** ([`ServiceMetrics`]): throughput, defer-rescue
//!   rate, and per-decision latency histograms.
//!
//! Both gateways implement the simulator's
//! [`Frontend`](rtdls_sim::frontend::Frontend) trait, so a discrete-event
//! run can route every arrival through the service layer and verify, at
//! run time, that every admitted task (including rescued ones) meets its
//! deadline:
//!
//! ```
//! use rtdls_core::prelude::*;
//! use rtdls_sim::prelude::*;
//! use rtdls_service::prelude::*;
//!
//! let params = ClusterParams::paper_baseline();
//! let gateway = ShardedGateway::new(
//!     params,
//!     4,
//!     AlgorithmKind::EDF_DLT,
//!     PlanConfig::default(),
//!     Routing::LeastLoaded,
//!     DeferPolicy::default(),
//! )
//! .unwrap();
//! let cfg = SimConfig::new(params, AlgorithmKind::EDF_DLT).strict();
//! let tasks = vec![
//!     Task::new(1, 0.0, 200.0, 60_000.0),
//!     Task::new(2, 10.0, 400.0, 90_000.0),
//! ];
//! let (report, gateway) = Simulation::with_frontend(cfg, gateway)
//!     .run_returning_frontend(tasks);
//! assert_eq!(report.metrics.accepted, 2);
//! assert_eq!(report.metrics.deadline_misses, 0);
//! assert_eq!(gateway.metrics().accepted_total(), 2);
//! ```
//!
//! [`AdmissionController`]: rtdls_core::admission::AdmissionController
//! [`Gateway`]: gateway::Gateway
//! [`Gateway::submit_request`]: gateway::Gateway::submit_request
//! [`SubmitRequest`]: rtdls_core::request::SubmitRequest
//! [`Verdict`]: request::Verdict
//! [`ShardedGateway`]: shard::ShardedGateway
//! [`DeferredQueue`]: defer::DeferredQueue
//! [`Routing`]: shard::Routing
//! [`ServiceMetrics`]: metrics::ServiceMetrics

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod book;
pub mod defer;
pub mod gateway;
pub mod metrics;
pub mod observe;
pub mod request;
pub mod reserve;
pub mod shard;
pub mod slo;
pub mod telemetry;
pub mod tenant;

/// One-stop imports for serving-layer users.
pub mod prelude {
    pub use crate::book::ServiceBook;
    pub use crate::defer::{
        latest_feasible_start, DeferOutcome, DeferPolicy, DeferState, DeferTicket, DeferredQueue,
    };
    pub use crate::gateway::Gateway;
    pub use crate::metrics::{
        LatencyHistogram, MetricsSnapshot, ServiceMetrics, TenantCounters, TenantMetrics,
    };
    pub use crate::observe::DecisionUpdate;
    pub use crate::request::{QuotaPolicy, Verdict};
    pub use crate::reserve::{ActivationRecord, Reservation, ReservationBook, ReservationState};
    pub use crate::shard::{Routing, ShardedGateway};
    pub use crate::slo::{
        SloBreach, SloHealth, SloObjective, SloPolicy, SloStatusRow, SloTracker, SloTransition,
        SLO_BREACH_VERSION,
    };
    pub use crate::telemetry::{fold_engine_profile, fold_service_metrics};
    pub use crate::tenant::{TenantLedger, TenantLedgerState};

    /// The legacy v1 verdict. Kept so pre-redesign call sites compile;
    /// new code should consume [`Verdict`] from
    /// [`Gateway::submit_request`](crate::gateway::Gateway::submit_request).
    #[deprecated(
        since = "0.5.0",
        note = "v1 verdict — use `submit_request` and consume `Verdict` instead"
    )]
    pub use crate::gateway::GatewayDecision;
}
