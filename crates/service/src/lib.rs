//! # rtdls-service
//!
//! The online serving subsystem: an admission **gateway** that turns the
//! paper's per-cluster scheduler (`rtdls-core`) into a high-throughput
//! streaming service.
//!
//! The paper evaluates its Fig. 2 schedulability test offline — a pre-built
//! task list fed to one [`AdmissionController`]. A production front door
//! needs more:
//!
//! * **Three-way decisions** ([`Gateway`]): streaming submissions return
//!   `Accept(plan installed) / Defer(ticket) / Reject(reason)`. Near-miss
//!   tasks — schedulable on an idle cluster with slack, just not *right
//!   now* — park in an age-aware, retry-bounded [`DeferredQueue`] and are
//!   re-tested on every task completion/admission event. Rescued tasks
//!   carry the same hard deadline guarantee as directly admitted ones
//!   (rescue *is* a Fig. 2 test, run later).
//! * **Sharded dispatch** ([`ShardedGateway`]): a large cluster is
//!   partitioned into `K` independent shards, each with its own admission
//!   controller, behind pluggable [`Routing`] (round-robin, least-loaded,
//!   best-fit by earliest estimated completion) — admission cost stays
//!   sub-linear in cluster size.
//! * **Batched submission** (`submit_batch`): a burst is decided through
//!   one amortized temp-schedule pass instead of one full test per task.
//! * **Observability** ([`ServiceMetrics`]): throughput, defer-rescue
//!   rate, and per-decision latency histograms.
//!
//! Both gateways implement the simulator's
//! [`Frontend`](rtdls_sim::frontend::Frontend) trait, so a discrete-event
//! run can route every arrival through the service layer and verify, at
//! run time, that every admitted task (including rescued ones) meets its
//! deadline:
//!
//! ```
//! use rtdls_core::prelude::*;
//! use rtdls_sim::prelude::*;
//! use rtdls_service::prelude::*;
//!
//! let params = ClusterParams::paper_baseline();
//! let gateway = ShardedGateway::new(
//!     params,
//!     4,
//!     AlgorithmKind::EDF_DLT,
//!     PlanConfig::default(),
//!     Routing::LeastLoaded,
//!     DeferPolicy::default(),
//! )
//! .unwrap();
//! let cfg = SimConfig::new(params, AlgorithmKind::EDF_DLT).strict();
//! let tasks = vec![
//!     Task::new(1, 0.0, 200.0, 60_000.0),
//!     Task::new(2, 10.0, 400.0, 90_000.0),
//! ];
//! let (report, gateway) = Simulation::with_frontend(cfg, gateway)
//!     .run_returning_frontend(tasks);
//! assert_eq!(report.metrics.accepted, 2);
//! assert_eq!(report.metrics.deadline_misses, 0);
//! assert_eq!(gateway.metrics().accepted_total(), 2);
//! ```
//!
//! [`AdmissionController`]: rtdls_core::admission::AdmissionController
//! [`Gateway`]: gateway::Gateway
//! [`ShardedGateway`]: shard::ShardedGateway
//! [`DeferredQueue`]: defer::DeferredQueue
//! [`Routing`]: shard::Routing
//! [`ServiceMetrics`]: metrics::ServiceMetrics

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod book;
pub mod defer;
pub mod gateway;
pub mod metrics;
pub mod shard;

/// One-stop imports for serving-layer users.
pub mod prelude {
    pub use crate::defer::{
        latest_feasible_start, DeferOutcome, DeferPolicy, DeferState, DeferTicket, DeferredQueue,
    };
    pub use crate::gateway::{Gateway, GatewayDecision};
    pub use crate::metrics::{LatencyHistogram, MetricsSnapshot, ServiceMetrics};
    pub use crate::shard::{Routing, ShardedGateway};
}
