//! Property-based tests for the serving layer.
//!
//! Two families:
//!
//! * **Defer-queue liveness** — no ticket starves: under any policy and any
//!   admission behavior, every ticket leaves the queue within
//!   `max_retries` re-tests (or expiry), and re-tests always visit in age
//!   order.
//! * **Gateway soundness end-to-end** — random clusters, shard counts,
//!   routings, and bursty workloads through the strict simulator: no
//!   phantom accepts (every accepted task, rescued ones included, completes
//!   inside its deadline — strict mode panics otherwise) and the gateway's
//!   books agree with the engine's.
//! * **Reservation soundness** — every `Reserved { start_at }` verdict is
//!   minimal and honest: the task was not admissible at submission time
//!   (δ > 0), no earlier dispatch instant admits it, and resubmitting at
//!   `start_at` (after the dispatches due by then commit) is accepted.

use proptest::prelude::*;

use rtdls_core::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::frontend::Frontend;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

fn defer_policy() -> impl Strategy<Value = DeferPolicy> {
    (1u32..6, 1usize..40, 1usize..50, 0u64..3).prop_map(
        |(max_retries, max_queue, retest_budget, age)| DeferPolicy {
            max_retries,
            max_queue,
            retest_budget,
            // 0 = unbounded age; otherwise an age small enough that the
            // liveness sweeps below actually cross it.
            max_age: (age > 0).then_some(age as f64 * 7.0),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: with an admission oracle that accepts pseudo-randomly (or
    /// never), every ticket departs after a bounded number of sweeps, and
    /// the queue never exceeds its capacity bound.
    #[test]
    fn deferred_queue_never_starves(
        policy in defer_policy(),
        n_tickets in 1usize..60,
        accept_one_in in 0u64..5, // 0 = never accept
        seed in 0u64..1_000,
    ) {
        let mut q = DeferredQueue::new(policy);
        let mut parked = 0usize;
        for i in 0..n_tickets {
            let task = Task::new(i as u64, 0.0, 100.0, 1e9);
            if q
                .push(task, TenantId::default(), QosClass::default(), SimTime::ZERO, SimTime::new(1e9), Infeasible::NotEnoughNodes)
                .is_some()
            {
                parked += 1;
            }
        }
        prop_assert!(q.len() <= policy.max_queue);
        prop_assert_eq!(q.len(), parked.min(policy.max_queue));

        // Worst case: every sweep re-tests only `retest_budget` tickets and
        // each ticket needs `max_retries` failures to leave. Add slack for
        // the interleaving, then require the queue to fully drain.
        let budget = policy.retest_budget.min(parked.max(1));
        let max_sweeps =
            2 + (parked * policy.max_retries as usize).div_ceil(budget) * 2;
        let mut counter = seed;
        let mut sweeps = 0usize;
        let mut departures = 0usize;
        while !q.is_empty() {
            sweeps += 1;
            prop_assert!(
                sweeps <= max_sweeps,
                "queue did not drain in {max_sweeps} sweeps (left: {})",
                q.len()
            );
            let mut last_age: Option<u64> = None;
            let (departed, _) = q.sweep(SimTime::new(sweeps as f64), |t| {
                // Age order: ticket ids are issued in age order and each
                // sweep must offer tasks oldest-first.
                if let Some(prev) = last_age {
                    assert!(t.id.0 > prev || t.id.0 >= prev, "age order violated");
                }
                last_age = Some(t.id.0);
                counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1);
                accept_one_in > 0 && counter % (accept_one_in as u64 + 1) == 0
            });
            departures += departed.len();
            for (ticket, outcome) in &departed {
                prop_assert!(ticket.retries <= policy.max_retries);
                match outcome {
                    DeferOutcome::Evicted => {
                        prop_assert_eq!(ticket.retries, policy.max_retries)
                    }
                    DeferOutcome::Rescued => {}
                    DeferOutcome::Expired => {
                        // The latest feasible start (1e9) never passes in
                        // these sweeps; only the age bound can expire.
                        prop_assert!(
                            policy.max_age.is_some(),
                            "expiry without an age bound"
                        )
                    }
                    DeferOutcome::Flushed => {
                        prop_assert!(false, "no flush in this setup")
                    }
                }
            }
        }
        prop_assert_eq!(departures, parked, "every parked ticket departs exactly once");
    }

    /// Expiry liveness: tickets whose latest feasible start has passed leave
    /// on the next sweep regardless of retry budget.
    #[test]
    fn expired_tickets_always_depart(
        policy in defer_policy(),
        n_tickets in 1usize..30,
        latest in 1.0f64..100.0,
    ) {
        let mut q = DeferredQueue::new(policy);
        for i in 0..n_tickets {
            let task = Task::new(i as u64, 0.0, 100.0, 1e9);
            let _ = q.push(task, TenantId::default(), QosClass::default(), SimTime::ZERO, SimTime::new(latest), Infeasible::NotEnoughNodes);
        }
        let (departed, retests) = q.sweep(SimTime::new(latest + 1.0), |_| false);
        prop_assert_eq!(retests, 0, "expired tickets must not burn re-tests");
        prop_assert!(q.is_empty());
        prop_assert!(departed.iter().all(|(_, o)| *o == DeferOutcome::Expired));
    }
}

fn service_inputs() -> impl Strategy<Value = (ClusterParams, usize, Routing, f64, f64, u64)> {
    (
        4usize..=24, // nodes
        1usize..=4,  // shards
        prop::sample::select(vec![
            Routing::RoundRobin,
            Routing::LeastLoaded,
            Routing::BestFit,
        ]),
        0.3f64..1.3,   // system load
        2.0f64..10.0,  // dc ratio
        0u64..100_000, // seed
    )
        .prop_map(|(n, k, routing, load, dc, seed)| {
            (
                ClusterParams::new(n, 1.0, 100.0).unwrap(),
                k.min(n),
                routing,
                load,
                dc,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end soundness: random sharded gateways under bursty load in
    /// strict mode. Strict mode panics on any deadline miss or estimate
    /// overrun, so the run completing is most of the assertion; the books
    /// must also balance between gateway and engine.
    #[test]
    fn sharded_gateway_has_no_phantom_accepts(
        (params, shards, routing, load, dc, seed) in service_inputs(),
        release_estimate in prop::sample::select(vec![
            ReleaseEstimate::Exact,
            ReleaseEstimate::Uniform,
            ReleaseEstimate::TightPerNode,
        ]),
    ) {
        let plan = PlanConfig { release_estimate, ..Default::default() };
        let mut spec = WorkloadSpec::paper_baseline(load);
        spec.params = params;
        spec.dc_ratio = dc;
        spec.horizon = 60.0 * spec.mean_interarrival();
        let profile = BurstProfile { rate_factor: 3.0, ..BurstProfile::moderate(&spec) };
        let tasks: Vec<Task> = BurstyPoisson::new(spec, profile, seed).collect();
        let n_tasks = tasks.len();

        let gateway = ShardedGateway::new(
            params,
            shards,
            AlgorithmKind::EDF_DLT,
            plan,
            routing,
            DeferPolicy::default(),
        )
        .unwrap();
        let cfg = SimConfig::new(params, AlgorithmKind::EDF_DLT)
            .with_plan(plan)
            .strict()
            .with_trace();
        let (report, gateway) =
            Simulation::with_frontend(cfg, gateway).run_returning_frontend(tasks);

        let m = &report.metrics;
        let g = gateway.metrics();
        prop_assert_eq!(m.arrivals as usize, n_tasks);
        prop_assert_eq!(g.submitted as usize, n_tasks);
        prop_assert_eq!(m.deadline_misses, 0);
        prop_assert_eq!(m.estimate_overruns, 0);
        prop_assert_eq!(m.completed, m.accepted, "no accepted task may vanish");
        prop_assert_eq!(g.accepted_total(), m.accepted, "gateway/engine agree on accepts");
        prop_assert_eq!(g.rejected_total(), m.rejected, "gateway/engine agree on rejects");
        prop_assert_eq!(
            g.accepted_total() + g.rejected_total(),
            g.submitted,
            "every submission resolves exactly once"
        );
        prop_assert_eq!(
            g.rescued + g.defer_evicted + g.defer_expired + g.defer_flushed,
            g.deferred,
            "every defer ticket resolves exactly once"
        );
        let trace = report.trace.expect("traced");
        if let Err(e) = trace.check_consistency() {
            prop_assert!(false, "inconsistent trace: {e}");
        }
        for rec in trace.tasks.iter().filter(|t| t.accepted) {
            let done = rec.actual_completion.expect("accepted tasks complete");
            prop_assert!(
                done.at_or_before_eps(rec.deadline),
                "task {:?} (possibly rescued) finished {done:?} after {:?}",
                rec.task,
                rec.deadline
            );
        }
    }

    /// A sharded gateway accepts nothing a strict per-shard test would not:
    /// determinism check — same seed, same gateway, same outcome.
    #[test]
    fn sharded_gateway_is_deterministic(
        (params, shards, routing, load, dc, seed) in service_inputs(),
    ) {
        let mut spec = WorkloadSpec::paper_baseline(load);
        spec.params = params;
        spec.dc_ratio = dc;
        spec.horizon = 30.0 * spec.mean_interarrival();
        let run = || {
            let tasks: Vec<Task> =
                WorkloadGenerator::new(spec, seed).collect();
            let gateway = ShardedGateway::new(
                params,
                shards,
                AlgorithmKind::EDF_DLT,
                PlanConfig::default(),
                routing,
                DeferPolicy::default(),
            )
            .unwrap();
            let cfg = SimConfig::new(params, AlgorithmKind::EDF_DLT).strict();
            let (report, gateway) =
                Simulation::with_frontend(cfg, gateway).run_returning_frontend(tasks);
            (report.metrics.accepted, report.metrics.rejected, gateway.metrics().rescued)
        };
        prop_assert_eq!(run(), run());
    }

    /// Batched submission decides exactly like sequential policy-order
    /// submission on a fresh gateway (same accepted set, same queue).
    #[test]
    fn batch_equals_sequential_policy_order(
        n_tasks in 1usize..24,
        sigma_scale in 0.5f64..4.0,
        tightness in 1.2f64..6.0,
        seed in 0u64..10_000,
    ) {
        let params = ClusterParams::paper_baseline();
        let e16 = rtdls_core::dlt::homogeneous::exec_time(&params, 200.0, 16);
        let mk = |i: u64| {
            let sigma = 50.0 + sigma_scale * ((seed + i * 37) % 97) as f64 * 4.0;
            let d = e16 * tightness * (1.0 + ((seed + i * 13) % 11) as f64 / 5.0);
            Task::new(i, 0.0, sigma, d)
        };
        let burst: Vec<Task> = (0..n_tasks as u64).map(mk).collect();

        let mut batched = Gateway::new(
            params,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        batched.submit_batch(&burst, SimTime::ZERO);

        let mut sequential = Gateway::new(
            params,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let mut ordered = burst.clone();
        ordered.sort_by(|a, b| {
            a.absolute_deadline()
                .cmp(&b.absolute_deadline())
                .then(a.id.cmp(&b.id))
        });
        for t in &ordered {
            sequential.submit(*t, SimTime::ZERO);
        }

        let queue_ids = |g: &Gateway| -> Vec<u64> {
            g.controller().queue().iter().map(|(t, _)| t.id.0).collect()
        };
        prop_assert_eq!(queue_ids(&batched), queue_ids(&sequential));
        prop_assert_eq!(
            batched.metrics().accepted_immediate,
            sequential.metrics().accepted_immediate
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reservation soundness over random streams, on both admission
    /// engines: whenever the gateway answers `Reserved { start_at }`, the
    /// promise is *minimal* (the task was not admissible at `now`, nor at
    /// any earlier dispatch instant) and *honest* (dispatching the queue
    /// through `start_at` and resubmitting there is accepted). Both
    /// engines must also issue identical verdicts throughout.
    #[test]
    fn reservations_are_minimal_and_honest(
        seed in 0u64..100_000,
        load in 0.8f64..2.5,
        dc in 1.2f64..3.5,
        algorithm in prop::sample::select(vec![
            AlgorithmKind::EDF_DLT,
            AlgorithmKind::EDF_OPR_MN,
        ]),
    ) {
        let params = ClusterParams::paper_baseline();
        let mut spec = WorkloadSpec::paper_baseline(load);
        spec.dc_ratio = dc;
        spec.horizon = 40.0 * spec.mean_interarrival();
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, seed).collect();
        prop_assume!(!tasks.is_empty());
        let mut full = Gateway::new(
            params,
            algorithm,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let mut inc = Gateway::<IncrementalController>::with_engine(
            params,
            algorithm,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        for t in &tasks {
            let now = t.arrival;
            // Advance the world: dispatch everything due by now.
            Frontend::take_due(&mut full, now);
            Frontend::take_due(&mut inc, now);
            let before = full.controller().clone();
            let req = SubmitRequest::new(*t).with_max_delay(Some(t.rel_deadline * 10.0));
            let verdict = full.submit_request(&req, now);
            let verdict_inc = inc.submit_request(&req, now);
            prop_assert_eq!(verdict, verdict_inc, "engines issued different verdicts");
            if let Verdict::Reserved { start_at, .. } = verdict {
                prop_assert!(
                    start_at.definitely_after(now),
                    "a reservation on the rejected path promises δ > 0"
                );
                // Not admissible at submission time.
                prop_assert!(
                    !before.probe(t, now).is_accepted(),
                    "reserved a task that was admissible right away"
                );
                // Minimal: no earlier dispatch instant admits it.
                let earlier: Vec<SimTime> = before
                    .queue()
                    .iter()
                    .map(|(_, p)| p.first_start())
                    .filter(|s| s.definitely_after(now) && *s < start_at)
                    .collect();
                for s in earlier {
                    let mut world = before.clone();
                    let _ = world.take_due(s);
                    prop_assert!(
                        !world.submit(*t, s).is_accepted(),
                        "start_at is not minimal: {s:?} already admits"
                    );
                }
                // Honest: resubmitting at start_at is accepted.
                let mut world = before.clone();
                let _ = world.take_due(start_at);
                prop_assert!(
                    world.submit(*t, start_at).is_accepted(),
                    "promise {start_at:?} dishonored"
                );
            }
        }
    }

    /// The Reserved arm exercised *unconditionally*: randomized variants of
    /// the EDF priority-inversion scenario (an earlier-deadline small task
    /// would starve a snug waiting all-node task — rejected now, feasible
    /// the instant that task dispatches). Every draw must produce a
    /// `Reserved` verdict, on both engines, with the minimal honest start.
    #[test]
    fn crafted_starvation_always_reserves(
        avail in 500.0f64..5_000.0,
        sigma_w in 400.0f64..1_200.0,
        u in 0.4f64..0.9,   // waiting slack as a fraction of the 15-node penalty
        v in 0.35f64..0.85, // candidate slack as a fraction of the waiting slack
        sigma_c in 5.0f64..25.0,
    ) {
        use rtdls_core::dlt::homogeneous;
        let params = ClusterParams::paper_baseline();
        let e16 = homogeneous::exec_time(&params, sigma_w, 16);
        let e15 = homogeneous::exec_time(&params, sigma_w, 15);
        let slack_w = (e15 - e16) * u;
        let slack_c = slack_w * v;
        // The candidate must fit the whole cluster within its own slack
        // (post-dispatch feasibility) but not fit around the waiting task.
        prop_assume!(homogeneous::exec_time(&params, sigma_c, 16) < slack_c * 0.8);
        let algorithm = AlgorithmKind::EDF_OPR_MN;
        let mut full = Gateway::new(
            params,
            algorithm,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let mut inc = Gateway::<IncrementalController>::with_engine(
            params,
            algorithm,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        for node in 0..16 {
            Frontend::set_node_release(&mut full, node, SimTime::new(avail));
            Frontend::set_node_release(&mut inc, node, SimTime::new(avail));
        }
        let w = Task::new(1, 0.0, sigma_w, avail + e16 + slack_w);
        prop_assert!(full.submit(w, SimTime::ZERO).is_accepted());
        prop_assert!(inc.submit(w, SimTime::ZERO).is_accepted());
        let c = Task::new(2, 0.0, sigma_c, avail + e16 + slack_c);
        let req = SubmitRequest::new(c).with_max_delay(Some(avail * 2.0));
        let before = full.controller().clone();
        let verdict = full.submit_request(&req, SimTime::ZERO);
        prop_assert_eq!(verdict, inc.submit_request(&req, SimTime::ZERO));
        let Verdict::Reserved { start_at, .. } = verdict else {
            prop_assert!(false, "expected Reserved, got {verdict:?}");
            unreachable!()
        };
        prop_assert_eq!(start_at, SimTime::new(avail), "minimal start = the dispatch instant");
        prop_assert!(!before.probe(&c, SimTime::ZERO).is_accepted());
        let mut world = before;
        let due = world.take_due(start_at);
        prop_assert_eq!(due.len(), 1);
        prop_assert!(world.submit(c, start_at).is_accepted(), "promise dishonored");
    }
}
