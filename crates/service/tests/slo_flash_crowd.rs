//! The SLO engine's acceptance story, end-to-end through the
//! discrete-event engine: a flash crowd (a deterministic step overload)
//! slams a healthy gateway, the acceptance SLO's multi-window burn-rate
//! alarm walks *healthy → burning → breached*, breach forensics are
//! captured, and once the crowd leaves the alarm recovers — while the
//! latched breach count survives as the permanent record.

use rtdls_core::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

/// The scenario: calm paper-baseline traffic, then a 12× crowd for a
/// window long enough to blow the error budget, then calm again for
/// several long windows so recovery is observable.
fn flash_crowd_tasks() -> (Vec<Task>, FlashCrowd, f64) {
    let mut spec = WorkloadSpec::paper_baseline(0.4);
    let scale = spec.mean_interarrival();
    spec.horizon = 1_200.0 * scale;
    let crowd = FlashCrowd {
        at: 300.0 * scale,
        duration: 150.0 * scale,
        rate_factor: 12.0,
    };
    let tasks: Vec<Task> = crowd.stream(spec, 4242).collect();
    (tasks, crowd, scale)
}

/// An SLO policy scaled to the workload: windows measured in mean
/// interarrivals so both fill well past `min_events` in every phase, and
/// an acceptance target set *below* the paper model's baseline guarantee
/// ratio (~85% at SystemLoad 0.4) — the calm-phase long burn sits near
/// 0.15/0.07 ≈ 2.1, under the slow-burn threshold of 3, while the
/// crowd's ≥50% rejection rate drives both burns past their thresholds.
fn scaled_policy(scale: f64) -> SloPolicy {
    SloPolicy {
        acceptance_target: 0.93,
        short_window: 30.0 * scale,
        long_window: 150.0 * scale,
        ..SloPolicy::default()
    }
}

#[test]
fn flash_crowd_walks_the_burn_alarm_to_breach_and_back() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_DLT;
    let (tasks, crowd, scale) = flash_crowd_tasks();
    assert!(
        tasks.len() > 1_000,
        "the scenario must carry real traffic, got {}",
        tasks.len()
    );

    let mut gateway = Gateway::new(
        params,
        algorithm,
        PlanConfig::default(),
        DeferPolicy::default(),
    );
    gateway.set_slo(SloTracker::new(scaled_policy(scale)));

    let mix = TenantMix::uniform(1);
    let cfg = SimConfig::new(params, algorithm).with_tenants(mix);
    let (report, mut gateway) =
        Simulation::with_frontend(cfg, gateway).run_returning_frontend(tasks);

    // The crowd overwhelmed admission: real rejections happened.
    assert!(
        report.metrics.rejected > 100,
        "a 12x crowd must overload admission, rejected {}",
        report.metrics.rejected
    );

    // The acceptance alarm latched at least one breach on some scope.
    let rows = gateway.slo().rows();
    let acceptance_breaches: u64 = rows
        .iter()
        .filter(|r| r.objective == SloObjective::Acceptance)
        .map(|r| r.breaches)
        .sum();
    assert!(
        acceptance_breaches > 0,
        "the burn alarm must have breached during the crowd: {rows:?}"
    );

    // Recovery: after ~750 mean interarrivals of calm tail (five long
    // windows), no scope is still breached — the alarm is a state
    // machine, not a one-way latch.
    let crowd_end = crowd.at + crowd.duration;
    assert!(
        gateway.slo().last_now() > crowd_end + 300.0 * scale,
        "the run must extend well past the crowd"
    );
    for row in &rows {
        assert_ne!(
            row.state,
            SloHealth::Breached,
            "calm tail must clear the alarm: {row:?}"
        );
    }

    // Breach forensics were captured: versioned records carrying the
    // offending scope's status row and its recent task ids.
    let breaches = gateway.take_breach_log();
    assert!(
        !breaches.is_empty(),
        "every breach transition dumps a forensic record"
    );
    for b in &breaches {
        assert_eq!(b.version, SLO_BREACH_VERSION);
        assert!(b.transition.is_breach());
        assert_eq!(b.transition.to, SloHealth::Breached);
        assert_eq!(b.row.state, SloHealth::Breached);
        let t = b.transition.at.as_f64();
        assert!(
            t >= crowd.at && t <= crowd_end + 200.0 * scale,
            "breaches belong to the crowd window: t={t}, crowd=[{}, {crowd_end}]",
            crowd.at
        );
        if b.transition.tenant.is_some() {
            assert!(
                !b.recent_tasks.is_empty(),
                "tenant-scoped breaches name the recent offenders"
            );
        }
    }

    // Second drain is empty: the log is a hand-off, not a view.
    assert!(gateway.take_breach_log().is_empty());
}

#[test]
fn calm_traffic_never_breaches() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_DLT;
    let mut spec = WorkloadSpec::paper_baseline(0.3);
    let scale = spec.mean_interarrival();
    spec.horizon = 600.0 * scale;
    let tasks: Vec<Task> = WorkloadGenerator::new(spec, 77).collect();

    let mut gateway = Gateway::new(
        params,
        algorithm,
        PlanConfig::default(),
        DeferPolicy::default(),
    );
    gateway.set_slo(SloTracker::new(scaled_policy(scale)));
    let cfg = SimConfig::new(params, algorithm).with_tenants(TenantMix::uniform(1));
    let (_report, mut gateway) =
        Simulation::with_frontend(cfg, gateway).run_returning_frontend(tasks);

    for row in gateway.slo().rows() {
        assert_eq!(row.breaches, 0, "calm load must not breach: {row:?}");
    }
    assert!(gateway.take_breach_log().is_empty());
}
