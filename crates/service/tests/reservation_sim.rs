//! End-to-end reservation and tenancy tests through the discrete-event
//! engine: the reservation's `start_at` is honored by the engine's wakeup
//! event (activation runs *after* the dispatches at that instant commit),
//! and the `SimConfig` tenant mix routes every arrival through the v2
//! request envelope. Strict mode panics on any violated deadline, so each
//! completing run is itself most of the proof.

use rtdls_core::dlt::homogeneous;
use rtdls_core::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

/// The EDF priority-inversion scenario as a pure arrival stream: a filler
/// commits all 16 nodes until exactly `e16(filler)` (DLT/OPR optimal plans
/// finish all nodes simultaneously), a snug all-node OPR task waits behind
/// it, and a small earlier-deadline task would starve the waiting one —
/// rejected at arrival, reserved for the waiting task's dispatch instant,
/// and activated by the engine's wakeup machinery.
#[test]
fn reservation_activates_inside_a_simulation_and_meets_its_deadline() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_OPR_MN;
    let e16 = homogeneous::exec_time(&params, 800.0, 16);
    let e15 = homogeneous::exec_time(&params, 800.0, 15);
    let slack_w = (e15 - e16) * 0.75;
    let slack_c = slack_w * 0.8;
    assert!(homogeneous::exec_time(&params, 10.0, 16) < slack_c);

    let filler = Task::new(0, 0.0, 800.0, e16 * 1.05);
    // Arrives at t=1: all nodes are committed until e16, so it waits there.
    let w = Task::new(1, 1.0, 800.0, (e16 - 1.0) + e16 + slack_w);
    // Arrives at t=2 with the earlier absolute deadline: planned before
    // `w` under EDF, it would starve it — reserved instead.
    let c = Task::new(2, 2.0, 10.0, (e16 - 2.0) + e16 + slack_c);

    let gateway = Gateway::new(
        params,
        algorithm,
        PlanConfig::default(),
        DeferPolicy::default(),
    );
    // Every arrival travels as a v2 request; the tolerance (1× the
    // relative deadline) is ample for the earliest feasible start.
    let mix = TenantMix::uniform(1).with_max_delay_factor(1.0);
    let cfg = SimConfig::new(params, algorithm).with_tenants(mix).strict();
    let (report, gateway) =
        Simulation::with_frontend(cfg, gateway).run_returning_frontend(vec![filler, w, c]);

    let m = gateway.metrics();
    assert_eq!(m.reserved, 1, "the starved task books a reservation");
    assert_eq!(
        m.reservations_activated, 1,
        "the engine wakeup activates it"
    );
    assert_eq!(m.reservation_misses, 0);
    assert_eq!(m.accepted_total(), 3);
    assert_eq!(report.metrics.accepted, 3, "engine books the activation");
    assert_eq!(report.metrics.rejected, 0);
    assert_eq!(
        report.metrics.completed, 3,
        "the reserved task actually ran"
    );
    assert_eq!(report.metrics.deadline_misses, 0);
    assert_eq!(report.metrics.estimate_overruns, 0);
}

/// The same scenario without a reservation tolerance: the legacy path can
/// only *defer* the starved task — no promised start instant, admission
/// contingent on an opportunistic re-test landing after the blocker's
/// dispatch (here one does, off the same-instant release events; a client
/// gets no such guarantee, and a tight retry budget loses the task). The
/// v2 contract difference is the upfront `start_at` promise.
#[test]
fn without_reservations_the_same_task_only_gets_a_ticket() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_OPR_MN;
    let e16 = homogeneous::exec_time(&params, 800.0, 16);
    let e15 = homogeneous::exec_time(&params, 800.0, 15);
    let slack_w = (e15 - e16) * 0.75;
    let slack_c = slack_w * 0.8;
    let filler = Task::new(0, 0.0, 800.0, e16 * 1.05);
    let w = Task::new(1, 1.0, 800.0, (e16 - 1.0) + e16 + slack_w);
    let c = Task::new(2, 2.0, 10.0, (e16 - 2.0) + e16 + slack_c);
    let mk_gateway = |retries| {
        Gateway::new(
            params,
            algorithm,
            PlanConfig::default(),
            DeferPolicy {
                max_retries: retries,
                ..Default::default()
            },
        )
    };
    // Default budget: the ticket is rescued, but only by the lucky
    // post-dispatch re-test — it was never promised anything.
    let cfg = SimConfig::new(params, algorithm).strict();
    let (report, gateway) =
        Simulation::with_frontend(cfg, mk_gateway(16)).run_returning_frontend(vec![filler, w, c]);
    let m = gateway.metrics();
    assert_eq!(m.reserved, 0, "no tolerance, no reservation");
    assert_eq!(m.deferred, 1, "legacy path parks the starved task");
    assert_eq!(report.metrics.deadline_misses, 0);
    // A single-retry budget evicts the ticket at the first (pre-dispatch)
    // re-test: the task is lost where a reservation would have held.
    let (report, gateway) =
        Simulation::with_frontend(cfg, mk_gateway(1)).run_returning_frontend(vec![filler, w, c]);
    let m = gateway.metrics();
    assert_eq!(m.deferred, 1);
    assert_eq!(m.defer_evicted, 1, "the ticket burned its only retry");
    assert_eq!(m.rescued, 0);
    assert_eq!(report.metrics.accepted, 2, "the starved task is lost");
    assert_eq!(report.metrics.deadline_misses, 0);
}

/// Tenant-mix plumbing end to end: a bursty multi-tenant stream through a
/// sharded gateway with quotas; books balance, every tenant is accounted,
/// and strict mode holds every admitted deadline.
#[test]
fn tenant_mix_stream_balances_books_across_shards() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_DLT;
    let mut spec = WorkloadSpec::paper_baseline(1.2);
    spec.dc_ratio = 6.0;
    spec.horizon = 50.0 * spec.mean_interarrival();
    let profile = BurstProfile {
        rate_factor: 3.0,
        ..BurstProfile::moderate(&spec)
    };
    let tasks: Vec<Task> = BurstyPoisson::new(spec, profile, 11).collect();
    let n_tasks = tasks.len();
    assert!(n_tasks > 10);

    let mix = TenantMix {
        tenants: 5,
        premium_tenants: 1,
        best_effort_tenants: 2,
        max_delay_factor: Some(0.5),
    };
    let gateway = ShardedGateway::new(
        params,
        4,
        algorithm,
        PlanConfig::default(),
        Routing::LeastLoaded,
        DeferPolicy::default(),
    )
    .unwrap()
    .with_quota(QuotaPolicy {
        max_inflight: Some(6),
        max_reservations: Some(2),
        ..Default::default()
    });
    let cfg = SimConfig::new(params, algorithm).with_tenants(mix).strict();
    let (report, gateway) = Simulation::with_frontend(cfg, gateway).run_returning_frontend(tasks);

    let m = gateway.metrics();
    assert_eq!(m.submitted as usize, n_tasks);
    assert_eq!(report.metrics.deadline_misses, 0);
    assert_eq!(report.metrics.completed, report.metrics.accepted);
    assert_eq!(m.accepted_total(), report.metrics.accepted);
    // Every submission resolves exactly once, reservations included.
    let parked = m.deferred - (m.rescued + m.defer_evicted + m.defer_expired + m.defer_flushed);
    assert_eq!(parked, 0, "finalize flushed the defer queue");
    assert_eq!(
        m.accepted_total() + m.rejected_total(),
        m.submitted,
        "books balance"
    );
    // The tenant ledgers cover the whole population and agree with the
    // global counters.
    assert_eq!(m.tenants.len(), 5, "all five tenants submitted");
    let by_tenant: u64 = m.tenants.iter().map(|(_, c)| c.submitted).sum();
    assert_eq!(by_tenant, m.submitted);
    let accepted_by_tenant: u64 = m.tenants.iter().map(|(_, c)| c.accepted).sum();
    assert_eq!(
        accepted_by_tenant,
        m.accepted_immediate + m.rescued + m.reservations_activated
    );
    // The premium tenant (id 0) is quota-exempt: it can never be throttled.
    assert_eq!(m.tenants.get(TenantId(0)).unwrap().throttled, 0);
}
