//! Wall-clock TCP transport for the [`ShipMsg`] protocol.
//!
//! The sim harness proves the protocol correct under seeded faults; this
//! module carries the *identical* messages over a real socket for the
//! `failover` example and ops smoke tests. Framing is deliberately boring:
//! each message is its JSON encoding behind a little-endian `u32` length
//! prefix — torn reads surface as short frames, never as misparsed ones.
//!
//! Two small blocking endpoints:
//!
//! * [`ShipClient`] — the primary side: connects out, sends frames and
//!   heartbeats, polls for acks with a read timeout so a silent follower
//!   never wedges the primary's hot path.
//! * [`FollowerServer`] — accepts one primary at a time and feeds every
//!   message into a [`Follower`], acking back. Read-timeout silence is the
//!   wall-clock analogue of the sim's heartbeat-loss detector: the caller
//!   decides when the silence budget is spent and promotes.
//!
//! Timestamps handed to the follower are seconds since the server started
//! — the follower only compares them against its own `promote_after`
//! window, so any monotonic clock works.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rtdls_core::prelude::SimTime;
use rtdls_journal::prelude::Recoverable;

use crate::follower::Follower;
use crate::ship::ShipMsg;

/// Writes one length-prefixed message.
pub fn write_msg(stream: &mut TcpStream, msg: &ShipMsg) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "message too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Reads one length-prefixed message. `Ok(None)` means clean EOF at a
/// frame boundary; timeouts surface as `WouldBlock`/`TimedOut` errors.
pub fn read_msg(stream: &mut TcpStream) -> io::Result<Option<ShipMsg>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let msg = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(msg))
}

/// The primary-side socket: sends frames/heartbeats, polls for acks.
pub struct ShipClient {
    stream: TcpStream,
}

impl ShipClient {
    /// Connects to a [`FollowerServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ShipClient { stream })
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &ShipMsg) -> io::Result<()> {
        write_msg(&mut self.stream, msg)
    }

    /// Waits up to `timeout` for one reply; `Ok(None)` = nothing arrived
    /// (or clean EOF), which the caller treats as "no progress yet".
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<ShipMsg>> {
        self.stream.set_read_timeout(Some(timeout))?;
        match read_msg(&mut self.stream) {
            Ok(msg) => Ok(msg),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// The follower-side socket: accepts a primary and replays its stream.
pub struct FollowerServer<G: Recoverable> {
    listener: TcpListener,
    follower: Follower<G>,
    started: Instant,
}

impl<G: Recoverable> FollowerServer<G> {
    /// Binds `addr` (use port 0 to let the OS pick) around `follower`.
    pub fn bind(addr: impl ToSocketAddrs, follower: Follower<G>) -> io::Result<Self> {
        Ok(FollowerServer {
            listener: TcpListener::bind(addr)?,
            follower,
            started: Instant::now(),
        })
    }

    /// The bound address, for handing to [`ShipClient::connect`].
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Wall-clock now, in the follower's sim-time coordinates.
    pub fn now(&self) -> SimTime {
        SimTime::new(self.started.elapsed().as_secs_f64())
    }

    /// Accepts one primary connection and pumps its stream until the
    /// socket goes silent for `silence` (heartbeat loss), disconnects, or
    /// errors. Returns the number of messages processed. Afterwards the
    /// caller inspects [`FollowerServer::follower_mut`] — typically to
    /// check [`Follower::should_promote`] and promote.
    pub fn serve_connection(&mut self, silence: Duration) -> io::Result<u64> {
        let (mut stream, _peer) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(silence))?;
        let mut processed = 0u64;
        // A primary that dies between sending frames and reading our acks
        // is the normal failover prelude, not a serving error: when an ack
        // write breaks, stop acking but keep draining the frames it
        // already sent — every byte it shipped should reach the mirror.
        let mut peer_writable = true;
        loop {
            match read_msg(&mut stream) {
                Ok(Some(msg)) => {
                    processed += 1;
                    let now = self.now();
                    let reply = self
                        .follower
                        .on_msg(now, msg)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    if let Some(ack) = reply {
                        if peer_writable {
                            match write_msg(&mut stream, &ack) {
                                Ok(()) => {}
                                Err(e)
                                    if e.kind() == io::ErrorKind::BrokenPipe
                                        || e.kind() == io::ErrorKind::ConnectionReset =>
                                {
                                    peer_writable = false;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Ok(None) => return Ok(processed),
                // WouldBlock/TimedOut: heartbeat silence — the caller's
                // failure detector takes over. ConnectionReset: a primary
                // that died with our unread acks still in its buffer
                // resets instead of closing; same meaning as EOF here.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::ConnectionReset =>
                {
                    return Ok(processed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The wrapped follower.
    pub fn follower(&self) -> &Follower<G> {
        &self.follower
    }

    /// Mutable access, for promotion after the silence budget is spent.
    pub fn follower_mut(&mut self) -> &mut Follower<G> {
        &mut self.follower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_the_wire_framing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let msgs = vec![
            ShipMsg::frame(3, 17, vec![0, 1, 2, 254, 255]),
            ShipMsg::Heartbeat { epoch: 3, head: 18 },
            ShipMsg::Ack { seq: 18 },
        ];
        let sent = msgs.clone();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for m in &sent {
                write_msg(&mut stream, m).unwrap();
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut got = Vec::new();
        while let Some(m) = read_msg(&mut stream).unwrap() {
            got.push(m);
        }
        writer.join().unwrap();
        assert_eq!(got, msgs);
    }
}
