//! [`ShippingGateway`]: a journaled primary with replication riding along.
//!
//! This is the deployable bundle the edge serves: a [`JournaledGateway`]
//! plus the [`Shipper`] on its journal, and optionally a live TCP
//! [`ShipClient`] to a follower. Every [`pump`](ShippingGateway::pump)
//! turns freshly appended journal frames into outbound [`ShipMsg`]s and
//! drains any acks the follower sent back.
//!
//! Shipping must never make the admission hot path hostage to the
//! follower:
//!
//! * frames go out through a **non-blocking-ish** send (a dead follower
//!   surfaces as an error; the transport is dropped, a counter ticks, and
//!   the primary keeps serving solo — replication is an availability
//!   feature, not a durability gate);
//! * acks are only *polled* at heartbeat cadence, not awaited — they feed
//!   retransmission bookkeeping and the lag gauge, neither of which is
//!   latency-critical.
//!
//! Without a transport attached, outbound messages accumulate in an
//! outbox the owner drains by hand — the mode tests, benches, and custom
//! transports use.

use std::time::Duration;

use rtdls_core::prelude::SimTime;
use rtdls_journal::prelude::{JournaledGateway, Recoverable};
use rtdls_telemetry::MetricsRegistry;

use crate::net::ShipClient;
use crate::ship::{ShipConfig, ShipMsg, Shipper};
use crate::telemetry::fold_replication_metrics;

/// How long one ack poll may block the pump. Acks are polled once per
/// heartbeat interval, so this bounds the shipping tax on an edge turn.
const ACK_POLL_BUDGET: Duration = Duration::from_millis(1);

/// A journaled gateway that ships its journal as it grows.
pub struct ShippingGateway<G: Recoverable> {
    inner: JournaledGateway<G>,
    shipper: Shipper,
    transport: Option<ShipClient>,
    outbox: Vec<ShipMsg>,
    last_ack_poll: Option<SimTime>,
    heartbeat_every: f64,
    transport_errors: u64,
}

impl<G: Recoverable> ShippingGateway<G> {
    /// Wraps `inner`, shipping under `cfg`. No transport is attached yet:
    /// outbound messages buffer in the outbox until
    /// [`attach`](ShippingGateway::attach) or
    /// [`take_outbox`](ShippingGateway::take_outbox).
    pub fn new(inner: JournaledGateway<G>, cfg: ShipConfig) -> Self {
        let heartbeat_every = cfg.heartbeat_every;
        ShippingGateway {
            inner,
            shipper: Shipper::new(cfg),
            transport: None,
            outbox: Vec::new(),
            last_ack_poll: None,
            heartbeat_every,
            transport_errors: 0,
        }
    }

    /// Attaches a live connection to a follower. Anything already in the
    /// outbox is flushed through it first (the follower deduplicates by
    /// offset, so a re-send is harmless).
    pub fn attach(&mut self, transport: ShipClient) {
        self.transport = Some(transport);
        let queued: Vec<ShipMsg> = self.outbox.drain(..).collect();
        for msg in queued {
            self.send(msg);
        }
    }

    /// Whether a transport is currently attached (it detaches itself on
    /// the first send error).
    pub fn connected(&self) -> bool {
        self.transport.is_some()
    }

    /// Ships everything appended since the last pump and polls for acks.
    /// Call after every state-changing gateway operation — the edge does
    /// it once per reactor turn.
    pub fn pump(&mut self, now: SimTime) {
        for msg in self.shipper.poll(self.inner.journal(), now) {
            self.send(msg);
        }
        self.poll_acks(now);
    }

    fn send(&mut self, msg: ShipMsg) {
        match &mut self.transport {
            Some(client) => {
                if let Err(_e) = client.send(&msg) {
                    // The follower is gone (or the pipe broke). Shipping
                    // is best-effort by design: drop the transport, count
                    // the loss, keep serving. Unacked frames stay owned by
                    // the shipper and re-ship wholesale on reattach.
                    self.transport = None;
                    self.transport_errors += 1;
                    self.outbox.push(msg);
                }
            }
            None => self.outbox.push(msg),
        }
    }

    fn poll_acks(&mut self, now: SimTime) {
        if self.transport.is_none() {
            return;
        }
        let due = match self.last_ack_poll {
            None => true,
            Some(last) => now.as_f64() - last.as_f64() >= self.heartbeat_every,
        };
        if !due {
            return;
        }
        self.last_ack_poll = Some(now);
        // Drain whatever is already buffered; the budget bounds the wait
        // for the first message, subsequent reads hit warm buffers.
        while let Some(client) = self.transport.as_mut() {
            match client.recv_timeout(ACK_POLL_BUDGET) {
                Ok(Some(ShipMsg::Ack { seq })) => self.shipper.on_ack(seq, now),
                Ok(Some(_)) => {} // followers only send acks; ignore
                Ok(None) => break,
                Err(_) => {
                    self.transport = None;
                    self.transport_errors += 1;
                }
            }
        }
    }

    /// Applies one ack by hand — the outbox-mode counterpart of the
    /// transport's ack poll.
    pub fn on_ack(&mut self, seq: u64, now: SimTime) {
        self.shipper.on_ack(seq, now);
    }

    /// Drains the buffered outbound messages (outbox mode).
    pub fn take_outbox(&mut self) -> Vec<ShipMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// The wrapped journaled gateway.
    pub fn inner(&self) -> &JournaledGateway<G> {
        &self.inner
    }

    /// Mutable access to the wrapped journaled gateway. State changes made
    /// through it ship on the next [`pump`](ShippingGateway::pump).
    pub fn inner_mut(&mut self) -> &mut JournaledGateway<G> {
        &mut self.inner
    }

    /// Unwraps, dropping the replication channel.
    pub fn into_inner(self) -> JournaledGateway<G> {
        self.inner
    }

    /// The shipper (ship/ack offsets, retransmission stats).
    pub fn shipper(&self) -> &Shipper {
        &self.shipper
    }

    /// Attaches a trace handle to both the wrapped gateway and the
    /// shipper, so shipped frames carry the request's trace id and its
    /// primary-side spans across the wire.
    pub fn attach_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        self.inner.attach_telemetry(telemetry);
        self.shipper.attach_telemetry(telemetry);
    }

    /// Attaches a profiler to the journal, the planning core, and the
    /// shipper's poll/ack phases.
    pub fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        self.inner.attach_profiler(profiler);
        self.shipper.attach_profiler(profiler);
    }

    /// Frames appended but not yet acked by the follower — the admitted
    /// history a failover right now would lose. `None` when no follower
    /// has ever acked (nothing is known about the other side).
    pub fn ack_lag(&self) -> Option<u64> {
        if self.shipper.acked() == 0 && self.transport.is_none() && self.transport_errors == 0 {
            return None;
        }
        Some(
            self.inner
                .journal()
                .next_seq()
                .saturating_sub(self.shipper.acked()),
        )
    }

    /// Send failures observed so far (each one detaches the transport).
    pub fn transport_errors(&self) -> u64 {
        self.transport_errors
    }

    /// Folds the gateway's metrics plus the replication view: everything
    /// [`JournaledGateway::fold_metrics`] folds, the
    /// `rtdls_replica_*` offsets/lag, and the transport health gauges.
    pub fn fold_metrics(&self, reg: &mut MetricsRegistry) {
        self.inner.fold_metrics(reg);
        fold_replication_metrics(reg, &self.shipper, self.inner.journal());
        reg.gauge(
            "rtdls_replica_connected",
            &[],
            if self.transport.is_some() { 1.0 } else { 0.0 },
        );
        reg.counter("rtdls_replica_transport_errors", &[], self.transport_errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::follower::{Follower, FollowerConfig};
    use crate::net::FollowerServer;
    use rtdls_core::prelude::*;
    use rtdls_journal::prelude::*;
    use rtdls_service::prelude::*;

    fn primary() -> JournaledGateway<Gateway> {
        let gw = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        JournaledGateway::new(
            gw,
            JournalConfig {
                snapshot_every: 0,
                compact_on_snapshot: false,
            },
        )
    }

    #[test]
    fn outbox_mode_ships_on_pump_and_applies_manual_acks() {
        let mut gw = ShippingGateway::new(primary(), ShipConfig::default());
        gw.inner_mut()
            .submit(Task::new(1, 0.0, 20.0, 2_000.0), SimTime::ZERO);
        gw.pump(SimTime::ZERO);
        let msgs = gw.take_outbox();
        assert!(
            msgs.iter().any(|m| matches!(m, ShipMsg::Frame { .. })),
            "{msgs:?}"
        );
        let mut follower: Follower<Gateway> = Follower::new(FollowerConfig::default());
        let mut last_ack = None;
        for msg in msgs {
            if let Some(ShipMsg::Ack { seq }) = follower.on_msg(SimTime::ZERO, msg).unwrap() {
                last_ack = Some(seq);
            }
        }
        gw.on_ack(last_ack.expect("follower acked"), SimTime::ZERO);
        assert_eq!(gw.shipper().lag(gw.inner().journal()), 0);
        assert_eq!(follower.bytes(), gw.inner().journal().bytes());
    }

    #[test]
    fn tcp_transport_replicates_into_a_follower_server() {
        let follower: Follower<Gateway> = Follower::new(FollowerConfig::default());
        let mut server = FollowerServer::bind("127.0.0.1:0", follower).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let n = server
                .serve_connection(Duration::from_millis(400))
                .expect("serve");
            (server, n)
        });

        let mut gw = ShippingGateway::new(primary(), ShipConfig::default());
        gw.attach(ShipClient::connect(addr).expect("connect"));
        for (i, t) in [0.0, 10.0, 20.0].iter().enumerate() {
            gw.inner_mut()
                .submit(Task::new(i as u64, *t, 20.0, 2_000.0), SimTime::new(*t));
            gw.pump(SimTime::new(*t));
        }
        let wal = gw.inner().journal().bytes().to_vec();
        drop(gw); // primary "dies": socket closes, server returns on EOF

        let (server, processed) = handle.join().expect("server thread");
        assert!(processed >= 4, "genesis + three submissions: {processed}");
        assert_eq!(server.follower().bytes(), &wal[..]);
    }

    #[test]
    fn fold_covers_gateway_and_replication_views() {
        let mut gw = ShippingGateway::new(primary(), ShipConfig::default());
        gw.inner_mut()
            .submit(Task::new(1, 0.0, 20.0, 2_000.0), SimTime::ZERO);
        gw.pump(SimTime::ZERO);
        let mut reg = MetricsRegistry::new();
        gw.fold_metrics(&mut reg);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_gateway_submitted"), "{text}");
        assert!(text.contains("rtdls_journal_events_appended"), "{text}");
        assert!(text.contains("rtdls_replica_shipped_offset"), "{text}");
        assert!(text.contains("rtdls_replica_connected 0"), "{text}");
    }
}
