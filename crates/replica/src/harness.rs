//! The deterministic whole-system failover harness.
//!
//! [`ReplicaFrontend`] packages a complete replication deployment — a
//! journaled shard primary, the [`Shipper`] on its journal, two
//! [`FaultyLink`]s (frames out, acks back), and a warm-standby
//! [`Follower`] — behind the simulator's [`Frontend`] trait, so the
//! discrete-event engine drives the *entire* failover story as one seeded,
//! replayable run:
//!
//! 1. **Primary phase** — every frontend call pumps the channel: new
//!    journal frames ship through the lossy link, the follower replays
//!    them and acks, heartbeats keep the failure detector fed. Heartbeat
//!    cadence is driven through [`Frontend::next_wakeup`], so the channel
//!    stays live even when the cluster is idle.
//! 2. **Kill** — at [`FailoverPlan::kill_at`] the primary process dies
//!    mid-stream: its in-memory gateway is dropped, its unacked journal
//!    tail is stashed as the **zombie** (the appends a partitioned primary
//!    still believes it committed). Submissions now bounce, node releases
//!    buffer — the modeled worker nodes outlive the head node.
//! 3. **Promotion** — when the follower's heartbeat silence exceeds its
//!    timeout, the harness applies the buffered releases to the standby,
//!    promotes it under `epoch + 1` (strict re-admission, demotions
//!    journaled — exactly crash recovery's pass), and re-points the
//!    frontend at the promoted gateway. The zombie's late appends are then
//!    delivered to the still-alive follower and provably fenced.
//!
//! Every random draw in the run comes from the engine's deterministic
//! event order plus the two links' seeded RNGs: the same
//! [`FailoverPlan`] over the same workload replays bit-identically,
//! mirror bytes included.

use rtdls_core::prelude::{
    AdmissionFailure, Infeasible, SimTime, SubmitRequest, Task, TaskId, TaskPlan,
};
use rtdls_journal::prelude::{GatewaySnapshot, JournalConfig, JournaledGateway, Recoverable};
use rtdls_sim::config::SimConfig;
use rtdls_sim::engine::{SimReport, Simulation};
use rtdls_sim::frontend::{Frontend, SubmitOutcome};
use rtdls_sim::net::{FaultPlan, FaultyLink, LinkStats};

use crate::follower::{Follower, FollowerConfig, FollowerStats, Promotion};
use crate::ship::{ShipConfig, ShipMsg, ShipStats, Shipper};

/// Everything that can go wrong, and when: the script for one seeded
/// failover scenario.
#[derive(Clone, Debug)]
pub struct FailoverPlan {
    /// Sim-time at which the primary process dies. `f64::INFINITY` (the
    /// [`FailoverPlan::no_kill`] control arm) means it never does.
    pub kill_at: SimTime,
    /// Fault model for the primary → follower frame link.
    pub fault: FaultPlan,
    /// Fault model for the follower → primary ack link.
    pub ack_fault: FaultPlan,
    /// Shipping cadence (heartbeats, retransmission).
    pub ship: ShipConfig,
    /// Follower failure-detector tunables.
    pub follower: FollowerConfig,
    /// Journal config the promoted gateway runs under.
    pub journal: JournalConfig,
}

impl FailoverPlan {
    /// Kill the primary at `kill_at`, over clean links seeded from `seed`.
    pub fn kill_at(kill_at: SimTime, seed: u64) -> Self {
        FailoverPlan {
            kill_at,
            fault: FaultPlan::clean(seed),
            ack_fault: FaultPlan::clean(seed.wrapping_add(1)),
            ship: ShipConfig::default(),
            follower: FollowerConfig::default(),
            journal: JournalConfig::default(),
        }
    }

    /// The control arm: the primary never dies.
    pub fn no_kill(seed: u64) -> Self {
        Self::kill_at(SimTime::new(f64::INFINITY), seed)
    }

    /// Replaces the frame-link fault model.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the ack-link fault model.
    pub fn with_ack_fault(mut self, fault: FaultPlan) -> Self {
        self.ack_fault = fault;
        self
    }

    /// Replaces the shipping cadence.
    pub fn with_ship(mut self, ship: ShipConfig) -> Self {
        self.ship = ship;
        self
    }

    /// Replaces the follower tunables.
    pub fn with_follower(mut self, follower: FollowerConfig) -> Self {
        self.follower = follower;
        self
    }

    /// Replaces the promoted gateway's journal config.
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        self.journal = journal;
        self
    }
}

/// Which process currently answers for the shard.
pub enum Role<G: Recoverable> {
    /// The original primary is alive.
    Primary(JournaledGateway<G>),
    /// The primary is dead and the follower has not yet promoted: the
    /// outage window. Submissions are rejected, releases buffer.
    Down,
    /// The promoted follower answers.
    Promoted(JournaledGateway<G>),
}

/// The forensic record of one failover run, for assertions and ops.
#[derive(Clone, Debug, PartialEq)]
pub struct FailoverOutcome {
    /// When the primary died (`None` in the control arm).
    pub killed_at: Option<SimTime>,
    /// When the follower promoted.
    pub promoted_at: Option<SimTime>,
    /// What promotion produced (new epoch, demotions, prefix length).
    pub promotion: Option<Promotion>,
    /// The follower's applied journal prefix at the promotion instant —
    /// the bytes a reference recovery must reproduce the new primary from.
    pub shipped_prefix: Vec<u8>,
    /// The promoted gateway's normalized state immediately after the
    /// re-admission pass (before any post-promotion traffic).
    pub promoted_genesis: Option<GatewaySnapshot>,
    /// The dead primary's full journal at the kill instant (includes the
    /// unshipped tail the failover necessarily loses).
    pub primary_wal: Vec<u8>,
    /// Frames the dead primary had appended but the follower never acked —
    /// delivered post-promotion as the zombie's late traffic.
    pub zombie_frames: u64,
    /// Node releases that arrived during the outage window, replayed into
    /// the standby before promotion.
    pub buffered_releases: Vec<(usize, SimTime)>,
    /// Submissions rejected because they arrived during the outage.
    pub lost_submissions: u64,
    /// Follower counters (fenced, duplicates, fast-forwards…).
    pub follower: FollowerStats,
    /// Frame-link traffic accounting.
    pub link: LinkStats,
    /// Ack-link traffic accounting.
    pub acks: LinkStats,
    /// Shipper counters.
    pub ship: ShipStats,
}

/// A primary + channel + follower deployment driven as one [`Frontend`].
pub struct ReplicaFrontend<G: Recoverable> {
    plan: FailoverPlan,
    role: Role<G>,
    shipper: Shipper,
    /// Primary → follower frames and heartbeats.
    link: FaultyLink<ShipMsg>,
    /// Follower → primary acks.
    acks: FaultyLink<ShipMsg>,
    follower: Follower<G>,
    /// Node releases seen while Down, replayed at promotion.
    buffered_releases: Vec<(usize, SimTime)>,
    /// The dead primary's unacked tail, re-delivered post-promotion.
    zombie: Vec<ShipMsg>,
    killed_at: Option<SimTime>,
    promoted_at: Option<SimTime>,
    promotion: Option<Promotion>,
    shipped_prefix: Vec<u8>,
    promoted_genesis: Option<GatewaySnapshot>,
    primary_wal: Vec<u8>,
    zombie_frames: u64,
    lost_submissions: u64,
}

impl<G: Recoverable> ReplicaFrontend<G> {
    /// Deploys `primary` with a fresh follower under `plan`.
    pub fn new(primary: JournaledGateway<G>, plan: FailoverPlan) -> Self {
        let shipper = Shipper::new(plan.ship);
        let link = FaultyLink::new(plan.fault.clone());
        let acks = FaultyLink::new(plan.ack_fault.clone());
        let follower = Follower::new(plan.follower);
        ReplicaFrontend {
            plan,
            role: Role::Primary(primary),
            shipper,
            link,
            acks,
            follower,
            buffered_releases: Vec::new(),
            zombie: Vec::new(),
            killed_at: None,
            promoted_at: None,
            promotion: None,
            shipped_prefix: Vec::new(),
            promoted_genesis: None,
            primary_wal: Vec::new(),
            zombie_frames: 0,
            lost_submissions: 0,
        }
    }

    /// One channel round at sim-time `now`: kill if due, ship, deliver
    /// frames to the follower, deliver acks back, promote if due. Called
    /// at the top of every timestamped frontend method, so the channel
    /// advances exactly as fast as the event clock.
    fn pump(&mut self, now: SimTime) {
        if matches!(self.role, Role::Primary(_)) && now >= self.plan.kill_at {
            self.kill(now);
        }
        self.ship(now);
        for msg in self.link.deliver_due(now) {
            let reply = self
                .follower
                .on_msg(now, msg)
                .expect("shipped frames decode cleanly");
            if let Some(ack) = reply {
                self.acks.send(now, ack);
            }
        }
        for msg in self.acks.deliver_due(now) {
            // Acks addressed to a dead primary die with it.
            if let (Role::Primary(_), ShipMsg::Ack { seq }) = (&self.role, &msg) {
                self.shipper.on_ack(*seq, now);
            }
        }
        if matches!(self.role, Role::Down) && self.follower.should_promote(now) {
            self.promote(now);
        }
    }

    /// Ships whatever the journal owes the channel (primary phase only).
    fn ship(&mut self, now: SimTime) {
        if let Role::Primary(gw) = &self.role {
            for msg in self.shipper.poll(gw.journal(), now) {
                self.link.send(now, msg);
            }
        }
    }

    /// The primary process dies: drop its in-memory state, keep its
    /// journal bytes for forensics, and stash the unacked tail as the
    /// zombie — stamped with the dying epoch, exactly as a partitioned
    /// primary would later try to ship it.
    fn kill(&mut self, now: SimTime) {
        let dead = std::mem::replace(&mut self.role, Role::Down);
        if let Role::Primary(gw) = dead {
            self.primary_wal = gw.journal().bytes().to_vec();
            let epoch = gw.journal().epoch();
            let (start, frames) = gw.journal().frames_from(self.shipper.acked());
            self.zombie = frames
                .iter()
                .enumerate()
                .map(|(i, bytes)| ShipMsg::frame(epoch, start + i as u64, bytes.to_vec()))
                .collect();
            self.zombie_frames = self.zombie.len() as u64;
            self.killed_at = Some(now);
        }
    }

    /// Heartbeat silence exceeded the follower's timeout: promote.
    fn promote(&mut self, now: SimTime) {
        self.shipped_prefix = self.follower.bytes().to_vec();
        // Node releases that landed during the outage reach the standby
        // before the re-admission pass judges feasibility.
        if let Some(standby) = self.follower.standby_mut() {
            for &(node, time) in &self.buffered_releases {
                Frontend::set_node_release(standby, node, time);
            }
        }
        let (promoted, record) = self
            .follower
            .promote(now, self.plan.journal, None)
            .expect("should_promote implies a standby exists");
        self.promoted_genesis = Some(promoted.inner().capture().normalized());
        self.promotion = Some(record);
        self.promoted_at = Some(now);
        // The zombie wakes up and ships its tail. The still-alive follower
        // object is the fence: every frame carries the dead epoch.
        for msg in std::mem::take(&mut self.zombie) {
            let _ = self.follower.on_msg(now, msg);
        }
        self.role = Role::Promoted(promoted);
    }

    /// Attaches a trace handle to the *primary process*: the primary
    /// gateway records its pipeline spans into it, and the shipper copies
    /// each frame's spans onto the wire. Models the head node's recorder —
    /// it dies with the kill.
    pub fn attach_primary_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        if let Role::Primary(g) = &mut self.role {
            g.attach_telemetry(telemetry);
        }
        self.shipper.attach_telemetry(telemetry);
    }

    /// Attaches a trace handle to the *follower process*: replayed frames
    /// re-record the shipped primary spans plus their own
    /// `follower_replay` spans, and promotion hands the handle to the
    /// promoted gateway. Models the standby node's recorder — the one that
    /// survives the failover.
    pub fn attach_follower_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        self.follower.attach_telemetry(telemetry);
    }

    /// Consumes the frontend, returning the live gateway (promoted after a
    /// failover) — e.g. to put it behind an edge server and serve timeline
    /// queries from the surviving process.
    pub fn into_gateway(self) -> Option<JournaledGateway<G>> {
        match self.role {
            Role::Primary(g) | Role::Promoted(g) => Some(g),
            Role::Down => None,
        }
    }

    /// Which process currently answers for the shard.
    pub fn role(&self) -> &Role<G> {
        &self.role
    }

    /// The live gateway, if any (primary before the kill, promoted after).
    pub fn gateway(&self) -> Option<&JournaledGateway<G>> {
        match &self.role {
            Role::Primary(g) | Role::Promoted(g) => Some(g),
            Role::Down => None,
        }
    }

    /// The follower (post-promotion: the fence).
    pub fn follower(&self) -> &Follower<G> {
        &self.follower
    }

    /// The shipper (meaningful during the primary phase).
    pub fn shipper(&self) -> &Shipper {
        &self.shipper
    }

    /// The forensic record of the run so far.
    pub fn outcome(&self) -> FailoverOutcome {
        FailoverOutcome {
            killed_at: self.killed_at,
            promoted_at: self.promoted_at,
            promotion: self.promotion.clone(),
            shipped_prefix: self.shipped_prefix.clone(),
            promoted_genesis: self.promoted_genesis.clone(),
            primary_wal: self.primary_wal.clone(),
            zombie_frames: self.zombie_frames,
            buffered_releases: self.buffered_releases.clone(),
            lost_submissions: self.lost_submissions,
            follower: self.follower.stats(),
            link: self.link.stats(),
            acks: self.acks.stats(),
            ship: self.shipper.stats(),
        }
    }
}

impl<G: Recoverable> Frontend for ReplicaFrontend<G> {
    fn submit(&mut self, task: Task, now: SimTime) -> SubmitOutcome {
        self.pump(now);
        let out = match &mut self.role {
            Role::Primary(g) => Frontend::submit(g, task, now),
            Role::Down => {
                self.lost_submissions += 1;
                SubmitOutcome::Rejected(Infeasible::NotEnoughNodes)
            }
            Role::Promoted(g) => Frontend::submit(g, task, now),
        };
        self.ship(now);
        out
    }

    fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> SubmitOutcome {
        self.pump(now);
        let out = match &mut self.role {
            Role::Primary(g) => Frontend::submit_request(g, request, now),
            Role::Down => {
                self.lost_submissions += 1;
                SubmitOutcome::Rejected(Infeasible::NotEnoughNodes)
            }
            Role::Promoted(g) => Frontend::submit_request(g, request, now),
        };
        self.ship(now);
        out
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        self.pump(now);
        let out = match &mut self.role {
            Role::Primary(g) => Frontend::replan(g, now),
            Role::Down => Ok(()),
            Role::Promoted(g) => Frontend::replan(g, now),
        };
        self.ship(now);
        out
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        self.pump(now);
        let out = match &mut self.role {
            Role::Primary(g) => Frontend::take_due(g, now),
            Role::Down => Vec::new(),
            Role::Promoted(g) => Frontend::take_due(g, now),
        };
        self.ship(now);
        out
    }

    fn next_dispatch_due(&self) -> Option<SimTime> {
        match &self.role {
            Role::Primary(g) | Role::Promoted(g) => Frontend::next_dispatch_due(g),
            Role::Down => None,
        }
    }

    fn committed_release(&self, node: usize) -> SimTime {
        match &self.role {
            Role::Primary(g) | Role::Promoted(g) => Frontend::committed_release(g, node),
            Role::Down => SimTime::ZERO,
        }
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.pump(time);
        match &mut self.role {
            Role::Primary(g) => Frontend::set_node_release(g, node, time),
            // The worker node released; the head node isn't there to hear
            // it. Buffer for the promoted successor.
            Role::Down => self.buffered_releases.push((node, time)),
            Role::Promoted(g) => Frontend::set_node_release(g, node, time),
        }
        self.ship(time);
    }

    fn waiting_len(&self) -> usize {
        match &self.role {
            Role::Primary(g) | Role::Promoted(g) => Frontend::waiting_len(g),
            Role::Down => 0,
        }
    }

    fn find_plan(&self, task: TaskId) -> Option<&TaskPlan> {
        match &self.role {
            Role::Primary(g) | Role::Promoted(g) => Frontend::find_plan(g, task),
            Role::Down => None,
        }
    }

    fn on_event(&mut self, now: SimTime) {
        self.pump(now);
        match &mut self.role {
            Role::Primary(g) => Frontend::on_event(g, now),
            Role::Down => {}
            Role::Promoted(g) => Frontend::on_event(g, now),
        }
        self.ship(now);
    }

    fn activate(&mut self, now: SimTime) {
        self.pump(now);
        match &mut self.role {
            Role::Primary(g) => Frontend::activate(g, now),
            Role::Down => {}
            Role::Promoted(g) => Frontend::activate(g, now),
        }
        self.ship(now);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let mut candidates: Vec<SimTime> = Vec::new();
        match &self.role {
            Role::Primary(g) => {
                if let Some(w) = Frontend::next_wakeup(g) {
                    candidates.push(w);
                }
                // With a kill planned, the channel stays wakeup-driven:
                // heartbeats tick, the kill fires on time even in an idle
                // lull. The no-kill control arm lets the channel idle out
                // with the event queue instead of heartbeating forever.
                if self.plan.kill_at.as_f64().is_finite() {
                    candidates.push(self.plan.kill_at);
                    if let Some(hb) = self.shipper.next_heartbeat() {
                        candidates.push(hb);
                    }
                }
            }
            Role::Down => {
                if let Some(p) = self.follower.promote_at() {
                    candidates.push(p);
                }
            }
            Role::Promoted(g) => {
                if let Some(w) = Frontend::next_wakeup(g) {
                    candidates.push(w);
                }
            }
        }
        if let Some(d) = self.link.next_delivery() {
            candidates.push(d);
        }
        if let Some(d) = self.acks.next_delivery() {
            candidates.push(d);
        }
        candidates
            .into_iter()
            .min_by(|a, b| a.as_f64().total_cmp(&b.as_f64()))
    }

    fn drain_resolutions(&mut self) -> Vec<(Task, Option<Infeasible>)> {
        match &mut self.role {
            Role::Primary(g) | Role::Promoted(g) => Frontend::drain_resolutions(g),
            Role::Down => Vec::new(),
        }
    }

    fn finalize(&mut self, now: SimTime) {
        self.pump(now);
        match &mut self.role {
            Role::Primary(g) => Frontend::finalize(g, now),
            Role::Down => {}
            Role::Promoted(g) => Frontend::finalize(g, now),
        }
    }
}

/// Runs `tasks` through a replicated deployment of `primary` under `plan`,
/// to completion. Panics if `cfg` is strict: a failover loses in-flight
/// guarantees by design (the outage window rejects, unshipped admissions
/// die with the primary), so the run must be driven non-strict and judged
/// by its [`FailoverOutcome`] instead.
pub fn run_failover<G: Recoverable>(
    cfg: SimConfig,
    primary: JournaledGateway<G>,
    plan: FailoverPlan,
    tasks: Vec<Task>,
) -> (SimReport, ReplicaFrontend<G>) {
    assert!(
        !cfg.strict_guarantees,
        "failover scenarios model guarantee loss; drive them non-strict"
    );
    let frontend = ReplicaFrontend::new(primary, plan);
    let mut sim = Simulation::with_frontend(cfg, frontend);
    sim.prime(tasks);
    while sim.step() {}
    sim.finish()
}
