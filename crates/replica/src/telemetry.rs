//! Fold adapter: replication health into the unified telemetry registry.
//!
//! Mirrors `fold_journal_metrics`: the shipper and follower keep counting
//! natively; an ops poll folds the current values in here. The headline
//! gauge is **replication lag** — `appended_offset − acked_offset` — the
//! number that says how much admitted history a failover right now would
//! lose.

use rtdls_journal::Journal;
use rtdls_telemetry::MetricsRegistry;

use crate::follower::Follower;
use crate::ship::Shipper;

/// Folds the primary-side view: ship/ack offsets, lag, epoch, and the
/// shipping counters.
pub fn fold_replication_metrics(reg: &mut MetricsRegistry, shipper: &Shipper, journal: &Journal) {
    reg.gauge("rtdls_replica_epoch", &[], journal.epoch() as f64);
    reg.gauge(
        "rtdls_replica_appended_offset",
        &[],
        journal.next_seq() as f64,
    );
    reg.gauge(
        "rtdls_replica_shipped_offset",
        &[],
        shipper.shipped() as f64,
    );
    reg.gauge("rtdls_replica_acked_offset", &[], shipper.acked() as f64);
    reg.gauge("rtdls_replica_lag", &[], shipper.lag(journal) as f64);
    let stats = shipper.stats();
    reg.counter("rtdls_replica_frames_shipped", &[], stats.frames_shipped);
    reg.counter("rtdls_replica_retransmitted", &[], stats.retransmitted);
    reg.counter("rtdls_replica_heartbeats_sent", &[], stats.heartbeats);
}

/// Folds the follower-side view: applied offset, fence and idempotence
/// counters, failure-detector freshness.
pub fn fold_follower_metrics<G: rtdls_journal::Recoverable>(
    reg: &mut MetricsRegistry,
    follower: &Follower<G>,
) {
    reg.gauge("rtdls_follower_epoch", &[], follower.epoch() as f64);
    reg.gauge(
        "rtdls_follower_applied_offset",
        &[],
        follower.next_seq() as f64,
    );
    // `rtdls_follower_lag` keeps its historical shape (0 when unknown);
    // `rtdls_replica_lag_frames` is the alert-safe variant that reports a
    // `-1` sentinel until the follower has heard from a live primary, so
    // "never connected" can't masquerade as "caught up".
    reg.gauge(
        "rtdls_follower_lag",
        &[],
        follower.lag().unwrap_or(0) as f64,
    );
    reg.gauge(
        "rtdls_replica_lag_frames",
        &[],
        follower.lag().map_or(-1.0, |l| l as f64),
    );
    reg.gauge(
        "rtdls_follower_promoted",
        &[],
        if follower.promoted() { 1.0 } else { 0.0 },
    );
    let stats = follower.stats();
    reg.counter("rtdls_follower_frames_applied", &[], stats.applied);
    reg.counter("rtdls_follower_duplicates_dropped", &[], stats.duplicates);
    reg.counter("rtdls_follower_fenced", &[], stats.fenced);
    reg.counter("rtdls_follower_fast_forwards", &[], stats.fast_forwards);
    reg.counter("rtdls_follower_heartbeats_seen", &[], stats.heartbeats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::follower::FollowerConfig;
    use crate::ship::{ShipConfig, ShipMsg};
    use rtdls_core::prelude::*;
    use rtdls_journal::prelude::*;
    use rtdls_service::prelude::*;

    #[test]
    fn folds_cover_offsets_lag_and_fence_counters() {
        let gw = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let mut gw = JournaledGateway::new(
            gw,
            JournalConfig {
                snapshot_every: 0,
                compact_on_snapshot: false,
            },
        );
        gw.submit(Task::new(1, 0.0, 500.0, 30_000.0), SimTime::ZERO);

        let mut shipper = Shipper::new(ShipConfig::default());
        let mut follower: Follower<Gateway> = Follower::new(FollowerConfig::default());
        for msg in shipper.poll(gw.journal(), SimTime::ZERO) {
            if let Some(ShipMsg::Ack { seq }) = follower.on_msg(SimTime::ZERO, msg).unwrap() {
                shipper.on_ack(seq, SimTime::ZERO);
            }
        }

        let mut reg = MetricsRegistry::new();
        fold_replication_metrics(&mut reg, &shipper, gw.journal());
        fold_follower_metrics(&mut reg, &follower);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_replica_lag 0"), "{text}");
        assert!(text.contains("rtdls_replica_epoch 0"), "{text}");
        assert!(text.contains("rtdls_replica_frames_shipped"), "{text}");
        assert!(text.contains("rtdls_follower_applied_offset"), "{text}");
        assert!(text.contains("rtdls_follower_fenced 0"), "{text}");
        assert!(text.contains("rtdls_follower_promoted 0"), "{text}");
        assert!(text.contains("rtdls_replica_lag_frames 0"), "{text}");
    }

    #[test]
    fn lag_frames_gauge_distinguishes_silence_from_caught_up() {
        let follower: Follower<Gateway> = Follower::new(FollowerConfig::default());
        assert_eq!(follower.lag(), None, "nothing heard yet");
        let mut reg = MetricsRegistry::new();
        fold_follower_metrics(&mut reg, &follower);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_replica_lag_frames -1"), "{text}");
        assert!(
            text.contains("rtdls_follower_lag 0"),
            "legacy gauge keeps its shape: {text}"
        );
    }
}
