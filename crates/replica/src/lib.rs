//! # rtdls-replica
//!
//! Shard replication and failover for the journaled admission gateway:
//! segmented-journal **shipping**, warm-standby **followers**,
//! epoch-fenced **promotion**, and a deterministic whole-system
//! **fault harness**.
//!
//! `rtdls-journal` made the gateway's promises durable across a *restart*:
//! the journal survives, the process recovers from it. This crate makes
//! them survive losing the *machine*. A [`Shipper`] streams every journal
//! frame of a shard primary to a [`Follower`] on another box, which replays
//! the frames into a warm standby gateway — the same deterministic
//! state-machine replay as crash recovery, applied incrementally as frames
//! arrive instead of all at once after the disaster. Acked ship offsets
//! tell the primary how far the standby's knowledge reaches; heartbeats
//! tell the follower the primary is alive; and monotonically increasing
//! **epochs** fence the past: when the follower stops hearing heartbeats it
//! promotes itself under `epoch + 1`, re-runs the strict re-admission pass
//! (journaling demotions under the new epoch, exactly like crash recovery),
//! and from then on discards any late frame still carrying the dead
//! primary's epoch — the classic zombie-primary split-brain hazard, closed
//! by a single integer comparison.
//!
//! The replication channel itself is modeled honestly: the
//! [`harness`] drives a primary + follower pair *inside* the discrete-event
//! simulator over `rtdls-sim`'s [`FaultyLink`] — seeded message loss,
//! reordering, duplication, delay, and netsplit windows — so an entire
//! failover (kill the primary mid-netsplit, promote the follower, fence the
//! zombie) replays bit-identically from its seed. [`net`] carries the same
//! [`ShipMsg`] protocol over real TCP for the wall-clock demo.
//!
//! [`FaultyLink`]: rtdls_sim::net::FaultyLink

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod follower;
pub mod gateway;
pub mod harness;
pub mod net;
pub mod ship;
pub mod telemetry;

pub use follower::{Follower, FollowerConfig, FollowerStats, Promotion};
pub use gateway::ShippingGateway;
pub use harness::{run_failover, FailoverOutcome, FailoverPlan, ReplicaFrontend, Role};
pub use ship::{ShipConfig, ShipMsg, Shipper};
pub use telemetry::{fold_follower_metrics, fold_replication_metrics};

/// One-stop imports for replication users.
pub mod prelude {
    pub use crate::follower::{Follower, FollowerConfig, FollowerStats, Promotion};
    pub use crate::gateway::ShippingGateway;
    pub use crate::harness::{run_failover, FailoverOutcome, FailoverPlan, ReplicaFrontend, Role};
    pub use crate::net::{FollowerServer, ShipClient};
    pub use crate::ship::{ShipConfig, ShipMsg, Shipper};
    pub use crate::telemetry::{fold_follower_metrics, fold_replication_metrics};
}
