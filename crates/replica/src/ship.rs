//! The primary side of the replication channel: shipping journal frames.
//!
//! A [`Shipper`] rides next to a shard primary's [`Journal`] and turns its
//! append stream into [`ShipMsg`]s. The unit of shipping is the journal's
//! own wire frame (checksummed, length-prefixed, exactly what a segment
//! stores), addressed by the journal's global frame sequence number — so
//! the follower can replay, deduplicate, and ack by offset without any
//! side-band framing protocol.
//!
//! The shipper is transport-agnostic and **pull-based**: the owner calls
//! [`Shipper::poll`] whenever it has cycles (the sim harness does it on
//! every frontend call; the TCP demo does it on a writer loop) and sends
//! whatever messages come back. Three things can come back:
//!
//! * **Frames** — everything appended since the last poll. Compaction is
//!   handled by [`Journal::frames_from`]'s clamp: if the log compacted past
//!   the ship cursor, the stream restarts at the compacting snapshot, which
//!   supersedes everything the follower missed.
//! * **Retransmissions** — if the acked offset has not advanced for
//!   [`ShipConfig::retransmit_after`] sim-seconds while unacked frames
//!   exist, the unacked tail is re-shipped. Frame application is idempotent
//!   by offset on the follower, so over-retransmission is safe, merely
//!   wasteful.
//! * **Heartbeats** — at least every [`ShipConfig::heartbeat_every`]
//!   sim-seconds, carrying the current epoch and head offset. Heartbeats
//!   are the follower's failure detector: silence long enough triggers
//!   promotion.
//!
//! Every message carries the journal's current **epoch**. A shipper never
//! inspects epochs itself — fencing is entirely the receiving follower's
//! job — it just stamps faithfully, which is exactly what makes a zombie
//! primary's post-partition traffic detectable.

use rtdls_core::prelude::SimTime;
use rtdls_journal::{Journal, JournalEvent};
use rtdls_telemetry::{Profiler, Span, Stage, Telemetry};
use serde::{Deserialize, Serialize};

/// One message on the replication channel, in either direction.
///
/// `Frame` and `Heartbeat` flow primary → follower; `Ack` flows back.
/// The enum is serde-serializable so the sim harness and the TCP transport
/// ship the identical protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ShipMsg {
    /// One journal wire frame (snapshot or event record), verbatim.
    Frame {
        /// Promotion epoch the sender's journal was on when it shipped.
        epoch: u64,
        /// Global journal frame sequence number of this frame.
        seq: u64,
        /// The encoded frame bytes (magic, kind, length, payload, checksum).
        bytes: Vec<u8>,
        /// Trace id of the request this frame journals (`0` = untraced:
        /// telemetry off on the primary, or a frame that journals no
        /// request). Rides the wire so the follower records its replay
        /// under the originating trace.
        trace: u64,
        /// The primary's retained spans for `trace` at ship time — the
        /// cross-node half of the timeline. Empty when untraced; the
        /// follower re-sequences these into its own flight recorder so a
        /// single trace id reconstructs the full story after a failover.
        spans: Vec<Span>,
    },
    /// Liveness beacon: "I am primary for `epoch`, my log head is `head`."
    Heartbeat {
        /// The sender's current promotion epoch.
        epoch: u64,
        /// The sender's next frame sequence number (frames `< head` exist).
        head: u64,
    },
    /// Cumulative acknowledgement: "I have applied every frame `< seq`."
    Ack {
        /// The follower's next expected frame sequence number.
        seq: u64,
    },
}

impl ShipMsg {
    /// An untraced frame (tests, zombie redelivery, telemetry-off paths).
    pub fn frame(epoch: u64, seq: u64, bytes: Vec<u8>) -> ShipMsg {
        ShipMsg::Frame {
            epoch,
            seq,
            bytes,
            trace: 0,
            spans: Vec::new(),
        }
    }
}

/// The trace id and task id journaled in one encoded frame, when the frame
/// is a decodable `RequestSubmitted` event (`(0, 0)` otherwise). This is
/// how the shipper labels outbound frames without any side-band state: the
/// trace already rides the WAL payload.
pub fn frame_trace(bytes: &[u8]) -> (u64, u64) {
    use rtdls_journal::wire::{decode_frames, RecordKind, TailStatus};
    let (frames, tail) = decode_frames(bytes);
    if tail != TailStatus::Clean || frames.len() != 1 {
        return (0, 0);
    }
    let frame = &frames[0];
    if frame.kind != RecordKind::Event {
        return (0, 0);
    }
    let Ok(payload) = std::str::from_utf8(&frame.payload) else {
        return (0, 0);
    };
    match serde_json::from_str::<JournalEvent>(payload) {
        Ok(JournalEvent::RequestSubmitted { request, .. }) => (request.trace, request.task.id.0),
        _ => (0, 0),
    }
}

/// Shipping cadence knobs, in sim-seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShipConfig {
    /// Emit a heartbeat at least this often.
    pub heartbeat_every: f64,
    /// Re-ship the unacked tail after this long without ack progress.
    pub retransmit_after: f64,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            heartbeat_every: 50.0,
            retransmit_after: 200.0,
        }
    }
}

/// Cumulative shipping counters, for assertions and the metrics fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipStats {
    /// Frames shipped first-time (excludes retransmissions).
    pub frames_shipped: u64,
    /// Frames re-shipped by the retransmission timer.
    pub retransmitted: u64,
    /// Heartbeats emitted.
    pub heartbeats: u64,
    /// Acks that advanced the acked offset.
    pub acks_applied: u64,
}

/// The primary-side replication endpoint for one shard journal.
#[derive(Debug)]
pub struct Shipper {
    cfg: ShipConfig,
    /// Frames `< shipped` have been handed to the transport at least once.
    shipped: u64,
    /// Frames `< acked` are known applied by the follower.
    acked: u64,
    last_heartbeat: Option<SimTime>,
    /// Last instant the acked offset moved (or the tail was re-shipped);
    /// the retransmission timer measures silence from here.
    last_progress: SimTime,
    stats: ShipStats,
    /// Trace handle: when enabled, outbound frames carry the journaled
    /// request's trace id plus the primary's retained spans for it, and
    /// every first-time ship records a `ShipFrame` span. Disabled by
    /// default — the untraced path never decodes frame payloads.
    telemetry: Telemetry,
    /// Hot-path profiler (`ship/poll`, `ship/ack` phases).
    profiler: Profiler,
}

impl Shipper {
    /// A shipper that has shipped nothing yet.
    pub fn new(cfg: ShipConfig) -> Self {
        Shipper {
            cfg,
            shipped: 0,
            acked: 0,
            last_heartbeat: None,
            last_progress: SimTime::ZERO,
            stats: ShipStats::default(),
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
        }
    }

    /// Attaches a trace handle: shipped frames start carrying trace ids
    /// and span payloads for cross-node timeline reconstruction.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Attaches a hot-path profiler (`ship/*` phases).
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// Builds one outbound frame, labeling it with the journaled request's
    /// trace (and the trace's retained primary spans) when tracing is on.
    fn make_frame(
        &self,
        epoch: u64,
        seq: u64,
        bytes: &[u8],
        now: SimTime,
        outcome: &str,
    ) -> ShipMsg {
        if !self.telemetry.is_enabled() {
            return ShipMsg::frame(epoch, seq, bytes.to_vec());
        }
        let (trace, task) = frame_trace(bytes);
        if trace != 0 {
            // Record the ship stage *before* collecting the trace's spans,
            // so the follower's copy of the timeline includes it.
            self.telemetry
                .record(trace, Stage::ShipFrame, None, task, outcome, now, None);
        }
        let spans = if trace != 0 {
            self.telemetry.trace_spans(trace)
        } else {
            Vec::new()
        };
        ShipMsg::Frame {
            epoch,
            seq,
            bytes: bytes.to_vec(),
            trace,
            spans,
        }
    }

    /// Everything the channel owes the follower as of `now`: newly
    /// appended frames, a retransmission of the unacked tail if acks have
    /// stalled, and a heartbeat if one is due. The caller sends the
    /// returned messages in order.
    pub fn poll(&mut self, journal: &Journal, now: SimTime) -> Vec<ShipMsg> {
        let phase = self.profiler.start();
        let epoch = journal.epoch();
        let head = journal.next_seq();
        let mut out = Vec::new();

        if head > self.shipped {
            let (start, frames) = journal.frames_from(self.shipped);
            // `start > shipped` means the log compacted past our cursor;
            // the snapshot at `start` supersedes the dropped gap.
            for (i, bytes) in frames.iter().enumerate() {
                out.push(self.make_frame(epoch, start + i as u64, bytes, now, "shipped"));
            }
            self.stats.frames_shipped += frames.len() as u64;
            self.shipped = head;
        }

        if self.acked < self.shipped
            && now.as_f64() - self.last_progress.as_f64() >= self.cfg.retransmit_after
        {
            let (start, frames) = journal.frames_from(self.acked);
            for (i, bytes) in frames.iter().enumerate() {
                out.push(self.make_frame(epoch, start + i as u64, bytes, now, "retransmitted"));
            }
            self.stats.retransmitted += frames.len() as u64;
            self.last_progress = now;
        }

        if self
            .last_heartbeat
            .is_none_or(|t| now.as_f64() - t.as_f64() >= self.cfg.heartbeat_every)
        {
            out.push(ShipMsg::Heartbeat { epoch, head });
            self.stats.heartbeats += 1;
            self.last_heartbeat = Some(now);
        }

        self.profiler.stop("ship/poll", phase);
        out
    }

    /// Applies a follower [`ShipMsg::Ack`]: acks are cumulative, so only a
    /// forward move counts as progress.
    pub fn on_ack(&mut self, seq: u64, now: SimTime) {
        let phase = self.profiler.start();
        if seq > self.acked {
            self.acked = seq;
            self.last_progress = now;
            self.stats.acks_applied += 1;
        }
        self.profiler.stop("ship/ack", phase);
    }

    /// Frames handed to the transport at least once (`< shipped`).
    pub fn shipped(&self) -> u64 {
        self.shipped
    }

    /// Frames known applied by the follower (`< acked`).
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Replication lag in frames: how far the follower's acked knowledge
    /// trails the journal head. The number a deadline-SLO operator watches.
    pub fn lag(&self, journal: &Journal) -> u64 {
        journal.next_seq().saturating_sub(self.acked)
    }

    /// The next instant a heartbeat becomes due (`None` = one is due on
    /// the very next poll).
    pub fn next_heartbeat(&self) -> Option<SimTime> {
        self.last_heartbeat
            .map(|t| SimTime::new(t.as_f64() + self.cfg.heartbeat_every))
    }

    /// Cumulative shipping counters.
    pub fn stats(&self) -> ShipStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::*;
    use rtdls_journal::prelude::*;
    use rtdls_service::prelude::*;

    fn journaled(snapshot_every: usize, compact: bool) -> JournaledGateway<Gateway> {
        let gw = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        JournaledGateway::new(
            gw,
            JournalConfig {
                snapshot_every,
                compact_on_snapshot: compact,
            },
        )
    }

    fn count_frames(msgs: &[ShipMsg]) -> usize {
        msgs.iter()
            .filter(|m| matches!(m, ShipMsg::Frame { .. }))
            .count()
    }

    #[test]
    fn poll_ships_every_appended_frame_exactly_once() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());

        // First poll ships the genesis snapshot and heartbeats.
        let msgs = ship.poll(gw.journal(), SimTime::ZERO);
        assert_eq!(count_frames(&msgs), 1, "genesis snapshot ships first");
        assert!(matches!(
            msgs.last(),
            Some(ShipMsg::Heartbeat { head: 1, .. })
        ));

        for i in 0..4 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        let msgs = ship.poll(gw.journal(), SimTime::new(1.0));
        // Each submission journals an input event plus an audit record.
        assert_eq!(count_frames(&msgs) as u64, gw.journal().next_seq() - 1);
        assert_eq!(ship.shipped(), gw.journal().next_seq());

        // Nothing new: a quiet poll ships no frames.
        let msgs = ship.poll(gw.journal(), SimTime::new(2.0));
        assert_eq!(count_frames(&msgs), 0);
    }

    #[test]
    fn sequence_numbers_match_the_journal_and_acks_advance_lag() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        for i in 0..3 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        let msgs = ship.poll(gw.journal(), SimTime::ZERO);
        let seqs: Vec<u64> = msgs
            .iter()
            .filter_map(|m| match m {
                ShipMsg::Frame { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        let expect: Vec<u64> = (0..gw.journal().next_seq()).collect();
        assert_eq!(seqs, expect, "frames ship in journal order from seq 0");

        assert_eq!(ship.lag(gw.journal()), gw.journal().next_seq());
        ship.on_ack(gw.journal().next_seq(), SimTime::new(1.0));
        assert_eq!(ship.lag(gw.journal()), 0);
        // Acks never move backwards.
        ship.on_ack(1, SimTime::new(2.0));
        assert_eq!(ship.acked(), gw.journal().next_seq());
    }

    #[test]
    fn stalled_acks_trigger_retransmission_of_the_unacked_tail() {
        let mut gw = journaled(0, false);
        let cfg = ShipConfig {
            heartbeat_every: 1_000.0,
            retransmit_after: 10.0,
        };
        let mut ship = Shipper::new(cfg);
        gw.submit(Task::new(1, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        let first = ship.poll(gw.journal(), SimTime::ZERO);
        let shipped = count_frames(&first);
        assert!(shipped >= 2);

        // Ack only the genesis snapshot, then go quiet past the timer.
        ship.on_ack(1, SimTime::new(1.0));
        let quiet = ship.poll(gw.journal(), SimTime::new(5.0));
        assert_eq!(count_frames(&quiet), 0, "timer not yet expired");
        let retrans = ship.poll(gw.journal(), SimTime::new(12.0));
        assert_eq!(
            count_frames(&retrans) as u64,
            gw.journal().next_seq() - 1,
            "the unacked tail re-ships, from the acked offset"
        );
        assert!(ship.stats().retransmitted > 0);

        // Full ack: the timer disarms.
        ship.on_ack(gw.journal().next_seq(), SimTime::new(13.0));
        let after = ship.poll(gw.journal(), SimTime::new(100.0));
        assert_eq!(count_frames(&after), 0);
    }

    #[test]
    fn heartbeat_cadence_and_epoch_stamp() {
        let gw = journaled(0, false);
        let cfg = ShipConfig {
            heartbeat_every: 10.0,
            retransmit_after: 1_000.0,
        };
        let mut ship = Shipper::new(cfg);
        let mut beats = 0;
        for t in 0..50 {
            let msgs = ship.poll(gw.journal(), SimTime::new(t as f64));
            beats += msgs
                .iter()
                .filter(|m| matches!(m, ShipMsg::Heartbeat { .. }))
                .count();
        }
        assert_eq!(beats, 5, "one beat per 10-second window over 50 seconds");
        assert_eq!(ship.next_heartbeat(), Some(SimTime::new(50.0)));

        let msgs = ship.poll(gw.journal(), SimTime::new(100.0));
        match msgs.last() {
            Some(ShipMsg::Heartbeat { epoch, head }) => {
                assert_eq!(*epoch, gw.journal().epoch());
                assert_eq!(*head, gw.journal().next_seq());
            }
            other => panic!("expected heartbeat, got {other:?}"),
        }
    }

    #[test]
    fn compaction_clamps_the_ship_cursor_to_the_snapshot() {
        // Tiny snapshot interval + compaction: by the time the shipper
        // polls, the log has compacted past frames it never shipped. The
        // stream must restart at the compacting snapshot, not panic or
        // ship a gap.
        let mut gw = journaled(2, true);
        let mut ship = Shipper::new(ShipConfig::default());
        for i in 0..10 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        let base = gw.journal().base_seq();
        assert!(base > 0, "the log compacted");
        let msgs = ship.poll(gw.journal(), SimTime::ZERO);
        let first_seq = msgs.iter().find_map(|m| match m {
            ShipMsg::Frame { seq, .. } => Some(*seq),
            _ => None,
        });
        assert_eq!(first_seq, Some(base), "stream restarts at the snapshot");
        assert_eq!(ship.shipped(), gw.journal().next_seq());
    }
}
