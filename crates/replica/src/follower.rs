//! The follower side: warm-standby replay, epoch fencing, promotion.
//!
//! A [`Follower`] receives the primary's [`ShipMsg`] stream and maintains
//! two things in lockstep:
//!
//! * a **mirror** — the byte-for-byte concatenation of every frame it has
//!   applied, i.e. the shipped prefix of the primary's journal. Recovering
//!   from the mirror with [`replay`](rtdls_journal::replay) must always
//!   reproduce the standby exactly — the invariant the property tests pin.
//! * a **warm standby** gateway — the mirror's state, maintained
//!   *incrementally*: each snapshot frame restores it, each input event
//!   frame is applied through the same [`apply_event`] dispatcher crash
//!   recovery replays with. Promotion therefore starts from an
//!   already-current gateway instead of replaying a whole log after the
//!   disaster.
//!
//! **Idempotence & reordering.** Frames are addressed by the primary
//! journal's frame sequence number. Anything below `next_seq` has already
//! been applied and is counted as a duplicate, never re-applied; anything
//! ahead of `next_seq` parks in an out-of-order buffer and drains once the
//! gap fills. A buffered **snapshot** frame beyond a gap is a fast-forward
//! point: it supersedes every missing frame (that is exactly what a
//! compacting snapshot means), so the follower jumps to it rather than
//! waiting for retransmissions of bytes the primary may have already
//! compacted away.
//!
//! **Fencing.** The follower tracks the highest epoch it has ever seen and
//! ignores — without acking, without touching its failure detector — any
//! message from a lower epoch. After promotion bumps the epoch, the
//! still-running follower object *is* the fence: a zombie primary's late
//! appends carry the old epoch and land in [`FollowerStats::fenced`],
//! provably never in the state.

use std::collections::BTreeMap;

use rtdls_core::prelude::{SimTime, TaskId};
use rtdls_journal::prelude::*;
use rtdls_journal::wire::{decode_frames, RecordKind, TailStatus};
use rtdls_journal::{apply_event, requalify};
use rtdls_telemetry::{Span, Stage, Telemetry};

use crate::ship::ShipMsg;

/// One out-of-order frame parked until its gap fills: the encoded bytes
/// plus the trace label and shipped primary spans that rode the wire.
#[derive(Clone, Debug)]
struct BufferedFrame {
    bytes: Vec<u8>,
    trace: u64,
    spans: Vec<Span>,
}

/// Follower tunables, in sim-seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FollowerConfig {
    /// Promote after this long without hearing from the primary (frames
    /// and heartbeats both count as hearing).
    pub promote_after: f64,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            promote_after: 150.0,
        }
    }
}

/// Cumulative follower counters, for assertions and the metrics fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FollowerStats {
    /// Frames applied to the standby (snapshots + events).
    pub applied: u64,
    /// Snapshot frames restored (including fast-forwards).
    pub snapshots_restored: u64,
    /// Frames discarded as already-applied (offset below `next_seq` or
    /// already buffered) — the idempotence counter.
    pub duplicates: u64,
    /// Messages discarded because they carried a stale epoch — the
    /// zombie-fence counter.
    pub fenced: u64,
    /// Gap jumps taken to a buffered snapshot frame.
    pub fast_forwards: u64,
    /// Largest out-of-order buffer depth observed.
    pub buffered_high_water: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
}

/// What a promotion produced, for the ops record and the tests.
#[derive(Clone, Debug, PartialEq)]
pub struct Promotion {
    /// The new epoch the promoted gateway journals under.
    pub epoch: u64,
    /// Tasks the strict re-admission pass demoted to the defer queue
    /// (journaled as `Demoted` under the new epoch).
    pub demoted: Vec<TaskId>,
    /// The follower's applied frame count at promotion — the length of the
    /// shipped prefix the new primary's state is built from.
    pub applied_seq: u64,
}

/// A warm standby replaying one shard primary's shipped journal.
pub struct Follower<G: Recoverable> {
    cfg: FollowerConfig,
    /// The standby gateway; `None` until the first snapshot frame lands.
    standby: Option<G>,
    /// Byte-identical copy of the applied journal prefix.
    mirror: Vec<u8>,
    /// Next frame sequence number the standby expects.
    next_seq: u64,
    /// Highest epoch ever seen (bumped past the primary's on promotion).
    epoch: u64,
    /// Out-of-order frames parked until their gap fills, keyed by seq.
    buffer: BTreeMap<u64, BufferedFrame>,
    /// Last instant anything arrived from the current epoch's primary.
    last_heard: Option<SimTime>,
    /// Highest head offset any heartbeat advertised.
    primary_head: u64,
    promoted: bool,
    stats: FollowerStats,
    /// Trace handle: when enabled, each applied frame's replay (and the
    /// shipped primary spans that rode with it) records into this
    /// follower's own flight recorder under the originating trace, so a
    /// post-failover timeline is answerable from the promoted side alone.
    telemetry: Telemetry,
}

impl<G: Recoverable> Follower<G> {
    /// A follower that has heard nothing yet.
    pub fn new(cfg: FollowerConfig) -> Self {
        Follower {
            cfg,
            standby: None,
            mirror: Vec::new(),
            next_seq: 0,
            epoch: 0,
            buffer: BTreeMap::new(),
            last_heard: None,
            primary_head: 0,
            promoted: false,
            stats: FollowerStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a trace handle: replay and promotion start recording
    /// `FollowerReplay`/`Promote` spans (plus the shipped primary spans)
    /// into this follower's own recorder, and the handle is forwarded to
    /// the gateway a later [`Follower::promote`] returns.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Handles one channel message at sim-time `now`, returning the ack to
    /// send back (if any). Acks are cumulative — always the next expected
    /// sequence number — so a lost ack is repaired by any later one.
    pub fn on_msg(&mut self, now: SimTime, msg: ShipMsg) -> Result<Option<ShipMsg>, JournalError> {
        match msg {
            // Acks are primary-bound; a follower receiving one ignores it.
            ShipMsg::Ack { .. } => Ok(None),
            ShipMsg::Heartbeat { epoch, head } => {
                if epoch < self.epoch {
                    self.stats.fenced += 1;
                    return Ok(None);
                }
                self.epoch = epoch;
                self.last_heard = Some(now);
                self.primary_head = self.primary_head.max(head);
                self.stats.heartbeats += 1;
                Ok(Some(ShipMsg::Ack { seq: self.next_seq }))
            }
            ShipMsg::Frame {
                epoch,
                seq,
                bytes,
                trace,
                spans,
            } => {
                if epoch < self.epoch {
                    self.stats.fenced += 1;
                    return Ok(None);
                }
                self.epoch = epoch;
                self.last_heard = Some(now);
                if seq < self.next_seq || self.buffer.contains_key(&seq) {
                    self.stats.duplicates += 1;
                } else {
                    self.buffer.insert(
                        seq,
                        BufferedFrame {
                            bytes,
                            trace,
                            spans,
                        },
                    );
                    self.stats.buffered_high_water =
                        self.stats.buffered_high_water.max(self.buffer.len() as u64);
                    self.drain(now)?;
                }
                Ok(Some(ShipMsg::Ack { seq: self.next_seq }))
            }
        }
    }

    /// Applies buffered frames: in-order as long as `next_seq` is present,
    /// then fast-forwards to the newest buffered snapshot if a gap blocks
    /// further progress (the snapshot supersedes the missing frames).
    fn drain(&mut self, now: SimTime) -> Result<(), JournalError> {
        loop {
            if let Some(frame) = self.buffer.remove(&self.next_seq) {
                self.apply(now, &frame)?;
                continue;
            }
            let jump = self
                .buffer
                .iter()
                .rev()
                .find_map(|(&seq, frame)| Self::is_snapshot(&frame.bytes).then_some(seq));
            match jump {
                Some(seq) => {
                    let frame = self.buffer.remove(&seq).expect("jump target buffered");
                    self.buffer.retain(|&s, _| s > seq);
                    self.apply(now, &frame)?;
                    self.next_seq = seq + 1;
                    self.stats.fast_forwards += 1;
                }
                None => return Ok(()),
            }
        }
    }

    fn is_snapshot(bytes: &[u8]) -> bool {
        let (frames, _) = decode_frames(bytes);
        frames
            .first()
            .is_some_and(|f| f.kind == RecordKind::Snapshot)
    }

    /// Applies one shipped frame to the standby and appends it to the
    /// mirror. Advances `next_seq` by one (the fast-forward path then
    /// overwrites it with the jump target).
    ///
    /// When a trace handle is attached, the primary's shipped spans are
    /// re-sequenced into this follower's recorder (fresh local `seq`, same
    /// stage/timing), then a [`Stage::FollowerReplay`] span marks the
    /// apply itself — so one trace id answers for the whole cross-node
    /// timeline from the follower's ops channel after the primary is gone.
    fn apply(&mut self, now: SimTime, frame: &BufferedFrame) -> Result<(), JournalError> {
        let timer = self.telemetry.timer();
        let (frames, tail) = decode_frames(&frame.bytes);
        if tail != TailStatus::Clean || frames.len() != 1 {
            return Err(JournalError::Corrupt(
                "shipped frame did not decode to exactly one clean record".into(),
            ));
        }
        let record = &frames[0];
        let payload = std::str::from_utf8(&record.payload)
            .map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let mut trace = frame.trace;
        let mut task = 0u64;
        match record.kind {
            RecordKind::Snapshot => {
                let snap: GatewaySnapshot = serde_json::from_str(payload)?;
                self.standby = Some(G::restore(&snap)?);
                self.stats.snapshots_restored += 1;
            }
            RecordKind::Event => {
                let event: JournalEvent = serde_json::from_str(payload)?;
                if let JournalEvent::RequestSubmitted { request, .. } = &event {
                    // Untraced transports (or a telemetry-off primary)
                    // ship trace 0; the trace minted at submission still
                    // rides the WAL payload itself.
                    if trace == 0 {
                        trace = request.trace;
                    }
                    task = request.task.id.0;
                }
                // Audit records ship (the mirror is a faithful prefix) but
                // only input events drive the state machine — the same
                // filter recovery's replay applies.
                if event.is_input() {
                    if let Some(standby) = self.standby.as_mut() {
                        apply_event(standby, &event);
                    }
                }
            }
        }
        if self.telemetry.is_enabled() {
            // Ingested ids were minted by the primary's counter; fence the
            // local counter past them so post-promotion mints stay unique.
            self.telemetry.reserve_traces(trace + 1);
            for span in &frame.spans {
                self.telemetry.reserve_traces(span.trace + 1);
                self.telemetry.record_ns(
                    span.trace,
                    span.stage,
                    span.shard,
                    span.task,
                    &span.outcome,
                    span.at,
                    span.duration_ns,
                );
                if span.task != 0 {
                    self.telemetry.remember(span.task, span.trace);
                }
            }
            let outcome = format!("applied seq {}", self.next_seq);
            self.telemetry.record(
                trace,
                Stage::FollowerReplay,
                None,
                task,
                &outcome,
                now,
                timer,
            );
            if task != 0 && trace != 0 {
                self.telemetry.remember(task, trace);
            }
        }
        self.mirror.extend_from_slice(&frame.bytes);
        self.next_seq += 1;
        self.stats.applied += 1;
        Ok(())
    }

    /// Whether the failure detector has fired: a standby exists and the
    /// primary has been silent for [`FollowerConfig::promote_after`].
    pub fn should_promote(&self, now: SimTime) -> bool {
        !self.promoted
            && self.standby.is_some()
            && self
                .last_heard
                .is_some_and(|t| now.as_f64() - t.as_f64() >= self.cfg.promote_after)
    }

    /// The earliest instant promotion could fire absent further traffic
    /// (`None` if already promoted or nothing has ever been heard).
    pub fn promote_at(&self) -> Option<SimTime> {
        if self.promoted || self.standby.is_none() {
            return None;
        }
        self.last_heard
            .map(|t| SimTime::new(t.as_f64() + self.cfg.promote_after))
    }

    /// Promotes the standby to primary: bumps the epoch (fencing every
    /// message the dead primary may still emit), then runs the **same
    /// strict re-admission pass as crash recovery** — every recovered plan
    /// is re-verified at `now`, the no-longer-feasible ones demoted to the
    /// defer queue and journaled as `Demoted` under the new epoch.
    ///
    /// The follower object stays alive after promotion *as the fence*:
    /// feed it the zombie's late traffic and watch
    /// [`FollowerStats::fenced`] grow while the state provably doesn't.
    pub fn promote(
        &mut self,
        now: SimTime,
        cfg: JournalConfig,
        sink: Option<Box<dyn JournalSink>>,
    ) -> Result<(JournaledGateway<G>, Promotion), JournalError> {
        let mut standby = self.standby.take().ok_or(JournalError::NoSnapshot)?;
        // Replay parity with `recover`: breach records accumulated while
        // replaying history are not live alarms.
        let _ = standby.take_breach_log();
        self.epoch += 1;
        self.promoted = true;
        let (mut journaled, demoted) = requalify(standby, now, cfg, sink, self.epoch);
        if self.telemetry.is_enabled() {
            // Fence every in-flight trace with a promotion marker, so a
            // timeline query after failover shows *where* ownership moved.
            let outcome = format!("promoted to epoch {}", self.epoch);
            for trace in self.telemetry.recent_traces(32) {
                self.telemetry
                    .record(trace, Stage::Promote, None, 0, &outcome, now, None);
            }
            // The promoted gateway inherits this recorder: post-failover
            // traffic lands in the same flight recorder as replayed history.
            journaled.attach_telemetry(&self.telemetry);
        }
        Ok((
            journaled,
            Promotion {
                epoch: self.epoch,
                demoted,
                applied_seq: self.next_seq,
            },
        ))
    }

    /// Mutable access to the standby (the harness applies node releases
    /// that arrive during the outage window before promoting).
    pub fn standby_mut(&mut self) -> Option<&mut G> {
        self.standby.as_mut()
    }

    /// The standby gateway, if a snapshot has landed.
    pub fn standby(&self) -> Option<&G> {
        self.standby.as_ref()
    }

    /// The applied journal prefix, byte-identical to what the primary
    /// shipped and the follower applied.
    pub fn bytes(&self) -> &[u8] {
        &self.mirror
    }

    /// Next frame sequence number the standby expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest epoch ever seen (post-promotion: the promoted epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replication lag from the follower's view: advertised head minus
    /// applied frames. `None` until the first current-epoch message lands —
    /// a follower that has heard *nothing* is not "caught up", and callers
    /// alerting on lag must tell the two apart (0 used to mean both).
    pub fn lag(&self) -> Option<u64> {
        self.last_heard?;
        Some(self.primary_head.saturating_sub(self.next_seq))
    }

    /// Last instant anything arrived from a current-epoch primary.
    pub fn last_heard(&self) -> Option<SimTime> {
        self.last_heard
    }

    /// Whether this follower has promoted.
    pub fn promoted(&self) -> bool {
        self.promoted
    }

    /// Cumulative counters.
    pub fn stats(&self) -> FollowerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ship::{ShipConfig, Shipper};
    use rtdls_core::prelude::*;
    use rtdls_service::prelude::*;

    fn journaled(snapshot_every: usize, compact: bool) -> JournaledGateway<Gateway> {
        let gw = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        JournaledGateway::new(
            gw,
            JournalConfig {
                snapshot_every,
                compact_on_snapshot: compact,
            },
        )
    }

    fn ship_all(
        gw: &JournaledGateway<Gateway>,
        ship: &mut Shipper,
        fol: &mut Follower<Gateway>,
        now: SimTime,
    ) {
        for msg in ship.poll(gw.journal(), now) {
            if let Some(ShipMsg::Ack { seq }) = fol.on_msg(now, msg).unwrap() {
                ship.on_ack(seq, now);
            }
        }
    }

    #[test]
    fn in_order_stream_builds_a_byte_identical_mirror() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        let mut fol: Follower<Gateway> = Follower::new(FollowerConfig::default());
        for i in 0..5 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::new(i as f64));
            ship_all(&gw, &mut ship, &mut fol, SimTime::new(i as f64));
        }
        assert_eq!(fol.bytes(), gw.journal().bytes(), "mirror == primary log");
        assert_eq!(fol.next_seq(), gw.journal().next_seq());
        assert_eq!(ship.lag(gw.journal()), 0);
        // The warm standby equals a cold replay of the mirror.
        let (cold, _) = replay::<Gateway>(fol.bytes()).unwrap();
        assert_eq!(
            fol.standby().unwrap().capture().normalized(),
            cold.capture().normalized()
        );
    }

    #[test]
    fn duplicates_and_reordering_never_double_apply() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        let mut fol: Follower<Gateway> = Follower::new(FollowerConfig::default());
        for i in 0..4 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        let msgs = ship.poll(gw.journal(), SimTime::ZERO);
        let frames: Vec<ShipMsg> = msgs
            .iter()
            .filter(|m| matches!(m, ShipMsg::Frame { .. }))
            .cloned()
            .collect();
        // Deliver in reverse, then the whole batch again, then once more.
        for round in 0..3 {
            for msg in frames.iter().rev() {
                let _ = fol.on_msg(SimTime::new(round as f64), msg.clone()).unwrap();
            }
        }
        assert_eq!(fol.next_seq(), gw.journal().next_seq());
        assert_eq!(fol.bytes(), gw.journal().bytes());
        assert_eq!(fol.stats().applied, gw.journal().next_seq());
        assert!(fol.stats().duplicates >= 2 * gw.journal().next_seq());
        let (cold, _) = replay::<Gateway>(fol.bytes()).unwrap();
        assert_eq!(
            fol.standby().unwrap().capture().normalized(),
            cold.capture().normalized()
        );
    }

    #[test]
    fn a_gap_blocks_until_filled_then_drains_in_order() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        let mut fol: Follower<Gateway> = Follower::new(FollowerConfig::default());
        for i in 0..3 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        let frames: Vec<ShipMsg> = ship
            .poll(gw.journal(), SimTime::ZERO)
            .into_iter()
            .filter(|m| matches!(m, ShipMsg::Frame { .. }))
            .collect();
        // Withhold frame 1 (an event record): 2.. park in the buffer.
        for (i, msg) in frames.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let _ = fol.on_msg(SimTime::ZERO, msg.clone()).unwrap();
        }
        assert_eq!(fol.next_seq(), 1, "stuck at the gap");
        assert!(fol.stats().buffered_high_water >= 2);
        let ack = fol.on_msg(SimTime::ZERO, frames[1].clone()).unwrap();
        assert_eq!(
            ack,
            Some(ShipMsg::Ack {
                seq: frames.len() as u64
            })
        );
        assert_eq!(fol.bytes(), gw.journal().bytes());
    }

    #[test]
    fn a_snapshot_beyond_a_gap_fast_forwards() {
        // Compacting primary: the shipper's clamp means the follower may
        // receive a snapshot whose seq is far beyond what it has applied,
        // with the gap frames compacted out of existence. It must jump.
        let mut gw = journaled(2, true);
        let mut ship = Shipper::new(ShipConfig::default());
        let mut fol: Follower<Gateway> = Follower::new(FollowerConfig::default());
        // Let the log compact *before* the first poll: the early frames
        // are gone; shipping starts at the compacting snapshot.
        for i in 0..8 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        assert!(gw.journal().base_seq() > 0);
        ship_all(&gw, &mut ship, &mut fol, SimTime::ZERO);
        assert_eq!(fol.next_seq(), gw.journal().next_seq());
        assert!(fol.stats().fast_forwards >= 1, "jumped the compacted gap");
        // The mirror holds the anchored suffix; replay still works.
        let (cold, _) = replay::<Gateway>(fol.bytes()).unwrap();
        assert_eq!(
            fol.standby().unwrap().capture().normalized(),
            cold.capture().normalized()
        );
    }

    #[test]
    fn stale_epochs_are_fenced_and_do_not_feed_the_failure_detector() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        let mut fol: Follower<Gateway> = Follower::new(FollowerConfig::default());
        gw.submit(Task::new(1, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        ship_all(&gw, &mut ship, &mut fol, SimTime::ZERO);
        let before = fol.standby().unwrap().capture();
        let heard = fol.last_heard();

        // A message from epoch 0 after the follower has moved to epoch 5.
        let _ = fol.on_msg(
            SimTime::new(1.0),
            ShipMsg::Heartbeat {
                epoch: 5,
                head: fol.next_seq(),
            },
        );
        let stale = ShipMsg::frame(0, fol.next_seq(), vec![1, 2, 3]);
        let reply = fol.on_msg(SimTime::new(2.0), stale).unwrap();
        assert_eq!(reply, None, "fenced traffic is not even acked");
        assert_eq!(fol.stats().fenced, 1);
        assert_eq!(fol.standby().unwrap().capture(), before, "state untouched");
        assert_ne!(heard, fol.last_heard(), "heartbeat updated the detector");
        assert_eq!(fol.last_heard(), Some(SimTime::new(1.0)), "zombie did not");
    }

    #[test]
    fn promotion_bumps_the_epoch_requalifies_and_fences_the_zombie() {
        let mut gw = journaled(0, false);
        let mut ship = Shipper::new(ShipConfig::default());
        let cfg = FollowerConfig {
            promote_after: 50.0,
        };
        let mut fol: Follower<Gateway> = Follower::new(cfg);
        for i in 0..3 {
            gw.submit(Task::new(i, 0.0, 500.0, 30_000.0), SimTime::ZERO);
        }
        ship_all(&gw, &mut ship, &mut fol, SimTime::ZERO);
        assert!(!fol.should_promote(SimTime::new(10.0)));
        assert_eq!(fol.promote_at(), Some(SimTime::new(50.0)));
        assert!(fol.should_promote(SimTime::new(60.0)));

        let prefix = fol.bytes().to_vec();
        let (promoted, record) = fol
            .promote(SimTime::new(60.0), JournalConfig::default(), None)
            .unwrap();
        assert_eq!(record.epoch, 1);
        assert_eq!(promoted.journal().epoch(), 1);
        assert_eq!(record.applied_seq, fol.next_seq());
        assert!(fol.promoted());
        assert!(!fol.should_promote(SimTime::new(1e9)), "promotes once");

        // The promoted state equals a reference recovery of the prefix.
        let (reference, _) = recover_at_epoch::<Gateway>(
            &prefix,
            SimTime::new(60.0),
            JournalConfig::default(),
            None,
            1,
        )
        .unwrap();
        assert_eq!(
            promoted.inner().capture().normalized(),
            reference.inner().capture().normalized()
        );

        // The zombie's late append, stamped with the dead epoch, fences.
        let zombie = ShipMsg::frame(0, 99, vec![0xde]);
        assert_eq!(fol.on_msg(SimTime::new(61.0), zombie).unwrap(), None);
        assert_eq!(fol.stats().fenced, 1);
    }
}
