//! Property tests for the shipping protocol under seeded network faults.
//!
//! A hand-pumped primary/follower pair (no sim engine — just the shipper,
//! two [`FaultyLink`]s, and a follower) is driven through arbitrary
//! loss/duplication/delay/netsplit schedules. Whatever the channel does:
//!
//! * the follower's mirror is always a byte-prefix of the primary's
//!   journal — reordering and duplication never corrupt or double-apply;
//! * the standby gateway always equals a cold replay of that mirror;
//! * the same seed replays to byte-identical mirror bytes and counters;
//! * in loss-free schedules the follower fully catches up.

use proptest::prelude::*;

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_replica::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::net::{FaultPlan, FaultyLink, LinkStats};

fn journal_cfg() -> JournalConfig {
    JournalConfig {
        snapshot_every: 0,
        compact_on_snapshot: false,
    }
}

fn primary() -> JournaledGateway<Gateway> {
    let gw = Gateway::new(
        ClusterParams::paper_baseline(),
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        DeferPolicy::default(),
    );
    JournaledGateway::new(gw, journal_cfg())
}

/// One shipping schedule: the frame-link fault plan plus pump length.
#[derive(Clone, Debug)]
struct Schedule {
    seed: u64,
    loss: f64,
    duplicate: f64,
    delay_max: f64,
    split: Option<(f64, f64)>,
}

impl Schedule {
    fn frame_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::clean(self.seed)
            .with_loss(self.loss)
            .with_duplication(self.duplicate)
            .with_delay(1.0, self.delay_max);
        if let Some((from, until)) = self.split {
            plan = plan.with_split(SimTime::new(from), SimTime::new(until));
        }
        plan
    }

    fn ack_plan(&self) -> FaultPlan {
        FaultPlan::clean(self.seed.wrapping_mul(31).wrapping_add(7)).with_delay(1.0, 3.0)
    }
}

fn splits() -> impl Strategy<Value = Option<(f64, f64)>> {
    // The vendored proptest has no `prop_oneof`: draw a selector alongside
    // the window and map the pair.
    (0u8..2, 100.0..600.0f64, 50.0..900.0f64)
        .prop_map(|(which, from, len)| (which == 1).then_some((from, from + len)))
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (
        0u64..u64::MAX,
        0.0..0.35f64,
        0.0..0.35f64,
        2.0..25.0f64,
        splits(),
    )
        .prop_map(|(seed, loss, duplicate, delay_max, split)| Schedule {
            seed,
            loss,
            duplicate,
            delay_max,
            split,
        })
}

/// Everything a run produces that determinism must cover.
#[derive(Debug, PartialEq)]
struct RunResult {
    primary_wal: Vec<u8>,
    mirror: Vec<u8>,
    follower_next: u64,
    follower_stats: FollowerStats,
    ship_stats: rtdls_replica::ship::ShipStats,
    link: LinkStats,
    acks: LinkStats,
    standby: Option<GatewaySnapshot>,
}

/// Pumps a scripted workload through the channel under `schedule`. The
/// workload submits a task every 40 time units for 1200 units, then the
/// channel settles (faults keep acting; retransmission drives catch-up).
fn pump(schedule: &Schedule) -> RunResult {
    let mut gw = primary();
    let mut shipper = Shipper::new(ShipConfig {
        heartbeat_every: 30.0,
        retransmit_after: 60.0,
    });
    let mut link: FaultyLink<ShipMsg> = FaultyLink::new(schedule.frame_plan());
    let mut acks: FaultyLink<ShipMsg> = FaultyLink::new(schedule.ack_plan());
    let mut follower: Follower<Gateway> = Follower::new(FollowerConfig::default());

    let split_end = schedule.split.map(|(_, until)| until).unwrap_or(0.0);
    let settle_until = (1_200.0f64).max(split_end) + 3_000.0;
    let mut id = 0u64;
    let mut t = 0.0f64;
    while t <= settle_until {
        let now = SimTime::new(t);
        if t <= 1_200.0 && (t / 40.0).fract() == 0.0 {
            gw.submit(Task::new(id, t, 20.0, 2_000.0), now);
            id += 1;
        }
        for msg in shipper.poll(gw.journal(), now) {
            link.send(now, msg);
        }
        for msg in link.deliver_due(now) {
            if let Some(ack) = follower.on_msg(now, msg).expect("clean frames apply") {
                acks.send(now, ack);
            }
        }
        for msg in acks.deliver_due(now) {
            if let ShipMsg::Ack { seq } = msg {
                shipper.on_ack(seq, now);
            }
        }
        t += 10.0;
    }

    RunResult {
        primary_wal: gw.journal().bytes().to_vec(),
        mirror: follower.bytes().to_vec(),
        follower_next: follower.next_seq(),
        follower_stats: follower.stats(),
        ship_stats: shipper.stats(),
        link: link.stats(),
        acks: acks.stats(),
        standby: follower.standby().map(|g| g.capture().normalized()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the loss/reorder/dup/netsplit schedule does, the mirror is
    /// a byte-prefix of the primary's journal, applied exactly once per
    /// offset, and the standby equals a cold replay of the mirror.
    #[test]
    fn mirror_is_an_exactly_once_prefix_of_the_primary(schedule in schedules()) {
        let run = pump(&schedule);

        prop_assert!(
            run.primary_wal.starts_with(&run.mirror),
            "mirror diverged from the primary's journal"
        );

        // Idempotent replay: every applied frame advanced the cursor, so
        // duplicated and reordered deliveries never double-applied.
        prop_assert_eq!(run.follower_stats.applied, run.follower_next);

        // The warm standby is exactly what cold recovery of the mirror
        // would rebuild.
        if let Some(standby) = &run.standby {
            let (cold, report) = replay::<Gateway>(&run.mirror).expect("mirror replays");
            prop_assert!(report.tail.is_clean());
            prop_assert_eq!(standby, &cold.capture().normalized());
        } else {
            // Nothing (not even the genesis snapshot) arrived: the mirror
            // must be empty too.
            prop_assert!(run.mirror.is_empty());
        }
    }

    /// The same seed replays the whole channel byte-identically; the
    /// schedule is the only source of randomness.
    #[test]
    fn the_same_seed_replays_byte_identically(schedule in schedules()) {
        let a = pump(&schedule);
        let b = pump(&schedule);
        prop_assert_eq!(a, b);
    }

    /// Loss-free schedules always catch up completely once acks settle,
    /// netsplits included — retransmission closes any split-era gap.
    #[test]
    fn lossless_schedules_catch_up_completely(
        seed in 0u64..u64::MAX,
        duplicate in 0.0..0.35f64,
        delay_max in 2.0..25.0f64,
        split in splits(),
    ) {
        let schedule = Schedule { seed, loss: 0.0, duplicate, delay_max, split };
        let run = pump(&schedule);
        prop_assert_eq!(&run.mirror, &run.primary_wal, "follower did not fully catch up");
        prop_assert_eq!(run.follower_stats.applied, run.follower_next);
    }
}
