//! The capstone failover acceptance test.
//!
//! One seeded scenario exercises the whole tentpole: a sharded journaled
//! primary ships its log through a lossy, reordering, duplicating link; a
//! netsplit opens; the primary is killed mid-split with admitted work
//! still waiting; the follower promotes on heartbeat silence after the
//! split heals, re-admits strictly (demotions journaled under the new
//! epoch), and the zombie primary's late appends bounce off the epoch
//! fence. The promoted state must equal a reference recovery of the
//! shipped prefix, and the whole scenario must replay bit-identically
//! from its seed.

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_journal::wire::{decode_frames, RecordKind};
use rtdls_replica::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::config::SimConfig;
use rtdls_sim::engine::{SimReport, Simulation};
use rtdls_sim::frontend::Frontend;
use rtdls_sim::net::FaultPlan;
use rtdls_telemetry::{Stage, Telemetry};

const KILL_AT: f64 = 2_000.0;
const SPLIT_FROM: f64 = 1_910.0;
const SPLIT_UNTIL: f64 = 2_600.0;
const PROMOTE_AFTER: f64 = 2_000.0;

/// Byte-determinism requires genesis-only snapshots: later snapshots embed
/// wall-clock latency histograms, the one thing replay cannot reproduce.
fn journal_cfg() -> JournalConfig {
    JournalConfig {
        snapshot_every: 0,
        compact_on_snapshot: false,
    }
}

fn primary() -> JournaledGateway<ShardedGateway> {
    let gateway = ShardedGateway::new(
        ClusterParams::paper_baseline(),
        2,
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        Routing::LeastLoaded,
        DeferPolicy::default(),
    )
    .unwrap();
    JournaledGateway::new(gateway, journal_cfg())
}

/// The scripted workload. Absolute-time landmarks:
///
/// * steady phase (0‥1800): replicates under loss/reordering/duplication;
/// * a stacked burst at 1900 whose tail is still *waiting* when the
///   primary dies — its staggered deadlines were admitted with slack that
///   the long outage consumes, so strict re-admission at promotion must
///   demote the tightest survivors;
/// * arrivals inside the netsplit window (1950, 1980): admitted and
///   journaled by the primary but never shipped — they die with it (the
///   zombie's content);
/// * arrivals during the outage (2200, 2400): nobody answers — lost;
/// * post-promotion arrivals (4200‥6300): served by the new primary.
fn workload() -> Vec<Task> {
    let mut tasks = Vec::new();
    for i in 0..12u64 {
        tasks.push(Task::new(i, i as f64 * 150.0, 20.0, 1_200.0));
    }
    for k in 0..10u64 {
        tasks.push(Task::new(
            100 + k,
            1_900.0,
            60.0,
            1_000.0 + 400.0 * k as f64,
        ));
    }
    tasks.push(Task::new(200, 1_950.0, 30.0, 5_000.0));
    tasks.push(Task::new(201, 1_980.0, 30.0, 5_000.0));
    tasks.push(Task::new(210, 2_200.0, 20.0, 4_000.0));
    tasks.push(Task::new(211, 2_400.0, 20.0, 4_000.0));
    for i in 0..8u64 {
        tasks.push(Task::new(
            300 + i,
            4_200.0 + i as f64 * 300.0,
            20.0,
            8_000.0,
        ));
    }
    tasks.sort_by(|a, b| {
        a.arrival
            .as_f64()
            .total_cmp(&b.arrival.as_f64())
            .then(a.id.0.cmp(&b.id.0))
    });
    tasks
}

fn plan(seed: u64) -> FailoverPlan {
    FailoverPlan::kill_at(SimTime::new(KILL_AT), seed)
        .with_fault(
            FaultPlan::clean(seed)
                .with_loss(0.05)
                .with_duplication(0.10)
                .with_delay(1.0, 8.0)
                .with_split(SimTime::new(SPLIT_FROM), SimTime::new(SPLIT_UNTIL)),
        )
        .with_ack_fault(
            FaultPlan::clean(seed.wrapping_mul(31).wrapping_add(7)).with_delay(1.0, 5.0),
        )
        .with_ship(ShipConfig {
            heartbeat_every: 40.0,
            retransmit_after: 120.0,
        })
        .with_follower(FollowerConfig {
            promote_after: PROMOTE_AFTER,
        })
        .with_journal(journal_cfg())
}

fn run(seed: u64) -> (SimReport, ReplicaFrontend<ShardedGateway>) {
    let cfg = SimConfig::new(ClusterParams::paper_baseline(), AlgorithmKind::EDF_DLT)
        .with_tenants(TenantMix::uniform(3));
    run_failover(cfg, primary(), plan(seed), workload())
}

/// Task ids carried by the input (submission) events of a WAL.
fn submitted_ids(bytes: &[u8]) -> Vec<u64> {
    let (frames, _) = decode_frames(bytes);
    frames
        .iter()
        .filter(|f| f.kind == RecordKind::Event)
        .filter_map(|f| {
            let ev: JournalEvent =
                serde_json::from_str(std::str::from_utf8(&f.payload).ok()?).ok()?;
            match ev {
                JournalEvent::Submitted { task, .. } => Some(vec![task.id.0]),
                JournalEvent::RequestSubmitted { request, .. } => Some(vec![request.task.id.0]),
                JournalEvent::BatchSubmitted { tasks, .. } => {
                    Some(tasks.iter().map(|t| t.id.0).collect())
                }
                _ => None,
            }
        })
        .flatten()
        .collect()
}

#[test]
fn killed_primary_under_netsplit_fails_over_and_fences_the_zombie() {
    let (report, frontend) = run(42);
    let out = frontend.outcome();

    // The kill fired at its scheduled instant, inside the netsplit.
    let killed_at = out.killed_at.expect("primary was killed");
    assert_eq!(killed_at, SimTime::new(KILL_AT));
    assert!(killed_at > SimTime::new(SPLIT_FROM) && killed_at < SimTime::new(SPLIT_UNTIL));
    assert!(out.link.split_dropped > 0, "the split actually ate traffic");
    assert!(out.link.lost > 0 && out.link.duplicated > 0);

    // The follower promoted on heartbeat silence — after the split healed
    // (netsplit-then-heal: the heal alone must not resurrect the dead
    // primary in the failure detector) — under the next epoch.
    let promoted_at = out.promoted_at.expect("follower promoted");
    assert!(promoted_at > killed_at);
    assert!(promoted_at > SimTime::new(SPLIT_UNTIL));
    let promotion = out.promotion.clone().expect("promotion record");
    assert_eq!(promotion.epoch, 1);
    assert_eq!(frontend.follower().epoch(), 1);

    // Strict re-admission journaled demotions: part of the burst stack was
    // still waiting, and the outage consumed its admission-time slack.
    assert!(
        !promotion.demoted.is_empty(),
        "the outage made waiting work infeasible: {promotion:?}"
    );

    // The zombie existed (the primary died with unacked appends) and every
    // late frame it shipped was fenced — follower state frozen since
    // promotion, mirror byte-identical to the shipped prefix.
    assert!(out.zombie_frames > 0, "netsplit left an unacked tail");
    assert!(out.follower.fenced >= out.zombie_frames);
    assert_eq!(frontend.follower().bytes(), &out.shipped_prefix[..]);
    assert_eq!(frontend.follower().next_seq() as usize, {
        let (frames, _) = decode_frames(&out.shipped_prefix);
        frames.len()
    });

    // The in-split arrivals were admitted and journaled by the primary but
    // the split kept them out of the shipped prefix: real, provably lost
    // write history — the zombie's content.
    let primary_saw = submitted_ids(&out.primary_wal);
    let follower_saw = submitted_ids(&out.shipped_prefix);
    for id in [200u64, 201u64] {
        assert!(primary_saw.contains(&id), "primary journaled task {id}");
        assert!(
            !follower_saw.contains(&id),
            "task {id} must not have reached the follower"
        );
        assert!(
            Frontend::find_plan(&frontend, TaskId(id)).is_none(),
            "task {id} must not survive into the promoted gateway"
        );
    }

    // The promoted gateway's state equals a reference recovery of the
    // shipped prefix: cold replay + the buffered outage releases + the
    // same strict re-admission pass at the promotion instant.
    let (mut reference, replay_report) =
        replay::<ShardedGateway>(&out.shipped_prefix).expect("shipped prefix replays");
    assert!(replay_report.tail.is_clean());
    for &(node, time) in &out.buffered_releases {
        Frontend::set_node_release(&mut reference, node, time);
    }
    let _ = reference.take_breach_log();
    let (reference, ref_demoted) = requalify(reference, promoted_at, journal_cfg(), None, 1);
    let genesis = out.promoted_genesis.clone().expect("promotion snapshot");
    let ref_state = reference.inner().capture().normalized();
    assert_eq!(
        genesis.shards, ref_state.shards,
        "per-shard ControllerState diverged from the reference recovery"
    );
    assert_eq!(genesis, ref_state, "full gateway state diverged");
    assert_eq!(promotion.demoted, ref_demoted);

    // Demotions (and the new primary's genesis) are journaled under the
    // bumped epoch.
    let promoted_wal = frontend.gateway().expect("promoted gateway").journal();
    assert_eq!(promoted_wal.epoch(), 1);
    let (frames, tail) = decode_frames(promoted_wal.bytes());
    assert!(tail.is_clean());
    let genesis_epoch = frames
        .iter()
        .find(|f| f.kind == RecordKind::Snapshot)
        .map(|f| {
            let snap: GatewaySnapshot =
                serde_json::from_str(std::str::from_utf8(&f.payload).unwrap()).unwrap();
            snap.epoch
        })
        .expect("promoted journal has a genesis snapshot");
    assert_eq!(genesis_epoch, 1);
    let journaled_demotions: Vec<u64> = frames
        .iter()
        .filter(|f| f.kind == RecordKind::Event)
        .filter_map(|f| {
            let ev: JournalEvent =
                serde_json::from_str(std::str::from_utf8(&f.payload).ok()?).ok()?;
            match ev {
                JournalEvent::Demoted { task, .. } => Some(task),
                _ => None,
            }
        })
        .collect();
    let expected: Vec<u64> = promotion.demoted.iter().map(|t| t.0).collect();
    assert_eq!(journaled_demotions, expected);

    // Life goes on: the outage window bounced arrivals, the promoted
    // primary served the post-outage ones.
    assert!(
        out.lost_submissions > 0,
        "the outage window rejected arrivals"
    );
    assert!(report.metrics.completed > 0);
}

#[test]
fn one_trace_id_reconstructs_the_cross_node_timeline_after_failover() {
    // Two recorders model two processes: the primary's dies with the kill;
    // only the follower's survives to answer timeline queries.
    let primary_recorder = Telemetry::with_defaults();
    let follower_recorder = Telemetry::with_defaults();
    let mut frontend = ReplicaFrontend::new(primary(), plan(42));
    frontend.attach_primary_telemetry(&primary_recorder);
    frontend.attach_follower_telemetry(&follower_recorder);
    let cfg = SimConfig::new(ClusterParams::paper_baseline(), AlgorithmKind::EDF_DLT)
        .with_tenants(TenantMix::uniform(3));
    let mut sim = Simulation::with_frontend(cfg, frontend);
    sim.prime(workload());
    while sim.step() {}
    let (_report, frontend) = sim.finish();
    let out = frontend.outcome();
    assert!(out.promoted_at.is_some(), "scenario must fail over");

    // Task 1 was admitted, journaled, and shipped long before the kill.
    // Drop the primary's recorder — the query must succeed without it.
    drop(primary_recorder);
    let trace = follower_recorder
        .trace_of(1)
        .expect("shipped frame re-associated task 1 with its trace");
    let spans = follower_recorder.trace_spans(trace);
    assert!(spans.iter().all(|s| s.trace == trace));
    let position = |stage: Stage| spans.iter().position(|s| s.stage == stage);
    let plan_at = position(Stage::Plan).expect("primary's plan span shipped across");
    let append_at = position(Stage::JournalAppend).expect("primary's append span shipped across");
    let ship_at = position(Stage::ShipFrame).expect("primary's ship span shipped across");
    let replay_at = position(Stage::FollowerReplay).expect("follower recorded its replay");
    let promote_at = position(Stage::Promote).expect("promotion fenced the trace");
    assert!(
        plan_at < ship_at && append_at < ship_at && ship_at < replay_at && replay_at < promote_at,
        "timeline out of order: {spans:#?}"
    );
    assert!(
        spans[promote_at].outcome.contains("epoch 1"),
        "promotion span names the new epoch: {:?}",
        spans[promote_at]
    );

    // Post-promotion mints must not collide with ingested primary ids.
    let fresh = follower_recorder.mint();
    assert!(
        fresh > trace,
        "local mint counter was fenced past ingested traces"
    );
}

#[test]
fn the_whole_scenario_replays_bit_identically_from_its_seed() {
    let (r1, f1) = run(42);
    let (r2, f2) = run(42);
    // The forensic outcome covers every byte that matters: the shipped
    // prefix, the promoted genesis snapshot, the dead primary's WAL, all
    // link/follower/shipper counters.
    assert_eq!(f1.outcome(), f2.outcome());
    assert_eq!(r1.metrics.accepted, r2.metrics.accepted);
    assert_eq!(r1.metrics.rejected, r2.metrics.rejected);
    assert_eq!(r1.metrics.completed, r2.metrics.completed);
    assert_eq!(r1.metrics.deadline_misses, r2.metrics.deadline_misses);

    // A different seed misbehaves differently.
    let (_, f3) = run(43);
    assert_ne!(f1.outcome(), f3.outcome());
}

#[test]
fn the_control_arm_never_kills_and_never_promotes() {
    let cfg = SimConfig::new(ClusterParams::paper_baseline(), AlgorithmKind::EDF_DLT);
    let (report, frontend) = run_failover(
        cfg,
        primary(),
        FailoverPlan::no_kill(7),
        (0..10u64)
            .map(|i| Task::new(i, i as f64 * 200.0, 20.0, 2_000.0))
            .collect(),
    );
    let out = frontend.outcome();
    assert_eq!(out.killed_at, None);
    assert_eq!(out.promoted_at, None);
    assert_eq!(out.lost_submissions, 0);
    assert!(!frontend.follower().promoted());
    assert_eq!(report.metrics.completed, report.metrics.accepted);
    assert_eq!(report.metrics.deadline_misses, 0);
}
