//! Service-level arrival processes.
//!
//! The paper's evaluation drives one cluster with a plain Poisson stream
//! ([`crate::generator::WorkloadGenerator`]). An online serving layer is
//! stressed differently: load arrives **open-loop** (the source does not
//! wait for admission verdicts) and in **bursts** — exactly the regime where
//! a gateway's Defer queue and batched submission earn their keep.
//!
//! [`BurstyPoisson`] is a Markov-modulated Poisson process: the source
//! alternates between a *calm* phase at the spec's base rate and a *burst*
//! phase where the rate is multiplied by `burst_rate_factor`. Phase
//! durations are exponential. Task shapes (sizes, deadlines, user-split
//! requests) are drawn from the same paper model as the plain generator, so
//! gateway experiments stay comparable with the offline baselines.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rtdls_core::prelude::Task;

use crate::distributions::Exponential;
use crate::generator::WorkloadGenerator;
use crate::spec::WorkloadSpec;

/// Shape of the on/off burst modulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstProfile {
    /// Rate multiplier during bursts (≥ 1; 1 degenerates to plain Poisson).
    pub rate_factor: f64,
    /// Mean burst-phase duration (time units).
    pub mean_burst: f64,
    /// Mean calm-phase duration (time units).
    pub mean_calm: f64,
}

impl BurstProfile {
    /// A profile that roughly triples the arrival rate one fifth of the
    /// time — enough pressure to exercise Defer without drowning the
    /// cluster.
    pub fn moderate(spec: &WorkloadSpec) -> Self {
        let scale = spec.mean_interarrival();
        BurstProfile {
            rate_factor: 3.0,
            mean_burst: 20.0 * scale,
            mean_calm: 80.0 * scale,
        }
    }

    fn validate(&self) {
        assert!(
            self.rate_factor.is_finite() && self.rate_factor >= 1.0,
            "burst rate factor must be >= 1, got {}",
            self.rate_factor
        );
        assert!(
            self.mean_burst > 0.0 && self.mean_calm > 0.0,
            "burst/calm phase means must be > 0"
        );
    }
}

/// Open-loop Markov-modulated Poisson task stream; implements [`Iterator`].
///
/// Deterministic per `(spec, profile, seed)`. Arrivals cover `[0,
/// spec.horizon)`; task ids are sequential from zero.
#[derive(Clone, Debug)]
pub struct BurstyPoisson {
    /// Draws task shapes (σ, D, user-split n) from the paper model; its own
    /// arrival clock is discarded and replaced by the modulated one.
    shapes: WorkloadGenerator,
    profile: BurstProfile,
    rng: SmallRng,
    horizon: f64,
    base_interarrival: Exponential,
    clock: f64,
    in_burst: bool,
    phase_ends: f64,
    exhausted: bool,
}

impl BurstyPoisson {
    /// Creates the stream. Panics on an invalid spec or profile.
    pub fn new(spec: WorkloadSpec, profile: BurstProfile, seed: u64) -> Self {
        profile.validate();
        spec.validate().expect("invalid workload spec");
        let base_interarrival = Exponential::new(spec.mean_interarrival());
        let horizon = spec.horizon;
        // The inner generator must never exhaust on its own clock; the
        // modulated clock owns termination.
        let mut inner_spec = spec;
        inner_spec.horizon = 1e300;
        // Separate phase/arrival stream from the shape stream so shapes stay
        // identical across burst profiles with the same seed.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6275_7273_7479_u64);
        let phase_ends = Exponential::new(profile.mean_calm).sample(&mut rng);
        BurstyPoisson {
            shapes: WorkloadGenerator::new(inner_spec, seed),
            profile,
            rng,
            horizon,
            base_interarrival,
            clock: 0.0,
            in_burst: false,
            phase_ends,
            exhausted: false,
        }
    }

    /// The underlying workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        self.shapes.spec()
    }

    fn advance_clock(&mut self) {
        loop {
            let rate_factor = if self.in_burst {
                self.profile.rate_factor
            } else {
                1.0
            };
            let gap = self.base_interarrival.sample(&mut self.rng) / rate_factor;
            if self.clock + gap <= self.phase_ends {
                self.clock += gap;
                return;
            }
            // Cross into the next phase and redraw the residual gap there
            // (memorylessness makes the redraw exact, not an approximation).
            self.clock = self.phase_ends;
            self.in_burst = !self.in_burst;
            let mean = if self.in_burst {
                self.profile.mean_burst
            } else {
                self.profile.mean_calm
            };
            self.phase_ends = self.clock + Exponential::new(mean).sample(&mut self.rng);
        }
    }
}

impl Iterator for BurstyPoisson {
    type Item = Task;

    fn next(&mut self) -> Option<Task> {
        if self.exhausted {
            return None;
        }
        self.advance_clock();
        if self.clock >= self.horizon {
            self.exhausted = true;
            return None;
        }
        let shape = self.shapes.next().expect("inner generator is unbounded");
        Some(
            Task::new(shape.id.0, self.clock, shape.data_size, shape.rel_deadline)
                .with_user_nodes(shape.user_nodes),
        )
    }
}

/// A deterministic step overload: calm at the spec's base rate, then a
/// *flash crowd* — the rate multiplied by `rate_factor` over one fixed
/// window `[at, at + duration)` — then calm again until the horizon.
///
/// Where [`BurstyPoisson`] models sustained stochastic burstiness, the
/// flash crowd is the SLO-alarm stress shape: a single overload step whose
/// start and end the experimenter controls exactly, so a test can assert
/// the burn-rate alarm trajectory *healthy → burning → breached →
/// recovered* against known phase boundaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd arrives.
    pub at: f64,
    /// How long it stays.
    pub duration: f64,
    /// Rate multiplier while it stays (≥ 1).
    pub rate_factor: f64,
}

impl FlashCrowd {
    /// A crowd that desaturates a healthy cluster: 8× the base rate for
    /// 60 mean interarrivals, arriving after a 120-interarrival warmup.
    pub fn severe(spec: &WorkloadSpec) -> Self {
        let scale = spec.mean_interarrival();
        FlashCrowd {
            at: 120.0 * scale,
            duration: 60.0 * scale,
            rate_factor: 8.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.rate_factor.is_finite() && self.rate_factor >= 1.0,
            "flash-crowd rate factor must be >= 1, got {}",
            self.rate_factor
        );
        assert!(
            self.at >= 0.0 && self.duration > 0.0,
            "flash-crowd window must be non-negative start, positive duration"
        );
    }

    /// `true` while the crowd is present at `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.at && t < self.at + self.duration
    }

    /// The arrival stream for this scenario over `spec`'s horizon.
    pub fn stream(self, spec: WorkloadSpec, seed: u64) -> FlashCrowdStream {
        self.validate();
        spec.validate().expect("invalid workload spec");
        let base_interarrival = Exponential::new(spec.mean_interarrival());
        let horizon = spec.horizon;
        let mut inner_spec = spec;
        inner_spec.horizon = 1e300;
        // Separate arrival stream from the shape stream, mirroring
        // BurstyPoisson: shapes stay identical across crowd profiles.
        let rng = SmallRng::seed_from_u64(seed ^ 0x666c_6173_6863_u64);
        FlashCrowdStream {
            shapes: WorkloadGenerator::new(inner_spec, seed),
            crowd: self,
            rng,
            horizon,
            base_interarrival,
            clock: 0.0,
            exhausted: false,
        }
    }
}

/// Open-loop arrival stream for one [`FlashCrowd`] scenario; implements
/// [`Iterator`]. Deterministic per `(spec, crowd, seed)`.
#[derive(Clone, Debug)]
pub struct FlashCrowdStream {
    shapes: WorkloadGenerator,
    crowd: FlashCrowd,
    rng: SmallRng,
    horizon: f64,
    base_interarrival: Exponential,
    clock: f64,
    exhausted: bool,
}

impl FlashCrowdStream {
    /// The underlying workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        self.shapes.spec()
    }

    /// The scenario driving the rate.
    pub fn crowd(&self) -> FlashCrowd {
        self.crowd
    }

    fn advance_clock(&mut self) {
        // Phase boundaries are fixed instants, so the crossing redraw is
        // the same memoryless trick as BurstyPoisson's — draw at the
        // current phase's rate, and on crossing a boundary restart the
        // residual wait at the new rate from the boundary.
        loop {
            let rate_factor = if self.crowd.active_at(self.clock) {
                self.crowd.rate_factor
            } else {
                1.0
            };
            let boundary = if self.clock < self.crowd.at {
                self.crowd.at
            } else if self.crowd.active_at(self.clock) {
                self.crowd.at + self.crowd.duration
            } else {
                f64::INFINITY
            };
            let gap = self.base_interarrival.sample(&mut self.rng) / rate_factor;
            if self.clock + gap <= boundary {
                self.clock += gap;
                return;
            }
            self.clock = boundary;
        }
    }
}

impl Iterator for FlashCrowdStream {
    type Item = Task;

    fn next(&mut self) -> Option<Task> {
        if self.exhausted {
            return None;
        }
        self.advance_clock();
        if self.clock >= self.horizon {
            self.exhausted = true;
            return None;
        }
        let shape = self.shapes.next().expect("inner generator is unbounded");
        Some(
            Task::new(shape.id.0, self.clock, shape.data_size, shape.rel_deadline)
                .with_user_nodes(shape.user_nodes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_spec(load: f64) -> WorkloadSpec {
        let mut s = WorkloadSpec::paper_baseline(load);
        s.horizon = 2e6;
        s
    }

    #[test]
    fn deterministic_and_ordered() {
        let spec = short_spec(0.5);
        let profile = BurstProfile::moderate(&spec);
        let a: Vec<Task> = BurstyPoisson::new(spec, profile, 7).collect();
        let b: Vec<Task> = BurstyPoisson::new(spec, profile, 7).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, t) in a.iter().enumerate() {
            assert_eq!(t.id.0, i as u64);
        }
        let c: Vec<Task> = BurstyPoisson::new(spec, profile, 8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_factor_matches_base_rate() {
        let spec = short_spec(0.5);
        let profile = BurstProfile {
            rate_factor: 1.0,
            mean_burst: 1e4,
            mean_calm: 1e4,
        };
        let tasks: Vec<Task> = BurstyPoisson::new(spec, profile, 3).collect();
        let mean_gap = tasks.last().unwrap().arrival.as_f64() / tasks.len() as f64;
        let expected = spec.mean_interarrival();
        assert!(
            (mean_gap / expected - 1.0).abs() < 0.1,
            "mean gap {mean_gap} vs base {expected}"
        );
    }

    #[test]
    fn bursts_raise_the_aggregate_rate() {
        let spec = short_spec(0.5);
        let calm_only = BurstyPoisson::new(
            spec,
            BurstProfile {
                rate_factor: 1.0,
                mean_burst: 1.0,
                mean_calm: 1e9,
            },
            5,
        )
        .count();
        let bursty = BurstyPoisson::new(
            spec,
            BurstProfile {
                rate_factor: 4.0,
                mean_burst: 5e4,
                mean_calm: 5e4,
            },
            5,
        )
        .count();
        // Half the time at 4×: expected ≈ 2.5× the calm count.
        let ratio = bursty as f64 / calm_only as f64;
        assert!((1.7..3.5).contains(&ratio), "burst ratio {ratio}");
    }

    #[test]
    fn shapes_match_the_paper_model() {
        let spec = short_spec(1.0);
        let profile = BurstProfile::moderate(&spec);
        let tasks: Vec<Task> = BurstyPoisson::new(spec, profile, 11).collect();
        for t in &tasks {
            assert!(t.data_size > 0.0);
            assert!(t.rel_deadline > spec.deadline_floor_value(t.data_size));
        }
    }

    #[test]
    fn flash_crowd_is_deterministic_and_ordered() {
        let spec = short_spec(0.5);
        let crowd = FlashCrowd::severe(&spec);
        let a: Vec<Task> = crowd.stream(spec, 13).collect();
        let b: Vec<Task> = crowd.stream(spec, 13).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_its_window() {
        let spec = short_spec(0.5);
        let scale = spec.mean_interarrival();
        let crowd = FlashCrowd {
            at: 200.0 * scale,
            duration: 100.0 * scale,
            rate_factor: 8.0,
        };
        let tasks: Vec<Task> = crowd.stream(spec, 21).collect();
        let in_window = tasks
            .iter()
            .filter(|t| crowd.active_at(t.arrival.as_f64()))
            .count();
        // The window spans 100 mean interarrivals at 8× rate — expect
        // about 800 arrivals inside vs about 1 per interarrival outside.
        let window_rate = in_window as f64 / 100.0;
        let outside_rate = (tasks.len() - in_window) as f64 / (spec.horizon / scale - 100.0);
        assert!(
            window_rate > 4.0 * outside_rate,
            "crowd window rate {window_rate:.2} vs outside {outside_rate:.2}"
        );
    }

    #[test]
    fn flash_crowd_rate_recovers_after_the_window() {
        let spec = short_spec(0.5);
        let scale = spec.mean_interarrival();
        let crowd = FlashCrowd {
            at: 100.0 * scale,
            duration: 50.0 * scale,
            rate_factor: 6.0,
        };
        let tasks: Vec<Task> = crowd.stream(spec, 33).collect();
        let after = crowd.at + crowd.duration;
        let tail = tasks.iter().filter(|t| t.arrival.as_f64() >= after).count() as f64;
        let tail_span = (spec.horizon - after) / scale;
        let tail_rate = tail / tail_span;
        // Post-crowd the stream is plain Poisson at the base rate again.
        assert!(
            (0.7..1.4).contains(&tail_rate),
            "post-crowd rate {tail_rate:.2} per mean interarrival"
        );
    }
}
