//! Random variates used by the paper's workload model (§5):
//! exponential interarrival times, normal data sizes, uniform deadlines.
//!
//! Implemented directly over [`rand::Rng`] (inverse-CDF and Box–Muller)
//! instead of pulling in `rand_distr`, keeping the dependency set to the
//! approved list (DESIGN.md §7).

use rand::Rng;

/// Exponential distribution with the given mean (`1/λ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// `mean` must be finite and positive.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be > 0"
        );
        Exponential { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one variate by inverse CDF: `−mean · ln(1 − U)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() ∈ [0, 1): 1 − U ∈ (0, 1], so ln is finite and ≤ 0.
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

/// Normal distribution via the Box–Muller transform.
///
/// Stateless: each call consumes two uniforms and returns one variate (the
/// antithetic twin is discarded, keeping sampling order-independent of call
/// sites — determinism across refactors matters more here than one extra
/// `gen` call).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "normal mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "normal std dev must be finite and >= 0"
        );
        Normal { mean, std_dev }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: z = √(−2 ln u1) · cos(2π u2), u1 ∈ (0, 1].
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draws a strictly positive variate by rejection (resampling).
    ///
    /// The paper's data sizes are `N(Avgσ, Avgσ)`, which is negative ~16% of
    /// the time; sizes must be positive, so negative draws are resampled
    /// (DESIGN.md §5, point 2). With `mean = std_dev` the acceptance rate is
    /// ≈ 84%, so the loop terminates almost immediately.
    pub fn sample_positive<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let x = self.sample(rng);
            if x > 0.0 {
                return x;
            }
        }
    }
}

/// Pareto (power-law) distribution with the given scale `x_m` and shape
/// `α`: `P(X > x) = (x_m / x)^α` for `x ≥ x_m`.
///
/// The heavy-tailed size model (`SizeModel::HeavyTailed`) uses it for
/// task data sizes: with `α ≤ 2` the variance is infinite, so a stream
/// mixes many small tasks with rare huge ones — the regime where a
/// scheduler's queue depth and admission cost are stressed far beyond
/// what the paper's normal sizes produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// `scale` and `shape` must be finite and positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "pareto scale must be > 0");
        assert!(shape.is_finite() && shape > 0.0, "pareto shape must be > 0");
        Pareto { scale, shape }
    }

    /// The distribution mean (`α·x_m / (α − 1)`); infinite for `α ≤ 1`.
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }

    /// Draws one variate by inverse CDF: `x_m / (1 − U)^{1/α}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() ∈ [0, 1): 1 − U ∈ (0, 1], so the power is finite.
        let u: f64 = rng.gen();
        self.scale / (1.0 - u).powf(1.0 / self.shape)
    }
}

/// Continuous uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformRange {
    low: f64,
    high: f64,
}

impl UniformRange {
    /// Requires `low < high`, both finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "need low < high"
        );
        UniformRange { low, high }
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.low..self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    fn var_of(samples: &[f64]) -> f64 {
        let m = mean_of(samples);
        samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    }

    const N: usize = 200_000;

    #[test]
    fn exponential_moments_match() {
        let d = Exponential::new(1360.0);
        let mut r = rng(7);
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        let m = mean_of(&xs);
        assert!(
            (m / 1360.0 - 1.0).abs() < 0.02,
            "mean {m} too far from 1360"
        );
        // Var = mean² for exponential.
        let v = var_of(&xs);
        assert!(
            (v / (1360.0 * 1360.0) - 1.0).abs() < 0.05,
            "variance off: {v}"
        );
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(200.0, 200.0);
        let mut r = rng(42);
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        let m = mean_of(&xs);
        let v = var_of(&xs);
        assert!((m - 200.0).abs() < 2.0, "mean {m}");
        assert!((v.sqrt() / 200.0 - 1.0).abs() < 0.02, "std {}", v.sqrt());
        // Roughly 16% of mass below zero for mean = std.
        let neg = xs.iter().filter(|&&x| x < 0.0).count() as f64 / N as f64;
        assert!((neg - 0.1587).abs() < 0.01, "negative mass {neg}");
    }

    #[test]
    fn truncated_normal_is_positive_with_shifted_mean() {
        let d = Normal::new(200.0, 200.0);
        let mut r = rng(3);
        let xs: Vec<f64> = (0..N).map(|_| d.sample_positive(&mut r)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        // E[X | X>0] for N(μ, μ) is μ·(1 + φ(1)/Φ(1)) ≈ 1.288·μ.
        let m = mean_of(&xs);
        assert!(
            (m / (200.0 * 1.2876) - 1.0).abs() < 0.02,
            "truncated mean {m}"
        );
    }

    #[test]
    fn pareto_moments_and_tail_match() {
        let d = Pareto::new(100.0, 1.5);
        assert!((d.mean() - 300.0).abs() < 1e-9);
        let mut r = rng(5);
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x >= 100.0), "support starts at x_m");
        // Tail probability: P(X > 10·x_m) = 10^-1.5 ≈ 3.16%.
        let tail = xs.iter().filter(|&&x| x > 1000.0).count() as f64 / N as f64;
        assert!((tail - 0.0316).abs() < 0.005, "tail mass {tail}");
        // The sample mean of an infinite-variance law converges slowly;
        // only sanity-check the right order of magnitude.
        let m = mean_of(&xs);
        assert!((150.0..600.0).contains(&m), "mean {m}");
    }

    #[test]
    #[should_panic(expected = "shape must be > 0")]
    fn pareto_rejects_bad_shape() {
        let _ = Pareto::new(1.0, 0.0);
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let d = UniformRange::new(10.0, 30.0);
        let mut r = rng(11);
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| (10.0..30.0).contains(&x)));
        let m = mean_of(&xs);
        assert!((m - 20.0).abs() < 0.1, "uniform mean {m}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Exponential::new(5.0);
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut r = rng(100);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn exponential_rejects_bad_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_rejects_inverted_bounds() {
        let _ = UniformRange::new(3.0, 3.0);
    }
}
