//! Workload parameterization (§5 "Workload Generation").
//!
//! A simulation's workload is specified by `(N, Cms, Cps, SystemLoad, Avgσ,
//! DCRatio)`:
//!
//! * `SystemLoad = E(Avgσ, N) · λ` fixes the mean interarrival time
//!   `1/λ = E(Avgσ, N) / SystemLoad`;
//! * `DCRatio = AvgD / E(Avgσ, N)` fixes the mean relative deadline
//!   `AvgD = DCRatio · E(Avgσ, N)`;
//!
//! where `E(Avgσ, N)` is the execution time of an average-sized task on the
//! whole cluster.

use serde::{Deserialize, Serialize};

use rtdls_core::dlt::homogeneous;
use rtdls_core::prelude::ClusterParams;

/// Which per-task minimum execution time floors the deadline draw
/// (DESIGN.md §5; the paper's §5 under-determines this for the User-Split
/// experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeadlineFloor {
    /// `E(σ_i, N)` — the DLT-optimal minimum execution time, as the paper's
    /// §5 text states. Under this floor ~25% of baseline tasks have a
    /// user-split `N_min > N` (no equal split can meet the deadline), which
    /// User-Split algorithms must reject outright.
    #[default]
    OptimalExec,
    /// `σ_i·Cms + σ_i·Cps/N` — the *equal-split* minimum execution time.
    /// Guarantees `N_min ≤ N` for every task (the premise of §4.1.2's
    /// "[N_min, N] range"), which is the only reading consistent with the
    /// low User-Split reject ratios of Fig. 5a at light load. Used by the
    /// harness for the figures that compare against User-Split.
    UserSplitExec,
}

/// How negative draws of the `N(Avgσ, Avgσ)` size distribution are handled
/// (§5 says only "normally distributed"; sizes must be positive).
///
/// The choice moves the *realized* mean size and therefore the offered load:
/// plain positive-truncation inflates the mean to `≈1.2876·Avgσ`, so a
/// nominal `SystemLoad` of 1.0 would offer ~19% more work than one
/// full-cluster capacity — yet the paper's DCRatio=100 runs reject ≈0.3% at
/// `SystemLoad = 1.0`, which is only possible if the realized mean is ≈Avgσ
/// (see EXPERIMENTS.md). Hence the calibrated default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SizeModel {
    /// Positive-truncated normal **rescaled so the realized mean is exactly
    /// `Avgσ`** — the `SystemLoad` axis then means what it says (default).
    #[default]
    Calibrated,
    /// Plain rejection sampling of `N(Avgσ, Avgσ)` until positive; realized
    /// mean `≈1.2876·Avgσ` (ablation `abl-sizes`).
    TruncatedRaw,
    /// Heavy-tailed sizes: Pareto with shape [`HEAVY_TAIL_SHAPE`] (= 1.5 —
    /// finite mean, infinite variance), scale chosen so the mean is exactly
    /// `Avgσ`. Beyond the paper's workload model: many small tasks mixed
    /// with rare huge ones, the regime that stresses queue depth and
    /// admission cost (ROADMAP "heavy-tailed size distributions").
    HeavyTailed,
}

/// Pareto shape parameter of [`SizeModel::HeavyTailed`]. `1 < α ≤ 2`:
/// finite mean (so `SystemLoad` stays meaningful) but infinite variance
/// (a genuinely heavy tail).
pub const HEAVY_TAIL_SHAPE: f64 = 1.5;

/// `1 + φ(1)/Φ(1)`: the mean of a `N(μ, μ)` normal truncated to `(0, ∞)`,
/// in units of `μ` (standard normal pdf/cdf at `z = 1`).
pub const TRUNCATED_MEAN_FACTOR: f64 = 1.2875999709391783;

/// How the deadline draw is made to respect the floor ("a task relative
/// deadline `D_i` is chosen to be larger than its minimum execution time",
/// §5 — the paper does not say *how* it is chosen to be larger).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FloorMode {
    /// Redraw the `(σ_i, D_i)` pair until `D_i` exceeds the floor. No
    /// probability mass piles up at the floor and over-long tasks whose
    /// minimum execution exceeds the whole deadline range never appear.
    /// Default: reproduces the paper's absolute reject-ratio levels
    /// (see EXPERIMENTS.md).
    #[default]
    Resample,
    /// Clamp the drawn deadline up to the floor. Simpler, but concentrates
    /// a sizable fraction of tasks exactly at their minimum execution time
    /// (zero slack), inflating reject ratios at every load.
    Clamp,
}

/// Full workload specification for one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Cluster the workload is sized against.
    pub params: ClusterParams,
    /// `SystemLoad` ∈ (0, ∞), typically swept over 0.1..=1.0.
    pub system_load: f64,
    /// Mean task data size `Avgσ`.
    pub avg_sigma: f64,
    /// Deadline/cost ratio `DCRatio` (≥ ~1 for schedulable workloads).
    pub dc_ratio: f64,
    /// Arrival horizon: tasks arrive over `[0, horizon)`
    /// (`TotalSimulationTime`, 10^7 in the paper).
    pub horizon: f64,
    /// Deadline floor rule (see [`DeadlineFloor`]).
    pub deadline_floor: DeadlineFloor,
    /// How draws below the floor are handled (see [`FloorMode`]).
    pub floor_mode: FloorMode,
    /// How negative size draws are handled (see [`SizeModel`]).
    pub size_model: SizeModel,
}

impl WorkloadSpec {
    /// The paper's baseline (§5.1): `N=16, Cms=1, Cps=100, Avgσ=200,
    /// DCRatio=2`, horizon `10^7`, at the given load.
    pub fn paper_baseline(system_load: f64) -> Self {
        WorkloadSpec {
            params: ClusterParams::paper_baseline(),
            system_load,
            avg_sigma: 200.0,
            dc_ratio: 2.0,
            horizon: 1e7,
            deadline_floor: DeadlineFloor::OptimalExec,
            floor_mode: FloorMode::Resample,
            size_model: SizeModel::Calibrated,
        }
    }

    /// Returns the spec with the given size model.
    pub fn with_size_model(mut self, model: SizeModel) -> Self {
        self.size_model = model;
        self
    }

    /// Returns the spec with the given deadline-floor rule.
    pub fn with_deadline_floor(mut self, floor: DeadlineFloor) -> Self {
        self.deadline_floor = floor;
        self
    }

    /// Returns the spec with the given floor handling mode.
    pub fn with_floor_mode(mut self, mode: FloorMode) -> Self {
        self.floor_mode = mode;
        self
    }

    /// The minimum execution time that floors a task's deadline draw, for a
    /// task of size `sigma`.
    pub fn deadline_floor_value(&self, sigma: f64) -> f64 {
        match self.deadline_floor {
            DeadlineFloor::OptimalExec => {
                homogeneous::exec_time(&self.params, sigma, self.params.num_nodes)
            }
            DeadlineFloor::UserSplitExec => {
                sigma * self.params.cms + sigma * self.params.cps / self.params.num_nodes as f64
            }
        }
    }

    /// Validates the numeric ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.system_load.is_finite() && self.system_load > 0.0) {
            return Err(format!("system_load must be > 0, got {}", self.system_load));
        }
        if !(self.avg_sigma.is_finite() && self.avg_sigma > 0.0) {
            return Err(format!("avg_sigma must be > 0, got {}", self.avg_sigma));
        }
        if !(self.dc_ratio.is_finite() && self.dc_ratio > 0.0) {
            return Err(format!("dc_ratio must be > 0, got {}", self.dc_ratio));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(format!("horizon must be > 0, got {}", self.horizon));
        }
        Ok(())
    }

    /// `E(Avgσ, N)`: execution time of an average task on the full cluster —
    /// the normalization constant behind both `SystemLoad` and `DCRatio`.
    pub fn avg_min_exec_time(&self) -> f64 {
        homogeneous::exec_time(&self.params, self.avg_sigma, self.params.num_nodes)
    }

    /// Mean interarrival time `1/λ = E(Avgσ, N) / SystemLoad`.
    pub fn mean_interarrival(&self) -> f64 {
        self.avg_min_exec_time() / self.system_load
    }

    /// Mean relative deadline `AvgD = DCRatio · E(Avgσ, N)`.
    pub fn avg_deadline(&self) -> f64 {
        self.dc_ratio * self.avg_min_exec_time()
    }

    /// Expected number of arrivals over the horizon.
    pub fn expected_arrivals(&self) -> f64 {
        self.horizon / self.mean_interarrival()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_constants_are_the_papers() {
        let s = WorkloadSpec::paper_baseline(0.5);
        assert_eq!(s.params.num_nodes, 16);
        assert_eq!(s.avg_sigma, 200.0);
        assert_eq!(s.dc_ratio, 2.0);
        assert_eq!(s.horizon, 1e7);
        s.validate().unwrap();
    }

    #[test]
    fn load_and_interarrival_are_reciprocal() {
        // SystemLoad = E/λ⁻¹: doubling the load halves the interarrival.
        let lo = WorkloadSpec::paper_baseline(0.25);
        let hi = WorkloadSpec::paper_baseline(0.5);
        assert!((lo.mean_interarrival() / hi.mean_interarrival() - 2.0).abs() < 1e-12);
        // And SystemLoad = E(Avgσ,N) / interarrival.
        let s = WorkloadSpec::paper_baseline(0.7);
        let implied = s.avg_min_exec_time() / s.mean_interarrival();
        assert!((implied - 0.7).abs() < 1e-12);
    }

    #[test]
    fn avg_deadline_scales_with_dc_ratio() {
        let mut s = WorkloadSpec::paper_baseline(0.5);
        let base = s.avg_deadline();
        s.dc_ratio = 20.0;
        assert!((s.avg_deadline() / base - 10.0).abs() < 1e-12);
    }

    #[test]
    fn expected_arrivals_match_baseline_scale() {
        // E(200, 16) ≈ 1360 for the baseline; at load 1.0 over 10^7 units
        // that is ≈ 7350 tasks.
        let s = WorkloadSpec::paper_baseline(1.0);
        let e = s.avg_min_exec_time();
        assert!((1300.0..1400.0).contains(&e), "E = {e}");
        let n = s.expected_arrivals();
        assert!((7000.0..7700.0).contains(&n), "expected arrivals {n}");
    }

    #[test]
    fn deadline_floor_values_match_their_formulas() {
        let s = WorkloadSpec::paper_baseline(0.5);
        let sigma = 300.0;
        // OptimalExec: E(σ, N).
        let opt = s.deadline_floor_value(sigma);
        let expect = rtdls_core::dlt::homogeneous::exec_time(&s.params, sigma, s.params.num_nodes);
        assert!((opt - expect).abs() < 1e-9);
        // UserSplitExec: σ·Cms + σ·Cps/N = 300·1 + 300·100/16.
        let us = s
            .with_deadline_floor(DeadlineFloor::UserSplitExec)
            .deadline_floor_value(sigma);
        assert!((us - (300.0 + 300.0 * 100.0 / 16.0)).abs() < 1e-9);
        // The equal-split floor always dominates the optimal floor (OPR is
        // the optimal partition, so its execution time is minimal).
        assert!(us > opt);
    }

    #[test]
    fn builders_set_their_fields() {
        let s = WorkloadSpec::paper_baseline(0.5)
            .with_size_model(SizeModel::TruncatedRaw)
            .with_floor_mode(FloorMode::Clamp)
            .with_deadline_floor(DeadlineFloor::UserSplitExec);
        assert_eq!(s.size_model, SizeModel::TruncatedRaw);
        assert_eq!(s.floor_mode, FloorMode::Clamp);
        assert_eq!(s.deadline_floor, DeadlineFloor::UserSplitExec);
    }

    #[test]
    fn truncated_mean_factor_is_the_analytic_constant() {
        // 1 + φ(1)/Φ(1) with φ(1) = e^{-1/2}/√(2π).
        let phi1 = (-0.5f64).exp() / (2.0 * std::f64::consts::PI).sqrt();
        // Φ(1) via the complementary relation and the known value.
        let cap_phi1 = 0.841_344_746_068_542_9_f64;
        assert!((TRUNCATED_MEAN_FACTOR - (1.0 + phi1 / cap_phi1)).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut s = WorkloadSpec::paper_baseline(0.5);
        s.system_load = 0.0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_baseline(0.5);
        s.avg_sigma = -1.0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_baseline(0.5);
        s.dc_ratio = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_baseline(0.5);
        s.horizon = 0.0;
        assert!(s.validate().is_err());
    }
}
