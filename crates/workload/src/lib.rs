//! # rtdls-workload
//!
//! Workload generation for the real-time divisible load scheduling
//! evaluation (§5 of Lin et al., ICPP 2007): Poisson task arrivals,
//! normally distributed data sizes, uniformly distributed deadlines, all
//! parameterized by the paper's `SystemLoad` and `DCRatio` conventions.
//!
//! ```
//! use rtdls_workload::prelude::*;
//!
//! // The paper's baseline workload at SystemLoad 0.5, seeded.
//! let spec = WorkloadSpec::paper_baseline(0.5);
//! let tasks: Vec<_> = WorkloadGenerator::new(spec, 42).collect();
//! assert!(!tasks.is_empty());
//! // Deterministic per seed:
//! let again: Vec<_> = WorkloadGenerator::new(spec, 42).collect();
//! assert_eq!(tasks, again);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod distributions;
pub mod generator;
pub mod spec;
pub mod tenancy;

/// One-stop imports.
pub mod prelude {
    pub use crate::arrivals::{BurstProfile, BurstyPoisson, FlashCrowd, FlashCrowdStream};
    pub use crate::distributions::{Exponential, Normal, Pareto, UniformRange};
    pub use crate::generator::WorkloadGenerator;
    pub use crate::spec::{
        DeadlineFloor, FloorMode, SizeModel, WorkloadSpec, HEAVY_TAIL_SHAPE, TRUNCATED_MEAN_FACTOR,
    };
    pub use crate::tenancy::{IntoRequests, RequestStream};
}
