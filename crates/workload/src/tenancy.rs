//! Tenant/QoS-class assignment over generated task streams.
//!
//! The workload distributions (§5) describe *what* arrives; a multi-tenant
//! gateway also needs to know *who* submits it. [`RequestStream`] wraps any
//! task iterator (the Poisson [`WorkloadGenerator`], the bursty arrivals
//! source, a replayed trace) and attaches the deterministic
//! [`TenantMix`] envelope — tenant id, QoS class, reservation tolerance —
//! producing a stream of [`SubmitRequest`]s for the v2 gateway surface.
//! The assignment is a pure function of the task id (see
//! [`TenantMix::assign`]), so the same seed still yields the identical
//! request stream no matter which consumer drives it.
//!
//! [`WorkloadGenerator`]: crate::generator::WorkloadGenerator

use rtdls_core::prelude::{SubmitRequest, Task, TenantMix};

/// Iterator adapter attaching the [`TenantMix`] envelope to a task stream.
#[derive(Clone, Debug)]
pub struct RequestStream<I> {
    inner: I,
    mix: TenantMix,
}

impl<I: Iterator<Item = Task>> RequestStream<I> {
    /// Wraps `inner` under `mix`.
    pub fn new(inner: I, mix: TenantMix) -> Self {
        RequestStream { inner, mix }
    }

    /// The mix assignments are drawn from.
    pub fn mix(&self) -> &TenantMix {
        &self.mix
    }
}

impl<I: Iterator<Item = Task>> Iterator for RequestStream<I> {
    type Item = SubmitRequest;

    fn next(&mut self) -> Option<SubmitRequest> {
        self.inner.next().map(|t| self.mix.assign(t))
    }
}

/// Extension hook: any task iterator can become a request stream.
pub trait IntoRequests: Iterator<Item = Task> + Sized {
    /// Attaches the deterministic tenant/QoS envelope to this stream.
    fn with_tenants(self, mix: TenantMix) -> RequestStream<Self> {
        RequestStream::new(self, mix)
    }
}

impl<I: Iterator<Item = Task>> IntoRequests for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::spec::WorkloadSpec;
    use rtdls_core::prelude::QosClass;

    fn mix() -> TenantMix {
        TenantMix {
            tenants: 6,
            premium_tenants: 1,
            best_effort_tenants: 2,
            max_delay_factor: Some(0.25),
        }
    }

    #[test]
    fn stream_is_deterministic_and_preserves_tasks() {
        let spec = WorkloadSpec::paper_baseline(0.5);
        let a: Vec<SubmitRequest> = WorkloadGenerator::new(spec, 9)
            .with_tenants(mix())
            .collect();
        let b: Vec<SubmitRequest> = WorkloadGenerator::new(spec, 9)
            .with_tenants(mix())
            .collect();
        assert_eq!(a, b);
        let bare: Vec<Task> = WorkloadGenerator::new(spec, 9).collect();
        assert_eq!(a.len(), bare.len());
        for (req, task) in a.iter().zip(&bare) {
            assert_eq!(req.task, *task, "the envelope never alters the task");
            assert_eq!(req.tenant.0, (task.id.0 % 6) as u32);
            assert_eq!(req.max_delay, Some(0.25 * task.rel_deadline));
        }
    }

    #[test]
    fn qos_bands_cover_the_population() {
        let spec = WorkloadSpec::paper_baseline(1.0);
        let reqs: Vec<SubmitRequest> = WorkloadGenerator::new(spec, 3)
            .with_tenants(mix())
            .collect();
        let count = |q: QosClass| reqs.iter().filter(|r| r.qos == q).count();
        let (p, s, b) = (
            count(QosClass::Premium),
            count(QosClass::Standard),
            count(QosClass::BestEffort),
        );
        assert!(
            p > 0 && s > 0 && b > 0,
            "premium {p} standard {s} best-effort {b}"
        );
        assert_eq!(p + s + b, reqs.len());
        // Round-robin by id: the premium tenant (id 0) owns ~1/6.
        let frac = p as f64 / reqs.len() as f64;
        assert!((frac - 1.0 / 6.0).abs() < 0.02, "premium share {frac}");
    }
}
