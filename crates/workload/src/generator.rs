//! The task-stream generator (§5 "Workload Generation").
//!
//! For a [`WorkloadSpec`] and a seed, produces the paper's aperiodic task
//! set deterministically:
//!
//! * interarrival times `~ Exp(1/λ)` with `1/λ = E(Avgσ,N)/SystemLoad`;
//! * data sizes `σ_i ~ N(Avgσ, Avgσ)`, resampled until positive;
//! * relative deadlines `D_i ~ U[AvgD/2, 3·AvgD/2)` with
//!   `AvgD = DCRatio · E(Avgσ,N)`, floored at the task's own minimum
//!   execution time `E(σ_i, N)` ("chosen to be larger than its minimum
//!   execution time", §5);
//! * a user-requested node count `n_i ~ U{N_min(σ_i, D_i), …, N}` for the
//!   User-Split algorithms (§4.1.2), drawn for *every* task so the same
//!   seed yields the identical task stream no matter which algorithm
//!   consumes it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rtdls_core::prelude::{user_split_n_min, Task};

use crate::distributions::{Exponential, Normal, Pareto, UniformRange};
use crate::spec::{FloorMode, SizeModel, WorkloadSpec, HEAVY_TAIL_SHAPE, TRUNCATED_MEAN_FACTOR};

/// Deterministic task-stream generator; implements [`Iterator`].
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: SmallRng,
    interarrival: Exponential,
    size: Normal,
    heavy_size: Pareto,
    deadline: UniformRange,
    next_id: u64,
    clock: f64,
    exhausted: bool,
}

impl WorkloadGenerator {
    /// Draws one data size according to the spec's [`SizeModel`].
    fn sample_size(&mut self) -> f64 {
        match self.spec.size_model {
            // Rescale the positive-truncated draw so the realized mean is
            // exactly Avgσ — the SystemLoad axis then offers exactly the
            // nominal fraction of full-cluster capacity.
            SizeModel::Calibrated => {
                self.size.sample_positive(&mut self.rng) / TRUNCATED_MEAN_FACTOR
            }
            SizeModel::TruncatedRaw => self.size.sample_positive(&mut self.rng),
            // Pareto with mean Avgσ: always positive by construction.
            SizeModel::HeavyTailed => self.heavy_size.sample(&mut self.rng),
        }
    }

    /// Creates the generator. Panics on an invalid spec (validate first when
    /// the spec is user input).
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        spec.validate().expect("invalid workload spec");
        let avg_d = spec.avg_deadline();
        WorkloadGenerator {
            rng: SmallRng::seed_from_u64(seed),
            interarrival: Exponential::new(spec.mean_interarrival()),
            size: Normal::new(spec.avg_sigma, spec.avg_sigma),
            // Scale so the Pareto mean is exactly Avgσ:
            // mean = α·x_m/(α−1) ⇒ x_m = Avgσ·(α−1)/α.
            heavy_size: Pareto::new(
                spec.avg_sigma * (HEAVY_TAIL_SHAPE - 1.0) / HEAVY_TAIL_SHAPE,
                HEAVY_TAIL_SHAPE,
            ),
            deadline: UniformRange::new(avg_d / 2.0, avg_d * 1.5),
            next_id: 0,
            clock: 0.0,
            exhausted: false,
            spec,
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the full task set (all arrivals within the horizon).
    pub fn collect_all(self) -> Vec<Task> {
        self.collect()
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Task;

    fn next(&mut self) -> Option<Task> {
        if self.exhausted {
            return None;
        }
        self.clock += self.interarrival.sample(&mut self.rng);
        if self.clock >= self.spec.horizon {
            self.exhausted = true;
            return None;
        }
        // Deadlines are "chosen to be larger than [the] minimum execution
        // time" (§5): either by redrawing the (σ, D) pair until the floor is
        // respected (default) or by clamping the draw up to the floor.
        let (sigma, rel_deadline) = match self.spec.floor_mode {
            FloorMode::Resample => {
                let mut attempts = 0u32;
                loop {
                    let sigma = self.sample_size();
                    let draw = self.deadline.sample(&mut self.rng);
                    if draw > self.spec.deadline_floor_value(sigma) {
                        break (sigma, draw);
                    }
                    attempts += 1;
                    assert!(
                        attempts < 100_000,
                        "deadline resampling does not terminate; the spec's \
                         dc_ratio is too small for its size distribution"
                    );
                }
            }
            FloorMode::Clamp => {
                let sigma = self.sample_size();
                let draw = self.deadline.sample(&mut self.rng);
                let min_exec = self.spec.deadline_floor_value(sigma);
                (sigma, draw.max(min_exec * (1.0 + 1e-9)))
            }
        };

        // User-split request: uniformly between the fewest nodes that could
        // work and the whole cluster. Drawn unconditionally to keep the RNG
        // stream identical across algorithms.
        let n_max = self.spec.params.num_nodes;
        let user_nodes = match user_split_n_min(&self.spec.params, sigma, rel_deadline) {
            Some(n_min) if n_min <= n_max => Some(self.rng.gen_range(n_min..=n_max)),
            _ => {
                // Keep the stream aligned even when the request is hopeless.
                let _ = self.rng.gen_range(0..=1usize);
                None
            }
        };

        let id = self.next_id;
        self.next_id += 1;
        Some(Task::new(id, self.clock, sigma, rel_deadline).with_user_nodes(user_nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeadlineFloor;
    use rtdls_core::dlt::homogeneous;

    fn gen(load: f64, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(WorkloadSpec::paper_baseline(load), seed)
    }

    fn short_spec(load: f64) -> WorkloadSpec {
        let mut s = WorkloadSpec::paper_baseline(load);
        s.horizon = 1e6;
        s
    }

    #[test]
    fn arrivals_are_increasing_and_within_horizon() {
        let tasks: Vec<Task> = gen(0.5, 1).collect();
        assert!(!tasks.is_empty());
        for w in tasks.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(tasks.last().unwrap().arrival.as_f64() < 1e7);
        // Ids are sequential from zero.
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id.0, i as u64);
        }
    }

    #[test]
    fn task_count_tracks_system_load() {
        let n_low = gen(0.1, 7).count();
        let n_high = gen(1.0, 7).count();
        let ratio = n_high as f64 / n_low as f64;
        assert!(
            (ratio - 10.0).abs() < 1.0,
            "count ratio {ratio}, expected ~10"
        );
        // Absolute scale: ~7350 tasks at load 1.0 (±5%).
        assert!(
            (6900..7800).contains(&n_high),
            "load-1.0 count {n_high} outside expected band"
        );
    }

    #[test]
    fn sizes_are_positive_with_truncated_mean() {
        // TruncatedRaw + Clamp draws (σ, D) independently, so sizes follow
        // the pure positive-truncated normal with mean ≈ 1.2876·200 ≈ 257.5.
        let spec = WorkloadSpec::paper_baseline(1.0)
            .with_floor_mode(FloorMode::Clamp)
            .with_size_model(SizeModel::TruncatedRaw);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 21).collect();
        assert!(tasks.iter().all(|t| t.data_size > 0.0));
        let mean = tasks.iter().map(|t| t.data_size).sum::<f64>() / tasks.len() as f64;
        assert!((mean / 257.5 - 1.0).abs() < 0.05, "size mean {mean}");
    }

    #[test]
    fn calibrated_sizes_have_the_nominal_mean() {
        // The calibrated model delivers realized mean ≈ Avgσ (modulo the
        // slight thinning by the deadline-floor resampling), so the
        // SystemLoad axis offers the nominal load.
        let spec = WorkloadSpec::paper_baseline(1.0).with_floor_mode(FloorMode::Clamp);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 21).collect();
        let mean = tasks.iter().map(|t| t.data_size).sum::<f64>() / tasks.len() as f64;
        assert!((mean / 200.0 - 1.0).abs() < 0.05, "size mean {mean}");
    }

    #[test]
    fn heavy_tailed_sizes_are_heavy_tailed_but_feasible() {
        // The Pareto model must actually produce a heavier tail than the
        // truncated normal (whose draws essentially never exceed ~4·Avgσ),
        // while the deadline-floor resampling keeps every emitted task
        // individually schedulable.
        let spec = WorkloadSpec::paper_baseline(1.0)
            .with_floor_mode(FloorMode::Clamp)
            .with_size_model(SizeModel::HeavyTailed);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 21).collect();
        assert!(tasks.iter().all(|t| t.data_size > 0.0));
        // Support starts at x_m = Avgσ/3.
        let x_m = spec.avg_sigma * (HEAVY_TAIL_SHAPE - 1.0) / HEAVY_TAIL_SHAPE;
        assert!(tasks.iter().all(|t| t.data_size >= x_m - 1e-9));
        // Unclamped draws have mean Avgσ; the sample mean of an
        // infinite-variance law wanders, so only order-of-magnitude.
        let mean = tasks.iter().map(|t| t.data_size).sum::<f64>() / tasks.len() as f64;
        assert!((100.0..600.0).contains(&mean), "size mean {mean}");
        // Tail: a visible fraction of tasks beyond 3·Avgσ (the truncated
        // normal puts ~zero mass there); P(X > 3Avgσ) = (1/9)^1.5 ≈ 3.7%.
        let tail = tasks
            .iter()
            .filter(|t| t.data_size > 3.0 * spec.avg_sigma)
            .count() as f64
            / tasks.len() as f64;
        assert!((0.01..0.10).contains(&tail), "tail mass {tail}");
        // Under Resample mode every emitted deadline clears its floor.
        let spec_rs = WorkloadSpec::paper_baseline(1.0).with_size_model(SizeModel::HeavyTailed);
        let tasks_rs: Vec<Task> = WorkloadGenerator::new(spec_rs, 3).collect();
        for t in &tasks_rs {
            assert!(t.rel_deadline > spec_rs.deadline_floor_value(t.data_size));
        }
    }

    #[test]
    fn resampling_suppresses_over_long_tasks() {
        // Resample mode (default) rejects (σ, D) pairs whose minimum
        // execution exceeds the deadline draw, thinning the large-σ tail:
        // the mean lands at or below the unconditional mean and no task's
        // floor exceeds its deadline.
        let spec = WorkloadSpec::paper_baseline(1.0);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 21).collect();
        assert!(tasks.iter().all(|t| t.data_size > 0.0));
        let mean = tasks.iter().map(|t| t.data_size).sum::<f64>() / tasks.len() as f64;
        assert!((160.0..205.0).contains(&mean), "size mean {mean}");
        for t in &tasks {
            assert!(t.rel_deadline > spec.deadline_floor_value(t.data_size));
        }
    }

    #[test]
    fn deadlines_respect_floor_and_range() {
        // Resample mode: every deadline is strictly above the floor AND
        // inside the uniform band (no clamped outliers).
        let spec = WorkloadSpec::paper_baseline(1.0);
        let avg_d = spec.avg_deadline();
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 5).collect();
        for t in &tasks {
            let min_exec = homogeneous::exec_time(&spec.params, t.data_size, spec.params.num_nodes);
            assert!(t.rel_deadline > min_exec, "deadline at/below floor");
            assert!(
                (avg_d / 2.0..avg_d * 1.5).contains(&t.rel_deadline),
                "deadline {} outside the uniform band",
                t.rel_deadline
            );
        }
    }

    #[test]
    fn clamp_mode_piles_mass_at_the_floor() {
        let spec = WorkloadSpec::paper_baseline(1.0).with_floor_mode(FloorMode::Clamp);
        let avg_d = spec.avg_deadline();
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 5).collect();
        let mut floored = 0usize;
        for t in &tasks {
            let min_exec = homogeneous::exec_time(&spec.params, t.data_size, spec.params.num_nodes);
            assert!(t.rel_deadline >= min_exec);
            if t.rel_deadline >= avg_d * 1.5 || (t.rel_deadline / min_exec - 1.0).abs() < 1e-6 {
                floored += 1;
            }
        }
        assert!(
            floored as f64 / tasks.len() as f64 > 0.05,
            "clamping should leave visible mass at the floor"
        );
    }

    #[test]
    fn user_nodes_lie_in_the_valid_range() {
        // Under the user-split deadline floor every task has a feasible
        // request, drawn from [N_min, N].
        let spec =
            WorkloadSpec::paper_baseline(1.0).with_deadline_floor(DeadlineFloor::UserSplitExec);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 13).collect();
        for t in &tasks {
            let n = t
                .user_nodes
                .expect("user-split floor guarantees feasibility");
            let n_min = user_split_n_min(&spec.params, t.data_size, t.rel_deadline).unwrap();
            assert!(n >= n_min && n <= 16, "user n {n} outside [{n_min}, 16]");
        }
    }

    #[test]
    fn optimal_floor_leaves_a_user_split_infeasible_fraction() {
        // With the paper-text floor E(σ, N), a task whose deadline falls in
        // the window [E(σ,N), σCms + σCps/N) cannot be met by any equal
        // split: the generator marks it None. Under resampling this is a
        // small (~4%) but non-zero fraction — consistent with the small
        // offset of the User-Split curves above DLT at light load in
        // Fig. 5a. (Under Clamp mode it balloons to ~25%.)
        let spec = WorkloadSpec::paper_baseline(1.0); // OptimalExec floor
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 13).collect();
        let none =
            tasks.iter().filter(|t| t.user_nodes.is_none()).count() as f64 / tasks.len() as f64;
        assert!(
            (0.005..0.15).contains(&none),
            "expected a small infeasible fraction, got {none}"
        );
        let clamped = WorkloadSpec::paper_baseline(1.0).with_floor_mode(FloorMode::Clamp);
        let tasks_c: Vec<Task> = WorkloadGenerator::new(clamped, 13).collect();
        let none_c =
            tasks_c.iter().filter(|t| t.user_nodes.is_none()).count() as f64 / tasks_c.len() as f64;
        assert!(
            (0.10..0.45).contains(&none_c),
            "expected a sizable infeasible fraction under Clamp, got {none_c}"
        );
        // And every None is genuinely hopeless for an equal split.
        for t in tasks
            .iter()
            .chain(&tasks_c)
            .filter(|t| t.user_nodes.is_none())
        {
            let floor = t.data_size * spec.params.cms
                + t.data_size * spec.params.cps / spec.params.num_nodes as f64;
            assert!(t.rel_deadline < floor, "None but equal split feasible");
        }
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a: Vec<Task> = WorkloadGenerator::new(short_spec(0.5), 99).collect();
        let b: Vec<Task> = WorkloadGenerator::new(short_spec(0.5), 99).collect();
        assert_eq!(a, b);
        let c: Vec<Task> = WorkloadGenerator::new(short_spec(0.5), 100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn dc_ratio_scales_mean_deadline() {
        let mut loose = short_spec(0.5);
        loose.dc_ratio = 20.0;
        let tight = short_spec(0.5); // dc_ratio = 2
        let mean = |spec: WorkloadSpec| {
            let ts: Vec<Task> = WorkloadGenerator::new(spec, 3).collect();
            ts.iter().map(|t| t.rel_deadline).sum::<f64>() / ts.len() as f64
        };
        let ratio = mean(loose) / mean(tight);
        // The floor compresses the tight side a little; expect ≈ 9–10×.
        assert!((8.0..11.0).contains(&ratio), "deadline ratio {ratio}");
    }

    #[test]
    fn interarrival_mean_matches_spec() {
        let spec = WorkloadSpec::paper_baseline(1.0);
        let tasks: Vec<Task> = WorkloadGenerator::new(spec, 17).collect();
        let mut gaps = Vec::with_capacity(tasks.len());
        let mut prev = 0.0;
        for t in &tasks {
            gaps.push(t.arrival.as_f64() - prev);
            prev = t.arrival.as_f64();
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let expected = spec.mean_interarrival();
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "interarrival {mean} vs {expected}"
        );
    }
}
