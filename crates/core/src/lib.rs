//! # rtdls-core
//!
//! Core library for **real-time divisible load scheduling with different
//! processor available times** — a from-scratch implementation of
//! Lin, Lu, Deogun & Goddard (Univ. of Nebraska–Lincoln, TR-UNL-CSE-2007-0013
//! / ICPP 2007).
//!
//! Arbitrarily divisible (embarrassingly parallel) workloads — CMS/ATLAS-style
//! physics analyses, sequence search, parameter sweeps — can be split into
//! independently sized chunks. Scheduling such a job on a cluster classically
//! waits until enough processors are *simultaneously* free, wasting the
//! **Inserted Idle Times (IITs)** of processors that freed up early. This
//! crate implements the paper's remedy:
//!
//! 1. **Heterogeneous model construction** ([`dlt::heterogeneous`]): a
//!    homogeneous cluster whose nodes become available at different times
//!    `r_1 ≤ … ≤ r_n` is recast as a heterogeneous cluster allocated at one
//!    instant `r_n`, each node's IIT absorbed into a higher model speed.
//! 2. **DLT partitioning** over that model: load fractions `α`, execution
//!    time `Ê(σ,n)`, and the node-count bound `ñ_min` (module [`nmin`]).
//! 3. **Admission control** ([`admission`]): the paper's Fig. 2
//!    schedulability test over EDF/FIFO policies and four partitioning
//!    strategies ([`strategy`]), guaranteeing every admitted task meets its
//!    deadline (Theorem 4 makes the estimates safe upper bounds).
//!
//! The discrete-event cluster simulator (`rtdls-sim`), workload generator
//! (`rtdls-workload`), and the paper's full evaluation harness
//! (`rtdls-experiments`) build on this crate.
//!
//! ## Quick example
//!
//! ```
//! use rtdls_core::prelude::*;
//!
//! // A 16-node cluster, unit transmission cost 1, unit compute cost 100.
//! let params = ClusterParams::new(16, 1.0, 100.0).unwrap();
//! let mut ctl = AdmissionController::new(
//!     params,
//!     AlgorithmKind::EDF_DLT,
//!     PlanConfig::default(),
//! );
//!
//! // A divisible job: arrives at t=0, 200 units of data, deadline 30 000.
//! let job = Task::new(1, 0.0, 200.0, 30_000.0);
//! assert!(ctl.submit(job, SimTime::ZERO).is_accepted());
//!
//! // The plan says which nodes run which fraction, and when.
//! let (_, plan) = &ctl.queue()[0];
//! assert!(plan.n() >= 1);
//! assert!(!plan.est_completion.definitely_after(job.absolute_deadline()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod algorithm;
pub mod dlt;
pub mod error;
pub mod nmin;
pub mod params;
pub mod policy;
pub mod request;
pub mod strategy;
pub mod task;
pub mod time;

/// One-stop imports for typical users of the crate.
pub mod prelude {
    pub use crate::admission::{
        explain_infeasibility, schedulability_test, Admission, AdmissionController,
        AdmissionExplanation, AdmissionFailure, ControllerState, Decision, EngineProfile,
        IncrementalController, IncrementalStats,
    };
    pub use crate::algorithm::AlgorithmKind;
    pub use crate::dlt::heterogeneous::HeterogeneousModel;
    pub use crate::dlt::homogeneous;
    pub use crate::error::{Infeasible, ModelError};
    pub use crate::nmin::{min_feasible_nodes, min_feasible_slack, n_tilde_min};
    pub use crate::params::{ClusterParams, NodeId};
    pub use crate::policy::Policy;
    pub use crate::request::{QosClass, SubmitRequest, TenantId, TenantMix};
    pub use crate::strategy::{
        plan_task, user_split_n_min, NodeAvailability, NodeCountPolicy, PlanConfig,
        ReleaseEstimate, StrategyKind, TaskPlan,
    };
    pub use crate::task::{Task, TaskId};
    pub use crate::time::SimTime;
}
