//! The paper's core construction (§4.1.1): casting a homogeneous cluster with
//! **different processor available times** into an equivalent heterogeneous
//! cluster allocated at a single instant, then applying DLT to that model.
//!
//! Given `n` homogeneous nodes with sorted available times `r_1 ≤ … ≤ r_n`,
//! the heterogeneous model allocates all nodes at `r_n` and absorbs each
//! node's Inserted Idle Time `r_n − r_i` into a *higher* processing power:
//!
//! ```text
//! Cps_i = E / (E + r_n − r_i) · Cps          (Eq. 1)
//! Cms_i = Cms                                 (Eq. 2)
//! ```
//!
//! where `E = E(σ, n)` is the no-IIT execution time of \[22\]. The optimal
//! single-round DLT partition of the heterogeneous model (all model nodes
//! finish simultaneously) is then
//!
//! ```text
//! X_i = Cps_{i−1} / (Cms + Cps_i)             α_i = X_i · α_{i−1}
//! α_1 = 1 / (1 + Σ_{i=2}^n Π_{j=2}^i X_j)     (Eq. 4–5)
//! Ê(σ, n) = σ·Cms + α_n·σ·Cps                 (Eq. 6, since Cps_n = Cps)
//! ```
//!
//! and the task completion estimate is `r_n + Ê`. Theorem 4 proves the
//! *actual* execution on the homogeneous cluster — transmissions serialized
//! in node order, node `i` starting no earlier than `r_i` — finishes on every
//! node no later than that estimate; [`HeterogeneousModel::actual_completion_bound`]
//! exposes the per-node bound `t̃_act_i` used in that proof.

use serde::{Deserialize, Serialize};

use crate::dlt::homogeneous;
use crate::error::ModelError;
use crate::params::ClusterParams;
use crate::time::SimTime;

/// The constructed heterogeneous model for one task on `n` nodes.
///
/// Immutable after construction; all derived quantities are computed once.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeterogeneousModel {
    params: ClusterParams,
    sigma: f64,
    /// Sorted available times `r_1 ≤ … ≤ r_n`.
    releases: Vec<f64>,
    /// `E(σ, n)`: no-IIT execution time (homogeneous OPR, \[22\]).
    e_no_iit: f64,
    /// Heterogeneous unit processing costs `Cps_1 ≤ … ≤ Cps_n = Cps`.
    cps_het: Vec<f64>,
    /// Optimal partition fractions `α_1 > … > α_n`, summing to 1.
    alphas: Vec<f64>,
    /// `Ê(σ, n)`: execution time in the heterogeneous model.
    exec_time: f64,
}

impl HeterogeneousModel {
    /// Builds the model for load `sigma` over nodes available at `releases`.
    ///
    /// `releases` must be non-empty and sorted ascending (the paper orders
    /// `P_1..P_n` by available time); violations are construction errors.
    ///
    /// ```
    /// use rtdls_core::prelude::*;
    ///
    /// let params = ClusterParams::paper_baseline();
    /// // Two nodes idle now, two freeing at t = 500: Fig. 1b in miniature.
    /// let releases: Vec<SimTime> =
    ///     [0.0, 0.0, 500.0, 500.0].into_iter().map(SimTime::new).collect();
    /// let model = HeterogeneousModel::new(&params, 100.0, &releases).unwrap();
    ///
    /// // Utilizing the idle window strictly beats waiting for all four.
    /// assert!(model.exec_time() < model.e_no_iit());
    /// // Earlier nodes carry larger fractions.
    /// assert!(model.alphas()[0] > model.alphas()[3]);
    /// ```
    pub fn new(
        params: &ClusterParams,
        sigma: f64,
        releases: &[SimTime],
    ) -> Result<Self, ModelError> {
        if releases.is_empty() {
            return Err(ModelError::InvalidParams("need at least one node"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ModelError::InvalidParams("sigma must be finite and > 0"));
        }
        let r: Vec<f64> = releases.iter().map(|t| t.as_f64()).collect();
        if r.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::InvalidParams("release times must be finite"));
        }
        if r.windows(2).any(|w| w[1] < w[0]) {
            return Err(ModelError::InvalidParams(
                "release times must be sorted ascending",
            ));
        }
        let n = r.len();
        let r_n = r[n - 1];
        let e = homogeneous::exec_time(params, sigma, n);

        // Eq. 1: earlier-available nodes get proportionally more model power.
        let cps_het: Vec<f64> = r
            .iter()
            .map(|&ri| e / (e + (r_n - ri)) * params.cps)
            .collect();

        // Eq. 4–5 via prefix products of X_i, then a single normalization:
        //   prefix_1 = 1, prefix_i = prefix_{i−1} · X_i,  α_i = prefix_i / Σ prefix.
        let mut prefix = Vec::with_capacity(n);
        prefix.push(1.0);
        for i in 1..n {
            let x_i = cps_het[i - 1] / (params.cms + cps_het[i]);
            prefix.push(prefix[i - 1] * x_i);
        }
        let total: f64 = prefix.iter().sum();
        let alphas: Vec<f64> = prefix.iter().map(|p| p / total).collect();

        // Eq. 6 (Cps_n = Cps because the latest node has zero IIT).
        let exec_time = sigma * params.cms + alphas[n - 1] * sigma * params.cps;

        Ok(HeterogeneousModel {
            params: *params,
            sigma,
            releases: r,
            e_no_iit: e,
            cps_het,
            alphas,
            exec_time,
        })
    }

    /// Number of allocated nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.releases.len()
    }

    /// The load `σ`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Partition fractions `α_1..α_n` (transmission order, strictly
    /// decreasing, sum 1).
    #[inline]
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Absolute chunk sizes `σ_i = α_i · σ` (Eq. 4–5 applied to the load).
    pub fn chunk_sizes(&self) -> Vec<f64> {
        self.alphas.iter().map(|a| a * self.sigma).collect()
    }

    /// Sorted node available times `r_1..r_n`.
    #[inline]
    pub fn releases(&self) -> &[f64] {
        &self.releases
    }

    /// `r_n`: the latest available time = the model's common allocation time.
    #[inline]
    pub fn r_n(&self) -> f64 {
        *self.releases.last().expect("non-empty by construction")
    }

    /// `E(σ, n)`: the no-IIT execution time (the baseline this model improves
    /// on; also the scaling constant in Eq. 1).
    #[inline]
    pub fn e_no_iit(&self) -> f64 {
        self.e_no_iit
    }

    /// `Ê(σ, n)`: execution time in the heterogeneous model (Eq. 6).
    /// Always `≤ E(σ, n)` (Eq. 9).
    #[inline]
    pub fn exec_time(&self) -> f64 {
        self.exec_time
    }

    /// The task completion-time estimate `r_n + Ê(σ, n)` (Eq. 7) used by the
    /// schedulability test. Theorem 4: no node finishes later than this.
    #[inline]
    pub fn completion_estimate(&self) -> SimTime {
        SimTime::new(self.r_n() + self.exec_time)
    }

    /// Heterogeneous unit processing cost `Cps_i` (Eq. 1).
    #[inline]
    pub fn cps_het(&self, i: usize) -> f64 {
        self.cps_het[i]
    }

    /// Finish time of node `i` *within the model* measured from `r_n`:
    /// `Σ_{j≤i} α_j σ Cms + α_i σ Cps_i` (one line of Eq. 3).
    ///
    /// The optimal partition makes this equal to `Ê` for every `i` — exposed
    /// for verification in tests.
    pub fn model_finish_offset(&self, i: usize) -> f64 {
        let tx: f64 = self.alphas[..=i].iter().sum::<f64>() * self.sigma * self.params.cms;
        tx + self.alphas[i] * self.sigma * self.cps_het[i]
    }

    /// Theorem 4's upper bound on the *actual* completion time of node `i`
    /// on the homogeneous cluster:
    /// `t̃_act_i = Σ_{j≤i} α_j σ Cms + α_i σ Cps + r_i`.
    ///
    /// Guaranteed `≤ completion_estimate()`. The simulator's exact dispatch
    /// times are in turn `≤` this bound (the bound assumes the worst-case
    /// transmission delay `λ̃_i`).
    pub fn actual_completion_bound(&self, i: usize) -> SimTime {
        let tx: f64 = self.alphas[..=i].iter().sum::<f64>() * self.sigma * self.params.cms;
        SimTime::new(tx + self.alphas[i] * self.sigma * self.params.cps + self.releases[i])
    }

    /// Validates the model's defining invariants (used by tests and by the
    /// simulator's debug assertions). Returns a description of the first
    /// violated invariant, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n();
        let sum: f64 = self.alphas.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("alpha sum {sum} != 1"));
        }
        for w in self.alphas.windows(2) {
            if w[1] >= w[0] + 1e-15 {
                return Err(format!("alphas not non-increasing: {} -> {}", w[0], w[1]));
            }
        }
        for w in self.cps_het.windows(2) {
            if w[1] < w[0] - 1e-12 {
                return Err(format!("Cps_i not non-decreasing: {} -> {}", w[0], w[1]));
            }
        }
        let cps_n = self.cps_het[n - 1];
        if ((cps_n - self.params.cps) / self.params.cps).abs() > 1e-12 {
            return Err(format!("Cps_n {cps_n} != Cps {}", self.params.cps));
        }
        // Eq. 3: equal finish inside the model.
        for i in 0..n {
            let f = self.model_finish_offset(i);
            if ((f - self.exec_time) / self.exec_time).abs() > 1e-9 {
                return Err(format!(
                    "model node {i} finishes at {f}, expected Ê = {}",
                    self.exec_time
                ));
            }
        }
        // Eq. 9: Ê ≤ E.
        if self.exec_time > self.e_no_iit * (1.0 + 1e-12) {
            return Err(format!("Ê {} exceeds E {}", self.exec_time, self.e_no_iit));
        }
        // Theorem 4 per-node bounds never exceed the estimate.
        let est = self.completion_estimate().as_f64();
        for i in 0..n {
            let b = self.actual_completion_bound(i).as_f64();
            if b > est * (1.0 + 1e-9) + 1e-9 {
                return Err(format!(
                    "Theorem-4 bound of node {i} ({b}) exceeds estimate {est}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    fn model(releases: &[f64], sigma: f64) -> HeterogeneousModel {
        let r: Vec<SimTime> = releases.iter().copied().map(SimTime::new).collect();
        HeterogeneousModel::new(&baseline(), sigma, &r).unwrap()
    }

    #[test]
    fn equal_release_times_reduce_to_homogeneous_model() {
        // With zero IITs the heterogeneous model *is* the homogeneous one.
        let m = model(&[10.0; 5], 200.0);
        let hom = homogeneous::alphas(&baseline(), 5);
        for (a, b) in m.alphas().iter().zip(hom.iter()) {
            assert!((a - b).abs() < 1e-12, "alpha mismatch {a} vs {b}");
        }
        let e = homogeneous::exec_time(&baseline(), 200.0, 5);
        assert!((m.exec_time() - e).abs() / e < 1e-12);
        assert!((m.completion_estimate().as_f64() - (10.0 + e)).abs() < 1e-9);
    }

    #[test]
    fn invariants_hold_on_staggered_releases() {
        let m = model(&[0.0, 5.0, 5.0, 120.0, 400.0], 200.0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn earlier_nodes_are_more_powerful_in_the_model() {
        let m = model(&[0.0, 100.0, 300.0], 200.0);
        assert!(m.cps_het(0) < m.cps_het(1));
        assert!(m.cps_het(1) < m.cps_het(2));
        assert!((m.cps_het(2) - baseline().cps).abs() < 1e-12);
    }

    #[test]
    fn iits_strictly_shrink_execution_time() {
        // Any positive IIT must make Ê < E (the whole point of the paper).
        let sigma = 200.0;
        let m = model(&[0.0, 50.0, 100.0, 150.0], sigma);
        assert!(m.exec_time() < m.e_no_iit());
        // And larger IITs shrink it further.
        let m2 = model(&[0.0, 100.0, 200.0, 300.0], sigma);
        assert!(m2.exec_time() < m.exec_time());
    }

    #[test]
    fn completion_estimate_is_rn_plus_exec() {
        let m = model(&[3.0, 7.0, 42.0], 100.0);
        assert!((m.completion_estimate().as_f64() - (42.0 + m.exec_time())).abs() < 1e-12);
        assert_eq!(m.r_n(), 42.0);
    }

    #[test]
    fn theorem4_bounds_do_not_exceed_estimate() {
        for releases in [
            vec![0.0, 0.0, 0.0],
            vec![0.0, 10.0, 20.0, 30.0, 1000.0],
            vec![5.0, 5.0, 6.0, 6.0, 7.0, 8.0],
        ] {
            let m = model(&releases, 321.0);
            let est = m.completion_estimate().as_f64();
            for i in 0..m.n() {
                let b = m.actual_completion_bound(i).as_f64();
                assert!(
                    b <= est * (1.0 + 1e-9),
                    "node {i} bound {b} > estimate {est} for {releases:?}"
                );
            }
        }
    }

    #[test]
    fn single_node_degenerates_cleanly() {
        let m = model(&[17.0], 50.0);
        assert_eq!(m.alphas(), &[1.0]);
        let expect = 50.0 * (1.0 + 100.0);
        assert!((m.exec_time() - expect).abs() < 1e-9);
        assert!((m.completion_estimate().as_f64() - (17.0 + expect)).abs() < 1e-9);
        m.check_invariants().unwrap();
    }

    #[test]
    fn chunk_sizes_scale_alphas_by_sigma() {
        let m = model(&[0.0, 10.0], 400.0);
        let chunks = m.chunk_sizes();
        assert!((chunks.iter().sum::<f64>() - 400.0).abs() < 1e-9);
        for (c, a) in chunks.iter().zip(m.alphas()) {
            assert!((c - a * 400.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unsorted_releases_are_rejected() {
        let r = [SimTime::new(5.0), SimTime::new(1.0)];
        assert!(HeterogeneousModel::new(&baseline(), 10.0, &r).is_err());
        assert!(HeterogeneousModel::new(&baseline(), 10.0, &[]).is_err());
        assert!(HeterogeneousModel::new(&baseline(), -1.0, &[SimTime::ZERO]).is_err());
    }

    #[test]
    fn extreme_parameter_regimes_stay_finite() {
        for (cms, cps) in [(1.0, 10_000.0), (8.0, 10.0), (1.0, 10.0)] {
            let params = ClusterParams::new(16, cms, cps).unwrap();
            let r: Vec<SimTime> = (0..16).map(|i| SimTime::new(i as f64 * 100.0)).collect();
            let m = HeterogeneousModel::new(&params, 800.0, &r).unwrap();
            m.check_invariants().unwrap();
            assert!(m.exec_time().is_finite() && m.exec_time() > 0.0);
        }
    }
}
