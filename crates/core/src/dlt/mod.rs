//! Divisible Load Theory models.
//!
//! * [`homogeneous`] — single-round optimal partitioning with simultaneous
//!   node allocation (the model of the authors' prior work \[22\]; supplies
//!   `E(σ,n)` and the OPR baseline partition).
//! * [`heterogeneous`] — the paper's contribution: the equivalent
//!   heterogeneous model for nodes with *different available times*,
//!   supplying `Ê(σ,n)`, the IIT-aware partition, and the Theorem-4 bounds.

pub mod heterogeneous;
pub mod homogeneous;
