//! Single-round DLT on a homogeneous cluster with **simultaneous** allocation
//! (the model of the authors' prior work \[22\], used here both as the OPR
//! baseline and as the `E` term inside the heterogeneous construction).
//!
//! All `n` nodes become available at the same instant. The head node sends
//! chunk `α_i·σ` to node `i` sequentially; node `i` computes for
//! `α_i·σ·Cps`. The optimal partition (all nodes finish together) satisfies
//! `α_{i+1} = β·α_i` with `β = Cps/(Cms+Cps)`, giving the closed forms below.

use crate::params::ClusterParams;

/// `E(σ, n) = ((1-β) / (1-β^n)) · σ · (Cms + Cps)` — the optimal execution
/// time (from the first transmission to the last completion) of a load `σ`
/// on `n` simultaneously available nodes.
///
/// Monotonically decreasing in `n`; `E(σ, 1) = σ(Cms+Cps)`.
pub fn exec_time(params: &ClusterParams, sigma: f64, n: usize) -> f64 {
    debug_assert!(n >= 1, "exec_time needs at least one node");
    debug_assert!(sigma > 0.0);
    let beta = params.beta();
    // (1 - β) / (1 - β^n) is numerically delicate for β → 1 (large Cps/Cms):
    // both numerator and denominator approach 0. Rewrite the denominator via
    // the geometric sum 1 - β^n = (1 - β)·Σ_{j<n} β^j, which cancels exactly:
    //   E = σ (Cms+Cps) / Σ_{j=0}^{n-1} β^j.
    let denom: f64 = geometric_sum(beta, n);
    sigma * (params.cms + params.cps) / denom
}

/// `Σ_{j=0}^{n-1} β^j`, computed by direct summation (exact cancellation-free
/// form used by [`exec_time`] and the partition below). `n` is a node count,
/// bounded by cluster size, so the loop is trivially cheap.
#[inline]
fn geometric_sum(beta: f64, n: usize) -> f64 {
    let mut sum = 0.0;
    let mut pow = 1.0;
    for _ in 0..n {
        sum += pow;
        pow *= beta;
    }
    sum
}

/// The optimal partition fractions `α_1..α_n` for simultaneous allocation:
/// `α_i = β^{i-1} · (1-β)/(1-β^n)`, i.e. `α_i = β^{i-1} / Σ_{j<n} β^j`.
///
/// Returned in transmission order (node 1 receives the largest fraction).
/// The fractions sum to 1 and decrease geometrically.
pub fn alphas(params: &ClusterParams, n: usize) -> Vec<f64> {
    debug_assert!(n >= 1);
    let beta = params.beta();
    let denom = geometric_sum(beta, n);
    let mut out = Vec::with_capacity(n);
    let mut pow = 1.0;
    for _ in 0..n {
        out.push(pow / denom);
        pow *= beta;
    }
    out
}

/// Per-node completion offsets (relative to the common start time) for the
/// optimal simultaneous partition; with OPR all nodes finish at exactly
/// `E(σ,n)`, so this returns the transmission-serialized finish times which
/// should all equal `exec_time` (used as a cross-check and by the simulator).
pub fn completion_offsets(params: &ClusterParams, sigma: f64, n: usize) -> Vec<f64> {
    let a = alphas(params, n);
    let mut out = Vec::with_capacity(n);
    let mut tx_end = 0.0;
    for &alpha in &a {
        tx_end += alpha * sigma * params.cms;
        out.push(tx_end + alpha * sigma * params.cps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(cms: f64, cps: f64) -> ClusterParams {
        ClusterParams::new(64, cms, cps).unwrap()
    }

    #[test]
    fn single_node_exec_time_is_transmit_plus_compute() {
        let params = p(1.0, 100.0);
        let e = exec_time(&params, 200.0, 1);
        assert!((e - 200.0 * 101.0).abs() < 1e-9);
    }

    #[test]
    fn exec_time_matches_paper_closed_form() {
        // E = (1-β)/(1-β^n) σ (Cms+Cps), computed the naive way, must agree
        // with the cancellation-free implementation.
        for (cms, cps) in [(1.0, 100.0), (8.0, 100.0), (1.0, 10.0), (1.0, 10_000.0)] {
            let params = p(cms, cps);
            let beta = params.beta();
            for n in [1usize, 2, 3, 7, 16, 64] {
                let sigma = 200.0;
                let naive = (1.0 - beta) / (1.0 - beta.powi(n as i32)) * sigma * (cms + cps);
                let ours = exec_time(&params, sigma, n);
                let rel = ((naive - ours) / naive).abs();
                assert!(
                    rel < 1e-9,
                    "mismatch n={n} cms={cms} cps={cps}: {naive} vs {ours}"
                );
            }
        }
    }

    #[test]
    fn exec_time_strictly_decreases_with_more_nodes() {
        let params = p(1.0, 100.0);
        let mut prev = f64::INFINITY;
        for n in 1..=64 {
            let e = exec_time(&params, 200.0, n);
            assert!(e < prev, "E not decreasing at n={n}");
            prev = e;
        }
    }

    #[test]
    fn exec_time_scales_linearly_in_sigma() {
        let params = p(1.0, 100.0);
        let e1 = exec_time(&params, 100.0, 8);
        let e2 = exec_time(&params, 200.0, 8);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alphas_sum_to_one_and_decrease() {
        for (cms, cps) in [(1.0, 100.0), (4.0, 10.0), (1.0, 10_000.0)] {
            let params = p(cms, cps);
            for n in [1usize, 2, 5, 16, 64] {
                let a = alphas(&params, n);
                assert_eq!(a.len(), n);
                let sum: f64 = a.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "sum {sum} != 1 at n={n}");
                for w in a.windows(2) {
                    assert!(w[1] < w[0], "alphas must strictly decrease");
                }
                // Geometric ratio is exactly beta.
                for w in a.windows(2) {
                    assert!((w[1] / w[0] - params.beta()).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn all_nodes_finish_simultaneously_at_exec_time() {
        // The defining property of the optimal partition rule.
        let params = p(1.0, 100.0);
        let sigma = 500.0;
        for n in [2usize, 4, 16, 64] {
            let e = exec_time(&params, sigma, n);
            for (i, c) in completion_offsets(&params, sigma, n).iter().enumerate() {
                let rel = ((c - e) / e).abs();
                assert!(rel < 1e-9, "node {i} finishes at {c}, expected {e} (n={n})");
            }
        }
    }

    #[test]
    fn extreme_beta_remains_finite_and_positive() {
        // Cps/Cms = 10^4 → β ≈ 0.9999; the naive (1-β^n) form loses precision,
        // ours must stay clean.
        let params = p(1.0, 10_000.0);
        for n in [1usize, 16, 64] {
            let e = exec_time(&params, 1.0, n);
            assert!(e.is_finite() && e > 0.0);
        }
    }
}
