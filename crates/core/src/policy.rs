//! Scheduling policies (§4.2 Decision #1): the order in which the
//! schedulability test considers tasks.

use serde::{Deserialize, Serialize};

use crate::task::Task;
use crate::time::SimTime;

/// Task execution-order policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Policy {
    /// Earliest Deadline First: order by absolute deadline.
    Edf,
    /// First In First Out: order by arrival time.
    Fifo,
}

/// A totally ordered sort key for a task under a policy.
///
/// Ties are broken by arrival then by task id, making the schedule
/// deterministic (important for reproducible simulations).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OrderKey(SimTime, SimTime, u64);

impl Policy {
    /// The sort key of `task` under this policy.
    pub fn key(self, task: &Task) -> OrderKey {
        match self {
            Policy::Edf => OrderKey(task.absolute_deadline(), task.arrival, task.id.0),
            Policy::Fifo => OrderKey(task.arrival, task.arrival, task.id.0),
        }
    }

    /// Sorts tasks in execution order under this policy (stable and total).
    pub fn sort(self, tasks: &mut [Task]) {
        tasks.sort_by_key(|t| self.key(t));
    }

    /// Paper nomenclature: `EDF` / `FIFO`.
    pub fn paper_name(self) -> &'static str {
        match self {
            Policy::Edf => "EDF",
            Policy::Fifo => "FIFO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, arrival: f64, rel_deadline: f64) -> Task {
        Task::new(id, arrival, 100.0, rel_deadline)
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        // t1 arrives first but has the later absolute deadline.
        let mut tasks = vec![t(1, 0.0, 100.0), t(2, 10.0, 20.0)];
        Policy::Edf.sort(&mut tasks);
        assert_eq!(tasks[0].id.0, 2);
        assert_eq!(tasks[1].id.0, 1);
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut tasks = vec![t(2, 10.0, 20.0), t(1, 0.0, 100.0)];
        Policy::Fifo.sort(&mut tasks);
        assert_eq!(tasks[0].id.0, 1);
        assert_eq!(tasks[1].id.0, 2);
    }

    #[test]
    fn deadline_ties_break_by_arrival_then_id() {
        // Same absolute deadline (arrival + rel = 100 for both).
        let mut tasks = vec![t(5, 20.0, 80.0), t(3, 0.0, 100.0)];
        Policy::Edf.sort(&mut tasks);
        assert_eq!(tasks[0].id.0, 3, "earlier arrival wins the tie");
        let mut tasks = vec![t(9, 0.0, 100.0), t(3, 0.0, 100.0)];
        Policy::Edf.sort(&mut tasks);
        assert_eq!(tasks[0].id.0, 3, "lower id wins the final tie");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Policy::Edf.paper_name(), "EDF");
        assert_eq!(Policy::Fifo.paper_name(), "FIFO");
    }
}
