//! Cluster parameters (system model, §3 of the paper).
//!
//! A cluster is a head node `P0` plus `N` identical processing nodes behind a
//! switch. Linear cost model: transmitting a load `σ` to one node costs
//! `σ·Cms`, processing it costs `σ·Cps`. Output data transfer is not modeled
//! (negligible next to input size, per the paper).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Identifier of a processing node: `0..N`, stable for a cluster's lifetime.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into release-time vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of the homogeneous cluster.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClusterParams {
    /// Number of processing nodes `N` (head node excluded).
    pub num_nodes: usize,
    /// `Cms`: time to transmit one unit of workload head → node.
    pub cms: f64,
    /// `Cps`: time to process one unit of workload on one node.
    pub cps: f64,
}

impl ClusterParams {
    /// Validated constructor. `N ≥ 1`, `Cms > 0`, `Cps > 0` and finite.
    pub fn new(num_nodes: usize, cms: f64, cps: f64) -> Result<Self, ModelError> {
        if num_nodes == 0 {
            return Err(ModelError::InvalidParams("num_nodes must be >= 1"));
        }
        if !(cms.is_finite() && cms > 0.0) {
            return Err(ModelError::InvalidParams("Cms must be finite and > 0"));
        }
        if !(cps.is_finite() && cps > 0.0) {
            return Err(ModelError::InvalidParams("Cps must be finite and > 0"));
        }
        Ok(ClusterParams {
            num_nodes,
            cms,
            cps,
        })
    }

    /// The paper's baseline configuration (§5.1): `N=16, Cms=1, Cps=100`.
    pub fn paper_baseline() -> Self {
        ClusterParams {
            num_nodes: 16,
            cms: 1.0,
            cps: 100.0,
        }
    }

    /// `β = Cps / (Cms + Cps)` (Eq. 8), the per-node geometric ratio of the
    /// homogeneous optimal partition. Always in `(0, 1)`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.cps / (self.cms + self.cps)
    }

    /// Iterator over all node ids `P1..Pn` (0-based internally).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_is_in_unit_interval() {
        for (cms, cps) in [(1.0, 100.0), (8.0, 10.0), (1.0, 10_000.0), (5.0, 0.001)] {
            let p = ClusterParams::new(4, cms, cps).unwrap();
            let b = p.beta();
            assert!(b > 0.0 && b < 1.0, "beta {b} out of range for {cms}/{cps}");
        }
    }

    #[test]
    fn baseline_matches_paper() {
        let p = ClusterParams::paper_baseline();
        assert_eq!(p.num_nodes, 16);
        assert_eq!(p.cms, 1.0);
        assert_eq!(p.cps, 100.0);
        assert!((p.beta() - 100.0 / 101.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(ClusterParams::new(0, 1.0, 1.0).is_err());
        assert!(ClusterParams::new(4, 0.0, 1.0).is_err());
        assert!(ClusterParams::new(4, 1.0, -1.0).is_err());
        assert!(ClusterParams::new(4, f64::NAN, 1.0).is_err());
        assert!(ClusterParams::new(4, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn node_ids_enumerate_all_nodes() {
        let p = ClusterParams::new(3, 1.0, 1.0).unwrap();
        let ids: Vec<_> = p.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(ids[2].index(), 2);
    }
}
