//! The incremental (diff-based) admission engine.
//!
//! [`AdmissionController`](super::AdmissionController) re-plans the whole
//! waiting queue on every arrival — `O(queue)` planning calls per event,
//! the dominant cost in the admission benches at gateway scale. This module
//! implements the ROADMAP's *incremental temp-schedule maintenance*: the
//! engine keeps, for every waiting task, the exact planning inputs its
//! current plan was derived from, and on each event re-plans only the tasks
//! whose inputs actually changed.
//!
//! ## The reuse invariant
//!
//! A queued plan was produced by `plan_task(strategy, task, avail, params,
//! cfg)` where `avail` is fully determined by the release vector `R` the
//! temp-schedule walk had built up to that task's policy position, clamped
//! at the planning instant `t₀`: the availability entries are
//! `max(R[j], t₀)`. `plan_task` is a pure function, so the cached plan is
//! *exactly* what a fresh full replan at `now` would produce whenever
//!
//! ```text
//! ∀ j:  max(observed[j], t₀) == max(R'[j], now)
//! ```
//!
//! where `observed` is the release vector the cached plan saw and `R'` is
//! the vector the current walk has built. (Under
//! [`NodeCountPolicy::OneShot`] the planning instant additionally enters
//! the node-count bound directly, so reuse there also requires `t₀ ==
//! now`.) The walk applies each reused plan's release updates and keeps
//! going; the first position where the gate fails is re-planned — which is
//! the *fallback to a full replan* for that task and, transitively, for any
//! successor whose inputs its new plan perturbs.
//!
//! In the steady gateway regime — deep queue, every node committed into the
//! future, newcomers inserting near the back of the EDF order — the gate
//! holds for the whole prefix and a submission costs **one** planning call
//! instead of `queue + 1`. Whenever history shifts under the queue (an
//! early node release via `set_node_release`, a dispatch that commits
//! different nodes, a recovery restore with a cold cache), the gate fails
//! and the engine transparently degrades to the reference full replan.
//!
//! Because reuse is gated on provable input equality, the engine is
//! decision-, plan-, and state-identical to the reference controller; the
//! differential oracle suite (`tests/differential_admission.rs`) replays
//! randomized scenarios through both engines and asserts exact equality
//! after every operation.

use std::collections::{HashMap, HashSet};

use crate::algorithm::AlgorithmKind;
use crate::params::ClusterParams;
use crate::strategy::{plan_task, NodeAvailability, NodeCountPolicy, PlanConfig, TaskPlan};
use crate::task::{Task, TaskId};
use crate::time::SimTime;

use super::{Admission, AdmissionFailure, ControllerState, Decision};

/// The cached planning inputs that make a queued plan provably reusable.
#[derive(Clone, Debug, PartialEq)]
struct PlanMeta {
    /// The planning instant the cached plan was computed at.
    planned_at: SimTime,
    /// The (pre-clamp) release vector the planning walk had built when this
    /// task was planned; length = `num_nodes`.
    observed: Vec<SimTime>,
}

/// Reuse counters: how often the diff path avoided a planning call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Queue positions whose cached plan was reused verbatim.
    pub plans_reused: u64,
    /// Queue positions (or candidates) that went through `plan_task`.
    pub plans_computed: u64,
    /// Wall-clock nanoseconds spent inside `plan_task` calls (the planning
    /// cost the reuse path avoids; the profiling hook telemetry reads).
    pub plan_nanos: u64,
}

impl IncrementalStats {
    /// Fraction of positions served from the cache (0 when nothing ran).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.plans_reused + self.plans_computed;
        if total == 0 {
            0.0
        } else {
            self.plans_reused as f64 / total as f64
        }
    }
}

/// Outcome of one incremental planning walk (not yet installed): the
/// leading `prefix_len` queue entries are kept untouched (not even
/// cloned — the hot-path win), and `queue_tail`/`meta_tail` replace
/// everything after them.
struct Pass {
    prefix_len: usize,
    queue_tail: Vec<(Task, TaskPlan)>,
    meta_tail: Vec<Option<PlanMeta>>,
}

/// Admission engine with incremental temp-schedule maintenance. Observably
/// identical to [`AdmissionController`](super::AdmissionController) — same
/// decisions, plans, releases, and serialized state for every call
/// sequence — but `O(changed tasks)` planning calls per event instead of
/// `O(queue)`.
#[derive(Clone, Debug)]
pub struct IncrementalController {
    params: ClusterParams,
    algorithm: AlgorithmKind,
    cfg: PlanConfig,
    /// Per-node release time of committed (dispatched) work.
    releases: Vec<SimTime>,
    /// Waiting tasks with their current plans, in policy order.
    queue: Vec<(Task, TaskPlan)>,
    /// Parallel to `queue`: the cached planning inputs. `None` means the
    /// plan must be recomputed before it can be trusted (cold cache, e.g.
    /// right after `from_state`).
    meta: Vec<Option<PlanMeta>>,
    stats: IncrementalStats,
}

impl IncrementalController {
    /// An engine for an idle cluster (all nodes available at time zero).
    pub fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self {
        IncrementalController {
            params,
            algorithm,
            cfg,
            releases: vec![SimTime::ZERO; params.num_nodes],
            queue: Vec::new(),
            meta: Vec::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// Reuse counters accumulated by the mutating operations so far —
    /// including the work done by passes that ended in a rejection, so the
    /// reuse rate honestly reflects rejection-heavy streams. Probes are
    /// non-mutating and not counted.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Whether the cached plan behind `meta` is provably identical to what
    /// a fresh plan at `now` against `releases` would produce (the module
    /// docs' reuse invariant).
    fn reusable(&self, meta: &Option<PlanMeta>, releases: &[SimTime], now: SimTime) -> bool {
        let Some(m) = meta else { return false };
        if self.cfg.node_count == NodeCountPolicy::OneShot && m.planned_at != now {
            // OneShot evaluates ñ_min at the raw planning instant.
            return false;
        }
        m.observed
            .iter()
            .zip(releases)
            .all(|(&o, &r)| o.max(m.planned_at) == r.max(now))
    }

    /// Plans one task against the walk's current release vector, recording
    /// the inputs for future reuse, and applies its release updates.
    fn plan_fresh(
        &self,
        task: &Task,
        releases: &mut [SimTime],
        now: SimTime,
        out: &mut Pass,
        work: &mut IncrementalStats,
    ) -> Result<(), AdmissionFailure> {
        // The attempt counts as work whether or not it succeeds — a failed
        // planning call cost just as much CPU.
        work.plans_computed += 1;
        let observed = releases.to_vec();
        let avail = NodeAvailability::new(releases, now);
        let started = std::time::Instant::now();
        let planned = plan_task(
            self.algorithm.strategy,
            task,
            &avail,
            &self.params,
            &self.cfg,
        );
        work.plan_nanos += started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let plan = planned.map_err(|reason| AdmissionFailure {
            task: task.id,
            reason,
        })?;
        debug_assert!(
            !plan
                .est_completion
                .definitely_after(task.absolute_deadline()),
            "strategy returned a plan missing its deadline"
        );
        for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
            releases[node.index()] = rel;
        }
        out.queue_tail.push((*task, plan));
        out.meta_tail.push(Some(PlanMeta {
            planned_at: now,
            observed,
        }));
        Ok(())
    }

    /// One walk over `waiting ∪ candidate` in policy order: the leading run
    /// of cached plans whose inputs are provably unchanged is *kept in
    /// place* (validated and release-applied, but never cloned); from the
    /// first changed position — the candidate's insertion point or a failed
    /// reuse gate — a replacement tail is built, inside which still-valid
    /// cached plans are cloned rather than re-planned. Pure — the caller
    /// decides whether to install the result.
    fn pass(
        &self,
        now: SimTime,
        candidate: Option<&Task>,
        work: &mut IncrementalStats,
    ) -> Result<Pass, AdmissionFailure> {
        let policy = self.algorithm.policy;
        let cand_key = candidate.map(|t| policy.key(t));
        let mut cand_pending = candidate.copied();
        let mut releases = self.releases.clone();
        let mut out = Pass {
            prefix_len: 0,
            queue_tail: Vec::new(),
            meta_tail: Vec::new(),
        };
        let mut in_prefix = true;
        for (i, (task, plan)) in self.queue.iter().enumerate() {
            // The full engine appends the candidate and stable-sorts, so a
            // candidate lands *after* any waiting task with an equal key.
            if let (Some(c), Some(key)) = (cand_pending, cand_key) {
                if key < policy.key(task) {
                    in_prefix = false;
                    self.plan_fresh(&c, &mut releases, now, &mut out, work)?;
                    cand_pending = None;
                }
            }
            if self.reusable(&self.meta[i], &releases, now) {
                for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                    releases[node.index()] = rel;
                }
                if in_prefix {
                    out.prefix_len += 1;
                } else {
                    out.queue_tail.push((*task, plan.clone()));
                    out.meta_tail.push(self.meta[i].clone());
                }
                work.plans_reused += 1;
            } else {
                in_prefix = false;
                self.plan_fresh(task, &mut releases, now, &mut out, work)?;
            }
        }
        if let Some(c) = cand_pending {
            self.plan_fresh(&c, &mut releases, now, &mut out, work)?;
        }
        Ok(out)
    }

    /// Folds a (possibly failed) pass's work counters into the cumulative
    /// stats.
    fn book_work(&mut self, work: IncrementalStats) {
        self.stats.plans_reused += work.plans_reused;
        self.stats.plans_computed += work.plans_computed;
        self.stats.plan_nanos += work.plan_nanos;
    }

    fn install(&mut self, pass: Pass) {
        self.queue.truncate(pass.prefix_len);
        self.queue.extend(pass.queue_tail);
        self.meta.truncate(pass.prefix_len);
        self.meta.extend(pass.meta_tail);
    }

    /// The algorithm this engine runs.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// Cluster parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Planning knobs this engine tests with.
    pub fn config(&self) -> &PlanConfig {
        &self.cfg
    }

    /// Committed per-node release times (index = node id).
    pub fn committed_releases(&self) -> &[SimTime] {
        &self.releases
    }

    /// Current waiting tasks and plans, in execution order.
    pub fn queue(&self) -> &[(Task, TaskPlan)] {
        &self.queue
    }

    /// Number of waiting (admitted, undispatched) tasks.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Runs the schedulability test for a newly arrived task at time `now`.
    /// On acceptance only the tasks whose planning inputs changed are
    /// re-planned; on rejection nothing changes.
    pub fn submit(&mut self, task: Task, now: SimTime) -> Decision {
        let mut work = IncrementalStats::default();
        let result = self.pass(now, Some(&task), &mut work);
        self.book_work(work);
        match result {
            Ok(pass) => {
                self.install(pass);
                Decision::Accepted
            }
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Non-mutating admission probe; see
    /// [`AdmissionController::probe`](super::AdmissionController::probe).
    pub fn probe(&self, task: &Task, now: SimTime) -> Decision {
        match self.probe_plan(task, now) {
            Ok(_) => Decision::Accepted,
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Like [`probe`](IncrementalController::probe) but returns the plan the
    /// candidate would receive. Reuses the cached prefix, so a probe costs
    /// one planning call (plus any perturbed suffix) instead of a full pass.
    pub fn probe_plan(&self, task: &Task, now: SimTime) -> Result<TaskPlan, AdmissionFailure> {
        let mut scratch = IncrementalStats::default();
        let pass = self.pass(now, Some(task), &mut scratch)?;
        // Match the reference engine exactly: the first id match over the
        // whole plan list in policy order (prefix first, then the rebuilt
        // tail) — load-bearing if the probed id shadows a waiting task's.
        self.queue[..pass.prefix_len]
            .iter()
            .find(|(t, _)| t.id == task.id)
            .map(|(_, p)| p.clone())
            .or_else(|| {
                pass.queue_tail
                    .into_iter()
                    .find(|(t, _)| t.id == task.id)
                    .map(|(_, p)| p)
            })
            .ok_or(AdmissionFailure {
                task: task.id,
                reason: crate::error::Infeasible::CompletionAfterDeadline,
            })
    }

    /// Amortized admission for a burst of tasks: the same resumable
    /// checkpoint-rewind pass as
    /// [`AdmissionController::submit_batch`](super::AdmissionController::submit_batch),
    /// with cached plans reused for waiting-queue positions whose inputs
    /// are unchanged. The pass works entirely on scratch state; committed
    /// releases and the installed queue are only replaced once the batch
    /// has settled, so a mid-batch rejection can never leak a rejected
    /// member's tentative dispatch into
    /// [`committed_releases`](IncrementalController::committed_releases).
    ///
    /// Returns one [`Decision`] per batch entry, in input order.
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<Decision> {
        if batch.is_empty() {
            return Vec::new();
        }
        let waiting_index: HashMap<TaskId, usize> = self
            .queue
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t.id, i))
            .collect();
        let mut ordered: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        ordered.extend_from_slice(batch);
        self.algorithm.policy.sort(&mut ordered);

        /// Rewind point recorded before each planned batch member.
        struct Checkpoint {
            ordered_idx: usize,
            releases: Vec<SimTime>,
            plans_len: usize,
        }

        let mut decisions: Vec<Option<Decision>> = vec![None; batch.len()];
        let mut skipped: HashSet<TaskId> = HashSet::new();
        let mut evicted_by_rollback: Vec<Task> = Vec::new();
        let mut releases = self.releases.clone();
        let mut plans: Vec<(Task, TaskPlan, Option<PlanMeta>)> = Vec::with_capacity(ordered.len());
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut reused = 0u64;
        let mut computed = 0u64;
        let batch_index = |id: TaskId| batch.iter().position(|b| b.id == id).expect("member");

        let mut i = 0;
        while i < ordered.len() {
            let task = ordered[i];
            if skipped.contains(&task.id) {
                i += 1;
                continue;
            }
            let cached = waiting_index.get(&task.id).copied();
            if let Some(qi) = cached {
                // Reuse requires the *whole task* to match, not just the
                // id: a batch member that shares a waiting task's id but
                // differs in size/deadline must be planned fresh (the
                // reference engine plans it fresh regardless).
                if self.queue[qi].0 == task && self.reusable(&self.meta[qi], &releases, now) {
                    let plan = self.queue[qi].1.clone();
                    for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                        releases[node.index()] = rel;
                    }
                    plans.push((task, plan, self.meta[qi].clone()));
                    reused += 1;
                    i += 1;
                    continue;
                }
            }
            let is_batch = cached.is_none();
            let observed = releases.clone();
            let avail = NodeAvailability::new(&releases, now);
            // Every planning attempt counts as work, successful or not.
            computed += 1;
            match plan_task(
                self.algorithm.strategy,
                &task,
                &avail,
                &self.params,
                &self.cfg,
            ) {
                Ok(plan) => {
                    if is_batch {
                        checkpoints.push(Checkpoint {
                            ordered_idx: i,
                            releases: releases.clone(),
                            plans_len: plans.len(),
                        });
                    }
                    for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                        releases[node.index()] = rel;
                    }
                    plans.push((
                        task,
                        plan,
                        Some(PlanMeta {
                            planned_at: now,
                            observed,
                        }),
                    ));
                    i += 1;
                }
                Err(reason) if is_batch => {
                    decisions[batch_index(task.id)] = Some(Decision::Rejected(reason));
                    skipped.insert(task.id);
                    i += 1;
                }
                Err(reason) => {
                    // A previously admitted task lost feasibility: evict the
                    // most recently planned batch member and rewind to its
                    // checkpoint (see the full engine for the rationale).
                    match checkpoints.pop() {
                        Some(ck) => {
                            let evicted = ordered[ck.ordered_idx];
                            decisions[batch_index(evicted.id)] = Some(Decision::Rejected(reason));
                            skipped.insert(evicted.id);
                            evicted_by_rollback.push(evicted);
                            releases = ck.releases;
                            plans.truncate(ck.plans_len);
                            i = ck.ordered_idx;
                        }
                        None => {
                            // The waiting queue alone cannot be replanned at
                            // `now`: reject the whole batch, keep all plans.
                            for d in decisions.iter_mut() {
                                if d.is_none() {
                                    *d = Some(Decision::Rejected(reason));
                                }
                            }
                            self.stats.plans_reused += reused;
                            self.stats.plans_computed += computed;
                            return decisions.into_iter().map(|d| d.expect("decided")).collect();
                        }
                    }
                }
            }
        }
        for (idx, d) in decisions.iter_mut().enumerate() {
            if d.is_none() {
                debug_assert!(plans.iter().any(|(_, p, _)| p.task == batch[idx].id));
                *d = Some(Decision::Accepted);
            }
        }
        self.queue.clear();
        self.meta.clear();
        for (t, p, m) in plans {
            self.queue.push((t, p));
            self.meta.push(m);
        }
        self.stats.plans_reused += reused;
        self.stats.plans_computed += computed;
        // Rollback evictions picked a culprit heuristically; give each
        // evicted member one individual shot at the settled queue.
        self.algorithm.policy.sort(&mut evicted_by_rollback);
        for task in evicted_by_rollback {
            if self.submit(task, now).is_accepted() {
                decisions[batch_index(task.id)] = Some(Decision::Accepted);
            }
        }
        decisions.into_iter().map(|d| d.expect("decided")).collect()
    }

    /// The committed work outstanding at `now`, in node-time units. See
    /// [`Admission::backlog`].
    pub fn backlog(&self, now: SimTime) -> f64 {
        Admission::backlog(self, now)
    }

    /// The earliest instant `t ≥ now` at which `task` would be admitted,
    /// assuming no further arrivals. Decision-identical to
    /// [`AdmissionController::earliest_feasible_start`](super::AdmissionController::earliest_feasible_start)
    /// (the differential oracle replays this op through both engines), but
    /// the `t = now` probe — the common case, answered instantly for an
    /// admissible task — runs through the incremental pass and reuses the
    /// cached plan prefix; only the search over future dispatch instants
    /// falls back to fresh temp-schedule walks.
    pub fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        let mut scratch = IncrementalStats::default();
        if self.pass(now, Some(task), &mut scratch).is_ok() {
            return Some(now);
        }
        super::earliest_feasible_start_search(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &self.queue,
            task,
        )
    }

    /// Re-plans the waiting queue against the current committed releases.
    /// Positions whose inputs are unchanged keep their plans without a
    /// planning call; on failure the previous plans stay installed.
    pub fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let mut work = IncrementalStats::default();
        let result = self.pass(now, None, &mut work);
        self.book_work(work);
        let pass = result?;
        self.install(pass);
        Ok(())
    }

    /// The earliest planned first-transmission instant across the waiting
    /// queue.
    pub fn next_dispatch_due(&self) -> Option<SimTime> {
        self.queue.iter().map(|(_, p)| p.first_start()).min()
    }

    /// Removes and returns every waiting task whose plan is due at `now`,
    /// committing its node release estimates; tasks in execution order.
    ///
    /// The committed values are exactly the release updates the remaining
    /// cached plans already observed from this task's temp-schedule slot,
    /// so a dispatch of a queue *prefix* leaves every remaining plan's
    /// reuse gate intact — the steady-state path stays diff-only.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].1.first_start().at_or_before_eps(now) {
                let (task, plan) = self.queue.remove(i);
                self.meta.remove(i);
                for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                    self.releases[node.index()] = rel;
                }
                due.push((task, plan));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Overrides one node's committed release time with an *actual* value.
    /// Cached plans that observed the previous value fail their reuse gate
    /// and re-plan on the next pass — the fallback the module docs describe.
    pub fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.releases[node] = time;
    }

    /// Removes one waiting task from the queue without touching committed
    /// releases; see
    /// [`AdmissionController::remove_waiting`](super::AdmissionController::remove_waiting).
    pub fn remove_waiting(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.queue.iter().position(|(t, _)| t.id == id)?;
        let (task, _) = self.queue.remove(pos);
        self.meta.remove(pos);
        Some(task)
    }

    /// Snapshots the complete engine state for journaling. The reuse cache
    /// is derived state and deliberately not part of the image — both
    /// engines share one [`ControllerState`] shape.
    pub fn state(&self) -> ControllerState {
        ControllerState {
            params: self.params,
            algorithm: self.algorithm,
            cfg: self.cfg,
            releases: self.releases.clone(),
            queue: self.queue.clone(),
        }
    }

    /// Rebuilds an engine from a journaled state with a *cold* reuse cache:
    /// the first pass after a restore re-plans every position (exactly what
    /// the reference engine does on every pass), re-warming the cache.
    pub fn from_state(state: ControllerState) -> Result<Self, crate::error::ModelError> {
        state.validate()?;
        let meta = vec![None; state.queue.len()];
        Ok(IncrementalController {
            params: state.params,
            algorithm: state.algorithm,
            cfg: state.cfg,
            releases: state.releases,
            queue: state.queue,
            meta,
            stats: IncrementalStats::default(),
        })
    }
}

impl Admission for IncrementalController {
    const NAME: &'static str = "incremental";

    fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self {
        IncrementalController::new(params, algorithm, cfg)
    }

    fn params(&self) -> &ClusterParams {
        IncrementalController::params(self)
    }

    fn algorithm(&self) -> AlgorithmKind {
        IncrementalController::algorithm(self)
    }

    fn config(&self) -> &PlanConfig {
        IncrementalController::config(self)
    }

    fn committed_releases(&self) -> &[SimTime] {
        IncrementalController::committed_releases(self)
    }

    fn queue(&self) -> &[(Task, TaskPlan)] {
        IncrementalController::queue(self)
    }

    fn submit(&mut self, task: Task, now: SimTime) -> Decision {
        IncrementalController::submit(self, task, now)
    }

    fn probe_plan(&self, task: &Task, now: SimTime) -> Result<TaskPlan, AdmissionFailure> {
        IncrementalController::probe_plan(self, task, now)
    }

    fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<Decision> {
        IncrementalController::submit_batch(self, batch, now)
    }

    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        IncrementalController::earliest_feasible_start(self, task, now)
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        IncrementalController::replan(self, now)
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        IncrementalController::take_due(self, now)
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        IncrementalController::set_node_release(self, node, time)
    }

    fn remove_waiting(&mut self, id: TaskId) -> Option<Task> {
        IncrementalController::remove_waiting(self, id)
    }

    fn profile(&self) -> Option<super::EngineProfile> {
        let s = self.stats;
        Some(super::EngineProfile {
            plans_reused: s.plans_reused,
            plans_computed: s.plans_computed,
            plan_nanos: s.plan_nanos,
        })
    }

    fn state(&self) -> ControllerState {
        IncrementalController::state(self)
    }

    fn from_state(state: ControllerState) -> Result<Self, crate::error::ModelError> {
        IncrementalController::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::super::AdmissionController;
    use super::*;
    use crate::dlt::homogeneous;

    fn params() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    fn both(algorithm: AlgorithmKind) -> (AdmissionController, IncrementalController) {
        (
            AdmissionController::new(params(), algorithm, PlanConfig::default()),
            IncrementalController::new(params(), algorithm, PlanConfig::default()),
        )
    }

    fn task(id: u64, arrival: f64, sigma: f64, rel_deadline: f64) -> Task {
        Task::new(id, arrival, sigma, rel_deadline)
    }

    fn assert_same_state(full: &AdmissionController, inc: &IncrementalController) {
        assert_eq!(full.state(), inc.state(), "engines diverged");
    }

    #[test]
    fn mirrors_full_engine_over_a_mixed_sequence() {
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let seq: Vec<Task> = vec![
            task(1, 0.0, 400.0, e16 * 8.0),
            task(2, 5.0, 200.0, e16 * 6.0),
            task(3, 5.0, 200.0, 100.0), // hopeless
            task(4, 9.0, 300.0, e16 * 12.0),
        ];
        for t in &seq {
            let now = t.arrival;
            assert_eq!(full.submit(*t, now), inc.submit(*t, now), "{t:?}");
            assert_same_state(&full, &inc);
        }
        assert_eq!(
            full.take_due(SimTime::new(9.0)),
            inc.take_due(SimTime::new(9.0))
        );
        assert_same_state(&full, &inc);
        // Early release → replans diverge from cache, still identical.
        full.set_node_release(0, SimTime::new(10.0));
        inc.set_node_release(0, SimTime::new(10.0));
        assert_eq!(
            full.replan(SimTime::new(10.0)).is_ok(),
            inc.replan(SimTime::new(10.0)).is_ok()
        );
        assert_same_state(&full, &inc);
    }

    #[test]
    fn deep_queue_submit_reuses_the_prefix() {
        let (_, mut inc) = both(AlgorithmKind::EDF_DLT);
        // Feasible deep queue: loose, strictly increasing deadlines.
        for i in 0..64 {
            let t = task(i, 0.0, 100.0, 1e7 + i as f64 * 1e4);
            assert!(inc.submit(t, SimTime::ZERO).is_accepted());
        }
        let before = inc.stats();
        let probe = task(999, 0.0, 100.0, 9e8);
        assert!(inc.submit(probe, SimTime::ZERO).is_accepted());
        let after = inc.stats();
        assert_eq!(
            after.plans_computed - before.plans_computed,
            1,
            "a back-of-queue submit must plan exactly the newcomer"
        );
        assert_eq!(after.plans_reused - before.plans_reused, 64);
    }

    #[test]
    fn cold_cache_after_from_state_stays_conformant() {
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        for i in 0..8 {
            let t = task(i, 0.0, 150.0, 5e5 + i as f64 * 1e4);
            full.submit(t, SimTime::ZERO);
            inc.submit(t, SimTime::ZERO);
        }
        let mut thawed = IncrementalController::from_state(inc.state()).unwrap();
        let t = task(100, 1.0, 200.0, 8e5);
        assert_eq!(
            full.submit(t, SimTime::new(1.0)),
            thawed.submit(t, SimTime::new(1.0))
        );
        assert_eq!(full.state(), thawed.state());
        // The pass after the restore re-warmed the cache: the next
        // back-of-queue submit is diff-only again.
        let before = thawed.stats();
        let t2 = task(101, 1.0, 200.0, 9e5);
        assert!(thawed.submit(t2, SimTime::new(1.0)).is_accepted());
        assert_eq!(thawed.stats().plans_computed - before.plans_computed, 1);
    }

    #[test]
    fn rejection_keeps_state_and_cache_intact() {
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        for i in 0..4 {
            let t = task(i, 0.0, 800.0, e16 * (1.2 + i as f64));
            assert_eq!(full.submit(t, SimTime::ZERO), inc.submit(t, SimTime::ZERO));
        }
        // An overload candidate rejected by both; nothing may change.
        let bad = task(50, 0.0, 800.0, e16 * 1.1);
        assert_eq!(
            full.submit(bad, SimTime::ZERO),
            inc.submit(bad, SimTime::ZERO)
        );
        assert!(!full.submit(bad, SimTime::ZERO).is_accepted());
        assert_same_state(&full, &inc);
        // And the cache still serves the prefix on the next acceptance.
        let before = inc.stats();
        let ok = task(51, 0.0, 100.0, e16 * 40.0);
        assert_eq!(
            full.submit(ok, SimTime::ZERO),
            inc.submit(ok, SimTime::ZERO)
        );
        assert_same_state(&full, &inc);
        assert!(inc.stats().plans_reused > before.plans_reused);
    }

    #[test]
    fn probe_plan_matches_full_engine_and_does_not_mutate() {
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        for i in 0..6 {
            let t = task(i, 0.0, 150.0, 4e5 + i as f64 * 3e4);
            full.submit(t, SimTime::ZERO);
            inc.submit(t, SimTime::ZERO);
        }
        let probe = task(77, 2.0, 300.0, 6e5);
        let a = full.probe_plan(&probe, SimTime::new(2.0));
        let b = inc.probe_plan(&probe, SimTime::new(2.0));
        assert_eq!(a, b);
        assert_same_state(&full, &inc);
    }

    #[test]
    fn probe_with_shadowed_id_matches_full_engine() {
        // A probe whose id duplicates a waiting task's must return the
        // same plan the reference engine returns (the first id match in
        // policy order — the waiting task's plan, not the candidate's).
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        for i in 0..4 {
            let t = task(i, 0.0, 150.0, 3e5 + i as f64 * 2e4);
            assert_eq!(full.submit(t, SimTime::ZERO), inc.submit(t, SimTime::ZERO));
        }
        // Same id as waiting task 1, later deadline → planned after it.
        let shadow = task(1, 0.0, 300.0, 7e5);
        let a = full.probe_plan(&shadow, SimTime::ZERO);
        let b = inc.probe_plan(&shadow, SimTime::ZERO);
        assert_eq!(a, b);
        assert_same_state(&full, &inc);
    }

    #[test]
    fn rejected_passes_still_book_their_planning_work() {
        // A rejection-heavy stream must not inflate the reuse rate: the
        // work done by failed passes counts too.
        let p = params();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        let (_, mut inc) = both(AlgorithmKind::EDF_DLT);
        assert!(inc
            .submit(task(0, 0.0, 800.0, e16 * 1.2), SimTime::ZERO)
            .is_accepted());
        let before = inc.stats();
        // Hopeless newcomer: its own plan fails after the prefix walk.
        assert!(!inc
            .submit(task(1, 0.0, 800.0, e16 * 0.5), SimTime::ZERO)
            .is_accepted());
        let after = inc.stats();
        assert!(
            after.plans_computed > before.plans_computed
                || after.plans_reused > before.plans_reused,
            "rejected pass left no trace in the stats: {after:?}"
        );
    }

    #[test]
    fn batch_matches_full_engine_including_rollback() {
        let p = params();
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        let w = task(1, 0.0, 400.0, e8 * 1.005);
        assert_eq!(full.submit(w, SimTime::ZERO), inc.submit(w, SimTime::ZERO));
        let m1 = task(2, 0.0, 400.0, e16 * 1.05);
        let m2 = task(3, 0.0, 10.0, e8 * 0.8);
        assert_eq!(
            full.submit_batch(&[m1, m2], SimTime::ZERO),
            inc.submit_batch(&[m1, m2], SimTime::ZERO)
        );
        assert_same_state(&full, &inc);
    }

    #[test]
    fn batch_member_shadowing_a_waiting_id_is_planned_fresh() {
        // A batch member that shares a waiting task's id but differs in
        // shape must NOT inherit the cached plan — the reference engine
        // plans it fresh, and so must the diff engine (regression for the
        // id-keyed reuse cache).
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        let w = task(7, 0.0, 100.0, 1e6);
        assert_eq!(full.submit(w, SimTime::ZERO), inc.submit(w, SimTime::ZERO));
        let shadow = task(7, 0.0, 800.0, 5e5);
        assert_eq!(
            full.submit_batch(&[shadow], SimTime::ZERO),
            inc.submit_batch(&[shadow], SimTime::ZERO)
        );
        assert_same_state(&full, &inc);
        // And a *fully identical* duplicate also stays conformant (its
        // second occurrence sees post-first-copy releases, so the cache
        // input gate rejects reuse).
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        assert_eq!(full.submit(w, SimTime::ZERO), inc.submit(w, SimTime::ZERO));
        assert_eq!(
            full.submit_batch(&[w], SimTime::ZERO),
            inc.submit_batch(&[w], SimTime::ZERO)
        );
        assert_same_state(&full, &inc);
    }

    #[test]
    fn mid_batch_rejection_leaves_committed_releases_untouched() {
        // The incremental regression twin of the full engine's test: the
        // checkpoint-rewind pass may never leak tentative dispatches.
        let p = params();
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let mut c = IncrementalController::new(p, AlgorithmKind::EDF_DLT, PlanConfig::default());
        assert!(c
            .submit(task(10, 0.0, 50.0, 1e6), SimTime::ZERO)
            .is_accepted());
        let _ = c.take_due(SimTime::ZERO);
        let committed_before = c.committed_releases().to_vec();
        let w = task(1, 0.0, 400.0, e8 * 1.05 + committed_before[0].as_f64());
        let _ = c.submit(w, SimTime::ZERO);
        let m1 = task(2, 0.0, 400.0, e16 * 1.05);
        let m2 = task(3, 0.0, 10.0, e8 + 10_000.0);
        let decisions = c.submit_batch(&[m1, m2], SimTime::ZERO);
        assert!(
            decisions.iter().any(|d| !d.is_accepted()),
            "scenario must reject a mid-batch member: {decisions:?}"
        );
        assert_eq!(c.committed_releases(), committed_before.as_slice());
    }

    #[test]
    fn one_shot_node_count_disables_cross_instant_reuse() {
        // OneShot evaluates ñ_min at the raw instant, so a cached plan from
        // t=0 must not be reused at t=1 even with identical availability.
        let cfg = PlanConfig {
            node_count: NodeCountPolicy::OneShot,
            ..Default::default()
        };
        let mut full = AdmissionController::new(params(), AlgorithmKind::EDF_DLT, cfg);
        let mut inc = IncrementalController::new(params(), AlgorithmKind::EDF_DLT, cfg);
        for i in 0..4 {
            let t = task(i, 0.0, 200.0, 5e5 + i as f64 * 1e4);
            assert_eq!(full.submit(t, SimTime::ZERO), inc.submit(t, SimTime::ZERO));
        }
        let t = task(10, 1.0, 200.0, 6e5);
        assert_eq!(
            full.submit(t, SimTime::new(1.0)),
            inc.submit(t, SimTime::new(1.0))
        );
        assert_eq!(full.state(), inc.state());
    }

    #[test]
    fn state_round_trips_and_remove_waiting_conforms() {
        let (mut full, mut inc) = both(AlgorithmKind::EDF_DLT);
        for i in 0..5 {
            let t = task(i, 0.0, 150.0, 4e5 + i as f64 * 2e4);
            full.submit(t, SimTime::ZERO);
            inc.submit(t, SimTime::ZERO);
        }
        assert_eq!(
            full.remove_waiting(TaskId(2)),
            inc.remove_waiting(TaskId(2))
        );
        assert_eq!(
            full.remove_waiting(TaskId(99)),
            inc.remove_waiting(TaskId(99))
        );
        assert_same_state(&full, &inc);
        let json = serde_json::to_string(&inc.state()).unwrap();
        let back: ControllerState = serde_json::from_str(&json).unwrap();
        let thawed = IncrementalController::from_state(back).unwrap();
        assert_eq!(thawed.state(), inc.state());
    }
}
