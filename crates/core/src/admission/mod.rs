//! The schedulability test and the admission engines (Fig. 2 of the paper).
//!
//! On each task arrival the scheduler decides, *online*, whether the new task
//! can be admitted without compromising any previously admitted task. The
//! test rebuilds a tentative schedule ("TempSchedule") for the waiting queue
//! plus the newcomer: tasks are taken in policy order, each is planned by the
//! configured strategy against the evolving node-release vector, and any
//! estimated deadline miss fails the whole test — the newcomer is rejected
//! and the previously feasible plans are kept.
//!
//! Two engines implement that contract behind the [`Admission`] trait:
//!
//! * [`AdmissionController`] ([`full`]) — the reference engine: a literal
//!   whole-queue replan per event, exactly the paper's pseudocode. `O(queue)`
//!   planning calls per arrival.
//! * [`IncrementalController`] ([`incremental`]) — the production engine: it
//!   caches, per waiting task, the exact planning inputs its current plan
//!   was derived from, and on each event re-plans only the tasks whose
//!   inputs actually changed (typically the suffix after the newcomer's
//!   policy position). Reuse is gated on *provable input equality*, so the
//!   engine is decision- and plan-identical to the reference — the
//!   differential oracle suite (`tests/differential_admission.rs`) replays
//!   every scenario through both and asserts exact equality.
//!
//! Rejection here corresponds to the paper's deadline renegotiation footnote:
//! the cluster proxy would bounce the job back to the client with modified
//! parameters; from the scheduler's perspective the task simply leaves.

use serde::{Deserialize, Serialize};

use crate::algorithm::AlgorithmKind;
use crate::error::{Infeasible, ModelError};
use crate::params::ClusterParams;
use crate::strategy::{plan_task, NodeAvailability, PlanConfig, TaskPlan};
use crate::task::{Task, TaskId};
use crate::time::SimTime;

pub mod full;
pub mod incremental;

pub use full::AdmissionController;
pub use incremental::{IncrementalController, IncrementalStats};

/// Why (and for which task) a schedulability test failed.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdmissionFailure {
    /// The first task in policy order that could not be feasibly planned.
    pub task: TaskId,
    /// The planning-level reason.
    pub reason: Infeasible,
}

impl core::fmt::Display for AdmissionFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task {:?} infeasible: {}", self.task, self.reason)
    }
}

impl std::error::Error for AdmissionFailure {}

// `Infeasible` is re-serialized through AdmissionFailure in results output.
impl Serialize for Infeasible {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for Infeasible {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        // Round-trip by display string; unknown strings map to the generic
        // rejection cause. Only used for result-file ingestion.
        let s = String::from_value(v)?;
        Ok(match s.as_str() {
            "deadline passes before any node is available" => Infeasible::DeadlineBeforeStart,
            "not enough time to transmit the input data" => Infeasible::NoTimeForTransmission,
            "no node count within the cluster meets the deadline" => Infeasible::NotEnoughNodes,
            "user-split node request cannot meet the deadline" => Infeasible::UserRequestInfeasible,
            _ => Infeasible::CompletionAfterDeadline,
        })
    }
}

/// Runs the Fig. 2 schedulability test.
///
/// * `now` — the planning instant (the newcomer's arrival, or the current
///   event time for a replanning pass).
/// * `committed_releases` — per-node release times of *dispatched* work only
///   (index = node id); waiting tasks are replanned from scratch.
/// * `waiting` — currently admitted but undispatched tasks, any order.
/// * `candidate` — the newly arrived task, or `None` for a replanning pass.
///
/// On success returns the feasible plans in policy (execution) order.
///
/// ```
/// use rtdls_core::prelude::*;
///
/// let params = ClusterParams::paper_baseline();
/// let idle = vec![SimTime::ZERO; params.num_nodes];
/// let task = Task::new(1, 0.0, 200.0, 30_000.0);
/// let plans = schedulability_test(
///     &params,
///     AlgorithmKind::EDF_DLT,
///     &PlanConfig::default(),
///     SimTime::ZERO,
///     &idle,
///     &[],          // empty waiting queue
///     Some(&task),
/// )
/// .unwrap();
/// assert_eq!(plans.len(), 1);
/// assert!(!plans[0].est_completion.definitely_after(task.absolute_deadline()));
/// ```
pub fn schedulability_test(
    params: &ClusterParams,
    algorithm: AlgorithmKind,
    cfg: &PlanConfig,
    now: SimTime,
    committed_releases: &[SimTime],
    waiting: &[Task],
    candidate: Option<&Task>,
) -> Result<Vec<TaskPlan>, AdmissionFailure> {
    debug_assert_eq!(committed_releases.len(), params.num_nodes);
    let mut tasks: Vec<Task> = Vec::with_capacity(waiting.len() + 1);
    tasks.extend_from_slice(waiting);
    if let Some(t) = candidate {
        tasks.push(*t);
    }
    algorithm.policy.sort(&mut tasks);

    let mut releases = committed_releases.to_vec();
    let mut plans = Vec::with_capacity(tasks.len());
    for task in &tasks {
        let avail = NodeAvailability::new(&releases, now);
        let plan = plan_task(algorithm.strategy, task, &avail, params, cfg).map_err(|reason| {
            AdmissionFailure {
                task: task.id,
                reason,
            }
        })?;
        debug_assert!(
            !plan
                .est_completion
                .definitely_after(task.absolute_deadline()),
            "strategy returned a plan missing its deadline"
        );
        for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
            releases[node.index()] = rel;
        }
        plans.push(plan);
    }
    Ok(plans)
}

/// Release-vector-driven search for the earliest instant `t ≥ now` at
/// which `task` would pass the schedulability test, given the engine's
/// current book (committed releases + waiting queue) and assuming no
/// further arrivals.
///
/// The engine's deterministic future has one kind of state change left:
/// *dispatches*. When the clock reaches a waiting plan's first transmission
/// start, the task leaves the queue and its release estimates become
/// committed — after which a candidate is planned *behind* it instead of
/// competing with it in policy order (the mechanism that lets an
/// EDF-early candidate stop starving a later-deadline waiting task it
/// would otherwise push past its deadline). Between dispatch instants the
/// test's inputs only get worse with time (availability is `max(r, t)`,
/// non-decreasing in `t`), so feasibility within an interval is decided at
/// its left endpoint: the candidate instants are exactly
/// `{now} ∪ {first_start(p) > now}` and the first feasible one is the
/// earliest feasible start overall.
///
/// Returns `None` when no candidate instant passes — the task can never be
/// admitted against this book without some *external* change (an early
/// release, a removal, a competing arrival being rejected).
pub fn earliest_feasible_start_search(
    params: &ClusterParams,
    algorithm: AlgorithmKind,
    cfg: &PlanConfig,
    now: SimTime,
    committed_releases: &[SimTime],
    queue: &[(Task, TaskPlan)],
    task: &Task,
) -> Option<SimTime> {
    // t = now: the engine's plain admission test (probe semantics — due
    // but undispatched plans still count as waiting, exactly as a `submit`
    // at this instant would see them). Some(now) iff a probe accepts.
    let waiting_now: Vec<Task> = queue.iter().map(|(t, _)| *t).collect();
    if schedulability_test(
        params,
        algorithm,
        cfg,
        now,
        committed_releases,
        &waiting_now,
        Some(task),
    )
    .is_ok()
    {
        return Some(now);
    }
    // Future instants: the activation protocol is "dispatches at `t`
    // commit first, then the task is submitted", so each candidate instant
    // is tested against the post-dispatch book.
    let mut instants: Vec<SimTime> = queue
        .iter()
        .map(|(_, plan)| plan.first_start())
        .filter(|start| start.definitely_after(now))
        .collect();
    instants.sort_unstable();
    instants.dedup();
    for t in instants {
        // Simulate the dispatches due by `t`, exactly as `take_due` would:
        // scan in execution order, commit each due plan's release
        // estimates, keep the rest waiting.
        let mut releases = committed_releases.to_vec();
        let mut waiting: Vec<Task> = Vec::with_capacity(queue.len());
        for (w, plan) in queue {
            if plan.first_start().at_or_before_eps(t) {
                for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                    releases[node.index()] = rel;
                }
            } else {
                waiting.push(*w);
            }
        }
        if schedulability_test(params, algorithm, cfg, t, &releases, &waiting, Some(task)).is_ok() {
            return Some(t);
        }
    }
    None
}

/// A structured account of why a submission failed the schedulability test
/// at a given instant, with honest counterfactuals: every suggested value
/// was verified by actually running the test against the engine's observed
/// book (committed releases + waiting queue), so resubmitting at the
/// suggestion — against an unchanged book — passes by construction.
///
/// Attached to `Rejected`/`Deferred` verdicts as an additive wire field and
/// served on demand by the ops channel's `Explain` query. All-scalar and
/// `Copy`; "no suggestion" travels as documented sentinel values so the
/// struct stays trivially serializable.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdmissionExplanation {
    /// The binding rejection cause at the probe instant.
    pub cause: Infeasible,
    /// The probe instant the explanation is relative to. Feasibility
    /// between dispatch instants is decided at the interval's left endpoint
    /// (availability is `max(r, t)`, non-decreasing in `t`), so this is the
    /// binding dispatch instant for the verdict it explains.
    pub at: SimTime,
    /// How much more relative deadline the request needed:
    /// `min_feasible_deadline − rel_deadline`. 0 when no feasible deadline
    /// was found within the search horizon.
    pub slack_deficit: f64,
    /// The smallest relative deadline (bisection-tight) that passes the
    /// test with the request otherwise unchanged; 0 when none was found.
    pub min_feasible_deadline: f64,
    /// The largest data size σ (bisection-tight) that passes the test with
    /// the request otherwise unchanged; 0 when even a near-zero σ fails.
    pub max_feasible_sigma: f64,
    /// The earliest instant `t ≥ at` at which the unchanged request would
    /// pass (the reservation search); negative when no dispatch of the
    /// current queue ever makes room.
    pub earliest_feasible_start: f64,
}

impl AdmissionExplanation {
    /// `true` when a feasible counterfactual deadline was found.
    pub fn has_feasible_deadline(&self) -> bool {
        self.min_feasible_deadline > 0.0
    }

    /// `true` when a feasible counterfactual data size was found.
    pub fn has_feasible_sigma(&self) -> bool {
        self.max_feasible_sigma > 0.0
    }

    /// `true` when waiting (without renegotiating) eventually admits.
    pub fn has_feasible_start(&self) -> bool {
        self.earliest_feasible_start >= 0.0
    }
}

/// Relative convergence tolerance for the counterfactual bisections: the
/// reported suggestion is the *feasible* end of a bracket this tight, so a
/// renegotiated request even marginally looser is also feasible.
const EXPLAIN_TOL: f64 = 1e-9;

/// Explains why `task` fails the Fig. 2 test at `now` against the given
/// book; `None` when it is in fact feasible as-is.
///
/// The counterfactual deadline search seeds its upper probe at the
/// analytic full-cluster slack floor ([`crate::nmin::min_feasible_slack`])
/// measured from the latest committed release, doubles until feasible, and
/// bisects down keeping the infeasible/feasible bracket; the reported value
/// is the bracket's feasible end. The σ search bisects between a near-zero
/// size and the rejected size the same way. Every probe is the real
/// [`schedulability_test`], so suggestions hold against the exact waiting
/// queue and release vector the rejection saw.
pub fn explain_infeasibility(
    params: &ClusterParams,
    algorithm: AlgorithmKind,
    cfg: &PlanConfig,
    now: SimTime,
    committed_releases: &[SimTime],
    queue: &[(Task, TaskPlan)],
    task: &Task,
) -> Option<AdmissionExplanation> {
    let waiting: Vec<Task> = queue.iter().map(|(t, _)| *t).collect();
    let feasible = |t: &Task| {
        schedulability_test(
            params,
            algorithm,
            cfg,
            now,
            committed_releases,
            &waiting,
            Some(t),
        )
        .is_ok()
    };
    let cause = match schedulability_test(
        params,
        algorithm,
        cfg,
        now,
        committed_releases,
        &waiting,
        Some(task),
    ) {
        Ok(_) => return None,
        Err(f) => f.reason,
    };

    // Counterfactual deadline. The original deadline is known-infeasible
    // (that is the rejection being explained), so it anchors the bracket's
    // low end once a feasible high end is found.
    let with_deadline = |d: f64| Task {
        rel_deadline: d,
        ..*task
    };
    let horizon = {
        let last_release = committed_releases.iter().copied().fold(now, SimTime::max);
        let floor = crate::nmin::min_feasible_slack(params, task.data_size);
        (last_release.as_f64() - task.arrival.as_f64()).max(0.0) + floor
    };
    let mut hi = task.rel_deadline.max(horizon);
    let mut found = feasible(&with_deadline(hi));
    for _ in 0..64 {
        if found || !hi.is_finite() {
            break;
        }
        hi *= 2.0;
        found = hi.is_finite() && feasible(&with_deadline(hi));
    }
    let min_feasible_deadline = if found {
        let mut lo = task.rel_deadline;
        for _ in 0..64 {
            if hi - lo <= EXPLAIN_TOL * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if feasible(&with_deadline(mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    } else {
        0.0
    };

    // Counterfactual σ: near-zero is the best case; if even that fails the
    // deadline is hopeless at any size and no suggestion is made.
    let with_sigma = |s: f64| Task {
        data_size: s,
        ..*task
    };
    let tiny = task.data_size * 1e-9;
    let max_feasible_sigma = if tiny > 0.0 && feasible(&with_sigma(tiny)) {
        let mut lo = tiny;
        let mut hi_s = task.data_size;
        for _ in 0..64 {
            if hi_s - lo <= EXPLAIN_TOL * hi_s.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi_s);
            if feasible(&with_sigma(mid)) {
                lo = mid;
            } else {
                hi_s = mid;
            }
        }
        lo
    } else {
        0.0
    };

    let earliest = earliest_feasible_start_search(
        params,
        algorithm,
        cfg,
        now,
        committed_releases,
        queue,
        task,
    );
    Some(AdmissionExplanation {
        cause,
        at: now,
        slack_deficit: if min_feasible_deadline > 0.0 {
            min_feasible_deadline - task.rel_deadline
        } else {
            0.0
        },
        min_feasible_deadline,
        max_feasible_sigma,
        earliest_feasible_start: earliest.map(|t| t.as_f64()).unwrap_or(-1.0),
    })
}

/// The outcome of submitting a task to an admission engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Admitted; the waiting queue was replanned and remains feasible.
    Accepted,
    /// Rejected; previously admitted tasks keep their plans.
    Rejected(Infeasible),
}

impl Decision {
    /// `true` if the task was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Decision::Accepted)
    }
}

/// The complete serializable state of an admission engine — the durable
/// "book" a persistence layer journals and a recovery path restores.
///
/// Both engines produce and consume the same shape (the incremental
/// engine's reuse cache is derived state, rebuilt lazily), so a journal
/// written under one engine recovers under the other. Round-trips through
/// the in-repo serde stand-ins ([`Admission::state`] /
/// [`Admission::from_state`]); equality of two states is equality of the
/// controllers they rebuild.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Cluster shape the controller plans against.
    pub params: ClusterParams,
    /// Scheduling policy × partitioning strategy.
    pub algorithm: AlgorithmKind,
    /// Planning knobs (release bookkeeping, node-count selection).
    pub cfg: PlanConfig,
    /// Committed per-node release times (index = node id).
    pub releases: Vec<SimTime>,
    /// Waiting tasks with their current plans, in execution order.
    pub queue: Vec<(Task, TaskPlan)>,
}

impl ControllerState {
    /// Structural validation shared by every engine's `from_state`: the
    /// release vector matches the cluster shape and each queued plan is
    /// internally consistent and belongs to its task.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.releases.len() != self.params.num_nodes {
            return Err(ModelError::InvalidParams(
                "release vector length must equal num_nodes",
            ));
        }
        for (task, plan) in &self.queue {
            if plan.task != task.id {
                return Err(ModelError::InvalidParams(
                    "queued plan does not belong to its task",
                ));
            }
            if plan
                .nodes
                .iter()
                .any(|n| n.index() >= self.params.num_nodes)
            {
                return Err(ModelError::InvalidParams(
                    "queued plan references a node outside the cluster",
                ));
            }
            if plan.nodes.len() != plan.node_release_estimates.len()
                || plan.nodes.len() != plan.start_times.len()
                || plan.nodes.len() != plan.fractions.len()
            {
                return Err(ModelError::InvalidParams(
                    "queued plan has inconsistent chunk vectors",
                ));
            }
        }
        Ok(())
    }
}

/// Planning-cost profile an engine may expose (see [`Admission::profile`]):
/// how many positions were re-planned vs served from cache, and the
/// wall-clock cost of the planning calls that did run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Queue positions whose cached plan was reused verbatim.
    pub plans_reused: u64,
    /// Queue positions (or candidates) that went through `plan_task`.
    pub plans_computed: u64,
    /// Wall-clock nanoseconds spent inside `plan_task`.
    pub plan_nanos: u64,
}

impl EngineProfile {
    /// Fraction of positions served from the cache (0 when nothing ran).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.plans_reused + self.plans_computed;
        if total == 0 {
            0.0
        } else {
            self.plans_reused as f64 / total as f64
        }
    }

    /// Mean nanoseconds per executed planning call (0 when none ran).
    pub fn mean_plan_nanos(&self) -> f64 {
        if self.plans_computed == 0 {
            0.0
        } else {
            self.plan_nanos as f64 / self.plans_computed as f64
        }
    }
}

/// The contract every admission engine satisfies: the head node's view of
/// the waiting queue, the committed node releases, and the current feasible
/// plans.
///
/// Engines are clock-agnostic — callers (the discrete-event simulator, or a
/// real dispatcher) drive them with explicit times. Invariants:
///
/// * every waiting task has a plan whose estimate meets its deadline;
/// * plans are kept in policy order (`queue()[0]` executes first);
/// * committed releases only ever refer to dispatched work;
/// * all engines are **observably identical**: the same call sequence
///   produces the same decisions, plans, releases, and state on every
///   implementation (the differential oracle suite enforces this).
pub trait Admission: Clone + core::fmt::Debug {
    /// Short engine name for logs, benches, and config surfaces.
    const NAME: &'static str;

    /// An engine for an idle cluster (all nodes available at time zero).
    fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self;

    /// Cluster parameters.
    fn params(&self) -> &ClusterParams;

    /// The algorithm this engine runs.
    fn algorithm(&self) -> AlgorithmKind;

    /// Planning knobs this engine tests with.
    fn config(&self) -> &PlanConfig;

    /// Committed per-node release times (index = node id).
    fn committed_releases(&self) -> &[SimTime];

    /// Current waiting tasks and plans, in execution order.
    fn queue(&self) -> &[(Task, TaskPlan)];

    /// Number of waiting (admitted, undispatched) tasks.
    fn queue_len(&self) -> usize {
        self.queue().len()
    }

    /// The current plan of a waiting task (first id match in execution
    /// order), if any.
    fn find_plan(&self, id: TaskId) -> Option<&TaskPlan> {
        self.queue()
            .iter()
            .find(|(t, _)| t.id == id)
            .map(|(_, p)| p)
    }

    /// Runs the schedulability test for a newly arrived task at time `now`
    /// (normally `task.arrival`). On acceptance the whole waiting queue is
    /// (logically) re-planned; on rejection nothing changes.
    fn submit(&mut self, task: Task, now: SimTime) -> Decision;

    /// Non-mutating admission probe: the same test as [`submit`] runs, but
    /// the engine state is untouched either way.
    ///
    /// [`submit`]: Admission::submit
    fn probe(&self, task: &Task, now: SimTime) -> Decision {
        match self.probe_plan(task, now) {
            Ok(_) => Decision::Accepted,
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Like [`probe`](Admission::probe) but returns the plan the candidate
    /// would receive (with its completion estimate, for best-fit routing)
    /// instead of a bare decision.
    fn probe_plan(&self, task: &Task, now: SimTime) -> Result<TaskPlan, AdmissionFailure>;

    /// Amortized admission for a burst of tasks; decides like calling
    /// [`submit`](Admission::submit) once per task in policy order. Returns
    /// one [`Decision`] per batch entry, in input order.
    fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<Decision>;

    /// The earliest instant `t ≥ now` at which `task` would pass the
    /// schedulability test against this engine's current book, assuming no
    /// further arrivals (see [`earliest_feasible_start_search`]). Some(now)
    /// iff the task is admissible right now; `None` when no dispatch of the
    /// current queue ever makes room. Non-mutating. The service layer's
    /// reservation verdict (`Reserved { start_at, .. }`) is built on this.
    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime>;

    /// Explains why `request` would fail admission at `now` — the binding
    /// rejection cause plus honest counterfactuals computed against this
    /// engine's observed book (see [`explain_infeasibility`]); `None` when
    /// the request is admissible as-is. Non-mutating, and a *provided*
    /// method driven entirely through the trait's accessors, so every
    /// engine explains identically by construction.
    fn explain(
        &self,
        request: &crate::request::SubmitRequest,
        now: SimTime,
    ) -> Option<AdmissionExplanation> {
        explain_infeasibility(
            self.params(),
            self.algorithm(),
            self.config(),
            now,
            self.committed_releases(),
            self.queue(),
            &request.task,
        )
    }

    /// Re-plans the waiting queue against the current committed releases
    /// (used when nodes free up earlier than estimated). Failure indicates
    /// the queue cannot be replanned at `now` and leaves the previous plans
    /// installed.
    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure>;

    /// Removes and returns every waiting task whose plan is due at `now`
    /// (first transmission start ≤ `now` within tolerance), committing its
    /// node release estimates. Returns tasks in execution order.
    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)>;

    /// The earliest planned first-transmission instant across the waiting
    /// queue — when the next dispatch is due (if plans do not change first).
    fn next_dispatch_due(&self) -> Option<SimTime> {
        self.queue().iter().map(|(_, p)| p.first_start()).min()
    }

    /// Overrides one node's committed release time with an *actual* value
    /// (e.g. the exact completion computed at dispatch, or an early release).
    fn set_node_release(&mut self, node: usize, time: SimTime);

    /// Removes one waiting task (with its plan) from the queue without
    /// touching committed releases — a waiting plan reserves nothing until
    /// dispatch, so removal is always safe for the remaining plans.
    fn remove_waiting(&mut self, id: TaskId) -> Option<Task>;

    /// The committed work outstanding at `now`, in node-time units: the sum
    /// over nodes of how far past `now` their committed releases reach, plus
    /// the transmission+compute demand of the waiting queue. Service-layer
    /// routers use this as a cheap least-loaded signal.
    fn backlog(&self, now: SimTime) -> f64 {
        let params = *self.params();
        let committed: f64 = self
            .committed_releases()
            .iter()
            .map(|r| (r.as_f64() - now.as_f64()).max(0.0))
            .sum();
        let waiting: f64 = self
            .queue()
            .iter()
            .map(|(t, _)| t.data_size * (params.cms + params.cps))
            .sum();
        committed + waiting
    }

    /// Planning-cost profile, when this engine keeps one. The default
    /// engine returns `None` (it tracks nothing); the incremental engine
    /// reports its reuse counters and cumulative `plan_task` nanoseconds.
    /// Telemetry folds this into the unified metrics registry.
    fn profile(&self) -> Option<EngineProfile> {
        None
    }

    /// Snapshots the complete engine state for journaling.
    fn state(&self) -> ControllerState;

    /// Rebuilds an engine from a journaled state. The inverse of
    /// [`state`](Admission::state): `from_state(c.state())` compares equal
    /// to `c` in every observable way. Errors when the state fails
    /// [`ControllerState::validate`].
    fn from_state(state: ControllerState) -> Result<Self, ModelError>
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::NodeCountPolicy;

    #[test]
    fn schedulability_test_is_pure() {
        // Direct use of the free function: same inputs, same outputs, no
        // hidden state.
        let p = ClusterParams::paper_baseline();
        let releases = vec![SimTime::ZERO; 16];
        let t = Task::new(1, 0.0, 200.0, 30_000.0);
        let a = schedulability_test(
            &p,
            AlgorithmKind::EDF_DLT,
            &PlanConfig::default(),
            SimTime::ZERO,
            &releases,
            &[],
            Some(&t),
        )
        .unwrap();
        let b = schedulability_test(
            &p,
            AlgorithmKind::EDF_DLT,
            &PlanConfig::default(),
            SimTime::ZERO,
            &releases,
            &[],
            Some(&t),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explain_is_none_for_feasible_and_honest_for_infeasible() {
        use crate::request::SubmitRequest;
        let p = ClusterParams::paper_baseline();
        let mut c = AdmissionController::new(p, AlgorithmKind::EDF_DLT, PlanConfig::default());
        // Busy cluster: every node committed until t = 5000.
        for node in 0..p.num_nodes {
            c.set_node_release(node, SimTime::new(5000.0));
        }
        let roomy = SubmitRequest::new(Task::new(1, 0.0, 200.0, 50_000.0));
        assert!(c.explain(&roomy, SimTime::ZERO).is_none());
        // A deadline entirely inside the busy window can never be met.
        let tight = Task::new(2, 0.0, 200.0, 300.0);
        let ex = c
            .explain(&SubmitRequest::new(tight), SimTime::ZERO)
            .unwrap();
        assert_eq!(ex.at, SimTime::ZERO);
        assert_eq!(ex.cause, Infeasible::DeadlineBeforeStart);
        assert!(ex.has_feasible_deadline());
        assert!((ex.slack_deficit - (ex.min_feasible_deadline - 300.0)).abs() < 1e-9);
        // Honesty: the suggestion passes, marginally tighter does not.
        let ok = Task {
            rel_deadline: ex.min_feasible_deadline,
            ..tight
        };
        assert!(c.probe(&ok, SimTime::ZERO).is_accepted());
        let tighter = Task {
            rel_deadline: ex.min_feasible_deadline * 0.999,
            ..tight
        };
        assert!(!c.probe(&tighter, SimTime::ZERO).is_accepted());
        // No size fits a deadline that expires before any node frees, and
        // with an empty waiting queue no dispatch ever makes room.
        assert!(!ex.has_feasible_sigma());
        assert!(!ex.has_feasible_start());
    }

    #[test]
    fn explain_sigma_counterfactual_is_honest() {
        use crate::dlt::homogeneous;
        use crate::request::SubmitRequest;
        let p = ClusterParams::paper_baseline();
        let c = AdmissionController::new(p, AlgorithmKind::EDF_DLT, PlanConfig::default());
        // Idle cluster, but σ is twice what the deadline can absorb.
        let sigma = 800.0;
        let e16 = homogeneous::exec_time(&p, sigma, p.num_nodes);
        let heavy = Task::new(3, 0.0, sigma, e16 * 0.5);
        let ex = c
            .explain(&SubmitRequest::new(heavy), SimTime::ZERO)
            .unwrap();
        assert!(ex.has_feasible_sigma());
        assert!(ex.max_feasible_sigma < sigma);
        let ok = Task {
            data_size: ex.max_feasible_sigma,
            ..heavy
        };
        assert!(c.probe(&ok, SimTime::ZERO).is_accepted());
        let heavier = Task {
            data_size: ex.max_feasible_sigma * 1.001,
            ..heavy
        };
        assert!(!c.probe(&heavier, SimTime::ZERO).is_accepted());
        // Both engines explain identically (provided method, same inputs).
        let inc = IncrementalController::new(p, AlgorithmKind::EDF_DLT, PlanConfig::default());
        assert_eq!(
            inc.explain(&SubmitRequest::new(heavy), SimTime::ZERO),
            Some(ex)
        );
    }

    #[test]
    fn controller_state_validate_catches_shape_errors() {
        let c = AdmissionController::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig {
                node_count: NodeCountPolicy::FixedPoint,
                ..Default::default()
            },
        );
        let mut bad = Admission::state(&c);
        bad.releases.pop();
        assert!(bad.validate().is_err());
    }
}
