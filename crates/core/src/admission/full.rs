//! The reference (full-replan) admission engine.
//!
//! [`AdmissionController`] is a literal implementation of the paper's Fig. 2
//! test: every arrival rebuilds the whole temp schedule over
//! `waiting ∪ {candidate}`. It is the semantic baseline the incremental
//! engine ([`super::IncrementalController`]) is differentially tested
//! against, and remains the right choice for shallow queues where a full
//! pass is cheap anyway.

use std::collections::HashSet;

use crate::algorithm::AlgorithmKind;
use crate::error::Infeasible;
use crate::params::ClusterParams;
use crate::strategy::{plan_task, NodeAvailability, PlanConfig, TaskPlan};
use crate::task::{Task, TaskId};
use crate::time::SimTime;

use super::{schedulability_test, Admission, AdmissionFailure, ControllerState, Decision};

/// Stateful admission layer: the head node's view of the waiting queue, the
/// committed node releases, and the current feasible plans.
///
/// This type is clock-agnostic — callers (the discrete-event simulator, or a
/// real dispatcher) drive it with explicit times. Invariants:
///
/// * every waiting task has a plan whose estimate meets its deadline;
/// * plans are kept in policy order (`plans()[0]` executes first);
/// * committed releases only ever refer to dispatched work.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    params: ClusterParams,
    algorithm: AlgorithmKind,
    cfg: PlanConfig,
    /// Per-node release time of committed (dispatched) work.
    releases: Vec<SimTime>,
    /// Waiting tasks with their current plans, in policy order.
    queue: Vec<(Task, TaskPlan)>,
}

impl AdmissionController {
    /// A controller for an idle cluster (all nodes available at time zero).
    pub fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self {
        AdmissionController {
            params,
            algorithm,
            cfg,
            releases: vec![SimTime::ZERO; params.num_nodes],
            queue: Vec::new(),
        }
    }

    /// The algorithm this controller runs.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// Cluster parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Planning knobs this controller tests with.
    pub fn config(&self) -> &PlanConfig {
        &self.cfg
    }

    /// Committed per-node release times (index = node id).
    pub fn committed_releases(&self) -> &[SimTime] {
        &self.releases
    }

    /// Current waiting tasks and plans, in execution order.
    pub fn queue(&self) -> &[(Task, TaskPlan)] {
        &self.queue
    }

    /// Number of waiting (admitted, undispatched) tasks.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Runs the schedulability test for a newly arrived task at time `now`
    /// (normally `task.arrival`). On acceptance the whole waiting queue is
    /// re-planned; on rejection nothing changes.
    pub fn submit(&mut self, task: Task, now: SimTime) -> Decision {
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        match schedulability_test(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &waiting,
            Some(&task),
        ) {
            Ok(plans) => {
                self.install(plans, waiting, Some(task));
                Decision::Accepted
            }
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Non-mutating admission probe: the same Fig. 2 test [`submit`] runs,
    /// but the controller state is untouched either way. Service layers use
    /// this to ask "would this task be admitted right now?" — e.g. to
    /// decide between rejecting outright and parking the task in a deferred
    /// queue, or to best-fit route across shards.
    ///
    /// [`submit`]: AdmissionController::submit
    pub fn probe(&self, task: &Task, now: SimTime) -> Decision {
        match self.probe_plan(task, now) {
            Ok(_) => Decision::Accepted,
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Like [`probe`](AdmissionController::probe) but returns the plan the
    /// candidate would receive (with its completion estimate, for best-fit
    /// routing) instead of a bare decision.
    pub fn probe_plan(&self, task: &Task, now: SimTime) -> Result<TaskPlan, AdmissionFailure> {
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        let plans = schedulability_test(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &waiting,
            Some(task),
        )?;
        plans
            .into_iter()
            .find(|p| p.task == task.id)
            .ok_or(AdmissionFailure {
                task: task.id,
                reason: Infeasible::CompletionAfterDeadline,
            })
    }

    /// Amortized admission for a burst of tasks.
    ///
    /// Decides like calling [`submit`] once per task in policy order, but
    /// the temp schedule is built in one resumable pass over
    /// `waiting ∪ batch` instead of once per candidate:
    ///
    /// * a failing **batch** member is simply skipped — tasks planned before
    ///   it never saw it, and its removal can only help tasks planned after
    ///   it, so the pass continues in place;
    /// * a failing **waiting** member means an earlier-deadline batch member
    ///   pushed an already-admitted task out — the most recently planned
    ///   batch member is provisionally evicted and the pass *rewinds to its
    ///   checkpoint* (releases and plans as they stood just before it was
    ///   planned) rather than restarting. Because that eviction choice is a
    ///   heuristic, every evicted member gets one final individual re-test
    ///   against the settled queue before being rejected — so the batch
    ///   never rejects a task the per-task path would have admitted into
    ///   the same final queue. With an empty waiting queue the pass is a
    ///   single linear sweep and exactly equivalent to sequential
    ///   policy-order submission.
    ///
    /// The pass works entirely on scratch state: the committed release
    /// vector and the installed plans are only replaced after the whole
    /// batch has settled, so a mid-batch rejection (or wholesale failure)
    /// can never leave a rejected member's tentative dispatch visible in
    /// [`committed_releases`](AdmissionController::committed_releases).
    ///
    /// If the waiting queue *by itself* cannot be replanned at `now` (the
    /// same non-monotonicity that can make [`replan`] fail), the whole
    /// batch is rejected and the existing plans are kept — matching what
    /// each individual [`submit`] would have done.
    ///
    /// Returns one [`Decision`] per batch entry, in input order.
    ///
    /// [`submit`]: AdmissionController::submit
    /// [`replan`]: AdmissionController::replan
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<Decision> {
        if batch.is_empty() {
            return Vec::new();
        }
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        let waiting_ids: HashSet<TaskId> = waiting.iter().map(|t| t.id).collect();
        let mut ordered: Vec<Task> = waiting;
        ordered.extend_from_slice(batch);
        self.algorithm.policy.sort(&mut ordered);

        /// Rewind point recorded before each planned batch member.
        struct Checkpoint {
            ordered_idx: usize,
            releases: Vec<SimTime>,
            plans_len: usize,
        }

        let mut decisions: Vec<Option<Decision>> = vec![None; batch.len()];
        let mut skipped: HashSet<TaskId> = HashSet::new();
        // Members evicted by a rollback (as opposed to failing their own
        // plan); they get a final individual re-test below.
        let mut evicted_by_rollback: Vec<Task> = Vec::new();
        let mut releases = self.releases.clone();
        let mut plans: Vec<TaskPlan> = Vec::with_capacity(ordered.len());
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let batch_index = |id: TaskId| batch.iter().position(|b| b.id == id).expect("member");

        let mut i = 0;
        while i < ordered.len() {
            let task = ordered[i];
            if skipped.contains(&task.id) {
                i += 1;
                continue;
            }
            let is_batch = !waiting_ids.contains(&task.id);
            let avail = NodeAvailability::new(&releases, now);
            match plan_task(
                self.algorithm.strategy,
                &task,
                &avail,
                &self.params,
                &self.cfg,
            ) {
                Ok(plan) => {
                    if is_batch {
                        checkpoints.push(Checkpoint {
                            ordered_idx: i,
                            releases: releases.clone(),
                            plans_len: plans.len(),
                        });
                    }
                    for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                        releases[node.index()] = rel;
                    }
                    plans.push(plan);
                    i += 1;
                }
                Err(reason) if is_batch => {
                    decisions[batch_index(task.id)] = Some(Decision::Rejected(reason));
                    skipped.insert(task.id);
                    i += 1;
                }
                Err(reason) => {
                    // A previously admitted task lost feasibility.
                    match checkpoints.pop() {
                        Some(ck) => {
                            // Evict the most recently planned batch member
                            // (top checkpoint) and replan the suffix from
                            // its position.
                            let evicted = ordered[ck.ordered_idx];
                            decisions[batch_index(evicted.id)] = Some(Decision::Rejected(reason));
                            skipped.insert(evicted.id);
                            evicted_by_rollback.push(evicted);
                            releases = ck.releases;
                            plans.truncate(ck.plans_len);
                            i = ck.ordered_idx;
                        }
                        None => {
                            // No batch member precedes the failing waiting
                            // task: the waiting queue alone cannot be
                            // replanned at `now` (the FixedPoint ñ_min
                            // non-monotonicity — see `replan`). Every
                            // per-task submit would fail the same way, so
                            // reject the whole batch and keep the current
                            // plans untouched.
                            for d in decisions.iter_mut() {
                                if d.is_none() {
                                    *d = Some(Decision::Rejected(reason));
                                }
                            }
                            return decisions.into_iter().map(|d| d.expect("decided")).collect();
                        }
                    }
                }
            }
        }
        for (idx, d) in decisions.iter_mut().enumerate() {
            if d.is_none() {
                debug_assert!(plans.iter().any(|p| p.task == batch[idx].id));
                *d = Some(Decision::Accepted);
            }
        }
        self.queue.clear();
        let mut by_id: Vec<(TaskId, Task)> = ordered
            .into_iter()
            .filter(|t| !skipped.contains(&t.id))
            .map(|t| (t.id, t))
            .collect();
        for plan in plans {
            let pos = by_id
                .iter()
                .position(|(id, _)| *id == plan.task)
                .expect("plan for unknown task");
            let (_, task) = by_id.swap_remove(pos);
            self.queue.push((task, plan));
        }
        // Rollback evictions picked a culprit heuristically; give each
        // evicted member one individual shot at the settled queue so no
        // task is rejected that the per-task path would have admitted.
        self.algorithm.policy.sort(&mut evicted_by_rollback);
        for task in evicted_by_rollback {
            if self.submit(task, now).is_accepted() {
                decisions[batch_index(task.id)] = Some(Decision::Accepted);
            }
        }
        decisions.into_iter().map(|d| d.expect("decided")).collect()
    }

    /// The committed work outstanding at `now`, in node-time units. See
    /// [`Admission::backlog`].
    pub fn backlog(&self, now: SimTime) -> f64 {
        Admission::backlog(self, now)
    }

    /// The earliest instant `t ≥ now` at which `task` would be admitted,
    /// assuming no further arrivals: the release-vector-driven search over
    /// the queue's dispatch instants (see
    /// [`earliest_feasible_start_search`](super::earliest_feasible_start_search)).
    /// Non-mutating; `Some(now)` iff [`probe`](AdmissionController::probe)
    /// accepts right now.
    pub fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        super::earliest_feasible_start_search(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &self.queue,
            task,
        )
    }

    /// Re-plans the waiting queue against the current committed releases
    /// (used when nodes free up earlier than estimated, letting waiting
    /// tasks "utilize a processor as soon as it becomes available").
    ///
    /// Admitted tasks were feasible under release times that can only have
    /// moved *earlier*; failure therefore indicates a broken invariant and is
    /// surfaced as an error rather than silently dropping a guarantee.
    pub fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        let plans = schedulability_test(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &waiting,
            None,
        )?;
        self.install(plans, waiting, None);
        Ok(())
    }

    /// Rebuilds the queue from plans returned in policy order.
    fn install(&mut self, plans: Vec<TaskPlan>, waiting: Vec<Task>, new_task: Option<Task>) {
        let mut by_id: Vec<(TaskId, Task)> = waiting
            .into_iter()
            .chain(new_task)
            .map(|t| (t.id, t))
            .collect();
        self.queue.clear();
        for plan in plans {
            let pos = by_id
                .iter()
                .position(|(id, _)| *id == plan.task)
                .expect("plan for unknown task");
            let (_, task) = by_id.swap_remove(pos);
            self.queue.push((task, plan));
        }
        debug_assert!(by_id.is_empty(), "every waiting task must be planned");
    }

    /// The earliest planned first-transmission instant across the waiting
    /// queue — when the next dispatch is due (if plans do not change first).
    pub fn next_dispatch_due(&self) -> Option<SimTime> {
        self.queue.iter().map(|(_, p)| p.first_start()).min()
    }

    /// Removes and returns every waiting task whose plan is due at `now`
    /// (first transmission start ≤ `now` within tolerance), committing its
    /// node release estimates. The simulator then executes the plans exactly.
    ///
    /// Returns tasks in execution order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        let mut due = Vec::new();
        // A dispatch changes committed releases, which can only delay other
        // waiting plans' nodes — but those plans were computed against these
        // very release estimates, so plans due at `now` stay valid. Retain
        // execution order by scanning front to back.
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].1.first_start().at_or_before_eps(now) {
                let (task, plan) = self.queue.remove(i);
                for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                    self.releases[node.index()] = rel;
                }
                due.push((task, plan));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Overrides one node's committed release time with an *actual* value
    /// (e.g. the exact completion computed at dispatch, or an early release).
    pub fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.releases[node] = time;
    }

    /// Removes one waiting task (with its plan) from the queue without
    /// touching committed releases — a waiting plan reserves nothing until
    /// dispatch, so removal is always safe for the remaining plans (they
    /// assumed *more* occupancy, never less). Recovery uses this to demote a
    /// no-longer-feasible task instead of breaking other guarantees.
    pub fn remove_waiting(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.queue.iter().position(|(t, _)| t.id == id)?;
        let (task, _) = self.queue.remove(pos);
        Some(task)
    }

    /// Snapshots the complete controller state for journaling.
    pub fn state(&self) -> ControllerState {
        ControllerState {
            params: self.params,
            algorithm: self.algorithm,
            cfg: self.cfg,
            releases: self.releases.clone(),
            queue: self.queue.clone(),
        }
    }

    /// Rebuilds a controller from a journaled state. The inverse of
    /// [`state`](AdmissionController::state): `from_state(c.state())`
    /// compares equal to `c` in every observable way. Errors when the
    /// release vector does not match the cluster shape.
    pub fn from_state(state: ControllerState) -> Result<Self, crate::error::ModelError> {
        state.validate()?;
        Ok(AdmissionController {
            params: state.params,
            algorithm: state.algorithm,
            cfg: state.cfg,
            releases: state.releases,
            queue: state.queue,
        })
    }
}

impl Admission for AdmissionController {
    const NAME: &'static str = "full";

    fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self {
        AdmissionController::new(params, algorithm, cfg)
    }

    fn params(&self) -> &ClusterParams {
        AdmissionController::params(self)
    }

    fn algorithm(&self) -> AlgorithmKind {
        AdmissionController::algorithm(self)
    }

    fn config(&self) -> &PlanConfig {
        AdmissionController::config(self)
    }

    fn committed_releases(&self) -> &[SimTime] {
        AdmissionController::committed_releases(self)
    }

    fn queue(&self) -> &[(Task, TaskPlan)] {
        AdmissionController::queue(self)
    }

    fn submit(&mut self, task: Task, now: SimTime) -> Decision {
        AdmissionController::submit(self, task, now)
    }

    fn probe_plan(&self, task: &Task, now: SimTime) -> Result<TaskPlan, AdmissionFailure> {
        AdmissionController::probe_plan(self, task, now)
    }

    fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<Decision> {
        AdmissionController::submit_batch(self, batch, now)
    }

    fn earliest_feasible_start(&self, task: &Task, now: SimTime) -> Option<SimTime> {
        AdmissionController::earliest_feasible_start(self, task, now)
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        AdmissionController::replan(self, now)
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        AdmissionController::take_due(self, now)
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        AdmissionController::set_node_release(self, node, time)
    }

    fn remove_waiting(&mut self, id: TaskId) -> Option<Task> {
        AdmissionController::remove_waiting(self, id)
    }

    fn state(&self) -> ControllerState {
        AdmissionController::state(self)
    }

    fn from_state(state: ControllerState) -> Result<Self, crate::error::ModelError> {
        AdmissionController::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlt::homogeneous;

    fn params() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    fn ctl(algorithm: AlgorithmKind) -> AdmissionController {
        AdmissionController::new(params(), algorithm, PlanConfig::default())
    }

    fn task(id: u64, arrival: f64, sigma: f64, rel_deadline: f64) -> Task {
        Task::new(id, arrival, sigma, rel_deadline)
    }

    #[test]
    fn empty_cluster_accepts_feasible_task() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let t = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.next_dispatch_due(), Some(SimTime::ZERO));
    }

    #[test]
    fn impossible_deadline_is_rejected_and_queue_untouched() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let ok = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(ok, SimTime::ZERO).is_accepted());
        // Deadline below the transmission time: hopeless.
        let bad = task(2, 0.0, 200.0, 100.0);
        let d = c.submit(bad, SimTime::ZERO);
        assert_eq!(d, Decision::Rejected(Infeasible::NoTimeForTransmission));
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.queue()[0].0.id, TaskId(1));
    }

    #[test]
    fn overload_rejects_newcomer_but_keeps_admitted() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        // Fill the cluster with tasks whose deadlines are snug.
        let mut admitted = 0;
        for i in 0..50 {
            let t = task(i, 0.0, 800.0, e16 * 3.0);
            if c.submit(t, SimTime::ZERO).is_accepted() {
                admitted += 1;
            }
        }
        assert!(admitted >= 1, "at least the first task fits");
        assert!(
            admitted < 50,
            "an overloaded cluster must reject eventually"
        );
        assert_eq!(c.queue_len(), admitted as usize);
    }

    #[test]
    fn edf_admits_urgent_task_ahead_of_loose_queue() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        // A loose task first…
        assert!(c
            .submit(task(1, 0.0, 200.0, e16 * 50.0), SimTime::ZERO)
            .is_accepted());
        // …then an urgent one; EDF must reorder so it is planned first.
        assert!(c
            .submit(task(2, 0.0, 200.0, e16 * 1.5), SimTime::ZERO)
            .is_accepted());
        assert_eq!(
            c.queue()[0].0.id,
            TaskId(2),
            "EDF puts the urgent task first"
        );
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut c = ctl(AlgorithmKind::FIFO_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        assert!(c
            .submit(task(1, 0.0, 200.0, e16 * 50.0), SimTime::ZERO)
            .is_accepted());
        assert!(c
            .submit(task(2, 1.0, 200.0, e16 * 2.0), SimTime::new(1.0))
            .is_accepted());
        assert_eq!(c.queue()[0].0.id, TaskId(1));
    }

    #[test]
    fn take_due_commits_release_estimates() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let t = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        let due = c.take_due(SimTime::ZERO);
        assert_eq!(due.len(), 1);
        assert_eq!(c.queue_len(), 0);
        let plan = &due[0].1;
        for (node, rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
            assert_eq!(c.committed_releases()[node.index()], *rel);
        }
        // Nothing else due.
        assert!(c.take_due(SimTime::new(1.0)).is_empty());
        assert_eq!(c.next_dispatch_due(), None);
    }

    #[test]
    fn replan_after_early_release_improves_start() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        // Occupy the committed releases artificially.
        for i in 0..16 {
            c.set_node_release(i, SimTime::new(1_000.0));
        }
        let t = task(1, 0.0, 200.0, 1_000_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        let before = c.queue()[0].1.est_completion;
        // Nodes free early: releases drop to 500.
        for i in 0..16 {
            c.set_node_release(i, SimTime::new(500.0));
        }
        c.replan(SimTime::new(500.0)).unwrap();
        let after = c.queue()[0].1.est_completion;
        assert!(after < before, "earlier releases must not delay completion");
        let e = homogeneous::exec_time(&p, 200.0, c.queue()[0].1.n());
        assert!((after.as_f64() - (500.0 + e)).abs() < 1e-6);
    }

    #[test]
    fn replan_with_empty_queue_is_noop() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        c.replan(SimTime::new(42.0)).unwrap();
        assert_eq!(c.queue_len(), 0);
    }

    #[test]
    fn batch_on_empty_queue_matches_sequential() {
        let burst: Vec<Task> = (0..10)
            .map(|i| task(i, 0.0, 300.0, 4_000.0 + (i % 4) as f64 * 3_000.0))
            .collect();
        let mut batched = ctl(AlgorithmKind::EDF_DLT);
        let decisions = batched.submit_batch(&burst, SimTime::ZERO);
        let mut sequential = ctl(AlgorithmKind::EDF_DLT);
        let mut ordered = burst.clone();
        crate::policy::Policy::Edf.sort(&mut ordered);
        for t in &ordered {
            sequential.submit(*t, SimTime::ZERO);
        }
        let ids = |c: &AdmissionController| -> Vec<u64> {
            c.queue().iter().map(|(t, _)| t.id.0).collect()
        };
        assert_eq!(ids(&batched), ids(&sequential));
        assert_eq!(
            decisions.iter().filter(|d| d.is_accepted()).count(),
            sequential.queue_len()
        );
    }

    #[test]
    fn batch_rollback_recovers_the_innocent_member() {
        // Waiting task W is snug on 8 nodes. Batch member M1 (earliest
        // deadline, whole cluster) starves W; member M2 (tiny, deadline in
        // between) is harmless. The rollback heuristic evicts M2 first, but
        // the final individual re-test must bring it back: sequential
        // policy-order submission rejects only M1.
        let p = params();
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let w = task(1, 0.0, 400.0, e8 * 1.005);
        assert!(c.submit(w, SimTime::ZERO).is_accepted());
        let m1 = task(2, 0.0, 400.0, e16 * 1.05);
        let m2 = task(3, 0.0, 10.0, e8 * 0.8);
        let decisions = c.submit_batch(&[m1, m2], SimTime::ZERO);
        assert!(
            !decisions[0].is_accepted(),
            "M1 starves the waiting task and must be rejected"
        );
        assert!(
            decisions[1].is_accepted(),
            "M2 is innocent and must survive the rollback: {decisions:?}"
        );
        let ids: Vec<u64> = c.queue().iter().map(|(t, _)| t.id.0).collect();
        assert!(
            ids.contains(&1) && ids.contains(&3) && !ids.contains(&2),
            "{ids:?}"
        );
        // And the exact same outcome sequentially.
        let mut s = ctl(AlgorithmKind::EDF_DLT);
        assert!(s.submit(w, SimTime::ZERO).is_accepted());
        assert!(!s.submit(m1, SimTime::ZERO).is_accepted());
        assert!(s.submit(m2, SimTime::ZERO).is_accepted());
    }

    #[test]
    fn batch_rejects_all_when_waiting_queue_cannot_replan() {
        // The waiting task's deadline has passed by the time the batch
        // arrives: replanning the queue alone is infeasible, so the batch
        // must be rejected wholesale and the existing plan kept.
        let p = params();
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let w = task(1, 0.0, 400.0, e16 * 1.05);
        assert!(c.submit(w, SimTime::ZERO).is_accepted());
        let plan_before = c.queue()[0].1.clone();
        let late = SimTime::new(e16 * 3.0);
        let decisions = c.submit_batch(&[task(2, late.as_f64(), 50.0, 1e9)], late);
        assert_eq!(decisions.len(), 1);
        assert!(!decisions[0].is_accepted());
        assert_eq!(c.queue_len(), 1, "waiting task must keep its plan");
        assert_eq!(c.queue()[0].1, plan_before);
    }

    #[test]
    fn mid_batch_rejection_leaves_committed_releases_untouched() {
        // Regression guard for the checkpoint-rewind path: a batch with a
        // member rejected at an index k < len-1 (here the first member,
        // evicted by the rollback when the waiting task loses feasibility)
        // must not leak that member's tentative release updates into the
        // committed vector — committed releases only ever reflect real
        // dispatches.
        let p = params();
        let e8 = homogeneous::exec_time(&p, 400.0, 8);
        let e16 = homogeneous::exec_time(&p, 400.0, 16);
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        // Commit real work first: a small dispatched task occupies nodes.
        assert!(c
            .submit(task(10, 0.0, 50.0, 1e6), SimTime::ZERO)
            .is_accepted());
        let _ = c.take_due(SimTime::ZERO);
        let committed_before = c.committed_releases().to_vec();
        // A snug waiting task, then a batch whose first member starves it
        // (rejected via rollback at index 0 of 2) while the second fits.
        let w = task(1, 0.0, 400.0, e8 * 1.05 + committed_before[0].as_f64());
        let _ = c.submit(w, SimTime::ZERO);
        let queue_before = c.queue_len();
        let m1 = task(2, 0.0, 400.0, e16 * 1.05);
        let m2 = task(3, 0.0, 10.0, e8 + 10_000.0);
        let decisions = c.submit_batch(&[m1, m2], SimTime::ZERO);
        assert!(
            decisions.iter().any(|d| !d.is_accepted()),
            "scenario must reject at least one mid-batch member: {decisions:?}"
        );
        assert!(c.queue_len() >= queue_before, "waiting tasks survive");
        assert_eq!(
            c.committed_releases(),
            committed_before.as_slice(),
            "a rejected batch member's tentative dispatch leaked into \
             committed releases"
        );
        // Wholesale-failure path too: an un-replannable queue rejects the
        // whole batch without touching the committed vector.
        let late = SimTime::new(1e8);
        let ds = c.submit_batch(&[task(4, late.as_f64(), 50.0, 1e9)], late);
        if ds.iter().any(|d| !d.is_accepted()) {
            assert_eq!(c.committed_releases(), committed_before.as_slice());
        }
    }

    #[test]
    fn probe_matches_submit_without_mutation() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let t1 = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.probe(&t1, SimTime::ZERO).is_accepted());
        assert_eq!(c.queue_len(), 0, "probe must not install");
        assert!(c.submit(t1, SimTime::ZERO).is_accepted());
        let hopeless = task(2, 0.0, 200.0, 100.0);
        assert_eq!(
            c.probe(&hopeless, SimTime::ZERO),
            Decision::Rejected(Infeasible::NoTimeForTransmission)
        );
        // probe_plan returns the candidate's own plan.
        let t3 = task(3, 0.0, 100.0, 40_000.0);
        let plan = c.probe_plan(&t3, SimTime::ZERO).unwrap();
        assert_eq!(plan.task, t3.id);
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn backlog_tracks_committed_and_waiting_demand() {
        let p = params();
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        assert_eq!(c.backlog(SimTime::ZERO), 0.0);
        let t1 = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(t1, SimTime::ZERO).is_accepted());
        let expected = 200.0 * (p.cms + p.cps);
        assert!((c.backlog(SimTime::ZERO) - expected).abs() < 1e-9);
        // Dispatch: demand moves from the waiting term to committed releases.
        let _ = c.take_due(SimTime::ZERO);
        assert!(c.backlog(SimTime::ZERO) > 0.0);
        assert_eq!(c.backlog(SimTime::new(1e9)), 0.0, "far future: all drained");
    }

    #[test]
    fn user_split_controller_respects_user_counts() {
        let mut c = ctl(AlgorithmKind::EDF_USER_SPLIT);
        let t = task(1, 0.0, 200.0, 30_000.0).with_user_nodes(Some(5));
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        assert_eq!(c.queue()[0].1.n(), 5);
        // A task whose user gave up (no feasible count) is rejected.
        let t = task(2, 0.0, 200.0, 30_000.0);
        assert_eq!(
            c.submit(t, SimTime::ZERO),
            Decision::Rejected(Infeasible::UserRequestInfeasible)
        );
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        assert!(c
            .submit(task(1, 0.0, 200.0, 30_000.0), SimTime::ZERO)
            .is_accepted());
        assert!(c
            .submit(task(2, 5.0, 400.0, 60_000.0), SimTime::new(5.0))
            .is_accepted());
        let _ = c.take_due(SimTime::ZERO);
        let state = c.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ControllerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let restored = AdmissionController::from_state(back).unwrap();
        assert_eq!(restored.queue(), c.queue());
        assert_eq!(restored.committed_releases(), c.committed_releases());
        assert_eq!(restored.algorithm(), c.algorithm());
        // The restored controller keeps deciding identically.
        let probe = task(3, 10.0, 100.0, 40_000.0);
        assert_eq!(
            restored.probe(&probe, SimTime::new(10.0)),
            c.probe(&probe, SimTime::new(10.0))
        );
    }

    #[test]
    fn from_state_rejects_inconsistent_shapes() {
        let c = ctl(AlgorithmKind::EDF_DLT);
        let mut bad = c.state();
        bad.releases.pop();
        assert!(AdmissionController::from_state(bad).is_err());
        let mut c2 = ctl(AlgorithmKind::EDF_DLT);
        assert!(c2
            .submit(task(1, 0.0, 200.0, 30_000.0), SimTime::ZERO)
            .is_accepted());
        let mut bad = c2.state();
        bad.queue[0].0 = task(9, 0.0, 200.0, 30_000.0);
        assert!(AdmissionController::from_state(bad).is_err());
    }

    #[test]
    fn remove_waiting_detaches_task_and_keeps_rest_feasible() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        assert!(c
            .submit(task(1, 0.0, 200.0, 30_000.0), SimTime::ZERO)
            .is_accepted());
        assert!(c
            .submit(task(2, 0.0, 300.0, 60_000.0), SimTime::ZERO)
            .is_accepted());
        assert_eq!(c.remove_waiting(TaskId(99)), None);
        let removed = c.remove_waiting(TaskId(1)).unwrap();
        assert_eq!(removed.id, TaskId(1));
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.queue()[0].0.id, TaskId(2));
        // The survivor replans fine (it only gained room).
        c.replan(SimTime::ZERO).unwrap();
        assert_eq!(c.queue_len(), 1);
    }
}
