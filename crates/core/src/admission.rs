//! The schedulability test and admission controller (Fig. 2 of the paper).
//!
//! On each task arrival the scheduler decides, *online*, whether the new task
//! can be admitted without compromising any previously admitted task. The
//! test rebuilds a tentative schedule ("TempSchedule") for the waiting queue
//! plus the newcomer: tasks are taken in policy order, each is planned by the
//! configured strategy against the evolving node-release vector, and any
//! estimated deadline miss fails the whole test — the newcomer is rejected
//! and the previously feasible plans are kept.
//!
//! Rejection here corresponds to the paper's deadline renegotiation footnote:
//! the cluster proxy would bounce the job back to the client with modified
//! parameters; from the scheduler's perspective the task simply leaves.

use serde::{Deserialize, Serialize};

use crate::algorithm::AlgorithmKind;
use crate::error::Infeasible;
use crate::params::ClusterParams;
use crate::strategy::{plan_task, NodeAvailability, PlanConfig, TaskPlan};
use crate::task::{Task, TaskId};
use crate::time::SimTime;

/// Why (and for which task) a schedulability test failed.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdmissionFailure {
    /// The first task in policy order that could not be feasibly planned.
    pub task: TaskId,
    /// The planning-level reason.
    pub reason: Infeasible,
}

impl core::fmt::Display for AdmissionFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task {:?} infeasible: {}", self.task, self.reason)
    }
}

impl std::error::Error for AdmissionFailure {}

// `Infeasible` is re-serialized through AdmissionFailure in results output.
impl Serialize for Infeasible {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Infeasible {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        // Round-trip by display string; unknown strings map to the generic
        // rejection cause. Only used for result-file ingestion.
        let s = String::deserialize(d)?;
        Ok(match s.as_str() {
            "deadline passes before any node is available" => Infeasible::DeadlineBeforeStart,
            "not enough time to transmit the input data" => Infeasible::NoTimeForTransmission,
            "no node count within the cluster meets the deadline" => Infeasible::NotEnoughNodes,
            "user-split node request cannot meet the deadline" => {
                Infeasible::UserRequestInfeasible
            }
            _ => Infeasible::CompletionAfterDeadline,
        })
    }
}

/// Runs the Fig. 2 schedulability test.
///
/// * `now` — the planning instant (the newcomer's arrival, or the current
///   event time for a replanning pass).
/// * `committed_releases` — per-node release times of *dispatched* work only
///   (index = node id); waiting tasks are replanned from scratch.
/// * `waiting` — currently admitted but undispatched tasks, any order.
/// * `candidate` — the newly arrived task, or `None` for a replanning pass.
///
/// On success returns the feasible plans in policy (execution) order.
///
/// ```
/// use rtdls_core::prelude::*;
///
/// let params = ClusterParams::paper_baseline();
/// let idle = vec![SimTime::ZERO; params.num_nodes];
/// let task = Task::new(1, 0.0, 200.0, 30_000.0);
/// let plans = schedulability_test(
///     &params,
///     AlgorithmKind::EDF_DLT,
///     &PlanConfig::default(),
///     SimTime::ZERO,
///     &idle,
///     &[],          // empty waiting queue
///     Some(&task),
/// )
/// .unwrap();
/// assert_eq!(plans.len(), 1);
/// assert!(!plans[0].est_completion.definitely_after(task.absolute_deadline()));
/// ```
pub fn schedulability_test(
    params: &ClusterParams,
    algorithm: AlgorithmKind,
    cfg: &PlanConfig,
    now: SimTime,
    committed_releases: &[SimTime],
    waiting: &[Task],
    candidate: Option<&Task>,
) -> Result<Vec<TaskPlan>, AdmissionFailure> {
    debug_assert_eq!(committed_releases.len(), params.num_nodes);
    let mut tasks: Vec<Task> = Vec::with_capacity(waiting.len() + 1);
    tasks.extend_from_slice(waiting);
    if let Some(t) = candidate {
        tasks.push(*t);
    }
    algorithm.policy.sort(&mut tasks);

    let mut releases = committed_releases.to_vec();
    let mut plans = Vec::with_capacity(tasks.len());
    for task in &tasks {
        let avail = NodeAvailability::new(&releases, now);
        let plan = plan_task(algorithm.strategy, task, &avail, params, cfg)
            .map_err(|reason| AdmissionFailure { task: task.id, reason })?;
        debug_assert!(
            !plan.est_completion.definitely_after(task.absolute_deadline()),
            "strategy returned a plan missing its deadline"
        );
        for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
            releases[node.index()] = rel;
        }
        plans.push(plan);
    }
    Ok(plans)
}

/// The outcome of submitting a task to the [`AdmissionController`].
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Admitted; the waiting queue was replanned and remains feasible.
    Accepted,
    /// Rejected; previously admitted tasks keep their plans.
    Rejected(Infeasible),
}

impl Decision {
    /// `true` if the task was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Decision::Accepted)
    }
}

/// Stateful admission layer: the head node's view of the waiting queue, the
/// committed node releases, and the current feasible plans.
///
/// This type is clock-agnostic — callers (the discrete-event simulator, or a
/// real dispatcher) drive it with explicit times. Invariants:
///
/// * every waiting task has a plan whose estimate meets its deadline;
/// * plans are kept in policy order (`plans()[0]` executes first);
/// * committed releases only ever refer to dispatched work.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    params: ClusterParams,
    algorithm: AlgorithmKind,
    cfg: PlanConfig,
    /// Per-node release time of committed (dispatched) work.
    releases: Vec<SimTime>,
    /// Waiting tasks with their current plans, in policy order.
    queue: Vec<(Task, TaskPlan)>,
}

impl AdmissionController {
    /// A controller for an idle cluster (all nodes available at time zero).
    pub fn new(params: ClusterParams, algorithm: AlgorithmKind, cfg: PlanConfig) -> Self {
        AdmissionController {
            params,
            algorithm,
            cfg,
            releases: vec![SimTime::ZERO; params.num_nodes],
            queue: Vec::new(),
        }
    }

    /// The algorithm this controller runs.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// Cluster parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Committed per-node release times (index = node id).
    pub fn committed_releases(&self) -> &[SimTime] {
        &self.releases
    }

    /// Current waiting tasks and plans, in execution order.
    pub fn queue(&self) -> &[(Task, TaskPlan)] {
        &self.queue
    }

    /// Number of waiting (admitted, undispatched) tasks.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Runs the schedulability test for a newly arrived task at time `now`
    /// (normally `task.arrival`). On acceptance the whole waiting queue is
    /// re-planned; on rejection nothing changes.
    pub fn submit(&mut self, task: Task, now: SimTime) -> Decision {
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        match schedulability_test(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &waiting,
            Some(&task),
        ) {
            Ok(plans) => {
                self.install(plans, waiting, Some(task));
                Decision::Accepted
            }
            Err(f) => Decision::Rejected(f.reason),
        }
    }

    /// Re-plans the waiting queue against the current committed releases
    /// (used when nodes free up earlier than estimated, letting waiting
    /// tasks "utilize a processor as soon as it becomes available").
    ///
    /// Admitted tasks were feasible under release times that can only have
    /// moved *earlier*; failure therefore indicates a broken invariant and is
    /// surfaced as an error rather than silently dropping a guarantee.
    pub fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let waiting: Vec<Task> = self.queue.iter().map(|(t, _)| *t).collect();
        let plans = schedulability_test(
            &self.params,
            self.algorithm,
            &self.cfg,
            now,
            &self.releases,
            &waiting,
            None,
        )?;
        self.install(plans, waiting, None);
        Ok(())
    }

    /// Rebuilds the queue from plans returned in policy order.
    fn install(&mut self, plans: Vec<TaskPlan>, waiting: Vec<Task>, new_task: Option<Task>) {
        let mut by_id: Vec<(TaskId, Task)> = waiting
            .into_iter()
            .chain(new_task)
            .map(|t| (t.id, t))
            .collect();
        self.queue.clear();
        for plan in plans {
            let pos = by_id
                .iter()
                .position(|(id, _)| *id == plan.task)
                .expect("plan for unknown task");
            let (_, task) = by_id.swap_remove(pos);
            self.queue.push((task, plan));
        }
        debug_assert!(by_id.is_empty(), "every waiting task must be planned");
    }

    /// The earliest planned first-transmission instant across the waiting
    /// queue — when the next dispatch is due (if plans do not change first).
    pub fn next_dispatch_due(&self) -> Option<SimTime> {
        self.queue.iter().map(|(_, p)| p.first_start()).min()
    }

    /// Removes and returns every waiting task whose plan is due at `now`
    /// (first transmission start ≤ `now` within tolerance), committing its
    /// node release estimates. The simulator then executes the plans exactly.
    ///
    /// Returns tasks in execution order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        let mut due = Vec::new();
        // A dispatch changes committed releases, which can only delay other
        // waiting plans' nodes — but those plans were computed against these
        // very release estimates, so plans due at `now` stay valid. Retain
        // execution order by scanning front to back.
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].1.first_start().at_or_before_eps(now) {
                let (task, plan) = self.queue.remove(i);
                for (node, &rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
                    self.releases[node.index()] = rel;
                }
                due.push((task, plan));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Overrides one node's committed release time with an *actual* value
    /// (e.g. the exact completion computed at dispatch, or an early release).
    pub fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.releases[node] = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlt::homogeneous;

    fn params() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    fn ctl(algorithm: AlgorithmKind) -> AdmissionController {
        AdmissionController::new(params(), algorithm, PlanConfig::default())
    }

    fn task(id: u64, arrival: f64, sigma: f64, rel_deadline: f64) -> Task {
        Task::new(id, arrival, sigma, rel_deadline)
    }

    #[test]
    fn empty_cluster_accepts_feasible_task() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let t = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.next_dispatch_due(), Some(SimTime::ZERO));
    }

    #[test]
    fn impossible_deadline_is_rejected_and_queue_untouched() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let ok = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(ok, SimTime::ZERO).is_accepted());
        // Deadline below the transmission time: hopeless.
        let bad = task(2, 0.0, 200.0, 100.0);
        let d = c.submit(bad, SimTime::ZERO);
        assert_eq!(d, Decision::Rejected(Infeasible::NoTimeForTransmission));
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.queue()[0].0.id, TaskId(1));
    }

    #[test]
    fn overload_rejects_newcomer_but_keeps_admitted() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 800.0, 16);
        // Fill the cluster with tasks whose deadlines are snug.
        let mut admitted = 0;
        for i in 0..50 {
            let t = task(i, 0.0, 800.0, e16 * 3.0);
            if c.submit(t, SimTime::ZERO).is_accepted() {
                admitted += 1;
            }
        }
        assert!(admitted >= 1, "at least the first task fits");
        assert!(admitted < 50, "an overloaded cluster must reject eventually");
        assert_eq!(c.queue_len(), admitted as usize);
    }

    #[test]
    fn edf_admits_urgent_task_ahead_of_loose_queue() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        // A loose task first…
        assert!(c.submit(task(1, 0.0, 200.0, e16 * 50.0), SimTime::ZERO).is_accepted());
        // …then an urgent one; EDF must reorder so it is planned first.
        assert!(c.submit(task(2, 0.0, 200.0, e16 * 1.5), SimTime::ZERO).is_accepted());
        assert_eq!(c.queue()[0].0.id, TaskId(2), "EDF puts the urgent task first");
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut c = ctl(AlgorithmKind::FIFO_DLT);
        let p = params();
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        assert!(c.submit(task(1, 0.0, 200.0, e16 * 50.0), SimTime::ZERO).is_accepted());
        assert!(c.submit(task(2, 1.0, 200.0, e16 * 2.0), SimTime::new(1.0)).is_accepted());
        assert_eq!(c.queue()[0].0.id, TaskId(1));
    }

    #[test]
    fn take_due_commits_release_estimates() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let t = task(1, 0.0, 200.0, 30_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        let due = c.take_due(SimTime::ZERO);
        assert_eq!(due.len(), 1);
        assert_eq!(c.queue_len(), 0);
        let plan = &due[0].1;
        for (node, rel) in plan.nodes.iter().zip(&plan.node_release_estimates) {
            assert_eq!(c.committed_releases()[node.index()], *rel);
        }
        // Nothing else due.
        assert!(c.take_due(SimTime::new(1.0)).is_empty());
        assert_eq!(c.next_dispatch_due(), None);
    }

    #[test]
    fn replan_after_early_release_improves_start() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        let p = params();
        // Occupy the committed releases artificially.
        for i in 0..16 {
            c.set_node_release(i, SimTime::new(1_000.0));
        }
        let t = task(1, 0.0, 200.0, 1_000_000.0);
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        let before = c.queue()[0].1.est_completion;
        // Nodes free early: releases drop to 500.
        for i in 0..16 {
            c.set_node_release(i, SimTime::new(500.0));
        }
        c.replan(SimTime::new(500.0)).unwrap();
        let after = c.queue()[0].1.est_completion;
        assert!(after < before, "earlier releases must not delay completion");
        let e = homogeneous::exec_time(&p, 200.0, c.queue()[0].1.n());
        assert!((after.as_f64() - (500.0 + e)).abs() < 1e-6);
    }

    #[test]
    fn replan_with_empty_queue_is_noop() {
        let mut c = ctl(AlgorithmKind::EDF_DLT);
        c.replan(SimTime::new(42.0)).unwrap();
        assert_eq!(c.queue_len(), 0);
    }

    #[test]
    fn user_split_controller_respects_user_counts() {
        let mut c = ctl(AlgorithmKind::EDF_USER_SPLIT);
        let t = task(1, 0.0, 200.0, 30_000.0).with_user_nodes(Some(5));
        assert!(c.submit(t, SimTime::ZERO).is_accepted());
        assert_eq!(c.queue()[0].1.n(), 5);
        // A task whose user gave up (no feasible count) is rejected.
        let t = task(2, 0.0, 200.0, 30_000.0);
        assert_eq!(
            c.submit(t, SimTime::ZERO),
            Decision::Rejected(Infeasible::UserRequestInfeasible)
        );
    }

    #[test]
    fn schedulability_test_is_pure() {
        // Direct use of the free function: same inputs, same outputs, no
        // hidden state.
        let p = params();
        let releases = vec![SimTime::ZERO; 16];
        let t = task(1, 0.0, 200.0, 30_000.0);
        let a = schedulability_test(
            &p,
            AlgorithmKind::EDF_DLT,
            &PlanConfig::default(),
            SimTime::ZERO,
            &releases,
            &[],
            Some(&t),
        )
        .unwrap();
        let b = schedulability_test(
            &p,
            AlgorithmKind::EDF_DLT,
            &PlanConfig::default(),
            SimTime::ZERO,
            &releases,
            &[],
            Some(&t),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
