//! Error types for model construction and planning.

use core::fmt;

/// Errors raised when constructing model objects from invalid inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A parameter failed validation; the message names the constraint.
    InvalidParams(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Why a task could not be planned to meet its deadline.
///
/// Returned by strategies and by the schedulability test; in the scheduler
/// this translates into *rejecting* the newly arrived task (the paper's
/// rejection = renegotiation with the client, §4.1.1 footnote).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Infeasible {
    /// `A + D − r ≤ 0`: the deadline passes before any node could start.
    DeadlineBeforeStart,
    /// `γ ≤ 0`: not enough time remains even to transmit the input data.
    NoTimeForTransmission,
    /// Every node count `n ≤ N` fails the `ñ_min` bound.
    NotEnoughNodes,
    /// UserSplit: the user cannot request enough nodes (`N_min > N`) or the
    /// relative deadline cannot cover the transmission time (`D ≤ σ·Cms`).
    UserRequestInfeasible,
    /// The planned completion estimate overshoots the absolute deadline.
    CompletionAfterDeadline,
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Infeasible::DeadlineBeforeStart => "deadline passes before any node is available",
            Infeasible::NoTimeForTransmission => "not enough time to transmit the input data",
            Infeasible::NotEnoughNodes => "no node count within the cluster meets the deadline",
            Infeasible::UserRequestInfeasible => "user-split node request cannot meet the deadline",
            Infeasible::CompletionAfterDeadline => "estimated completion exceeds the deadline",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Infeasible {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ModelError::InvalidParams("x").to_string().contains("x"));
        for e in [
            Infeasible::DeadlineBeforeStart,
            Infeasible::NoTimeForTransmission,
            Infeasible::NotEnoughNodes,
            Infeasible::UserRequestInfeasible,
            Infeasible::CompletionAfterDeadline,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
