//! Simulation time.
//!
//! The paper works in abstract "time units" (`Cms`/`Cps` are unit costs, the
//! total simulation horizon is `10^7` units). Time is therefore a continuous
//! quantity; we represent it as a finite, non-NaN `f64` wrapped in [`SimTime`]
//! so it can carry a total order (usable as a `BinaryHeap` key) and so the
//! non-NaN invariant is enforced at construction instead of at every use.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Absolute tolerance used by the epsilon-aware comparison helpers.
///
/// Deadline checks and dispatch-due checks compare times that were produced by
/// chains of floating-point operations (partition fractions, serialized
/// transmission starts); a strict `>` would reject tasks on 1-ulp noise.
/// The paper's scales (unit costs `1..=10^4`, horizon `10^7`) keep absolute
/// errors far below this threshold.
pub const TIME_EPS: f64 = 1e-6;

/// A point in simulation time (also used for durations).
///
/// Invariant: the wrapped value is finite except for the distinguished
/// [`SimTime::FAR_FUTURE`], which is `f64::INFINITY` and usable as "never".
/// NaN is rejected at construction, making the `Ord` implementation total.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than any event; used as "no deadline" / "never".
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Wraps a raw value. Panics on NaN (programming error, not input error).
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "SimTime cannot be NaN");
        SimTime(t)
    }

    /// The raw value in time units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` for the distinguished far-future value.
    #[inline]
    pub fn is_far_future(self) -> bool {
        self.0.is_infinite()
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// `self > other` beyond floating-point noise ([`TIME_EPS`]).
    ///
    /// Used for deadline-miss checks: a completion estimate equal to the
    /// deadline up to rounding is a *meet*, not a miss.
    #[inline]
    pub fn definitely_after(self, other: SimTime) -> bool {
        self.0 > other.0 + TIME_EPS
    }

    /// `self ≤ other` up to floating-point noise ([`TIME_EPS`]).
    #[inline]
    pub fn at_or_before_eps(self, other: SimTime) -> bool {
        self.0 <= other.0 + TIME_EPS
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Total by construction: NaN is rejected in `new` and all arithmetic
        // goes through `new`.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl From<f64> for SimTime {
    #[inline]
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:.6}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::FAR_FUTURE > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = SimTime::new(3.5);
        let d = SimTime::new(1.25);
        assert_eq!((a + d).as_f64(), 4.75);
        assert_eq!((a - d).as_f64(), 2.25);
        let mut m = a;
        m += d;
        m -= d;
        assert_eq!(m, a);
    }

    #[test]
    fn epsilon_comparisons_absorb_noise() {
        let d = SimTime::new(100.0);
        let just_over = SimTime::new(100.0 + TIME_EPS / 2.0);
        let clearly_over = SimTime::new(100.0 + 1.0);
        assert!(!just_over.definitely_after(d));
        assert!(clearly_over.definitely_after(d));
        assert!(just_over.at_or_before_eps(d));
        assert!(!clearly_over.at_or_before_eps(d));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn far_future_flag() {
        assert!(SimTime::FAR_FUTURE.is_far_future());
        assert!(!SimTime::ZERO.is_far_future());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
