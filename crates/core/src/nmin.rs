//! Minimum-node-count bounds (§4.1.1 B, "Derivation of an Upper-Bound for
//! n_min") and the fixed-point scan that couples the bound with node
//! availability (the `n ← ñ_min(t)` / "earliest `t` with `AN(t) ≥ n`"
//! interplay in the Fig. 2 pseudocode).
//!
//! For a task `T = (A, σ, D)` whose `n`-th node becomes available at `r_n`,
//! the deadline is guaranteed if
//!
//! ```text
//! n ≥ ñ_min = ⌈ ln γ / ln β ⌉,   γ = 1 − σ·Cms/(A + D − r_n),
//!                                 β = Cps/(Cms + Cps)
//! ```
//!
//! because `Ê(σ,n) ≤ E(σ,n)` (Eq. 9) and `r_n + E(σ,n) ≤ A + D` reduces to
//! `β^n ≤ γ` (Eq. 11–14). The same bound applies verbatim to the no-IIT OPR
//! baseline of \[22\], where all nodes start together at `r_n`.

use crate::error::Infeasible;
use crate::params::ClusterParams;
use crate::time::SimTime;

/// Relative tolerance when ceiling `ln γ / ln β`: a value within this of an
/// integer is treated as that integer, so floating-point noise does not
/// demand a spurious extra node. Safety is unaffected — the admission test
/// re-checks the resulting completion estimate against the deadline.
const CEIL_TOL: f64 = 1e-9;

/// `ñ_min`: the smallest node count whose worst-case (no-IIT) execution,
/// started at `r_n`, still meets the absolute deadline.
///
/// Errors distinguish the paper's two rejection causes: no slack at all
/// (`A + D − r_n ≤ 0`) and insufficient slack even for the input transmission
/// (`γ ≤ 0`). Both are monotone in `r_n`: once hit, every later start time is
/// also infeasible.
///
/// ```
/// use rtdls_core::prelude::*;
///
/// let params = ClusterParams::paper_baseline();
/// // A σ=200 task starting now with 2720 time units of slack needs 8 nodes…
/// let n = n_tilde_min(&params, 200.0, SimTime::ZERO, SimTime::new(2720.0)).unwrap();
/// assert_eq!(n, 8);
/// // …and with slack below the transmission time (σ·Cms = 200) no node
/// // count can help.
/// let err = n_tilde_min(&params, 200.0, SimTime::ZERO, SimTime::new(150.0));
/// assert_eq!(err, Err(Infeasible::NoTimeForTransmission));
/// ```
pub fn n_tilde_min(
    params: &ClusterParams,
    sigma: f64,
    r_n: SimTime,
    abs_deadline: SimTime,
) -> Result<usize, Infeasible> {
    debug_assert!(sigma > 0.0);
    let slack = abs_deadline.as_f64() - r_n.as_f64();
    if slack <= 0.0 {
        return Err(Infeasible::DeadlineBeforeStart);
    }
    let gamma = 1.0 - sigma * params.cms / slack;
    if gamma <= 0.0 {
        return Err(Infeasible::NoTimeForTransmission);
    }
    let beta = params.beta();
    // β ∈ (0,1) and γ ∈ (0,1): both logs are negative, the ratio positive.
    let raw = gamma.ln() / beta.ln();
    Ok(ceil_tolerant(raw).max(1))
}

/// The analytic infimum of slack (`A + D − r_n`) that *any* node count in
/// the cluster can meet: `σ·Cms / (1 − β^N)`.
///
/// Below this even all `N` nodes started together at `r_n` miss the
/// deadline (Eq. 14 with `n = N`); at or above it `ñ_min ≤ N`. The explain
/// engine seeds its counterfactual-deadline search here instead of probing
/// blindly from the rejected deadline upward.
pub fn min_feasible_slack(params: &ClusterParams, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0);
    let beta_n = params.beta().powi(params.num_nodes as i32);
    sigma * params.cms / (1.0 - beta_n)
}

/// Ceil with a relative tolerance around exact integers (see [`CEIL_TOL`]).
fn ceil_tolerant(x: f64) -> usize {
    debug_assert!(x.is_finite() && x >= 0.0, "ceil_tolerant input {x}");
    let nearest = x.round();
    let scale = nearest.abs().max(1.0);
    if (x - nearest).abs() <= CEIL_TOL * scale {
        nearest as usize
    } else {
        x.ceil() as usize
    }
}

/// Result of the fixed-point scan: the chosen node count and the start time
/// of the last node.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScanResult {
    /// The minimal feasible node count under the earliest-nodes selection
    /// rule; the task is allocated exactly the `n` earliest-available nodes.
    pub n: usize,
    /// `r_n = max(release_n, now)` for that allocation.
    pub r_n: SimTime,
}

/// Couples `ñ_min` with node availability: find the smallest `n` such that
/// allocating the `n` earliest-available nodes satisfies `ñ_min(r_n) ≤ n`.
///
/// `sorted_releases` are the candidate start times of the `N` nodes in
/// ascending order, already clamped to the planning instant (`≥ now`). The
/// required count `ñ_min(r_n)` is non-decreasing in `n` (later `r_n` means
/// less slack) while the supply `n` increases by one each step, so the first
/// crossing is the minimal feasible allocation.
pub fn min_feasible_nodes(
    params: &ClusterParams,
    sigma: f64,
    sorted_releases: &[SimTime],
    abs_deadline: SimTime,
) -> Result<ScanResult, Infeasible> {
    debug_assert!(
        sorted_releases.windows(2).all(|w| w[0] <= w[1]),
        "release times must be sorted"
    );
    let mut last_err = Infeasible::NotEnoughNodes;
    for (idx, &r_n) in sorted_releases.iter().enumerate() {
        let n = idx + 1;
        match n_tilde_min(params, sigma, r_n, abs_deadline) {
            Ok(required) if required <= n => return Ok(ScanResult { n, r_n }),
            Ok(_) => {}
            // Slack shrinks monotonically with n; these errors are terminal.
            Err(e) => return Err(e),
        }
        last_err = Infeasible::NotEnoughNodes;
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlt::homogeneous;

    fn baseline() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    #[test]
    fn bound_is_sufficient_for_the_deadline() {
        // Brute-force cross-check: with n = ñ_min nodes starting at r_n,
        // r_n + E(σ,n) must meet the deadline, and usually n−1 must not
        // (the bound is tight up to the ceiling).
        let p = baseline();
        for sigma in [50.0, 200.0, 800.0] {
            for slack_mult in [1.2, 2.0, 5.0, 20.0] {
                let r_n = SimTime::new(100.0);
                let min_exec = homogeneous::exec_time(&p, sigma, p.num_nodes);
                let deadline = SimTime::new(100.0 + min_exec * slack_mult);
                let n = match n_tilde_min(&p, sigma, r_n, deadline) {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                if n <= p.num_nodes {
                    let e = homogeneous::exec_time(&p, sigma, n);
                    assert!(
                        r_n.as_f64() + e <= deadline.as_f64() * (1.0 + 1e-9),
                        "ñ_min={n} insufficient: {} > {}",
                        r_n.as_f64() + e,
                        deadline.as_f64()
                    );
                    if n > 1 {
                        let e_less = homogeneous::exec_time(&p, sigma, n - 1);
                        assert!(
                            r_n.as_f64() + e_less > deadline.as_f64() * (1.0 - 1e-9),
                            "ñ_min={n} not minimal for sigma={sigma}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn min_feasible_slack_is_the_full_cluster_threshold() {
        let p = baseline();
        let sigma = 200.0;
        let floor = min_feasible_slack(&p, sigma);
        // Just above the floor the whole cluster suffices…
        let ok = n_tilde_min(&p, sigma, SimTime::ZERO, SimTime::new(floor * 1.0001)).unwrap();
        assert!(ok <= p.num_nodes, "n={ok} above floor");
        // …and just below it no node count does (an Err means
        // transmission-dominated, which is also infeasible).
        if let Ok(n) = n_tilde_min(&p, sigma, SimTime::ZERO, SimTime::new(floor * 0.9999)) {
            assert!(n > p.num_nodes, "n={n} below floor");
        }
        // The floor always covers the transmission time.
        assert!(floor > sigma * p.cms);
    }

    #[test]
    fn no_slack_is_deadline_before_start() {
        let p = baseline();
        let err = n_tilde_min(&p, 100.0, SimTime::new(50.0), SimTime::new(50.0));
        assert_eq!(err, Err(Infeasible::DeadlineBeforeStart));
        let err = n_tilde_min(&p, 100.0, SimTime::new(60.0), SimTime::new(50.0));
        assert_eq!(err, Err(Infeasible::DeadlineBeforeStart));
    }

    #[test]
    fn transmission_dominated_slack_is_rejected() {
        let p = baseline();
        // σ·Cms = 100 > slack = 50: even infinite nodes cannot help.
        let err = n_tilde_min(&p, 100.0, SimTime::ZERO, SimTime::new(50.0));
        assert_eq!(err, Err(Infeasible::NoTimeForTransmission));
        // Exactly equal (γ = 0) is also a rejection.
        let err = n_tilde_min(&p, 100.0, SimTime::ZERO, SimTime::new(100.0));
        assert_eq!(err, Err(Infeasible::NoTimeForTransmission));
    }

    #[test]
    fn generous_deadline_needs_one_node() {
        let p = baseline();
        let sigma = 10.0;
        let e1 = homogeneous::exec_time(&p, sigma, 1);
        let n = n_tilde_min(&p, sigma, SimTime::ZERO, SimTime::new(e1 * 2.0)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn tighter_deadline_needs_more_nodes() {
        let p = baseline();
        let sigma = 200.0;
        let e16 = homogeneous::exec_time(&p, sigma, 16);
        let loose = n_tilde_min(&p, sigma, SimTime::ZERO, SimTime::new(e16 * 30.0)).unwrap();
        let tight = n_tilde_min(&p, sigma, SimTime::ZERO, SimTime::new(e16 * 1.05)).unwrap();
        assert!(tight > loose, "tight {tight} should exceed loose {loose}");
    }

    #[test]
    fn ceil_tolerant_snaps_near_integers() {
        assert_eq!(ceil_tolerant(3.0000000001), 3);
        assert_eq!(ceil_tolerant(2.9999999999), 3);
        assert_eq!(ceil_tolerant(3.1), 4);
        assert_eq!(ceil_tolerant(0.0), 0);
    }

    #[test]
    fn scan_finds_fixed_point_on_staggered_releases() {
        let p = baseline();
        let sigma = 200.0;
        // All nodes idle now: scan result must equal ñ_min(now).
        let releases: Vec<SimTime> = vec![SimTime::new(10.0); 16];
        let deadline = SimTime::new(10.0 + homogeneous::exec_time(&p, sigma, 4) * 1.0001);
        let res = min_feasible_nodes(&p, sigma, &releases, deadline).unwrap();
        assert_eq!(
            res.n,
            n_tilde_min(&p, sigma, SimTime::new(10.0), deadline).unwrap()
        );
        assert_eq!(res.r_n, SimTime::new(10.0));
    }

    #[test]
    fn scan_prefers_fewer_earlier_nodes_when_feasible() {
        let p = baseline();
        let sigma = 50.0;
        // Two nodes free now, the rest much later. A loose deadline should be
        // satisfied with the early nodes instead of waiting.
        let mut releases = vec![SimTime::ZERO, SimTime::ZERO];
        releases.extend(std::iter::repeat_n(SimTime::new(1e6), 14));
        let e2 = homogeneous::exec_time(&p, sigma, 2);
        let res = min_feasible_nodes(&p, sigma, &releases, SimTime::new(e2 * 1.01)).unwrap();
        assert!(res.n <= 2, "scan chose n={} instead of early nodes", res.n);
        assert_eq!(res.r_n, SimTime::ZERO);
    }

    #[test]
    fn scan_waits_for_more_nodes_under_tight_deadline() {
        let p = baseline();
        let sigma = 200.0;
        // One node free now; the rest shortly after. A deadline too tight for
        // one node forces the scan past n = 1.
        let mut releases = vec![SimTime::ZERO];
        releases.extend((1..16).map(|i| SimTime::new(i as f64)));
        let e16 = homogeneous::exec_time(&p, sigma, 16);
        let res = min_feasible_nodes(&p, sigma, &releases, SimTime::new(15.0 + e16 * 1.5)).unwrap();
        assert!(res.n > 1);
        // The guarantee holds for the chosen allocation.
        let e = homogeneous::exec_time(&p, sigma, res.n);
        assert!(res.r_n.as_f64() + e <= 15.0 + e16 * 1.5 + 1e-9);
    }

    #[test]
    fn scan_rejects_when_cluster_too_small() {
        let p = ClusterParams::new(2, 1.0, 100.0).unwrap();
        let sigma = 200.0;
        let releases = vec![SimTime::ZERO; 2];
        // Deadline tighter than E(σ,2) but looser than transmission: needs >2 nodes.
        let e2 = homogeneous::exec_time(&p, sigma, 2);
        let deadline = SimTime::new(sigma * p.cms + (e2 - sigma * p.cms) * 0.5);
        let err = min_feasible_nodes(&p, sigma, &releases, deadline);
        assert_eq!(err, Err(Infeasible::NotEnoughNodes));
    }

    #[test]
    fn scan_propagates_terminal_errors() {
        let p = baseline();
        let releases = vec![SimTime::new(100.0); 16];
        let err = min_feasible_nodes(&p, 10.0, &releases, SimTime::new(50.0));
        assert_eq!(err, Err(Infeasible::DeadlineBeforeStart));
    }
}
