//! Task partitioning + node-assignment strategies (§4.1, §4.2 Decision #2/#3).
//!
//! A *strategy* turns one task plus a snapshot of node availability into a
//! [`TaskPlan`]: which nodes, in what transmission order, with what load
//! fractions, and — crucially for admission control — a completion-time
//! estimate that is provably an upper bound on the actual completion.
//!
//! Four strategies are implemented:
//!
//! * [`StrategyKind::DltIit`] — **the paper's contribution**: nodes start at
//!   their individual available times; partition from the heterogeneous
//!   model (§4.1.1); node count from the `ñ_min` fixed-point scan.
//! * [`StrategyKind::OprMn`] — the baseline of \[22\]: same node count logic
//!   but all nodes idle until the `n`-th is free (IITs wasted), homogeneous
//!   OPR partition.
//! * [`StrategyKind::OprAn`] — run every task on all `N` nodes (mentioned in
//!   §5 as rarely used in practice; included for completeness).
//! * [`StrategyKind::UserSplit`] — the current-practice emulation (§4.1.2):
//!   the user pre-splits into `n` equal chunks, `n` drawn once per task.

use serde::{Deserialize, Serialize};

use crate::dlt::heterogeneous::HeterogeneousModel;
use crate::dlt::homogeneous;
use crate::error::Infeasible;
use crate::nmin::min_feasible_nodes;
use crate::params::{ClusterParams, NodeId};
use crate::task::{Task, TaskId};
use crate::time::SimTime;

/// Which partitioning/assignment rule to apply.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StrategyKind {
    /// DLT-based partitioning with different processor available times
    /// (utilizes IITs; §4.1.1).
    DltIit,
    /// Multi-round (multi-installment) DLT partitioning — the paper's §6
    /// future-work direction, following the multi-installment theory the
    /// paper cites (\[10\]): each node receives its load in the given number
    /// of rounds so later nodes start computing sooner and transmission
    /// overlaps computation. Adaptive: falls back to the single-round plan
    /// whenever that one's completion estimate is better, so it never
    /// accepts less than [`StrategyKind::DltIit`].
    DltMultiRound {
        /// Number of installments per node (≥ 2 to differ from single-round).
        rounds: u8,
    },
    /// Optimal Partitioning Rule, Minimum number of Nodes, simultaneous
    /// start (no IIT use; baseline from \[22\]).
    OprMn,
    /// Optimal Partitioning Rule on All N Nodes, simultaneous start.
    OprAn,
    /// User-split equal partitioning on a user-requested node count
    /// (utilizes IITs; §4.1.2).
    UserSplit,
}

impl StrategyKind {
    /// Short name as used in the paper's algorithm nomenclature
    /// (extensions follow the same convention: `DLT-MR<rounds>`).
    pub fn paper_name(self) -> String {
        match self {
            StrategyKind::DltIit => "DLT".to_string(),
            StrategyKind::DltMultiRound { rounds } => format!("DLT-MR{rounds}"),
            StrategyKind::OprMn => "OPR-MN".to_string(),
            StrategyKind::OprAn => "OPR-AN".to_string(),
            StrategyKind::UserSplit => "UserSplit".to_string(),
        }
    }

    /// Whether the strategy lets a task start on a node before *all* its
    /// nodes are available (i.e., whether it utilizes Inserted Idle Times).
    pub fn utilizes_iits(self) -> bool {
        matches!(
            self,
            StrategyKind::DltIit | StrategyKind::DltMultiRound { .. } | StrategyKind::UserSplit
        )
    }
}

/// How an accepted task advances the node release times inside the
/// temp-schedule (ablation knob; see DESIGN.md §6).
///
/// This choice shapes the whole availability landscape: with staggered
/// per-node releases, successor tasks see nodes freeing at *different* times
/// — the very situation (Fig. 1b) the DLT-IIT strategy exploits. Uniform
/// bookkeeping erases that staggering after every task, which suppresses
/// nearly all of the IIT benefit (see EXPERIMENTS.md, ablation
/// `abl-estimate`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ReleaseEstimate {
    /// Each node is released at its **exact** completion time, obtained by
    /// replaying the plan's transmission/compute timeline (the same
    /// computation the cluster head performs at dispatch; execution in the
    /// model is deterministic, so these are true values, each `≤ e_i` by
    /// Theorem 4). Default — this is the only mode in which a simulated
    /// cluster develops the staggered availability of the paper's Fig. 1.
    #[default]
    Exact,
    /// Fig. 2 pseudocode, read conservatively: every assigned node is
    /// released at the task's single completion estimate `e_i`.
    Uniform,
    /// Analytical middle ground: each node is released at its Theorem-4
    /// per-node completion bound `t̃_act_i ≤ e_i`.
    TightPerNode,
}

/// How the node count `n` is chosen for the DLT / OPR-MN strategies
/// (the `n ← ñ_min(t)` line of Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum NodeCountPolicy {
    /// Resolve the pseudocode's `n ← ñ_min(t)` / "earliest `t` with
    /// `AN(t) ≥ n`" coupling consistently: scan `n = 1..N` for the smallest
    /// `n` with `ñ_min(r_n) ≤ n`, re-evaluating the bound at the start time
    /// the allocation actually implies. Default — this reading reproduces
    /// the paper's cross-figure ordering structure (DLT < OPR-MN in Fig. 3
    /// *and* DLT < User-Split at DCRatio 2 in Fig. 5a; see EXPERIMENTS.md).
    #[default]
    FixedPoint,
    /// The alternative literal reading: `ñ_min` is evaluated **once** at the
    /// test instant `t` (as if the task could start immediately); the task
    /// then waits for that many nodes, and is rejected if the wait defeats
    /// the deadline — no retry with more nodes. Matches the paper's
    /// OPR-MN absolute levels at the baseline but inverts the Fig. 5a
    /// ordering; kept as ablation `abl-nselect`.
    OneShot,
}

/// Knobs that modify planning without changing the algorithm identity.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Release-time bookkeeping mode for the temp schedule.
    pub release_estimate: ReleaseEstimate,
    /// Node-count selection mode for DLT / OPR-MN.
    pub node_count: NodeCountPolicy,
}

/// A snapshot of when each node can next start serving a task, taken at a
/// planning instant `now`: the effective availability of node `k` is
/// `max(Release(node_k), now)` (a node released in the past is available
/// *now*, not retroactively).
#[derive(Clone, Debug)]
pub struct NodeAvailability {
    /// `(available_time, node)` sorted ascending, ties by node id.
    entries: Vec<(SimTime, NodeId)>,
    /// The planning instant the snapshot was taken at.
    now: SimTime,
}

impl NodeAvailability {
    /// Builds the snapshot from the committed release vector (indexed by
    /// node id) and the planning instant.
    pub fn new(releases: &[SimTime], now: SimTime) -> Self {
        let mut entries: Vec<(SimTime, NodeId)> = releases
            .iter()
            .enumerate()
            .map(|(i, &r)| (r.max(now), NodeId(i as u32)))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        NodeAvailability { entries, now }
    }

    /// The planning instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// Sorted available times (ascending).
    pub fn sorted_times(&self) -> Vec<SimTime> {
        self.entries.iter().map(|e| e.0).collect()
    }

    /// The `n` earliest-available nodes, in availability order.
    pub fn earliest(&self, n: usize) -> (Vec<NodeId>, Vec<SimTime>) {
        let nodes = self.entries[..n].iter().map(|e| e.1).collect();
        let times = self.entries[..n].iter().map(|e| e.0).collect();
        (nodes, times)
    }
}

/// A concrete, admission-checked execution plan for one task.
///
/// The plan is a sequence of *chunks* in transmission order. Single-round
/// strategies emit one chunk per node; the multi-round strategy emits
/// several chunks per node (`nodes` then contains repeats — consecutive
/// rounds revisit the same nodes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskPlan {
    /// The planned task.
    pub task: TaskId,
    /// Strategy that produced the plan.
    pub strategy: StrategyKind,
    /// Chunk target nodes in transmission order (earliest-available first;
    /// may repeat for multi-round plans).
    pub nodes: Vec<NodeId>,
    /// Per chunk: the earliest instant its transmission may start
    /// (the node's available time for DLT/UserSplit; the common start for
    /// OPR; the replayed transmission start for later rounds).
    pub start_times: Vec<SimTime>,
    /// Load fractions `α_i` per chunk (sum 1).
    pub fractions: Vec<f64>,
    /// The completion estimate `e_i` checked against the deadline; an upper
    /// bound on every chunk's actual completion (Theorem 4 for single-round
    /// DLT; an exact replay for multi-round/UserSplit).
    pub est_completion: SimTime,
    /// Per chunk: the node release time recorded in the temp schedule after
    /// this plan is (tentatively) placed (later chunks on the same node
    /// supersede earlier ones).
    pub node_release_estimates: Vec<SimTime>,
}

impl TaskPlan {
    /// Number of chunks (= nodes for single-round strategies).
    #[inline]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct nodes the plan occupies.
    pub fn distinct_nodes(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.nodes.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// When the plan's first transmission is due — the instant at which the
    /// task, if still at this plan, commits and starts executing.
    #[inline]
    pub fn first_start(&self) -> SimTime {
        self.start_times[0]
    }

    fn validate(&self) {
        debug_assert_eq!(self.nodes.len(), self.start_times.len());
        debug_assert_eq!(self.nodes.len(), self.fractions.len());
        debug_assert_eq!(self.nodes.len(), self.node_release_estimates.len());
        debug_assert!(
            (self.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "fractions must sum to 1"
        );
        debug_assert!(
            self.start_times.windows(2).all(|w| w[0] <= w[1]),
            "start times must be non-decreasing in transmission order"
        );
    }
}

/// Plans `task` under `kind` against the availability snapshot.
///
/// Returns the plan or the reason the task cannot meet its deadline (which
/// the admission layer turns into a rejection).
pub fn plan_task(
    kind: StrategyKind,
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
    cfg: &PlanConfig,
) -> Result<TaskPlan, Infeasible> {
    let plan = match kind {
        StrategyKind::DltIit => plan_dlt_iit(task, avail, params, cfg)?,
        StrategyKind::DltMultiRound { rounds } => {
            plan_dlt_multi_round(task, avail, params, cfg, rounds)?
        }
        StrategyKind::OprMn => plan_opr(task, avail, params, cfg, false)?,
        StrategyKind::OprAn => plan_opr(task, avail, params, cfg, true)?,
        StrategyKind::UserSplit => plan_user_split(task, avail, params)?,
    };
    plan.validate();
    Ok(plan)
}

/// The `n ← ñ_min(t)` step under the configured [`NodeCountPolicy`].
fn select_node_count(
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
    cfg: &PlanConfig,
) -> Result<usize, Infeasible> {
    let deadline = task.absolute_deadline();
    match cfg.node_count {
        NodeCountPolicy::OneShot => {
            // Evaluate the bound as if the task started right now; the
            // subsequent deadline check on the completion estimate rejects
            // the task if the wait for these nodes proves too long.
            let n = crate::nmin::n_tilde_min(params, task.data_size, avail.now(), deadline)?;
            if n > avail.num_nodes() {
                Err(Infeasible::NotEnoughNodes)
            } else {
                Ok(n)
            }
        }
        NodeCountPolicy::FixedPoint => {
            Ok(min_feasible_nodes(params, task.data_size, &avail.sorted_times(), deadline)?.n)
        }
    }
}

/// §4.1.1: heterogeneous-model partitioning over individual available times.
fn plan_dlt_iit(
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
    cfg: &PlanConfig,
) -> Result<TaskPlan, Infeasible> {
    let deadline = task.absolute_deadline();
    let n = select_node_count(task, avail, params, cfg)?;
    let (nodes, starts) = avail.earliest(n);

    let model = HeterogeneousModel::new(params, task.data_size, &starts)
        .expect("sorted positive inputs by construction");
    let est = model.completion_estimate();
    // Load-bearing under OneShot (the wait can defeat the optimistic n);
    // a pure float-noise guard under FixedPoint.
    if est.definitely_after(deadline) {
        return Err(Infeasible::CompletionAfterDeadline);
    }
    let releases = match cfg.release_estimate {
        ReleaseEstimate::Exact => {
            exact_completions(params, task.data_size, model.alphas(), &starts)
        }
        ReleaseEstimate::Uniform => vec![est; n],
        ReleaseEstimate::TightPerNode => (0..n).map(|i| model.actual_completion_bound(i)).collect(),
    };
    Ok(TaskPlan {
        task: task.id,
        strategy: StrategyKind::DltIit,
        nodes,
        start_times: starts,
        fractions: model.alphas().to_vec(),
        est_completion: est,
        node_release_estimates: releases,
    })
}

/// \[22\]'s OPR baseline: all nodes start together once the last is free.
/// `all_nodes` selects the AN variant (every task on the full cluster).
fn plan_opr(
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
    cfg: &PlanConfig,
    all_nodes: bool,
) -> Result<TaskPlan, Infeasible> {
    let deadline = task.absolute_deadline();
    let n = if all_nodes {
        avail.num_nodes()
    } else {
        select_node_count(task, avail, params, cfg)?
    };
    let (nodes, starts) = avail.earliest(n);
    let t_start = *starts.last().expect("n >= 1");
    let e = homogeneous::exec_time(params, task.data_size, n);
    let est = t_start + SimTime::new(e);
    if est.definitely_after(deadline) {
        return Err(Infeasible::CompletionAfterDeadline);
    }
    Ok(TaskPlan {
        task: task.id,
        strategy: if all_nodes {
            StrategyKind::OprAn
        } else {
            StrategyKind::OprMn
        },
        nodes,
        // No IIT use: every node waits for the common start.
        start_times: vec![t_start; n],
        fractions: homogeneous::alphas(params, n),
        est_completion: est,
        // OPR's equal-finish property makes the estimate exact per node.
        node_release_estimates: vec![est; n],
    })
}

/// §4.1.2: user splits the task into `n` equal chunks; chunks are dispatched
/// sequentially, each node starting as soon as it is available and the
/// preceding transmission has finished (Eq. 15).
fn plan_user_split(
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
) -> Result<TaskPlan, Infeasible> {
    let n = task.user_nodes.ok_or(Infeasible::UserRequestInfeasible)?;
    if n == 0 || n > avail.num_nodes() {
        return Err(Infeasible::UserRequestInfeasible);
    }
    let deadline = task.absolute_deadline();
    let (nodes, starts) = avail.earliest(n);
    let chunk = task.data_size / n as f64;
    let tx = chunk * params.cms;
    let per_node = tx + chunk * params.cps;

    let mut s = Vec::with_capacity(n);
    let mut completions = Vec::with_capacity(n);
    let mut prev_tx_end = f64::NEG_INFINITY;
    for &r in &starts {
        let si = r.as_f64().max(prev_tx_end);
        prev_tx_end = si + tx;
        s.push(SimTime::new(si));
        completions.push(SimTime::new(si + per_node));
    }
    let est = *completions.last().expect("n >= 1");
    if est.definitely_after(deadline) {
        return Err(Infeasible::CompletionAfterDeadline);
    }
    Ok(TaskPlan {
        task: task.id,
        strategy: StrategyKind::UserSplit,
        nodes,
        start_times: s,
        fractions: vec![1.0 / n as f64; n],
        est_completion: est,
        // Eq. 15 gives exact per-node completions for the equal split.
        node_release_estimates: completions,
    })
}

/// §6 future work: multi-round (multi-installment) DLT partitioning.
///
/// Node count and per-node totals come from the single-round heterogeneous
/// model; each node's total is then delivered in `rounds` equal
/// installments, round-robin in node order, so a node starts computing after
/// receiving only `1/rounds` of its data and later installments stream in
/// while it computes. The completion estimate is an *exact replay* of that
/// chunk timeline (the same arithmetic the dispatch engine performs), so
/// admission remains sound. Adaptive: if the single-round plan's estimate is
/// at least as good (communication-cheap regimes where extra round trips buy
/// nothing), the single-round plan is returned instead.
fn plan_dlt_multi_round(
    task: &Task,
    avail: &NodeAvailability,
    params: &ClusterParams,
    cfg: &PlanConfig,
    rounds: u8,
) -> Result<TaskPlan, Infeasible> {
    let single = plan_dlt_iit(task, avail, params, cfg)?;
    if rounds <= 1 {
        return Ok(single);
    }
    let n = single.n();
    let m = rounds as usize;
    let sigma = task.data_size;
    let deadline = task.absolute_deadline();

    // Chunk sequence: rounds × nodes, node order within each round, each
    // chunk 1/m of the node's single-round fraction.
    let mut nodes = Vec::with_capacity(n * m);
    let mut fractions = Vec::with_capacity(n * m);
    let mut avail_constraint = Vec::with_capacity(n * m);
    for _ in 0..m {
        for i in 0..n {
            nodes.push(single.nodes[i]);
            fractions.push(single.fractions[i] / m as f64);
            avail_constraint.push(single.start_times[i]);
        }
    }

    // Exact replay: per-chunk transmission serialization + per-node busy
    // chaining. `start_times[c]` records the replayed transmission start so
    // the engine reproduces the identical schedule.
    let mut node_free: Vec<SimTime> = single.start_times.clone();
    let mut start_times = Vec::with_capacity(n * m);
    let mut completions = Vec::with_capacity(n * m);
    let mut prev_tx_end = f64::NEG_INFINITY;
    for c in 0..n * m {
        let i = c % n; // node index within the round
        let tx_start = avail_constraint[c]
            .as_f64()
            .max(node_free[i].as_f64())
            .max(prev_tx_end);
        let tx_end = tx_start + fractions[c] * sigma * params.cms;
        let compute_end = tx_end + fractions[c] * sigma * params.cps;
        // The node is busy (receiving or computing) from tx_start on; the
        // next installment cannot occupy it before this one completes.
        node_free[i] = SimTime::new(compute_end);
        start_times.push(SimTime::new(tx_start));
        completions.push(SimTime::new(compute_end));
        prev_tx_end = tx_end;
    }
    let est = *completions.iter().max().expect("non-empty");
    if est.definitely_after(deadline) {
        // The single-round plan already passed its own check.
        return Ok(single);
    }
    if est >= single.est_completion {
        return Ok(single);
    }
    Ok(TaskPlan {
        task: task.id,
        strategy: StrategyKind::DltMultiRound { rounds },
        nodes,
        start_times,
        fractions,
        est_completion: est,
        node_release_estimates: completions,
    })
}

/// Replays a plan's execution timeline exactly: transmission to node `i`
/// starts once the node is available *and* the task's preceding chunk has
/// been sent, then compute follows. These are the true completion times the
/// cluster realizes for this plan (the dispatch engine performs the same
/// arithmetic), each bounded by the task's completion estimate (Theorem 4).
pub fn exact_completions(
    params: &ClusterParams,
    sigma: f64,
    fractions: &[f64],
    starts: &[SimTime],
) -> Vec<SimTime> {
    let mut out = Vec::with_capacity(fractions.len());
    let mut prev_tx_end = f64::NEG_INFINITY;
    for (&alpha, &r) in fractions.iter().zip(starts) {
        let tx_start = r.as_f64().max(prev_tx_end);
        let tx_end = tx_start + alpha * sigma * params.cms;
        out.push(SimTime::new(tx_end + alpha * sigma * params.cps));
        prev_tx_end = tx_end;
    }
    out
}

/// `N_min = ⌈σ·Cps / (D − σ·Cms)⌉` (§4.1.2): the fewest nodes with which the
/// task could meet its *relative* deadline if started immediately on arrival.
/// `None` when no node count suffices (`D ≤ σ·Cms`).
pub fn user_split_n_min(params: &ClusterParams, sigma: f64, rel_deadline: f64) -> Option<usize> {
    let slack = rel_deadline - sigma * params.cms;
    if slack <= 0.0 {
        return None;
    }
    let raw = sigma * params.cps / slack;
    Some((raw.ceil() as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TIME_EPS;

    fn baseline() -> ClusterParams {
        ClusterParams::paper_baseline()
    }

    fn all_idle(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    fn avail(releases: &[f64], now: f64) -> NodeAvailability {
        let r: Vec<SimTime> = releases.iter().copied().map(SimTime::new).collect();
        NodeAvailability::new(&r, SimTime::new(now))
    }

    #[test]
    fn availability_clamps_to_now_and_sorts() {
        let a = avail(&[50.0, 5.0, 20.0], 10.0);
        let times = a.sorted_times();
        assert_eq!(
            times,
            vec![SimTime::new(10.0), SimTime::new(20.0), SimTime::new(50.0)]
        );
        let (nodes, starts) = a.earliest(2);
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
        assert_eq!(starts[0], SimTime::new(10.0));
    }

    #[test]
    fn availability_breaks_ties_by_node_id() {
        let a = avail(&[7.0, 7.0, 7.0], 0.0);
        let (nodes, _) = a.earliest(3);
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dlt_plan_on_idle_cluster_matches_opr_mn() {
        // With all nodes equally available there are no IITs: the DLT-IIT
        // plan must coincide with the OPR-MN plan.
        let p = baseline();
        let task = Task::new(1, 0.0, 200.0, 3000.0);
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let cfg = PlanConfig::default();
        let dlt = plan_task(StrategyKind::DltIit, &task, &a, &p, &cfg).unwrap();
        let opr = plan_task(StrategyKind::OprMn, &task, &a, &p, &cfg).unwrap();
        assert_eq!(dlt.n(), opr.n());
        assert!((dlt.est_completion.as_f64() - opr.est_completion.as_f64()).abs() < 1e-6);
        for (x, y) in dlt.fractions.iter().zip(&opr.fractions) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dlt_beats_opr_mn_with_staggered_releases() {
        // Half the cluster is free now, half much later: the IIT-utilizing
        // plan must finish strictly earlier than the wait-for-all plan.
        let p = baseline();
        let sigma = 200.0;
        let mut rel = vec![0.0; 8];
        rel.extend([2000.0; 8]);
        let a = avail(&rel, 0.0);
        let task = Task::new(1, 0.0, sigma, 25_000.0);
        let cfg = PlanConfig::default();
        let dlt = plan_task(StrategyKind::DltIit, &task, &a, &p, &cfg).unwrap();
        let opr = plan_task(StrategyKind::OprMn, &task, &a, &p, &cfg).unwrap();
        if dlt.n() == opr.n() && dlt.n() > 8 {
            assert!(
                dlt.est_completion < opr.est_completion,
                "DLT {:?} should beat OPR {:?}",
                dlt.est_completion,
                opr.est_completion
            );
        }
        // In all cases the estimate respects the deadline.
        assert!(!dlt
            .est_completion
            .definitely_after(task.absolute_deadline()));
        assert!(!opr
            .est_completion
            .definitely_after(task.absolute_deadline()));
    }

    #[test]
    fn opr_an_uses_every_node() {
        let p = baseline();
        let task = Task::new(1, 0.0, 200.0, 1e9);
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let plan = plan_task(StrategyKind::OprAn, &task, &a, &p, &PlanConfig::default()).unwrap();
        assert_eq!(plan.n(), 16);
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        assert!((plan.est_completion.as_f64() - e16).abs() < 1e-9);
    }

    #[test]
    fn user_split_serializes_transmissions() {
        let p = baseline();
        let sigma = 160.0;
        let task = Task::new(1, 0.0, sigma, 1e9).with_user_nodes(Some(4));
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let plan = plan_task(
            StrategyKind::UserSplit,
            &task,
            &a,
            &p,
            &PlanConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.n(), 4);
        let tx = sigma / 4.0 * p.cms; // 40
        for (i, s) in plan.start_times.iter().enumerate() {
            assert!((s.as_f64() - i as f64 * tx).abs() < 1e-9);
        }
        let per_node = tx + sigma / 4.0 * p.cps;
        assert!((plan.est_completion.as_f64() - (3.0 * tx + per_node)).abs() < 1e-9);
    }

    #[test]
    fn user_split_without_request_is_infeasible() {
        let p = baseline();
        let task = Task::new(1, 0.0, 200.0, 1e9); // no user_nodes
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let err = plan_task(
            StrategyKind::UserSplit,
            &task,
            &a,
            &p,
            &PlanConfig::default(),
        );
        assert_eq!(err, Err(Infeasible::UserRequestInfeasible));
    }

    #[test]
    fn user_split_nmin_formula() {
        let p = baseline();
        // σ=200: transmission 200, compute 20000. D=10200 → slack 10000 →
        // Nmin = ceil(20000/10000) = 2.
        assert_eq!(user_split_n_min(&p, 200.0, 10_200.0), Some(2));
        // D barely above transmission time → huge Nmin.
        let n = user_split_n_min(&p, 200.0, 201.0).unwrap();
        assert!(n >= 20_000);
        // D below transmission time → no feasible count.
        assert_eq!(user_split_n_min(&p, 200.0, 199.0), None);
        assert_eq!(user_split_n_min(&p, 200.0, 200.0), None);
    }

    #[test]
    fn missed_deadline_is_rejected_not_planned() {
        let p = baseline();
        // Deadline too tight for the whole cluster.
        let e16 = homogeneous::exec_time(&p, 200.0, 16);
        let task = Task::new(1, 0.0, 200.0, e16 * 0.5);
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        for kind in [StrategyKind::DltIit, StrategyKind::OprMn] {
            let err = plan_task(kind, &task, &a, &p, &PlanConfig::default());
            assert!(err.is_err(), "{kind:?} should reject");
        }
        // OPR-AN rejects via the explicit completion check.
        let err = plan_task(StrategyKind::OprAn, &task, &a, &p, &PlanConfig::default());
        assert_eq!(err, Err(Infeasible::CompletionAfterDeadline));
    }

    #[test]
    fn estimates_never_exceed_deadline_on_accept() {
        let p = baseline();
        let a = avail(&[0.0, 10.0, 20.0, 30.0, 500.0, 600.0, 700.0, 800.0], 0.0);
        let cfg = PlanConfig::default();
        for sigma in [10.0, 100.0, 500.0] {
            for d in [2_000.0, 20_000.0, 200_000.0] {
                let task = Task::new(1, 0.0, sigma, d).with_user_nodes(Some(4));
                for kind in [
                    StrategyKind::DltIit,
                    StrategyKind::OprMn,
                    StrategyKind::OprAn,
                    StrategyKind::UserSplit,
                ] {
                    if let Ok(plan) = plan_task(kind, &task, &a, &p, &cfg) {
                        assert!(
                            plan.est_completion.as_f64()
                                <= task.absolute_deadline().as_f64() + TIME_EPS,
                            "{kind:?} accepted but estimate misses deadline"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tight_release_estimates_are_no_later_than_uniform() {
        let p = baseline();
        let a = avail(&[0.0, 100.0, 200.0, 300.0], 0.0);
        let task = Task::new(1, 0.0, 200.0, 1e9);
        let uni = plan_task(
            StrategyKind::DltIit,
            &task,
            &a,
            &p,
            &PlanConfig {
                release_estimate: ReleaseEstimate::Uniform,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = plan_task(
            StrategyKind::DltIit,
            &task,
            &a,
            &p,
            &PlanConfig {
                release_estimate: ReleaseEstimate::TightPerNode,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(uni.n(), tight.n());
        for (t, u) in tight
            .node_release_estimates
            .iter()
            .zip(&uni.node_release_estimates)
        {
            assert!(t <= u, "tight estimate must not exceed uniform");
        }
    }

    #[test]
    fn strategy_metadata() {
        assert!(StrategyKind::DltIit.utilizes_iits());
        assert!(StrategyKind::UserSplit.utilizes_iits());
        assert!(StrategyKind::DltMultiRound { rounds: 2 }.utilizes_iits());
        assert!(!StrategyKind::OprMn.utilizes_iits());
        assert!(!StrategyKind::OprAn.utilizes_iits());
        assert_eq!(StrategyKind::DltIit.paper_name(), "DLT");
        assert_eq!(
            StrategyKind::DltMultiRound { rounds: 4 }.paper_name(),
            "DLT-MR4"
        );
    }

    #[test]
    fn multi_round_single_installment_degenerates_to_single_round() {
        let p = baseline();
        let task = Task::new(1, 0.0, 200.0, 30_000.0);
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let cfg = PlanConfig::default();
        let single = plan_task(StrategyKind::DltIit, &task, &a, &p, &cfg).unwrap();
        let mr1 = plan_task(
            StrategyKind::DltMultiRound { rounds: 1 },
            &task,
            &a,
            &p,
            &cfg,
        )
        .unwrap();
        assert_eq!(single.nodes, mr1.nodes);
        assert_eq!(single.est_completion, mr1.est_completion);
    }

    #[test]
    fn multi_round_never_estimates_later_than_single_round() {
        // The adaptive fallback guarantees est(MR) ≤ est(DLT) pointwise.
        let p = baseline();
        let cfg = PlanConfig::default();
        for releases in [vec![0.0; 16], {
            let mut r: Vec<f64> = (0..16).map(|i| 100.0 * i as f64).collect();
            r.reverse();
            r
        }] {
            let a = avail(&releases, 0.0);
            for sigma in [50.0, 200.0, 800.0] {
                let task = Task::new(1, 0.0, sigma, 1e6);
                let single = plan_task(StrategyKind::DltIit, &task, &a, &p, &cfg).unwrap();
                for rounds in [2u8, 3, 4, 8] {
                    let mr = plan_task(StrategyKind::DltMultiRound { rounds }, &task, &a, &p, &cfg)
                        .unwrap();
                    assert!(
                        mr.est_completion <= single.est_completion,
                        "MR{rounds} estimate {:?} worse than single {:?} (σ={sigma})",
                        mr.est_completion,
                        single.est_completion
                    );
                }
            }
        }
    }

    #[test]
    fn multi_round_improves_when_transmission_matters() {
        // Communication-heavy regime (Cms comparable to Cps): installments
        // let later nodes start computing much earlier, so the multi-round
        // estimate must strictly beat single-round.
        let p = ClusterParams::new(16, 8.0, 100.0).unwrap();
        let task = Task::new(1, 0.0, 400.0, 1e9);
        let a = NodeAvailability::new(&all_idle(16), SimTime::ZERO);
        let cfg = PlanConfig::default();
        // Force a wide allocation by requesting via deadline: use DltIit's
        // plan for reference n, then compare directly.
        let single = plan_task(StrategyKind::DltIit, &task, &a, &p, &cfg).unwrap();
        let mr = plan_task(
            StrategyKind::DltMultiRound { rounds: 4 },
            &task,
            &a,
            &p,
            &cfg,
        )
        .unwrap();
        if single.n() > 1 {
            assert!(
                mr.est_completion < single.est_completion,
                "MR4 {:?} should strictly beat single-round {:?}",
                mr.est_completion,
                single.est_completion
            );
            assert_eq!(mr.strategy, StrategyKind::DltMultiRound { rounds: 4 });
        }
    }

    #[test]
    fn multi_round_plan_shape_is_consistent() {
        let p = baseline();
        let task = Task::new(1, 0.0, 300.0, 5_000.0);
        let a = avail(&[0.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0], 0.0);
        let cfg = PlanConfig::default();
        let mr = plan_task(
            StrategyKind::DltMultiRound { rounds: 3 },
            &task,
            &a,
            &p,
            &cfg,
        )
        .unwrap();
        if let StrategyKind::DltMultiRound { rounds } = mr.strategy {
            let n = mr.distinct_nodes();
            assert_eq!(mr.n(), n * rounds as usize, "rounds × nodes chunks");
            // Fractions sum to 1 across all chunks.
            assert!((mr.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Transmission starts are serialized (non-decreasing).
            for w in mr.start_times.windows(2) {
                assert!(w[0] <= w[1]);
            }
            // Release estimates are the exact replay: the maximum equals the
            // completion estimate.
            let max_rel = mr.node_release_estimates.iter().max().unwrap();
            assert_eq!(*max_rel, mr.est_completion);
        }
        // (If the adaptive fallback chose single-round here, the workload
        // regime makes installments unprofitable — also a valid outcome.)
    }
}
