//! The v2 submission envelope: who is asking, at what service tier, and
//! how long they are willing to wait.
//!
//! The paper's admission test answers a bare question — "is this task
//! schedulable now?" — for an anonymous submitter. A production gateway
//! serves many *tenants* with different service expectations, and the
//! resource-sharing DLT literature (Wu/Cao/Robertazzi) treats time-varying
//! availability as a first-class input: the natural question becomes "when
//! does this task become schedulable, and is the submitter willing to wait
//! that long?". [`SubmitRequest`] carries that context:
//!
//! * [`TenantId`] — stable tenant identity, the key for quotas and
//!   per-tenant metrics in the service layer;
//! * [`QosClass`] — the service tier (quota exemptions, observability);
//! * `max_delay` — the reservation tolerance: the submitter accepts any
//!   start instant in `[now, now + max_delay]`. `None` keeps the paper's
//!   binary now-or-never semantics.
//!
//! [`TenantMix`] deterministically assigns this envelope to a bare
//! generated [`Task`] stream so simulations and benchmarks can model a
//! multi-tenant population without threading tenancy through the workload
//! distributions themselves.

use serde::{Deserialize, Serialize};

use crate::task::Task;

/// Stable tenant identifier (the quota / metrics key in the service layer).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

/// Service tier of a submission.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum QosClass {
    /// Highest tier: exempt from tenant quotas when the service layer's
    /// quota policy says so.
    Premium,
    /// The default tier: quotas and reservations apply normally.
    #[default]
    Standard,
    /// Lowest tier: same admission test, but the first to be throttled
    /// under per-tenant quotas.
    BestEffort,
}

/// The v2 submission envelope: a task plus its tenant, QoS class, and
/// reservation tolerance.
///
/// Serialization is hand-written for version compatibility in both
/// directions: the telemetry `trace` id is omitted when zero (so traced-off
/// encodings stay byte-identical to pre-telemetry ones) and defaults to
/// zero on read (so journals written before tracing still recover).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SubmitRequest {
    /// The divisible task being submitted.
    pub task: Task,
    /// Who is submitting.
    pub tenant: TenantId,
    /// The service tier of this submission.
    pub qos: QosClass,
    /// Reservation tolerance: the submitter accepts any admission instant
    /// in `[now, now + max_delay]`. `None` = now-or-never (the legacy
    /// three-way Accept/Defer/Reject protocol).
    pub max_delay: Option<f64>,
    /// Telemetry trace id riding the request through the stack; `0` =
    /// untraced (the only value in-process callers produce unless an
    /// enabled telemetry handle minted one at ingress).
    pub trace: u64,
}

impl Serialize for SubmitRequest {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("task".to_string(), self.task.to_value()),
            ("tenant".to_string(), self.tenant.to_value()),
            ("qos".to_string(), self.qos.to_value()),
            ("max_delay".to_string(), self.max_delay.to_value()),
        ];
        if self.trace != 0 {
            entries.push(("trace".to_string(), self.trace.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for SubmitRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        Ok(SubmitRequest {
            task: field(v, "task")?,
            tenant: field(v, "tenant")?,
            qos: field(v, "qos")?,
            max_delay: field(v, "max_delay")?,
            // Added with decision tracing: absent in earlier journals.
            trace: field_or_default(v, "trace")?,
        })
    }
}

impl SubmitRequest {
    /// The legacy envelope: anonymous tenant 0, standard tier, no
    /// reservation tolerance — exactly the paper's binary semantics. The
    /// v1 `submit(Task)` surface bridges through this.
    pub fn new(task: Task) -> Self {
        SubmitRequest {
            task,
            tenant: TenantId(0),
            qos: QosClass::default(),
            max_delay: None,
            trace: 0,
        }
    }

    /// Sets the tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the QoS class.
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Sets the reservation tolerance.
    pub fn with_max_delay(mut self, max_delay: Option<f64>) -> Self {
        debug_assert!(
            max_delay.is_none_or(|d| d.is_finite() && d >= 0.0),
            "max_delay must be finite and non-negative"
        );
        self.max_delay = max_delay;
        self
    }

    /// Sets the telemetry trace id (`0` = untraced).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }
}

/// Deterministic tenant/QoS assignment over a bare task stream.
///
/// Tenancy is a property of the *submitter*, not of the task shape, so the
/// mix is a pure function of the task id: the same stream always maps to
/// the same tenants (replay determinism for journals and benchmarks), and
/// a tenant's class never flickers between submissions.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TenantMix {
    /// Number of tenants; tasks deal to tenants round-robin by id.
    pub tenants: u32,
    /// The leading `premium_tenants` tenant ids are [`QosClass::Premium`].
    pub premium_tenants: u32,
    /// The trailing `best_effort_tenants` tenant ids are
    /// [`QosClass::BestEffort`] (the middle band is Standard).
    pub best_effort_tenants: u32,
    /// Reservation tolerance as a fraction of the task's relative deadline
    /// (`max_delay = factor · D`). `None` disables reservations.
    pub max_delay_factor: Option<f64>,
}

impl TenantMix {
    /// A single-tenant mix with no reservations — the envelope every bare
    /// `submit(Task)` implies.
    pub fn single() -> Self {
        TenantMix {
            tenants: 1,
            premium_tenants: 0,
            best_effort_tenants: 0,
            max_delay_factor: None,
        }
    }

    /// An all-Standard mix over `tenants` tenants, no reservations.
    pub fn uniform(tenants: u32) -> Self {
        TenantMix {
            tenants: tenants.max(1),
            premium_tenants: 0,
            best_effort_tenants: 0,
            max_delay_factor: None,
        }
    }

    /// Enables reservations with tolerance `factor · rel_deadline`.
    pub fn with_max_delay_factor(mut self, factor: f64) -> Self {
        self.max_delay_factor = Some(factor);
        self
    }

    /// The tenant a task's submitter maps to.
    pub fn tenant_of(&self, task: &Task) -> TenantId {
        TenantId((task.id.0 % self.tenants.max(1) as u64) as u32)
    }

    /// The QoS class of a tenant: the leading ids are Premium, the
    /// trailing ids BestEffort, the middle band Standard.
    pub fn qos_of(&self, tenant: TenantId) -> QosClass {
        let n = self.tenants.max(1);
        let t = tenant.0 % n;
        if t < self.premium_tenants.min(n) {
            QosClass::Premium
        } else if t
            >= n.saturating_sub(
                self.best_effort_tenants
                    .min(n - self.premium_tenants.min(n)),
            )
        {
            QosClass::BestEffort
        } else {
            QosClass::Standard
        }
    }

    /// Wraps a bare task in its deterministic submission envelope.
    pub fn assign(&self, task: Task) -> SubmitRequest {
        let tenant = self.tenant_of(&task);
        SubmitRequest {
            task,
            tenant,
            qos: self.qos_of(tenant),
            max_delay: self.max_delay_factor.map(|f| f * task.rel_deadline),
            trace: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_envelope_is_anonymous_now_or_never() {
        let t = Task::new(7, 0.0, 100.0, 1000.0);
        let req = SubmitRequest::new(t);
        assert_eq!(req.tenant, TenantId(0));
        assert_eq!(req.qos, QosClass::Standard);
        assert_eq!(req.max_delay, None);
        assert_eq!(req.task, t);
    }

    #[test]
    fn builders_set_fields() {
        let t = Task::new(1, 0.0, 100.0, 1000.0);
        let req = SubmitRequest::new(t)
            .with_tenant(TenantId(3))
            .with_qos(QosClass::Premium)
            .with_max_delay(Some(250.0));
        assert_eq!(req.tenant, TenantId(3));
        assert_eq!(req.qos, QosClass::Premium);
        assert_eq!(req.max_delay, Some(250.0));
    }

    #[test]
    fn request_round_trips_through_serde() {
        let req = SubmitRequest::new(Task::new(9, 2.0, 50.0, 700.0))
            .with_tenant(TenantId(11))
            .with_qos(QosClass::BestEffort)
            .with_max_delay(Some(42.0));
        let json = serde_json::to_string(&req).unwrap();
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        // And the None tolerance too.
        let req = SubmitRequest::new(Task::new(1, 0.0, 10.0, 10.0));
        let json = serde_json::to_string(&req).unwrap();
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn trace_id_is_version_compatible() {
        // Untraced requests encode without the field (byte-compatible with
        // pre-telemetry journals)...
        let untraced = SubmitRequest::new(Task::new(2, 0.0, 10.0, 10.0));
        let json = serde_json::to_string(&untraced).unwrap();
        assert!(!json.contains("trace"));
        // ...and pre-telemetry encodings (no `trace` key) parse to 0.
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace, 0);
        // Traced requests round-trip the id.
        let traced = untraced.with_trace(99);
        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("trace"));
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, traced);
    }

    #[test]
    fn mix_assignment_is_deterministic_and_banded() {
        let mix = TenantMix {
            tenants: 8,
            premium_tenants: 2,
            best_effort_tenants: 2,
            max_delay_factor: Some(0.5),
        };
        let t = Task::new(10, 0.0, 100.0, 2000.0);
        let a = mix.assign(t);
        let b = mix.assign(t);
        assert_eq!(a, b, "assignment is a pure function of the task");
        assert_eq!(a.tenant, TenantId(2));
        assert_eq!(a.qos, QosClass::Standard);
        assert_eq!(a.max_delay, Some(1000.0));
        // Band edges: ids 0-1 premium, 6-7 best-effort.
        assert_eq!(mix.qos_of(TenantId(0)), QosClass::Premium);
        assert_eq!(mix.qos_of(TenantId(1)), QosClass::Premium);
        assert_eq!(mix.qos_of(TenantId(5)), QosClass::Standard);
        assert_eq!(mix.qos_of(TenantId(6)), QosClass::BestEffort);
        assert_eq!(mix.qos_of(TenantId(7)), QosClass::BestEffort);
    }

    #[test]
    fn degenerate_mixes_stay_sane() {
        // Everything premium; zero-tenant input clamps to one tenant.
        let mix = TenantMix {
            tenants: 0,
            premium_tenants: 5,
            best_effort_tenants: 5,
            max_delay_factor: None,
        };
        let t = Task::new(3, 0.0, 10.0, 10.0);
        let req = mix.assign(t);
        assert_eq!(req.tenant, TenantId(0));
        assert_eq!(req.qos, QosClass::Premium);
        assert_eq!(req.max_delay, None);
        assert_eq!(TenantMix::single().assign(t).tenant, TenantId(0));
        assert_eq!(TenantMix::uniform(4).tenants, 4);
    }
}
