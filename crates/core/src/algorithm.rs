//! Algorithm identities: a scheduling policy × a partitioning strategy,
//! named as in the paper (§4.2: EDF-DLT, FIFO-DLT, EDF-UserSplit,
//! FIFO-UserSplit; §5: EDF-OPR-MN, FIFO-OPR-MN, EDF-OPR-AN, FIFO-OPR-AN).

use core::fmt;
use core::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::policy::Policy;
use crate::strategy::StrategyKind;

/// One of the paper's eight named algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AlgorithmKind {
    /// Execution-order policy (first component of the paper's nomenclature).
    pub policy: Policy,
    /// Partitioning/assignment rule (second component).
    pub strategy: StrategyKind,
}

impl AlgorithmKind {
    /// EDF-DLT — the paper's headline algorithm.
    pub const EDF_DLT: Self = Self {
        policy: Policy::Edf,
        strategy: StrategyKind::DltIit,
    };
    /// FIFO-DLT.
    pub const FIFO_DLT: Self = Self {
        policy: Policy::Fifo,
        strategy: StrategyKind::DltIit,
    };
    /// EDF-OPR-MN — the best baseline of \[22\] (no IIT use).
    pub const EDF_OPR_MN: Self = Self {
        policy: Policy::Edf,
        strategy: StrategyKind::OprMn,
    };
    /// FIFO-OPR-MN.
    pub const FIFO_OPR_MN: Self = Self {
        policy: Policy::Fifo,
        strategy: StrategyKind::OprMn,
    };
    /// EDF-OPR-AN (all nodes per task).
    pub const EDF_OPR_AN: Self = Self {
        policy: Policy::Edf,
        strategy: StrategyKind::OprAn,
    };
    /// FIFO-OPR-AN.
    pub const FIFO_OPR_AN: Self = Self {
        policy: Policy::Fifo,
        strategy: StrategyKind::OprAn,
    };
    /// EDF-UserSplit — manual equal splitting under EDF.
    pub const EDF_USER_SPLIT: Self = Self {
        policy: Policy::Edf,
        strategy: StrategyKind::UserSplit,
    };
    /// FIFO-UserSplit.
    pub const FIFO_USER_SPLIT: Self = Self {
        policy: Policy::Fifo,
        strategy: StrategyKind::UserSplit,
    };

    /// All eight algorithms, EDF variants first.
    pub const ALL: [Self; 8] = [
        Self::EDF_DLT,
        Self::EDF_OPR_MN,
        Self::EDF_OPR_AN,
        Self::EDF_USER_SPLIT,
        Self::FIFO_DLT,
        Self::FIFO_OPR_MN,
        Self::FIFO_OPR_AN,
        Self::FIFO_USER_SPLIT,
    ];

    /// The paper's name for this algorithm, e.g. `EDF-DLT`.
    pub fn paper_name(&self) -> String {
        format!(
            "{}-{}",
            self.policy.paper_name(),
            self.strategy.paper_name()
        )
    }

    /// Whether the workload must carry user-requested node counts.
    pub fn needs_user_nodes(&self) -> bool {
        self.strategy == StrategyKind::UserSplit
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_name())
    }
}

/// Error for unrecognized algorithm names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAlgorithmError(pub String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm '{}'; expected one of: ", self.0)?;
        for (i, a) in AlgorithmKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&a.paper_name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmKind {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        AlgorithmKind::ALL
            .into_iter()
            .find(|a| a.paper_name().to_ascii_lowercase() == norm)
            .ok_or_else(|| ParseAlgorithmError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for a in AlgorithmKind::ALL {
            let name = a.paper_name();
            let parsed: AlgorithmKind = name.parse().unwrap();
            assert_eq!(parsed, a, "round-trip failed for {name}");
            // Case-insensitive.
            let parsed: AlgorithmKind = name.to_lowercase().parse().unwrap();
            assert_eq!(parsed, a);
        }
    }

    #[test]
    fn expected_paper_names() {
        assert_eq!(AlgorithmKind::EDF_DLT.paper_name(), "EDF-DLT");
        assert_eq!(AlgorithmKind::FIFO_OPR_MN.paper_name(), "FIFO-OPR-MN");
        assert_eq!(AlgorithmKind::EDF_USER_SPLIT.paper_name(), "EDF-UserSplit");
        assert_eq!(AlgorithmKind::FIFO_OPR_AN.paper_name(), "FIFO-OPR-AN");
    }

    #[test]
    fn unknown_name_errors_with_suggestions() {
        let err = "EDF-MAGIC".parse::<AlgorithmKind>().unwrap_err();
        assert!(err.to_string().contains("EDF-DLT"));
    }

    #[test]
    fn user_nodes_requirement() {
        assert!(AlgorithmKind::EDF_USER_SPLIT.needs_user_nodes());
        assert!(!AlgorithmKind::EDF_DLT.needs_user_nodes());
    }
}
