//! The aperiodic divisible task model (§3 of the paper).
//!
//! A task `T_i = (A_i, σ_i, D_i)` is a single invocation: arrival time,
//! total data size, relative deadline. The load is *arbitrarily divisible*:
//! it can be split into independent fractions of any size with no
//! inter-subtask communication.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Stable task identifier, assigned in arrival order by the workload source.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// An arbitrarily divisible real-time task.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Identifier, unique within one simulation / scheduler instance.
    pub id: TaskId,
    /// `A`: arrival time.
    pub arrival: SimTime,
    /// `σ`: total data size (workload units), strictly positive.
    pub data_size: f64,
    /// `D`: relative deadline (time units), strictly positive.
    pub rel_deadline: f64,
    /// For the User-Split strategy only: the node count `n ∈ [N_min, N]` the
    /// user requested for this task, drawn once at task-creation time
    /// (§4.1.2). `None` means the user could not pick a feasible count
    /// (`N_min > N` or `D ≤ σ·Cms`) — a User-Split scheduler rejects such a
    /// task outright. DLT-based strategies ignore this field.
    pub user_nodes: Option<usize>,
}

impl Task {
    /// Creates a task with no user-split annotation.
    pub fn new(id: u64, arrival: impl Into<SimTime>, data_size: f64, rel_deadline: f64) -> Self {
        let t = Task {
            id: TaskId(id),
            arrival: arrival.into(),
            data_size,
            rel_deadline,
            user_nodes: None,
        };
        t.validate();
        t
    }

    /// Attaches a user-requested node count (User-Split workloads).
    pub fn with_user_nodes(mut self, n: Option<usize>) -> Self {
        self.user_nodes = n;
        self
    }

    /// `A + D`: the absolute deadline.
    #[inline]
    pub fn absolute_deadline(&self) -> SimTime {
        self.arrival + SimTime::new(self.rel_deadline)
    }

    fn validate(&self) {
        assert!(
            self.data_size.is_finite() && self.data_size > 0.0,
            "task data size must be finite and > 0, got {}",
            self.data_size
        );
        assert!(
            self.rel_deadline.is_finite() && self.rel_deadline > 0.0,
            "task relative deadline must be finite and > 0, got {}",
            self.rel_deadline
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_deadline_is_arrival_plus_relative() {
        let t = Task::new(7, 100.0, 200.0, 50.0);
        assert_eq!(t.absolute_deadline(), SimTime::new(150.0));
        assert_eq!(t.id, TaskId(7));
        assert_eq!(t.user_nodes, None);
    }

    #[test]
    fn user_nodes_annotation_round_trips() {
        let t = Task::new(1, 0.0, 10.0, 10.0).with_user_nodes(Some(4));
        assert_eq!(t.user_nodes, Some(4));
        let t = t.with_user_nodes(None);
        assert_eq!(t.user_nodes, None);
    }

    #[test]
    #[should_panic(expected = "data size")]
    fn zero_size_is_rejected() {
        let _ = Task::new(1, 0.0, 0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn negative_deadline_is_rejected() {
        let _ = Task::new(1, 0.0, 10.0, -1.0);
    }
}
