//! Honesty of admission explanations, property-tested.
//!
//! An [`AdmissionExplanation`] makes three falsifiable promises about its
//! counterfactuals, each checked here by actually resubmitting:
//!
//! 1. **Deadline honesty** — a rejected task resubmitted with
//!    `rel_deadline = min_feasible_deadline` (otherwise unchanged) is
//!    accepted, and one resubmitted meaningfully *tighter* than the
//!    suggestion is still rejected (the suggestion is minimal, not merely
//!    sufficient).
//! 2. **σ honesty** — the same, shrinking `data_size` to
//!    `max_feasible_sigma` (and a meaningfully larger σ still fails).
//! 3. **Engine agreement** — the reference full-replan engine and the
//!    diff-based incremental engine explain identically (the provided
//!    trait method is driven entirely through accessors, so this pins the
//!    accessors, not the search).
//!
//! Tightness margins are relative (`1 − 5·tol`-style factors squeezed to
//! 0.999/1.001) because the bisection brackets to a relative tolerance:
//! an epsilon-tighter probe may legitimately still pass inside the
//! bracket, but a 0.1% violation means the suggestion was not minimal.
//!
//! The book under test is a *busy* one — randomized committed release
//! vectors over an empty waiting queue. With waiting work the admission
//! test is not monotone in a single task's deadline (a replan can reorder
//! the queue), so minimality there is heuristic; over committed releases
//! alone, feasibility is monotone and the promises are exact.

use proptest::prelude::*;
use rtdls_core::prelude::*;

const BASE_NODES: usize = 16;

fn engines(
    algorithm: AlgorithmKind,
    releases: &[f64],
) -> (AdmissionController, IncrementalController) {
    let params = ClusterParams::new(BASE_NODES, 1.0, 50.0).expect("valid params");
    let mut full = AdmissionController::new(params, algorithm, PlanConfig::default());
    let mut inc = IncrementalController::new(params, algorithm, PlanConfig::default());
    for (node, r) in releases.iter().enumerate() {
        full.set_node_release(node, SimTime::new(*r));
        inc.set_node_release(node, SimTime::new(*r));
    }
    (full, inc)
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmKind> {
    prop::sample::select(vec![
        AlgorithmKind::EDF_DLT,
        AlgorithmKind::EDF_OPR_MN,
        AlgorithmKind::FIFO_DLT,
    ])
}

/// Busy committed-release vectors: every node tied up for a while.
fn arb_releases() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..5_000.0, BASE_NODES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn explanations_are_honest_and_engine_independent(
        algorithm in arb_algorithm(),
        releases in arb_releases(),
        sigma in 500.0f64..200_000.0,
        deadline_frac in 0.01f64..0.9,
        now in 0.0f64..1_000.0,
    ) {
        let (full, inc) = engines(algorithm, &releases);
        let now = SimTime::new(now);
        // A deadline scaled well below the busy floor, so rejection (and
        // hence an explanation) is likely but not guaranteed — accepted
        // draws exercise the `explain == None` agreement instead.
        let floor = releases.iter().cloned().fold(0.0f64, f64::max);
        let rel_deadline = (floor.max(1.0) * deadline_frac).max(0.5);
        let task = Task::new(1, now, sigma, rel_deadline);
        let request = SubmitRequest::new(task);

        let explained = full.explain(&request, now);
        prop_assert_eq!(
            explained, inc.explain(&request, now),
            "engines must explain identically"
        );

        if explained.is_none() {
            // Admissible as-is: submitting must in fact accept.
            let mut probe = full.clone();
            prop_assert_eq!(probe.submit(task, now), Decision::Accepted);
        }
        if let Some(explanation) = explained {
        // An explanation is only produced for an inadmissible request.
        let mut probe = full.clone();
        prop_assert!(matches!(probe.submit(task, now), Decision::Rejected(_)));

        if explanation.has_feasible_deadline() {
            let suggested = explanation.min_feasible_deadline;
            prop_assert!(
                suggested > task.rel_deadline,
                "a feasible deadline suggestion must widen: {} vs {}",
                suggested, task.rel_deadline
            );
            prop_assert!(
                (explanation.slack_deficit - (suggested - task.rel_deadline)).abs()
                    <= 1e-6 * suggested.max(1.0),
                "slack deficit is the deadline gap"
            );
            // Resubmission at the suggestion (both engines) is accepted.
            let relaxed = Task::new(2, now, sigma, suggested);
            let (mut f2, mut i2) = engines(algorithm, &releases);
            prop_assert_eq!(f2.submit(relaxed, now), Decision::Accepted,
                "the suggested min deadline must admit");
            prop_assert_eq!(i2.submit(relaxed, now), Decision::Accepted);
            // 0.1% tighter than minimal must still fail.
            let tighter = suggested * 0.999;
            if tighter > task.rel_deadline {
                let (mut f3, _) = engines(algorithm, &releases);
                prop_assert!(
                    matches!(
                        f3.submit(Task::new(3, now, sigma, tighter), now),
                        Decision::Rejected(_)
                    ),
                    "0.1% inside the suggested minimum must still reject"
                );
            }
        }

        if explanation.has_feasible_sigma() {
            let suggested = explanation.max_feasible_sigma;
            prop_assert!(
                suggested < sigma,
                "a feasible sigma suggestion must shrink: {suggested} vs {sigma}"
            );
            let shrunk = Task::new(4, now, suggested, rel_deadline);
            let (mut f2, mut i2) = engines(algorithm, &releases);
            prop_assert_eq!(f2.submit(shrunk, now), Decision::Accepted,
                "the suggested max sigma must admit");
            prop_assert_eq!(i2.submit(shrunk, now), Decision::Accepted);
            let larger = suggested * 1.001;
            if larger < sigma {
                let (mut f3, _) = engines(algorithm, &releases);
                prop_assert!(
                    matches!(
                        f3.submit(Task::new(5, now, larger, rel_deadline), now),
                        Decision::Rejected(_)
                    ),
                    "0.1% past the suggested maximum must still reject"
                );
            }
        }

        if explanation.has_feasible_start() {
            // Waiting without renegotiating: the unchanged task admits at
            // the reported instant.
            let start = SimTime::new(explanation.earliest_feasible_start);
            prop_assert!(start >= now);
            let (f2, _) = engines(algorithm, &releases);
            prop_assert_eq!(f2.probe(&task, start), Decision::Accepted,
                "the earliest feasible start must admit the unchanged task");
        }
        }
    }

    #[test]
    fn explanations_ride_rejected_verdicts_identically(
        releases in arb_releases(),
        sigma in 10_000.0f64..200_000.0,
    ) {
        // The service-facing half of the honesty story: when explanation
        // annotation is on, the explanation attached to a Rejected verdict
        // is byte-for-byte the one `explain` serves for the same request.
        let (full, _) = engines(AlgorithmKind::EDF_DLT, &releases);
        let now = SimTime::ZERO;
        let task = Task::new(9, now, sigma, 0.25);
        let request = SubmitRequest::new(task);
        let direct = full.explain(&request, now);
        let again = full.explain(&request, now);
        prop_assert_eq!(direct, again, "explain is deterministic");
    }
}
