//! The differential oracle: every scenario is replayed through BOTH
//! admission engines — the reference full-replan [`AdmissionController`]
//! and the diff-based [`IncrementalController`] — and the two must agree
//! **exactly** after every single operation: same decisions, same plans,
//! same committed releases, same serialized [`ControllerState`], same
//! backlog and dispatch horizon.
//!
//! Because the incremental engine can silently diverge (a reuse gate that
//! is one epsilon too permissive would admit a task the reference engine
//! rejects, or install a stale plan), this suite is the heart of the
//! engine's correctness story: scenarios cover streaming submissions,
//! bursts through the checkpoint-rewind batch path, dispatches, early node
//! releases, replans, demote-style removals, and real workload streams
//! (Poisson, bursty, and heavy-tailed sizes) at >1000 generated cases.
//!
//! On divergence the failing scenario is greedily *shrunk* — ops are
//! removed one at a time while the divergence persists — and the minimal
//! reproducer is printed in the panic message.

use proptest::prelude::*;
use rtdls_core::dlt::homogeneous;
use rtdls_core::prelude::*;
use rtdls_workload::prelude::*;

/// One scripted operation, derived from raw generated floats so scenarios
/// stay self-contained and trivially shrinkable.
#[derive(Clone, Debug)]
enum Op {
    Submit {
        sigma: f64,
        dc: f64,
        dt: f64,
        user: Option<usize>,
    },
    Batch {
        members: Vec<(f64, f64)>,
        dt: f64,
    },
    Probe {
        sigma: f64,
        dc: f64,
    },
    EarliestFeasibleStart {
        sigma: f64,
        dc: f64,
    },
    TakeDue {
        dt: f64,
    },
    EarlyRelease {
        node: usize,
        frac: f64,
    },
    Replan {
        dt: f64,
    },
    RemoveWaiting {
        pick: usize,
    },
}

/// Decodes a raw generated tuple into an [`Op`]. Pure, so the same raw
/// scenario always replays identically.
fn decode(raw: &(u8, f64, f64, f64)) -> Op {
    let (kind, a, b, c) = *raw;
    let sigma = 10.0 + a * 790.0;
    let user = (b > 0.25).then(|| 1 + (a * 97.0) as usize % 16);
    match kind % 9 {
        // Submissions get double weight (0 and 1): they are the hot path.
        0 | 1 => Op::Submit {
            sigma,
            dc: 0.3 + b * 15.0,
            dt: c * 1_500.0,
            user,
        },
        2 => {
            let n = 1 + (a * 5.0) as usize;
            let members = (0..n)
                .map(|i| {
                    let fi = i as f64;
                    (
                        10.0 + ((a * 613.0 + fi * 131.0) % 790.0),
                        0.3 + ((b * 11.0 + fi * 2.3) % 15.0),
                    )
                })
                .collect();
            Op::Batch {
                members,
                dt: c * 1_000.0,
            }
        }
        3 => Op::Probe {
            sigma,
            dc: 0.3 + b * 15.0,
        },
        4 => Op::TakeDue { dt: a * 2_000.0 },
        5 => Op::EarlyRelease {
            node: (a * 1_000.0) as usize,
            frac: b,
        },
        6 => Op::Replan { dt: a * 500.0 },
        7 => Op::RemoveWaiting {
            pick: (a * 1_000.0) as usize,
        },
        // Deliberately tight deadline factors: the reservation search only
        // does interesting work on tasks the plain test rejects.
        _ => Op::EarliestFeasibleStart {
            sigma,
            dc: 0.2 + b * 3.0,
        },
    }
}

/// Both engines side by side, plus the scenario clock and id allocator.
struct Harness {
    full: AdmissionController,
    inc: IncrementalController,
    now: f64,
    next_id: u64,
}

impl Harness {
    fn new(algorithm: AlgorithmKind) -> Self {
        let params = ClusterParams::paper_baseline();
        let cfg = PlanConfig::default();
        Harness {
            full: AdmissionController::new(params, algorithm, cfg),
            inc: IncrementalController::new(params, algorithm, cfg),
            now: 0.0,
            next_id: 0,
        }
    }

    fn mk_task(&mut self, sigma: f64, dc: f64, user: Option<usize>) -> Task {
        let p = *self.full.params();
        let e16 = homogeneous::exec_time(&p, sigma, p.num_nodes);
        let id = self.next_id;
        self.next_id += 1;
        Task::new(id, self.now, sigma, dc * e16).with_user_nodes(user)
    }

    /// Asserts full observable equality between the two engines.
    fn check(&self, context: &str) -> Result<(), String> {
        let (fs, is) = (self.full.state(), self.inc.state());
        if fs != is {
            return Err(format!(
                "{context}: ControllerState diverged\n full: {fs:?}\n incr: {is:?}"
            ));
        }
        let now = SimTime::new(self.now);
        if self.full.backlog(now) != self.inc.backlog(now) {
            return Err(format!("{context}: backlog diverged"));
        }
        if self.full.next_dispatch_due() != self.inc.next_dispatch_due() {
            return Err(format!("{context}: next_dispatch_due diverged"));
        }
        Ok(())
    }

    /// Applies one op to both engines, checking decision and state
    /// equality.
    fn apply(&mut self, i: usize, op: &Op) -> Result<(), String> {
        match op {
            Op::Submit {
                sigma,
                dc,
                dt,
                user,
            } => {
                self.now += dt;
                let task = self.mk_task(*sigma, *dc, *user);
                let now = SimTime::new(self.now);
                let a = self.full.submit(task, now);
                let b = self.inc.submit(task, now);
                if a != b {
                    return Err(format!("op {i} {op:?}: decision diverged {a:?} vs {b:?}"));
                }
            }
            Op::Batch { members, dt } => {
                self.now += dt;
                let batch: Vec<Task> = members
                    .iter()
                    .map(|&(sigma, dc)| self.mk_task(sigma, dc, None))
                    .collect();
                let now = SimTime::new(self.now);
                let a = self.full.submit_batch(&batch, now);
                let b = self.inc.submit_batch(&batch, now);
                if a != b {
                    return Err(format!(
                        "op {i} {op:?}: batch decisions diverged {a:?} vs {b:?}"
                    ));
                }
            }
            Op::Probe { sigma, dc } => {
                let task = self.mk_task(*sigma, *dc, None);
                let now = SimTime::new(self.now);
                let a = self.full.probe_plan(&task, now);
                let b = self.inc.probe_plan(&task, now);
                if a != b {
                    return Err(format!("op {i} {op:?}: probe diverged {a:?} vs {b:?}"));
                }
            }
            Op::EarliestFeasibleStart { sigma, dc } => {
                let task = self.mk_task(*sigma, *dc, None);
                let now = SimTime::new(self.now);
                let a = self.full.earliest_feasible_start(&task, now);
                let b = self.inc.earliest_feasible_start(&task, now);
                if a != b {
                    return Err(format!(
                        "op {i} {op:?}: earliest_feasible_start diverged {a:?} vs {b:?}"
                    ));
                }
                // Contract checks against the reference engine itself:
                // Some(now) iff the plain probe accepts, and a promised
                // start honors the dispatch-then-resubmit protocol.
                let probe_accepts = self.full.probe(&task, now).is_accepted();
                if (a == Some(now)) != probe_accepts {
                    return Err(format!(
                        "op {i} {op:?}: Some(now)={:?} disagrees with probe={probe_accepts}",
                        a
                    ));
                }
                if let Some(start) = a.filter(|s| s.definitely_after(now)) {
                    let mut replay = self.full.clone();
                    let _ = replay.take_due(start);
                    if !replay.submit(task, start).is_accepted() {
                        return Err(format!(
                            "op {i} {op:?}: promised start {start:?} dishonored"
                        ));
                    }
                }
            }
            Op::TakeDue { dt } => {
                self.now += dt;
                let now = SimTime::new(self.now);
                let a = self.full.take_due(now);
                let b = self.inc.take_due(now);
                if a != b {
                    return Err(format!("op {i} {op:?}: take_due diverged {a:?} vs {b:?}"));
                }
            }
            Op::EarlyRelease { node, frac } => {
                let node = node % self.full.params().num_nodes;
                // Pull the node's committed release part-way back toward
                // `now` — the "node freed earlier than estimated" event.
                let rel = self.full.committed_releases()[node].as_f64();
                let time = SimTime::new(self.now + frac * (rel - self.now).max(0.0));
                self.full.set_node_release(node, time);
                self.inc.set_node_release(node, time);
            }
            Op::Replan { dt } => {
                self.now += dt;
                let now = SimTime::new(self.now);
                let a = self.full.replan(now);
                let b = self.inc.replan(now);
                if a != b {
                    return Err(format!("op {i} {op:?}: replan diverged {a:?} vs {b:?}"));
                }
            }
            Op::RemoveWaiting { pick } => {
                if self.full.queue_len() > 0 {
                    let id = self.full.queue()[pick % self.full.queue_len()].0.id;
                    let a = self.full.remove_waiting(id);
                    let b = self.inc.remove_waiting(id);
                    if a != b {
                        return Err(format!("op {i} {op:?}: remove diverged {a:?} vs {b:?}"));
                    }
                }
            }
        }
        self.check(&format!("op {i} {op:?}"))
    }
}

/// Replays one raw scenario through both engines; `Err` describes the
/// first divergence.
fn check_scenario(algorithm: AlgorithmKind, raws: &[(u8, f64, f64, f64)]) -> Result<(), String> {
    let mut h = Harness::new(algorithm);
    h.check("initial")?;
    for (i, raw) in raws.iter().enumerate() {
        let op = decode(raw);
        h.apply(i, &op)?;
    }
    Ok(())
}

/// Greedy delta-debugging: drop raw ops one at a time while the divergence
/// persists, then panic with the minimal reproducer.
fn shrink_and_report(
    algorithm: AlgorithmKind,
    raws: &[(u8, f64, f64, f64)],
    first_error: String,
) -> ! {
    let mut ops = raws.to_vec();
    loop {
        let mut reduced = false;
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut cand = ops.clone();
            cand.remove(i);
            if check_scenario(algorithm, &cand).is_err() {
                ops = cand;
                reduced = true;
                break;
            }
        }
        if !reduced {
            break;
        }
    }
    let minimal_error = check_scenario(algorithm, &ops).unwrap_err();
    let decoded: Vec<Op> = ops.iter().map(decode).collect();
    panic!(
        "differential oracle: engines diverged.\n\
         original error: {first_error}\n\
         minimal scenario ({} ops, algorithm {algorithm}):\n{decoded:#?}\n\
         raw tuples for replay: {ops:?}\n\
         minimal error: {minimal_error}",
        ops.len()
    );
}

fn algorithms() -> Vec<AlgorithmKind> {
    vec![
        AlgorithmKind::EDF_DLT,
        AlgorithmKind::FIFO_DLT,
        AlgorithmKind::EDF_OPR_MN,
        AlgorithmKind::EDF_USER_SPLIT,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]
    #[test]
    fn differential_random_ops(
        algorithm in prop::sample::select(algorithms()),
        raws in prop::collection::vec((0u8..9, 0.0..1.0, 0.0..1.0, 0.0..1.0), 1..30),
    ) {
        if let Err(e) = check_scenario(algorithm, &raws) {
            shrink_and_report(algorithm, &raws, e);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn differential_batch_heavy(
        algorithm in prop::sample::select(vec![AlgorithmKind::EDF_DLT, AlgorithmKind::FIFO_DLT]),
        raws in prop::collection::vec(
            // Kinds 2/4/5 dominate: bursts through the checkpoint-rewind
            // path, interleaved with dispatches, early releases, and the
            // reservation search (kind 8).
            (prop::sample::select(vec![2u8, 2, 2, 4, 5, 0, 8]), 0.0..1.0, 0.0..1.0, 0.0..1.0),
            1..16,
        ),
    ) {
        if let Err(e) = check_scenario(algorithm, &raws) {
            shrink_and_report(algorithm, &raws, e);
        }
    }
}

/// Drives both engines with a real workload stream: submissions at their
/// arrival instants, a dispatch sweep before each, an early release every
/// seventh task, and a closing burst through the batch path.
fn check_workload_stream(tasks: &[Task], algorithm: AlgorithmKind) -> Result<(), String> {
    let mut h = Harness::new(algorithm);
    let (head, tail) = tasks.split_at(tasks.len().saturating_sub(5));
    for (i, t) in head.iter().enumerate() {
        h.now = t.arrival.as_f64();
        let now = t.arrival;
        let a = h.full.take_due(now);
        let b = h.inc.take_due(now);
        if a != b {
            return Err(format!("task {i}: take_due diverged"));
        }
        if i % 7 == 3 {
            let node = i % h.full.params().num_nodes;
            let rel = h.full.committed_releases()[node].as_f64();
            let time = SimTime::new(h.now + 0.5 * (rel - h.now).max(0.0));
            h.full.set_node_release(node, time);
            h.inc.set_node_release(node, time);
            let ra = h.full.replan(now);
            let rb = h.inc.replan(now);
            if ra != rb {
                return Err(format!("task {i}: replan diverged {ra:?} vs {rb:?}"));
            }
        }
        if i % 5 == 2 {
            // A reservation search for the incoming task before deciding
            // it: both engines must name the same instant (or none).
            let ea = h.full.earliest_feasible_start(t, now);
            let eb = h.inc.earliest_feasible_start(t, now);
            if ea != eb {
                return Err(format!(
                    "task {i}: earliest_feasible_start diverged {ea:?} vs {eb:?}"
                ));
            }
        }
        let da = h.full.submit(*t, now);
        let db = h.inc.submit(*t, now);
        if da != db {
            return Err(format!(
                "task {i} {t:?}: decision diverged {da:?} vs {db:?}"
            ));
        }
        h.check(&format!("task {i}"))?;
    }
    if let Some(last) = tail.last() {
        h.now = last.arrival.as_f64();
        let now = last.arrival;
        let a = h.full.submit_batch(tail, now);
        let b = h.inc.submit_batch(tail, now);
        if a != b {
            return Err("closing batch decisions diverged".into());
        }
        h.check("closing batch")?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(220))]
    #[test]
    fn differential_workload_streams(
        seed in 0u64..1_000_000,
        load in 0.4..2.0,
        flavor in 0u8..3,
        algorithm in prop::sample::select(vec![AlgorithmKind::EDF_DLT, AlgorithmKind::FIFO_DLT]),
    ) {
        let mut spec = WorkloadSpec::paper_baseline(load);
        spec.dc_ratio = 6.0;
        spec.horizon = 1e9; // bound by take() below, not the horizon
        let tasks: Vec<Task> = match flavor {
            // Bursty arrivals (the gateway's stress regime).
            0 => {
                spec.horizon = 40.0 * spec.mean_interarrival();
                let profile = BurstProfile { rate_factor: 3.0, ..BurstProfile::moderate(&spec) };
                BurstyPoisson::new(spec, profile, seed).take(40).collect()
            }
            // Heavy-tailed sizes (rare huge tasks between many small ones).
            1 => {
                spec = spec.with_size_model(SizeModel::HeavyTailed);
                WorkloadGenerator::new(spec, seed).take(40).collect()
            }
            // The paper's plain Poisson/normal stream.
            _ => WorkloadGenerator::new(spec, seed).take(40).collect(),
        };
        prop_assume!(!tasks.is_empty());
        if let Err(e) = check_workload_stream(&tasks, algorithm) {
            panic!(
                "differential oracle (workload stream): {e}\n\
                 seed={seed} load={load} flavor={flavor} algorithm={algorithm}"
            );
        }
    }
}

#[test]
fn steady_deep_queue_actually_exercises_the_diff_path() {
    // Guard against the incremental engine silently degrading to
    // replan-always (it would still pass every differential check): in the
    // steady deep-queue regime the reuse rate must be overwhelming.
    let params = ClusterParams::paper_baseline();
    let mut inc = IncrementalController::new(params, AlgorithmKind::EDF_DLT, PlanConfig::default());
    for i in 0..128u64 {
        let t = Task::new(i, 0.0, 100.0, 5e6 + i as f64 * 1e4);
        assert!(inc.submit(t, SimTime::ZERO).is_accepted());
    }
    let stats = inc.stats();
    assert!(
        stats.reuse_rate() > 0.9,
        "deep-queue streaming should be ~all reuse, got {:?}",
        stats
    );
    // 128 submissions into an EDF-ordered queue with increasing deadlines:
    // exactly one fresh plan each, everything before it reused.
    assert_eq!(stats.plans_computed, 128);
}
