//! Independent numerical verification of the heterogeneous partition.
//!
//! The production code derives `α` through the paper's recurrence
//! (Eq. 4–5). This test re-derives it from first principles: the optimal
//! partition is defined by the *equal-finish* linear system (Eq. 3)
//!
//! ```text
//! Σ_{j≤i} α_j·σ·Cms + α_i·σ·Cps_i = T   for i = 1..n
//! Σ_i α_i = 1
//! ```
//!
//! with unknowns `α_1..α_n, T`. Solving that system directly with a dense
//! Gaussian elimination (written here, sharing no code with the library)
//! must reproduce the library's partition and execution time.

#![allow(clippy::needless_range_loop)] // translated numeric reference code

use rtdls_core::prelude::*;

/// Dense Gaussian elimination with partial pivoting. `a` is row-major
/// `n×n`, `b` the right-hand side; returns `x` with `a·x = b`.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        assert!(a[col][col].abs() > 1e-14, "singular system");
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

/// Solves the equal-finish system for the given heterogeneous speeds and
/// returns `(alphas, exec_time)`.
fn solve_equal_finish(sigma: f64, cms: f64, cps_het: &[f64]) -> (Vec<f64>, f64) {
    let n = cps_het.len();
    // Unknowns x = [α_1..α_n, T]; n equal-finish rows + 1 normalization row.
    let mut a = vec![vec![0.0; n + 1]; n + 1];
    let mut b = vec![0.0; n + 1];
    for i in 0..n {
        for j in 0..=i {
            a[i][j] += sigma * cms;
        }
        a[i][i] += sigma * cps_het[i];
        a[i][n] = -1.0; // − T
        b[i] = 0.0;
    }
    for j in 0..n {
        a[n][j] = 1.0;
    }
    b[n] = 1.0;
    let x = solve_dense(a, b);
    (x[..n].to_vec(), x[n])
}

#[test]
fn closed_form_partition_matches_direct_linear_solve() {
    let cases: Vec<(ClusterParams, Vec<f64>, f64)> = vec![
        (
            ClusterParams::paper_baseline(),
            vec![0.0, 0.0, 500.0, 500.0],
            100.0,
        ),
        (
            ClusterParams::paper_baseline(),
            vec![0.0, 100.0, 200.0, 300.0, 400.0],
            321.0,
        ),
        (
            ClusterParams::new(8, 8.0, 10.0).unwrap(),
            vec![0.0, 5.0, 5.0, 60.0, 61.0, 62.0, 400.0, 1000.0],
            55.5,
        ),
        (
            ClusterParams::new(16, 1.0, 10_000.0).unwrap(),
            (0..16).map(|i| 1_000.0 * i as f64).collect(),
            800.0,
        ),
    ];
    for (params, releases, sigma) in cases {
        let times: Vec<SimTime> = releases.iter().copied().map(SimTime::new).collect();
        let model = HeterogeneousModel::new(&params, sigma, &times).unwrap();
        let cps_het: Vec<f64> = (0..model.n()).map(|i| model.cps_het(i)).collect();
        let (alphas, t) = solve_equal_finish(sigma, params.cms, &cps_het);
        for (i, (ours, direct)) in model.alphas().iter().zip(&alphas).enumerate() {
            assert!(
                (ours - direct).abs() < 1e-9,
                "α_{i}: recurrence {ours} vs linear solve {direct} ({releases:?})"
            );
        }
        assert!(
            (model.exec_time() - t).abs() / t < 1e-9,
            "Ê: recurrence {} vs linear solve {t}",
            model.exec_time()
        );
    }
}

#[test]
fn homogeneous_partition_matches_direct_linear_solve() {
    // Simultaneous allocation is the degenerate case Cps_i = Cps.
    for (n, cms, cps) in [(4usize, 1.0, 100.0), (12, 4.0, 50.0), (16, 1.0, 10_000.0)] {
        let params = ClusterParams::new(n, cms, cps).unwrap();
        let sigma = 250.0;
        let (alphas, t) = solve_equal_finish(sigma, cms, &vec![cps; n]);
        let ours = homogeneous::alphas(&params, n);
        for (i, (a, d)) in ours.iter().zip(&alphas).enumerate() {
            assert!((a - d).abs() < 1e-9, "α_{i}: {a} vs {d}");
        }
        let e = homogeneous::exec_time(&params, sigma, n);
        assert!((e - t).abs() / t < 1e-9, "E: {e} vs {t}");
    }
}

#[test]
fn optimality_of_equal_finish_partition() {
    // The equal-finish partition minimizes the makespan: perturbing load
    // between any two nodes (keeping Σα = 1) can only increase the finish
    // time of one of them beyond Ê.
    let params = ClusterParams::paper_baseline();
    let releases: Vec<SimTime> = [0.0, 50.0, 120.0].into_iter().map(SimTime::new).collect();
    let sigma = 90.0;
    let model = HeterogeneousModel::new(&params, sigma, &releases).unwrap();
    let base = model.alphas().to_vec();
    let finish = |alphas: &[f64]| -> f64 {
        // Model-side finish times (all nodes allocated at r_n).
        let mut tx_end = 0.0;
        let mut worst: f64 = 0.0;
        for (i, &a) in alphas.iter().enumerate() {
            tx_end += a * sigma * params.cms;
            worst = worst.max(tx_end + a * sigma * model.cps_het(i));
        }
        worst
    };
    let base_makespan = finish(&base);
    assert!((base_makespan - model.exec_time()).abs() < 1e-9);
    for (from, to) in [(0usize, 1usize), (1, 2), (2, 0)] {
        for delta in [1e-3, 1e-2] {
            let mut perturbed = base.clone();
            perturbed[from] -= delta;
            perturbed[to] += delta;
            assert!(
                finish(&perturbed) > base_makespan - 1e-12,
                "perturbation ({from}->{to}, {delta}) should not beat the optimum"
            );
        }
    }
}
