//! Property-based tests for the DLT mathematics — the paper's Assertions 1–3,
//! Lemma 2, Eq. 9, and Theorem 4 checked over randomized inputs.

use proptest::prelude::*;
use rtdls_core::prelude::*;

/// Strategy for realistic cluster parameters spanning the paper's sweeps
/// (`Cms ∈ [0.5, 16]`, `Cps ∈ [5, 20 000]`, `N ∈ [1, 128]`).
fn cluster_params() -> impl Strategy<Value = ClusterParams> {
    (1usize..=128, 0.5f64..16.0, 5.0f64..20_000.0)
        .prop_map(|(n, cms, cps)| ClusterParams::new(n, cms, cps).unwrap())
}

/// Sorted release times with both clustered and spread-out patterns.
fn release_times(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..50_000.0, 1..=max_n).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    })
}

fn to_simtimes(v: &[f64]) -> Vec<SimTime> {
    v.iter().copied().map(SimTime::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The partition always sums to 1, is strictly positive, and is
    /// non-increasing in transmission order (Assertion 1 generalized).
    #[test]
    fn partition_is_a_decreasing_probability_vector(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
    ) {
        let m = HeterogeneousModel::new(&params, sigma, &to_simtimes(&releases)).unwrap();
        let alphas = m.alphas();
        let sum: f64 = alphas.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        for &a in alphas {
            prop_assert!(a > 0.0, "non-positive fraction {a}");
        }
        for w in alphas.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-12), "increasing fractions {w:?}");
        }
    }

    /// Lemma 2: `α_i < (Cps_1 / Cps_i) · α_1` for i ≥ 2.
    #[test]
    fn lemma2_alpha_bound(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
    ) {
        let m = HeterogeneousModel::new(&params, sigma, &to_simtimes(&releases)).unwrap();
        let alphas = m.alphas();
        for i in 1..m.n() {
            let bound = m.cps_het(0) / m.cps_het(i) * alphas[0];
            prop_assert!(
                alphas[i] <= bound * (1.0 + 1e-9),
                "Lemma 2 violated at i={i}: {} > {bound}", alphas[i]
            );
        }
    }

    /// Eq. 9: `Ê(σ,n) ≤ E(σ,n)` — utilizing IITs never hurts; equality only
    /// when all release times coincide.
    #[test]
    fn iit_execution_never_exceeds_no_iit(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
    ) {
        let m = HeterogeneousModel::new(&params, sigma, &to_simtimes(&releases)).unwrap();
        prop_assert!(m.exec_time() <= m.e_no_iit() * (1.0 + 1e-9));
        let spread = releases.last().unwrap() - releases.first().unwrap();
        if spread > 1.0 && m.n() > 1 {
            prop_assert!(
                m.exec_time() < m.e_no_iit(),
                "positive IIT must strictly shrink execution"
            );
        }
    }

    /// Theorem 4 (analytical side): the per-node actual-completion bounds
    /// never exceed the completion estimate used by admission.
    #[test]
    fn theorem4_bounds_below_estimate(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
    ) {
        let m = HeterogeneousModel::new(&params, sigma, &to_simtimes(&releases)).unwrap();
        let est = m.completion_estimate().as_f64();
        for i in 0..m.n() {
            let b = m.actual_completion_bound(i).as_f64();
            prop_assert!(
                b <= est * (1.0 + 1e-9) + 1e-9,
                "node {i} bound {b} exceeds estimate {est}"
            );
        }
    }

    /// Every model the strategies can build satisfies the full invariant set.
    #[test]
    fn model_invariants_always_hold(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
    ) {
        let m = HeterogeneousModel::new(&params, sigma, &to_simtimes(&releases)).unwrap();
        if let Err(msg) = m.check_invariants() {
            prop_assert!(false, "invariant violated: {msg}");
        }
    }

    /// `ñ_min` soundness: starting `ñ_min` nodes at `r_n` meets the deadline
    /// under the no-IIT execution time, and the bound is minimal for that
    /// closed form (brute-force check).
    #[test]
    fn n_tilde_min_is_sound_and_tight(
        params in cluster_params(),
        sigma in 1.0f64..5_000.0,
        r_n in 0.0f64..10_000.0,
        slack_factor in 1.01f64..100.0,
    ) {
        // Deadline expressed relative to the full-cluster execution time so
        // feasible instances dominate.
        let e_full = homogeneous::exec_time(&params, sigma, params.num_nodes);
        let deadline = SimTime::new(r_n + e_full * slack_factor);
        match n_tilde_min(&params, sigma, SimTime::new(r_n), deadline) {
            Ok(n) => {
                let e = homogeneous::exec_time(&params, sigma, n);
                prop_assert!(
                    r_n + e <= deadline.as_f64() * (1.0 + 1e-9),
                    "ñ_min={n} misses: {} > {}", r_n + e, deadline.as_f64()
                );
                if n > 1 {
                    let e_less = homogeneous::exec_time(&params, sigma, n - 1);
                    prop_assert!(
                        r_n + e_less >= deadline.as_f64() * (1.0 - 1e-6),
                        "ñ_min={n} not minimal"
                    );
                }
            }
            Err(_) => {
                // Only legitimate when even unbounded parallelism fails:
                // the transmission alone must not fit.
                let slack = deadline.as_f64() - r_n;
                prop_assert!(
                    slack <= sigma * params.cms * (1.0 + 1e-9),
                    "rejected although transmission fits: slack={slack}"
                );
            }
        }
    }

    /// The fixed-point scan returns the minimal feasible node count under
    /// the earliest-nodes selection rule: every smaller count fails its own
    /// `ñ_min` test.
    #[test]
    fn scan_result_is_minimal_fixed_point(
        params in cluster_params(),
        releases in release_times(64),
        sigma in 1.0f64..5_000.0,
        slack_factor in 1.01f64..50.0,
    ) {
        prop_assume!(releases.len() <= params.num_nodes);
        let mut padded = releases.clone();
        padded.resize(params.num_nodes, *releases.last().unwrap());
        padded.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let times = to_simtimes(&padded);
        let e_full = homogeneous::exec_time(&params, sigma, params.num_nodes);
        let deadline = SimTime::new(padded[padded.len() - 1] + e_full * slack_factor);
        if let Ok(res) = min_feasible_nodes(&params, sigma, &times, deadline) {
            prop_assert!(res.n >= 1 && res.n <= params.num_nodes);
            // Chosen n passes.
            let req = n_tilde_min(&params, sigma, res.r_n, deadline).unwrap();
            prop_assert!(req <= res.n);
            // Every smaller n fails.
            for k in 1..res.n {
                let r_k = times[k - 1];
                if let Ok(req_k) = n_tilde_min(&params, sigma, r_k, deadline) { prop_assert!(req_k > k, "scan not minimal at k={k}") }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Admission soundness across all four strategies: an accepted plan's
    /// estimate meets the deadline and its node bookkeeping is consistent.
    #[test]
    fn accepted_plans_are_deadline_safe(
        (params, releases) in (1usize..=32, 0.5f64..16.0, 5.0f64..20_000.0).prop_flat_map(
            |(n, cms, cps)| {
                let params = ClusterParams::new(n, cms, cps).unwrap();
                (Just(params), proptest::collection::vec(0.0f64..50_000.0, n))
            },
        ),
        sigma in 1.0f64..2_000.0,
        rel_deadline in 10.0f64..1_000_000.0,
        user_frac in 0.0f64..1.0,
    ) {
        let mut releases = releases;
        releases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rel: Vec<SimTime> = to_simtimes(&releases);
        let now = SimTime::ZERO;
        let avail = NodeAvailability::new(&rel, now);
        let user_n = user_split_n_min(&params, sigma, rel_deadline).map(|n_min| {
            let span = params.num_nodes.saturating_sub(n_min);
            n_min + (user_frac * span as f64) as usize
        });
        let task = Task::new(1, 0.0, sigma, rel_deadline)
            .with_user_nodes(user_n.filter(|&n| n <= params.num_nodes));
        for kind in [
            StrategyKind::DltIit,
            StrategyKind::OprMn,
            StrategyKind::OprAn,
            StrategyKind::UserSplit,
        ] {
            if let Ok(plan) = plan_task(kind, &task, &avail, &params, &PlanConfig::default()) {
                prop_assert!(
                    !plan.est_completion.definitely_after(task.absolute_deadline()),
                    "{kind:?} accepted a deadline miss"
                );
                prop_assert_eq!(plan.nodes.len(), plan.fractions.len());
                let mut seen = std::collections::HashSet::new();
                for n in &plan.nodes {
                    prop_assert!(seen.insert(*n), "duplicate node in plan");
                    prop_assert!(n.index() < params.num_nodes);
                }
                for (rel_est, start) in
                    plan.node_release_estimates.iter().zip(&plan.start_times)
                {
                    prop_assert!(rel_est >= start, "release estimate precedes start");
                }
            }
        }
    }
}
