//! The append-only journal: framed records in memory, optionally mirrored
//! to a durable sink, with periodic compacting snapshots.
//!
//! A journal always begins with a **genesis snapshot** — the gateway state
//! at journal creation — so recovery never needs an out-of-band bootstrap
//! config: the log alone suffices. After every [`JournalConfig::snapshot_every`]
//! input events the owner appends a fresh snapshot; with
//! [`JournalConfig::compact_on_snapshot`] the bytes before that snapshot are
//! dropped (and the sink rewritten), bounding both log length and recovery
//! replay time.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::event::JournalEvent;
use crate::snapshot::{GatewaySnapshot, JournalError};
use crate::wire::{decode_frames, encode_frame, Frame, RecordKind, TailStatus};

/// Journal tunables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Append a compacting snapshot after this many input events
    /// (0 = never; only the genesis snapshot is written).
    pub snapshot_every: usize,
    /// Drop the bytes before each new snapshot (and rewrite the sink), so
    /// the log holds exactly one snapshot plus its tail.
    pub compact_on_snapshot: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            snapshot_every: 256,
            compact_on_snapshot: true,
        }
    }
}

/// Cumulative durability counters a [`JournalSink`] reports (the journal's
/// contribution to the unified metrics registry, and the numbers behind
/// group-commit tuning: how many fsyncs the batching window actually
/// saved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Frames appended over the sink's lifetime.
    pub appends: u64,
    /// `sync_data` calls performed (group commits completed).
    pub syncs: u64,
    /// Bytes written (appends plus compaction rewrites).
    pub bytes_written: u64,
    /// Largest number of appends committed by one fsync.
    pub max_batch: u64,
}

/// A durable byte store the journal mirrors its frames into.
///
/// `append` must *write* the frame (ordered after every earlier frame)
/// before returning, and after [`JournalSink::flush`] every appended byte
/// must be durable. Whether each individual append is synced immediately
/// is the sink's durability policy (see [`FsyncPolicy`]): a crash between
/// a batched append and the next flush may lose the unsynced tail, but —
/// because writes stay ordered — never an earlier record, so recovery
/// always finds a valid prefix. A sink that cannot persist at all must
/// panic rather than silently continue.
///
/// `Send` is required so a journaled gateway can serve from a dedicated
/// thread (the network edge runs its reactor that way).
pub trait JournalSink: Send {
    /// Appends one encoded frame.
    fn append(&mut self, frame: &[u8]);
    /// Replaces the entire stored log (compaction).
    fn reset(&mut self, bytes: &[u8]);
    /// Makes every appended byte durable (group-commit boundary). Sinks
    /// that sync per append need not override this.
    fn flush(&mut self) {}
    /// Cumulative durability counters. Sinks that don't track them report
    /// zeros.
    fn stats(&self) -> SinkStats {
        SinkStats::default()
    }
    /// Tells the sink the current promotion epoch (stamped into segment
    /// manifests by [`SegmentedSink`](crate::segment::SegmentedSink)).
    /// Sinks without epoch-aware storage ignore it.
    fn set_epoch(&mut self, _epoch: u64) {}
    /// Per-segment durability counters, for sinks that rotate their log
    /// into segments. Single-file and in-memory sinks report none.
    fn segments(&self) -> Vec<crate::segment::SegmentStats> {
        Vec::new()
    }
}

/// When a [`FileSink`] fsyncs its appended frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every frame — the strongest guarantee: an
    /// acknowledged append survives any crash.
    EveryAppend,
    /// Group commit: `sync_data` once per `window` appended frames (and on
    /// [`JournalSink::flush`]). A crash can lose at most the last
    /// `window − 1` acknowledged frames; writes stay ordered, so recovery
    /// still finds a valid prefix of the history. `Batch(1)` behaves like
    /// [`FsyncPolicy::EveryAppend`].
    Batch(usize),
}

/// File-backed sink: `append` is write (+ `sync_data` per its
/// [`FsyncPolicy`] — per frame by default, or batched into group commits),
/// `reset` swaps in the new log atomically via a synced temp file + rename,
/// so a crash mid-compaction leaves either the old log or the new one —
/// never a truncated in-between.
#[derive(Debug)]
pub struct FileSink {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Appends written since the last `sync_data`.
    unsynced: usize,
    /// Cumulative durability counters (observability/tests).
    stats: SinkStats,
}

impl FileSink {
    /// Creates (truncating) the journal file, syncing every append.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileSink {
            file,
            path,
            policy: FsyncPolicy::EveryAppend,
            unsynced: 0,
            stats: SinkStats::default(),
        })
    }

    /// Opens the file for appending **without touching its contents**.
    /// Recovery attaches a sink this way so the existing log survives until
    /// the atomic post-recovery rewrite replaces it.
    pub fn open_preserving(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileSink {
            file,
            path,
            policy: FsyncPolicy::EveryAppend,
            unsynced: 0,
            stats: SinkStats::default(),
        })
    }

    /// Sets the fsync policy (builder style).
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The file this sink writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `sync_data` calls performed so far (group-commit observability).
    pub fn syncs_performed(&self) -> u64 {
        self.stats.syncs
    }

    /// Reads a journal file back into bytes (the recovery entry point).
    pub fn read(path: impl AsRef<Path>) -> Result<Vec<u8>, JournalError> {
        Ok(std::fs::read(path.as_ref())?)
    }

    fn sync(&mut self) {
        self.file
            .sync_data()
            .expect("journal file fsync must succeed");
        self.stats.max_batch = self.stats.max_batch.max(self.unsynced as u64);
        self.unsynced = 0;
        self.stats.syncs += 1;
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, frame: &[u8]) {
        self.file
            .write_all(frame)
            .expect("journal file append must succeed");
        self.stats.appends += 1;
        self.stats.bytes_written += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::EveryAppend => self.sync(),
            FsyncPolicy::Batch(window) => {
                if self.unsynced >= window.max(1) {
                    self.sync();
                }
            }
        }
    }

    fn flush(&mut self) {
        if self.unsynced > 0 {
            self.sync();
        }
    }

    fn reset(&mut self, bytes: &[u8]) {
        let mut swap = || -> std::io::Result<()> {
            let mut tmp_name = self.path.file_name().unwrap_or_default().to_os_string();
            tmp_name.push(".tmp");
            let tmp = self.path.with_file_name(tmp_name);
            let mut staged = File::create(&tmp)?;
            staged.write_all(bytes)?;
            staged.sync_data()?;
            std::fs::rename(&tmp, &self.path)?;
            // Make the rename itself durable: without the directory fsync a
            // power failure could resurrect the old directory entry, and
            // frames appended (and acknowledged) after this compaction
            // would vanish with the new inode.
            if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
                File::open(parent)?.sync_all()?;
            }
            self.file = OpenOptions::new().append(true).open(&self.path)?;
            Ok(())
        };
        swap().expect("journal file rewrite must succeed");
        // The staged file was fully synced before the rename.
        self.stats.bytes_written += bytes.len() as u64;
        self.unsynced = 0;
    }

    fn stats(&self) -> SinkStats {
        self.stats
    }
}

impl Drop for FileSink {
    /// Best-effort group-commit completion: a *graceful* shutdown should
    /// not lose the batched tail (a crash, by definition, skips this).
    fn drop(&mut self) {
        if self.unsynced > 0 {
            let _ = self.file.sync_data();
        }
    }
}

/// The journal proper. Owns the canonical byte image (what recovery would
/// read) and forwards every mutation to the optional sink.
///
/// Memory note: the in-memory image holds everything since the last
/// compaction, so under the default compacting config it stays bounded by
/// one snapshot epoch. `snapshot_every: 0` or `compact_on_snapshot: false`
/// trades that bound for full in-process history — on a long-lived
/// file-backed gateway, prefer the compacting default (a segmented log that
/// drops flushed bytes from memory is a ROADMAP follow-up).
pub struct Journal {
    cfg: JournalConfig,
    bytes: Vec<u8>,
    sink: Option<Box<dyn JournalSink>>,
    events_since_snapshot: usize,
    events_appended: u64,
    snapshots_appended: u64,
    /// Global sequence number of the next frame to append. Never resets —
    /// compaction raises `base_seq` instead — so a frame's seq identifies
    /// it for the whole journal lifetime (the replication ship offset).
    head_seq: u64,
    /// Sequence number of the first frame still held in `bytes`.
    base_seq: u64,
    /// Byte offset in `bytes` of each in-memory frame; entry `i` is the
    /// frame with sequence number `base_seq + i`.
    frame_index: Vec<usize>,
    /// Promotion epoch stamped into snapshots and sealed segments. Bumped
    /// by follower promotion; a zombie primary keeps its old epoch and its
    /// late shipped frames are fenced by it.
    epoch: u64,
    /// Hot-path profiler handle (disabled by default: one `Option` check
    /// per append, no clock reads).
    profiler: rtdls_telemetry::Profiler,
}

impl Journal {
    /// An empty in-memory journal (tests, benches, and the crash harness).
    pub fn in_memory(cfg: JournalConfig) -> Self {
        Journal {
            cfg,
            bytes: Vec::new(),
            sink: None,
            events_since_snapshot: 0,
            events_appended: 0,
            snapshots_appended: 0,
            head_seq: 0,
            base_seq: 0,
            frame_index: Vec::new(),
            epoch: 0,
            profiler: rtdls_telemetry::Profiler::disabled(),
        }
    }

    /// An empty journal mirrored to `sink`.
    pub fn with_sink(cfg: JournalConfig, sink: Box<dyn JournalSink>) -> Self {
        Journal {
            sink: Some(sink),
            ..Journal::in_memory(cfg)
        }
    }

    /// Attaches a durable sink after the fact, replacing the sink's stored
    /// log with the journal's current bytes (atomically, for a
    /// [`FileSink`]). Recovery uses this so the old journal file is only
    /// touched *after* recovery has succeeded.
    pub fn attach_sink(&mut self, mut sink: Box<dyn JournalSink>) {
        sink.set_epoch(self.epoch);
        sink.reset(&self.bytes);
        self.sink = Some(sink);
    }

    /// The journal's configuration.
    pub fn config(&self) -> &JournalConfig {
        &self.cfg
    }

    /// Attaches a hot-path profiler: appends, snapshots, and group-commit
    /// flushes start timing into `journal/*` phases.
    pub fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        self.profiler = profiler.clone();
    }

    /// The canonical log bytes (exactly what a recovery would read).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Events appended over the journal's lifetime (snapshots excluded).
    pub fn events_appended(&self) -> u64 {
        self.events_appended
    }

    /// Snapshots appended over the journal's lifetime (genesis included).
    pub fn snapshots_appended(&self) -> u64 {
        self.snapshots_appended
    }

    /// The sink's cumulative durability counters (`None` for an in-memory
    /// journal — there is no durability to account for).
    pub fn sink_stats(&self) -> Option<SinkStats> {
        self.sink.as_ref().map(|s| s.stats())
    }

    /// Per-segment durability counters, when the sink rotates the log into
    /// segments (empty for single-file and in-memory journals).
    pub fn segment_stats(&self) -> Vec<crate::segment::SegmentStats> {
        self.sink.as_ref().map(|s| s.segments()).unwrap_or_default()
    }

    /// Global sequence number the next appended frame will get — the
    /// journal's *appended offset* in replication terms.
    pub fn next_seq(&self) -> u64 {
        self.head_seq
    }

    /// Sequence number of the earliest frame still in memory. Rises on
    /// compaction; frames before it can no longer be re-shipped, but the
    /// frame *at* it is always a snapshot that supersedes them.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The journal's promotion epoch (stamped into every snapshot it
    /// writes and into sealed segment manifests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the promotion epoch (forwarded to the sink for its segment
    /// manifests). Recovery sets this to the restored snapshot's epoch;
    /// follower promotion sets it one higher.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        if let Some(sink) = &mut self.sink {
            sink.set_epoch(epoch);
        }
    }

    /// Raw encoded frames with sequence numbers `from..next_seq()`, clamped
    /// to what is still in memory. Returns the first sequence number
    /// actually included: greater than `from` when compaction dropped older
    /// frames, in which case the first returned frame is the compacting
    /// snapshot that supersedes them.
    pub fn frames_from(&self, from: u64) -> (u64, Vec<&[u8]>) {
        let start = from.max(self.base_seq);
        let mut out = Vec::new();
        let mut i = (start - self.base_seq) as usize;
        while i < self.frame_index.len() {
            let lo = self.frame_index[i];
            let hi = self
                .frame_index
                .get(i + 1)
                .copied()
                .unwrap_or(self.bytes.len());
            out.push(&self.bytes[lo..hi]);
            i += 1;
        }
        (start, out)
    }

    /// `true` once enough input events accumulated since the last snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.events_since_snapshot >= self.cfg.snapshot_every
    }

    /// Completes any pending group commit in the sink (see
    /// [`JournalSink::flush`]). A no-op for in-memory journals and for
    /// sinks that sync per append.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            let started = self.profiler.start();
            sink.flush();
            self.profiler.stop("journal/fsync", started);
        }
    }

    /// Appends one event record.
    pub fn append_event(&mut self, ev: &JournalEvent) {
        let started = self.profiler.start();
        let payload = serde_json::to_string(ev)
            .expect("event serialization is infallible")
            .into_bytes();
        let frame = encode_frame(RecordKind::Event, &payload);
        self.frame_index.push(self.bytes.len());
        self.head_seq += 1;
        self.bytes.extend_from_slice(&frame);
        if let Some(sink) = &mut self.sink {
            sink.append(&frame);
        }
        self.events_appended += 1;
        if ev.is_input() {
            self.events_since_snapshot += 1;
        }
        self.profiler.stop("journal/append", started);
    }

    /// Appends a snapshot record, compacting away the preceding bytes when
    /// configured to.
    pub fn append_snapshot(&mut self, snap: &GatewaySnapshot) {
        let started = self.profiler.start();
        let payload = serde_json::to_string(snap)
            .expect("snapshot serialization is infallible")
            .into_bytes();
        let frame = encode_frame(RecordKind::Snapshot, &payload);
        if self.cfg.compact_on_snapshot {
            self.bytes.clear();
            self.base_seq = self.head_seq;
            self.frame_index.clear();
            self.frame_index.push(0);
            self.head_seq += 1;
            self.bytes.extend_from_slice(&frame);
            if let Some(sink) = &mut self.sink {
                sink.reset(&self.bytes);
            }
        } else {
            self.frame_index.push(self.bytes.len());
            self.head_seq += 1;
            self.bytes.extend_from_slice(&frame);
            if let Some(sink) = &mut self.sink {
                sink.append(&frame);
            }
        }
        self.events_since_snapshot = 0;
        self.snapshots_appended += 1;
        self.profiler.stop("journal/snapshot", started);
    }
}

impl core::fmt::Debug for Journal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Journal")
            .field("cfg", &self.cfg)
            .field("len_bytes", &self.bytes.len())
            .field("events_appended", &self.events_appended)
            .field("snapshots_appended", &self.snapshots_appended)
            .field("sinked", &self.sink.is_some())
            .finish()
    }
}

/// Splits a decoded log into the frames up to and including the **last**
/// intact snapshot, the events after it, and the tail status. Returns
/// `(snapshot, tail_events)`; `snapshot` is `None` when no snapshot frame
/// survived.
pub fn split_at_last_snapshot(bytes: &[u8]) -> (Option<Frame>, Vec<Frame>, TailStatus) {
    let (frames, tail) = decode_frames(bytes);
    let last_snap = frames.iter().rposition(|f| f.kind == RecordKind::Snapshot);
    match last_snap {
        Some(i) => {
            let mut it = frames.into_iter();
            let snap = it.nth(i).expect("index in range");
            (Some(snap), it.collect(), tail)
        }
        None => (None, frames, tail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::SimTime;

    fn ev(at: f64) -> JournalEvent {
        JournalEvent::DispatchDue {
            at: SimTime::new(at),
        }
    }

    fn snap() -> GatewaySnapshot {
        use rtdls_core::prelude::*;
        use rtdls_service::prelude::DeferPolicy;
        use rtdls_service::prelude::Gateway;
        let g = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        crate::snapshot::Recoverable::capture(&g)
    }

    #[test]
    fn snapshot_cadence_counts_only_input_events() {
        let mut j = Journal::in_memory(JournalConfig {
            snapshot_every: 2,
            compact_on_snapshot: false,
        });
        assert!(!j.wants_snapshot());
        j.append_event(&ev(1.0));
        j.append_event(&JournalEvent::Rescued { task: 1 }); // audit: no count
        assert!(!j.wants_snapshot());
        j.append_event(&ev(2.0));
        assert!(j.wants_snapshot());
        j.append_snapshot(&snap());
        assert!(!j.wants_snapshot());
        assert_eq!(j.events_appended(), 3);
        assert_eq!(j.snapshots_appended(), 1);
    }

    #[test]
    fn compaction_keeps_exactly_the_last_snapshot_and_tail() {
        let mut j = Journal::in_memory(JournalConfig {
            snapshot_every: 0,
            compact_on_snapshot: true,
        });
        j.append_snapshot(&snap()); // genesis
        j.append_event(&ev(1.0));
        j.append_event(&ev(2.0));
        j.append_snapshot(&snap()); // compacts
        j.append_event(&ev(3.0));
        let (s, events, tail) = split_at_last_snapshot(j.bytes());
        assert!(tail.is_clean());
        assert!(s.is_some());
        assert_eq!(events.len(), 1, "pre-snapshot events were compacted away");
        let (frames, _) = decode_frames(j.bytes());
        assert_eq!(frames.len(), 2, "snapshot + one event");
        assert_eq!(frames[0].kind, RecordKind::Snapshot);
    }

    #[test]
    fn file_sink_mirrors_memory_exactly_through_compaction() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rtdls-journal-test-{}.wal", std::process::id()));
        {
            let sink = FileSink::create(&path).unwrap();
            let mut j = Journal::with_sink(JournalConfig::default(), Box::new(sink));
            j.append_snapshot(&snap());
            j.append_event(&ev(1.0));
            j.append_event(&ev(2.0));
            let on_disk = FileSink::read(&path).unwrap();
            assert_eq!(on_disk, j.bytes());
            j.append_snapshot(&snap()); // compacting rewrite
            j.append_event(&ev(3.0));
            let on_disk = FileSink::read(&path).unwrap();
            assert_eq!(on_disk, j.bytes());
            let (frames, tail) = decode_frames(&on_disk);
            assert!(tail.is_clean());
            assert_eq!(frames.len(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_batches_fsyncs_and_flush_completes_the_window() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "rtdls-group-commit-test-{}.wal",
            std::process::id()
        ));
        {
            let sink = FileSink::create(&path)
                .unwrap()
                .with_fsync_policy(FsyncPolicy::Batch(8));
            let mut j = Journal::with_sink(
                JournalConfig {
                    snapshot_every: 0,
                    compact_on_snapshot: false,
                },
                Box::new(sink),
            );
            for i in 0..20 {
                j.append_event(&ev(i as f64));
            }
            // Writes always land immediately — only the fsyncs batch.
            let on_disk = FileSink::read(&path).unwrap();
            assert_eq!(on_disk, j.bytes(), "bytes hit the file per append");
            j.flush();
            j.append_event(&ev(99.0));
            assert_eq!(FileSink::read(&path).unwrap(), j.bytes());
        }
        // Count the syncs directly on a bare sink: 20 appends at window 8
        // complete two group commits; flush closes the partial third.
        let mut sink = FileSink::create(&path)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Batch(8));
        for _ in 0..20 {
            sink.append(b"x");
        }
        assert_eq!(sink.syncs_performed(), 2, "two full windows");
        sink.flush();
        assert_eq!(sink.syncs_performed(), 3, "flush commits the tail");
        sink.flush();
        assert_eq!(
            sink.syncs_performed(),
            3,
            "flush with nothing pending is free"
        );
        // Per-append policy syncs every time; Batch(1) matches it.
        let mut sink = FileSink::create(&path).unwrap();
        for _ in 0..3 {
            sink.append(b"x");
        }
        assert_eq!(sink.syncs_performed(), 3);
        let mut sink = FileSink::create(&path)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Batch(1));
        for _ in 0..3 {
            sink.append(b"x");
        }
        assert_eq!(sink.syncs_performed(), 3);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_stats_track_appends_bytes_and_batch_sizes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rtdls-sink-stats-test-{}.wal", std::process::id()));
        let mut sink = FileSink::create(&path)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Batch(4));
        for _ in 0..10 {
            sink.append(b"abc");
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.bytes_written, 30);
        assert_eq!(stats.syncs, 3, "two full windows + the flushed tail");
        assert_eq!(stats.max_batch, 4);
        // Compaction counts its rewrite bytes but not as appends.
        sink.reset(b"0123456789");
        assert_eq!(sink.stats().appends, 10);
        assert_eq!(sink.stats().bytes_written, 40);
        drop(sink);
        let _ = std::fs::remove_file(&path);

        // The journal surfaces its sink's stats; in-memory has none.
        assert!(Journal::in_memory(JournalConfig::default())
            .sink_stats()
            .is_none());
        let sink = FileSink::create(&path).unwrap();
        let mut j = Journal::with_sink(
            JournalConfig {
                snapshot_every: 0,
                compact_on_snapshot: false,
            },
            Box::new(sink),
        );
        j.append_event(&ev(1.0));
        let stats = j.sink_stats().unwrap();
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.syncs, 1, "per-append policy syncs immediately");
        assert!(stats.bytes_written > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_with_no_snapshot_returns_all_events() {
        let mut j = Journal::in_memory(JournalConfig::default());
        j.append_event(&ev(1.0));
        j.append_event(&ev(2.0));
        let (s, events, tail) = split_at_last_snapshot(j.bytes());
        assert!(s.is_none());
        assert_eq!(events.len(), 2);
        assert!(tail.is_clean());
    }
}
