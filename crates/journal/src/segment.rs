//! Log segmentation: the WAL rotated into checksummed, snapshot-anchored
//! segment files.
//!
//! A [`SegmentedSink`] stores the journal as a directory of segments
//! instead of one growing file:
//!
//! ```text
//! shard-0/
//!   seg-000000.wal    sealed   (snapshot + tail, FNV-checksummed)
//!   seg-000001.wal    sealed
//!   seg-000002.wal    active   (the segment being appended to)
//!   manifest.jsonl    one line per sealed segment: seq, epoch, frames,
//!                     bytes, checksum
//! ```
//!
//! Rotation rides the journal's existing compaction contract: every
//! compacting snapshot calls [`JournalSink::reset`], which here **seals**
//! the active segment (fsync, manifest line) and opens the next one whose
//! first frame is that snapshot. Each segment is therefore *snapshot
//! anchored* — independently recoverable from its own first frame — which
//! makes segments the natural unit for journal shipping: a follower that
//! receives a whole segment can restore from it without any earlier bytes.
//!
//! Because the journal's in-memory image already drops compacted bytes,
//! flushed history leaves process memory while the segment directory keeps
//! it all on disk: `recover_segment_dir` walks the directory backwards to
//! the newest segment with an intact leading snapshot and replays from
//! there, tolerating a torn tail in the active segment exactly like
//! single-file recovery does.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::SimTime;

use crate::journal::{FsyncPolicy, JournalConfig, JournalSink, SinkStats};
use crate::recover::RecoveryReport;
use crate::snapshot::{JournalError, Recoverable};
use crate::wire::{decode_frames, RecordKind};
use crate::JournaledGateway;

/// The manifest's per-sealed-segment record (one JSON line in
/// `manifest.jsonl`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Segment sequence number (also encoded in the file name).
    pub seq: u64,
    /// Promotion epoch the segment was written under.
    pub epoch: u64,
    /// Frames the segment holds.
    pub frames: u64,
    /// Sealed byte length — the segment's final durable offset.
    pub bytes: u64,
    /// FNV-1a 64 over the segment's full byte stream.
    pub checksum: u64,
}

/// Per-segment durability counters (the satellite fix for the previously
/// process-global journal stats). The active segment reports `sealed:
/// false` and a still-moving `bytes`/`frames`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment sequence number.
    pub seq: u64,
    /// Promotion epoch the segment was opened under.
    pub epoch: u64,
    /// Frames appended into this segment.
    pub frames: u64,
    /// Bytes written into this segment (the sealed offset once sealed).
    pub bytes: u64,
    /// `sync_data` calls performed on this segment's file.
    pub syncs: u64,
    /// Running FNV-1a 64 over the segment's byte stream.
    pub checksum: u64,
    /// `true` once the segment was sealed by a rotation.
    pub sealed: bool,
}

/// FNV-1a 64 offset basis / prime, matching [`crate::wire::checksum`].
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64 over a whole segment's bytes (what the manifest records).
pub fn segment_checksum(bytes: &[u8]) -> u64 {
    fnv_extend(FNV_OFFSET, bytes)
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.wal"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.jsonl")
}

struct ActiveSegment {
    file: File,
    stats: SegmentStats,
}

/// A [`JournalSink`] that rotates the log into snapshot-anchored segment
/// files under one directory (see the module docs).
pub struct SegmentedSink {
    dir: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    /// Sequence number the next opened segment will get.
    next_seg: u64,
    active: Option<ActiveSegment>,
    sealed: Vec<SegmentStats>,
    totals: SinkStats,
    unsynced: usize,
}

impl SegmentedSink {
    /// Creates a fresh segment directory (removing any previous segments
    /// and manifest), syncing every append.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if (name.starts_with("seg-") && name.ends_with(".wal")) || name == "manifest.jsonl" {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(SegmentedSink {
            dir,
            policy: FsyncPolicy::EveryAppend,
            epoch: 0,
            next_seg: 0,
            active: None,
            sealed: Vec::new(),
            totals: SinkStats::default(),
            unsynced: 0,
        })
    }

    /// Opens an existing segment directory **without touching its
    /// contents**, continuing the segment numbering after the newest
    /// on-disk segment. Recovery attaches a sink this way: the old
    /// segments survive, and the post-recovery snapshot opens the next
    /// segment.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut sealed = read_manifest(&dir)?
            .into_iter()
            .map(|m| SegmentStats {
                seq: m.seq,
                epoch: m.epoch,
                frames: m.frames,
                bytes: m.bytes,
                syncs: 0,
                checksum: m.checksum,
                sealed: true,
            })
            .collect::<Vec<_>>();
        sealed.sort_by_key(|s| s.seq);
        let mut next_seg = sealed.iter().map(|s| s.seq + 1).max().unwrap_or(0);
        for seg in list_segment_files(&dir)? {
            next_seg = next_seg.max(seg.0 + 1);
        }
        Ok(SegmentedSink {
            dir,
            policy: FsyncPolicy::EveryAppend,
            epoch: 0,
            next_seg,
            active: None,
            sealed,
            totals: SinkStats::default(),
            unsynced: 0,
        })
    }

    /// Sets the fsync policy (builder style).
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The directory this sink writes segments into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Per-segment counters: every sealed segment this sink knows of plus
    /// the active one.
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        let mut out = self.sealed.clone();
        if let Some(active) = &self.active {
            out.push(active.stats);
        }
        out
    }

    fn ensure_active(&mut self) {
        if self.active.is_some() {
            return;
        }
        let seq = self.next_seg;
        self.next_seg += 1;
        let path = segment_path(&self.dir, seq);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .expect("segment file create must succeed");
        self.active = Some(ActiveSegment {
            file,
            stats: SegmentStats {
                seq,
                epoch: self.epoch,
                frames: 0,
                bytes: 0,
                syncs: 0,
                checksum: FNV_OFFSET,
                sealed: false,
            },
        });
    }

    fn sync_active(&mut self) {
        let Some(active) = &mut self.active else {
            return;
        };
        active.file.sync_data().expect("segment fsync must succeed");
        active.stats.syncs += 1;
        self.totals.max_batch = self.totals.max_batch.max(self.unsynced as u64);
        self.totals.syncs += 1;
        self.unsynced = 0;
    }

    /// Seals the active segment: completes its group commit, appends its
    /// manifest line (synced), and retires its stats to the sealed list.
    fn seal_active(&mut self) {
        if self.unsynced > 0 {
            self.sync_active();
        }
        let Some(mut active) = self.active.take() else {
            return;
        };
        active.stats.sealed = true;
        let meta = SegmentMeta {
            seq: active.stats.seq,
            epoch: active.stats.epoch,
            frames: active.stats.frames,
            bytes: active.stats.bytes,
            checksum: active.stats.checksum,
        };
        let line = serde_json::to_string(&meta).expect("manifest serialization is infallible");
        let mut manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(manifest_path(&self.dir))
            .expect("manifest open must succeed");
        manifest
            .write_all(format!("{line}\n").as_bytes())
            .expect("manifest append must succeed");
        manifest.sync_data().expect("manifest fsync must succeed");
        self.sealed.push(active.stats);
    }
}

impl JournalSink for SegmentedSink {
    fn append(&mut self, frame: &[u8]) {
        self.ensure_active();
        let active = self.active.as_mut().expect("ensured");
        active
            .file
            .write_all(frame)
            .expect("segment append must succeed");
        active.stats.frames += 1;
        active.stats.bytes += frame.len() as u64;
        active.stats.checksum = fnv_extend(active.stats.checksum, frame);
        self.totals.appends += 1;
        self.totals.bytes_written += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::EveryAppend => self.sync_active(),
            FsyncPolicy::Batch(window) => {
                if self.unsynced >= window.max(1) {
                    self.sync_active();
                }
            }
        }
    }

    /// Compaction *is* rotation for a segmented log: the old segment is
    /// sealed in place (history stays on disk) and `bytes` — the journal's
    /// post-compaction image, starting with the new snapshot — opens the
    /// next segment.
    fn reset(&mut self, bytes: &[u8]) {
        self.seal_active();
        self.ensure_active();
        let active = self.active.as_mut().expect("ensured");
        active
            .file
            .write_all(bytes)
            .expect("segment write must succeed");
        active.stats.frames += decode_frames(bytes).0.len() as u64;
        active.stats.bytes += bytes.len() as u64;
        active.stats.checksum = fnv_extend(active.stats.checksum, bytes);
        self.totals.bytes_written += bytes.len() as u64;
        self.unsynced += 1;
        // Rotation is a durability point regardless of the batch window:
        // the sealed predecessor's manifest line already promises that
        // everything before this snapshot is durable.
        self.sync_active();
    }

    fn flush(&mut self) {
        if self.unsynced > 0 {
            self.sync_active();
        }
    }

    fn stats(&self) -> SinkStats {
        self.totals
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        if let Some(active) = &mut self.active {
            active.stats.epoch = epoch;
        }
    }

    fn segments(&self) -> Vec<SegmentStats> {
        self.segment_stats()
    }
}

impl Drop for SegmentedSink {
    /// Best-effort group-commit completion on graceful shutdown (a crash,
    /// by definition, skips this).
    fn drop(&mut self) {
        if self.unsynced > 0 {
            if let Some(active) = &mut self.active {
                let _ = active.file.sync_data();
            }
        }
    }
}

impl core::fmt::Debug for SegmentedSink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SegmentedSink")
            .field("dir", &self.dir)
            .field("sealed", &self.sealed.len())
            .field("active", &self.active.as_ref().map(|a| a.stats.seq))
            .finish()
    }
}

/// One segment file read back from a shard's segment directory.
#[derive(Clone, Debug)]
pub struct SegmentFile {
    /// Segment sequence number (from the file name).
    pub seq: u64,
    /// The segment file's path.
    pub path: PathBuf,
    /// The segment's raw bytes (journal wire frames).
    pub bytes: Vec<u8>,
    /// The manifest entry, when the segment was sealed (`None` for the
    /// active segment, or after manifest loss).
    pub meta: Option<SegmentMeta>,
}

impl SegmentFile {
    /// Whether the segment's bytes match its manifest checksum (`true`
    /// when unsealed — there is no promise to check yet).
    pub fn checksum_ok(&self) -> bool {
        match &self.meta {
            Some(meta) => {
                meta.bytes == self.bytes.len() as u64
                    && meta.checksum == segment_checksum(&self.bytes)
            }
            None => true,
        }
    }
}

fn list_segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(stem) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, path));
            }
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

fn read_manifest(dir: &Path) -> Result<Vec<SegmentMeta>, JournalError> {
    let path = manifest_path(dir);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A torn manifest tail (crash mid-append) loses only its own line;
        // the segment it described is still discoverable on disk.
        if let Ok(meta) = serde_json::from_str::<SegmentMeta>(line) {
            out.push(meta);
        }
    }
    Ok(out)
}

/// Reads every segment in `dir`, in sequence order, pairing each with its
/// manifest entry.
pub fn read_segment_dir(dir: impl AsRef<Path>) -> Result<Vec<SegmentFile>, JournalError> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let mut out = Vec::new();
    for (seq, path) in list_segment_files(dir)? {
        let bytes = std::fs::read(&path)?;
        let meta = manifest.iter().find(|m| m.seq == seq).copied();
        out.push(SegmentFile {
            seq,
            path,
            bytes,
            meta,
        });
    }
    Ok(out)
}

/// Concatenates the recovery byte stream from a segment list: everything
/// from the newest segment whose first frame is an intact snapshot to the
/// end. A torn or empty active segment (crash mid-rotation) falls back to
/// the previous anchored segment, so the stream always starts with a
/// restorable snapshot when any segment holds one.
pub fn recovery_bytes(segments: &[SegmentFile]) -> Vec<u8> {
    for anchor in (0..segments.len()).rev() {
        let (frames, _) = decode_frames(&segments[anchor].bytes);
        if frames.first().map(|f| f.kind) == Some(RecordKind::Snapshot) {
            let mut out = Vec::new();
            for seg in &segments[anchor..] {
                out.extend_from_slice(&seg.bytes);
            }
            return out;
        }
    }
    // No anchored segment survived: hand recovery the whole stream and let
    // it fail with `NoSnapshot` (or find a mid-segment snapshot).
    let mut out = Vec::new();
    for seg in segments {
        out.extend_from_slice(&seg.bytes);
    }
    out
}

/// [`recover`](crate::recover::recover) over a segment directory: read the
/// segments, rebuild from the newest anchored snapshot, and re-attach a
/// [`SegmentedSink`] that opens the post-recovery snapshot as a fresh
/// segment **after** the existing ones — the old segments are never
/// touched, so a failed recovery (or a crash mid-rotation) always leaves
/// the original log intact.
pub fn recover_segment_dir<G: Recoverable>(
    dir: impl AsRef<Path>,
    now: SimTime,
    cfg: JournalConfig,
    policy: FsyncPolicy,
) -> Result<(JournaledGateway<G>, RecoveryReport), JournalError> {
    let dir = dir.as_ref();
    let segments = read_segment_dir(dir)?;
    let bytes = recovery_bytes(&segments);
    let (mut journaled, report) = crate::recover::recover::<G>(&bytes, now, cfg, None)?;
    let sink = SegmentedSink::open(dir)?.with_fsync_policy(policy);
    journaled.journal_mut().attach_sink(Box::new(sink));
    Ok((journaled, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::JournalEvent;
    use crate::journal::Journal;
    use crate::snapshot::Recoverable;
    use rtdls_core::prelude::*;
    use rtdls_service::prelude::{DeferPolicy, Gateway};

    fn gateway() -> Gateway {
        Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rtdls-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(at: f64) -> JournalEvent {
        JournalEvent::DispatchDue {
            at: SimTime::new(at),
        }
    }

    #[test]
    fn rotation_seals_segments_and_manifest_checksums_verify() {
        let dir = temp_dir("rotate");
        {
            let sink = SegmentedSink::create(&dir).unwrap();
            let mut j = Journal::with_sink(
                JournalConfig {
                    snapshot_every: 0,
                    compact_on_snapshot: true,
                },
                Box::new(sink),
            );
            j.append_snapshot(&gateway().capture()); // seg 0 opens
            j.append_event(&ev(1.0));
            j.append_event(&ev(2.0));
            j.append_snapshot(&gateway().capture()); // seals seg 0, opens seg 1
            j.append_event(&ev(3.0));
            j.append_snapshot(&gateway().capture()); // seals seg 1, opens seg 2

            let segs = j.segment_stats();
            assert_eq!(segs.len(), 3);
            assert!(segs[0].sealed && segs[1].sealed && !segs[2].sealed);
            assert_eq!(segs[0].frames, 3, "snapshot + two events");
            assert_eq!(segs[1].frames, 2, "snapshot + one event");
            // In-memory image holds only the newest epoch; disk holds all.
            let (mem_frames, _) = decode_frames(j.bytes());
            assert_eq!(mem_frames.len(), 1);
        }
        let segs = read_segment_dir(&dir).unwrap();
        assert_eq!(segs.len(), 3);
        for seg in &segs {
            assert!(seg.checksum_ok(), "segment {} checksum", seg.seq);
        }
        assert!(segs[0].meta.is_some() && segs[1].meta.is_some());
        assert!(segs[2].meta.is_none(), "active segment is unsealed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_dir_recovery_equals_single_file_recovery() {
        let dir = temp_dir("recover");
        let mut live = crate::JournaledGateway::with_sink(
            gateway(),
            JournalConfig {
                snapshot_every: 2,
                compact_on_snapshot: true,
            },
            Box::new(SegmentedSink::create(&dir).unwrap()),
        );
        for i in 0..7 {
            let _ = live.submit(Task::new(i, 0.0, 400.0, 30_000.0), SimTime::ZERO);
        }
        let mem = live.journal().bytes().to_vec();
        let live_norm = live.inner().capture().normalized();
        drop(live);

        // The concatenated segment stream recovers to the same state as
        // the in-memory image (which spans only the newest epoch).
        let (recovered, report) = recover_segment_dir::<Gateway>(
            &dir,
            SimTime::ZERO,
            JournalConfig::default(),
            FsyncPolicy::EveryAppend,
        )
        .unwrap();
        assert!(report.tail.is_clean());
        assert!(report.demoted.is_empty());
        assert_eq!(recovered.inner().capture().normalized(), live_norm);

        let (from_mem, _) =
            crate::recover::<Gateway>(&mem, SimTime::ZERO, JournalConfig::default(), None).unwrap();
        assert_eq!(
            recovered.inner().capture().normalized(),
            from_mem.inner().capture().normalized()
        );

        // The reattached sink opened a fresh segment after the old ones.
        let stats = recovered.journal().segment_stats();
        let active = stats.last().unwrap();
        assert!(!active.sealed);
        assert!(stats.iter().filter(|s| s.sealed).count() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_active_segment_falls_back_to_the_previous_anchor() {
        let dir = temp_dir("torn");
        {
            let sink = SegmentedSink::create(&dir).unwrap();
            let mut j = Journal::with_sink(
                JournalConfig {
                    snapshot_every: 0,
                    compact_on_snapshot: true,
                },
                Box::new(sink),
            );
            j.append_snapshot(&gateway().capture());
            j.append_event(&ev(1.0));
            j.append_snapshot(&gateway().capture()); // seals seg 0
            j.append_event(&ev(2.0));
        }
        // Tear the active segment down to garbage mid-frame.
        let segs = list_segment_files(&dir).unwrap();
        let active = &segs.last().unwrap().1;
        let bytes = std::fs::read(active).unwrap();
        std::fs::write(active, &bytes[..3.min(bytes.len())]).unwrap();

        let (recovered, report) = recover_segment_dir::<Gateway>(
            &dir,
            SimTime::ZERO,
            JournalConfig::default(),
            FsyncPolicy::EveryAppend,
        )
        .unwrap();
        assert!(
            !report.tail.is_clean(),
            "the torn tail was noticed: {:?}",
            report.tail
        );
        // Segment 0's snapshot anchored the recovery.
        assert_eq!(
            recovered.inner().capture().normalized().metrics.submitted,
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_from_ships_exactly_the_appended_tail() {
        let mut j = Journal::in_memory(JournalConfig {
            snapshot_every: 0,
            compact_on_snapshot: true,
        });
        j.append_snapshot(&gateway().capture()); // seq 0
        j.append_event(&ev(1.0)); // seq 1
        j.append_event(&ev(2.0)); // seq 2
        assert_eq!(j.next_seq(), 3);
        assert_eq!(j.base_seq(), 0);
        let (start, frames) = j.frames_from(1);
        assert_eq!(start, 1);
        assert_eq!(frames.len(), 2);
        // Each slice is a standalone decodable frame.
        for f in &frames {
            let (decoded, tail) = decode_frames(f);
            assert!(tail.is_clean());
            assert_eq!(decoded.len(), 1);
        }
        // Compaction raises base_seq; the gap is bridged by the snapshot.
        j.append_snapshot(&gateway().capture()); // seq 3, base 3
        assert_eq!(j.base_seq(), 3);
        let (start, frames) = j.frames_from(1);
        assert_eq!(start, 3, "frames 1..3 are gone; snapshot 3 supersedes");
        assert_eq!(frames.len(), 1);
        let (decoded, _) = decode_frames(frames[0]);
        assert_eq!(decoded[0].kind, RecordKind::Snapshot);
        // Nothing new past the head.
        let (_, frames) = j.frames_from(4);
        assert!(frames.is_empty());
    }
}
