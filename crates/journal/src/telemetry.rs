//! Fold adapter: journal durability counters into the unified telemetry
//! [`MetricsRegistry`].
//!
//! Mirrors the service layer's `fold_service_metrics`: the journal keeps
//! counting natively and an ops poll folds the current values in here.

use rtdls_telemetry::MetricsRegistry;

use crate::journal::Journal;

/// Folds the journal's append/snapshot counters and — when a durable sink
/// is attached — its fsync/byte/batch durability stats into `reg`.
pub fn fold_journal_metrics(reg: &mut MetricsRegistry, journal: &Journal) {
    reg.counter(
        "rtdls_journal_events_appended",
        &[],
        journal.events_appended(),
    );
    reg.counter(
        "rtdls_journal_snapshots_appended",
        &[],
        journal.snapshots_appended(),
    );
    reg.gauge("rtdls_journal_len_bytes", &[], journal.bytes().len() as f64);
    if let Some(stats) = journal.sink_stats() {
        reg.counter("rtdls_journal_sink_appends", &[], stats.appends);
        reg.counter("rtdls_journal_sink_syncs", &[], stats.syncs);
        reg.counter("rtdls_journal_sink_bytes_written", &[], stats.bytes_written);
        reg.gauge("rtdls_journal_sink_max_batch", &[], stats.max_batch as f64);
    }
    reg.gauge("rtdls_journal_epoch", &[], journal.epoch() as f64);
    reg.gauge(
        "rtdls_journal_appended_offset",
        &[],
        journal.next_seq() as f64,
    );
    // Per-segment durability: present only when the sink rotates segments
    // (the previously process-global counters, broken out per segment).
    for seg in journal.segment_stats() {
        let id = seg.seq.to_string();
        let labels: &[(&str, &str)] = &[("segment", id.as_str())];
        reg.gauge("rtdls_journal_segment_frames", labels, seg.frames as f64);
        reg.gauge("rtdls_journal_segment_bytes", labels, seg.bytes as f64);
        reg.gauge("rtdls_journal_segment_syncs", labels, seg.syncs as f64);
        reg.gauge("rtdls_journal_segment_epoch", labels, seg.epoch as f64);
        reg.gauge(
            "rtdls_journal_segment_sealed",
            labels,
            if seg.sealed { 1.0 } else { 0.0 },
        );
        reg.gauge(
            "rtdls_journal_segment_sealed_offset",
            labels,
            if seg.sealed { seg.bytes as f64 } else { 0.0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FileSink, FsyncPolicy, JournalConfig};
    use rtdls_core::prelude::SimTime;

    #[test]
    fn fold_covers_journal_counters_and_sink_durability() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "rtdls-journal-fold-test-{}.wal",
            std::process::id()
        ));
        let sink = FileSink::create(&path)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Batch(8));
        let mut j = Journal::with_sink(
            JournalConfig {
                snapshot_every: 0,
                compact_on_snapshot: false,
            },
            Box::new(sink),
        );
        for i in 0..3 {
            j.append_event(&crate::event::JournalEvent::DispatchDue {
                at: SimTime::new(i as f64),
            });
        }
        j.flush();
        let mut reg = MetricsRegistry::new();
        fold_journal_metrics(&mut reg, &j);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_journal_events_appended 3"), "{text}");
        assert!(text.contains("rtdls_journal_sink_appends 3"), "{text}");
        assert!(text.contains("rtdls_journal_sink_syncs 1"), "{text}");
        assert!(text.contains("rtdls_journal_sink_bytes_written"), "{text}");
        drop(j);
        let _ = std::fs::remove_file(&path);

        // An in-memory journal folds only its own counters.
        let j = Journal::in_memory(JournalConfig::default());
        let mut reg = MetricsRegistry::new();
        fold_journal_metrics(&mut reg, &j);
        let text = reg.to_prometheus();
        assert!(text.contains("rtdls_journal_events_appended 0"));
        assert!(!text.contains("rtdls_journal_sink_appends"));
    }
}
