//! The journal's event vocabulary.
//!
//! Events split into two classes:
//!
//! * **Inputs** ([`JournalEvent::is_input`] = `true`) — the commands the
//!   engine fed the gateway: submissions, node completions, dispatch/replan/
//!   re-test instants, finalization. The gateway is a deterministic state
//!   machine over these, so replaying the inputs after a snapshot rebuilds
//!   the exact pre-crash state (the replay-determinism property the journal
//!   proptests pin down).
//! * **Audit outputs** — the decisions the gateway produced (`Accepted`
//!   with its plan, `Deferred` with its ticket, `Rejected`, `Rescued`,
//!   recovery `Demoted`). Replay regenerates these from the inputs; they are
//!   journaled so an operator can reconstruct *what was promised to whom*
//!   without re-running anything — including the per-node progress state of
//!   partially dispatched loads (the accepted plan's chunk map).

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{Infeasible, SimTime, SubmitRequest, Task, TaskPlan};

/// One journal record (see the module docs for the input/audit split).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// Input: one streaming submission at time `at` (the legacy v1
    /// envelope: anonymous tenant, no reservation tolerance).
    Submitted {
        /// The submitted task.
        task: Task,
        /// Submission instant.
        at: SimTime,
    },
    /// Input: one v2 submission envelope (task + tenant + QoS class +
    /// reservation tolerance) at time `at`.
    RequestSubmitted {
        /// The full submission envelope.
        request: SubmitRequest,
        /// Submission instant.
        at: SimTime,
    },
    /// Input: reservations due at `at` were activated (the post-dispatch
    /// activation sweep ran). Replays through the same sweep.
    ActivationDue {
        /// The activation instant.
        at: SimTime,
    },
    /// Input: a burst decided through the batched path at time `at`.
    BatchSubmitted {
        /// The burst, in submission order.
        tasks: Vec<Task>,
        /// Submission instant.
        at: SimTime,
    },
    /// Input: a node's committed release was overridden with an actual
    /// completion (the engine observed the node free up at `at`).
    Completed {
        /// Global node id.
        node: usize,
        /// The actual release instant.
        at: SimTime,
    },
    /// Input: waiting plans due at `at` were taken for dispatch.
    DispatchDue {
        /// The dispatch instant.
        at: SimTime,
    },
    /// Input: the waiting queue was replanned against current releases.
    Replanned {
        /// The replanning instant.
        at: SimTime,
    },
    /// Input: the defer queue was swept (re-tested) at `at`.
    Retested {
        /// The sweep instant.
        at: SimTime,
    },
    /// Input: the stream ended; still-parked tickets were flushed.
    Finalized {
        /// The finalization instant.
        at: SimTime,
    },
    /// Input: the engine collected (and thereby cleared) the pending defer
    /// resolutions. Clearing is a state change, so it replays like any
    /// other command.
    Drained,
    /// Audit: the task was admitted with this plan (per-chunk nodes, start
    /// times, and load fractions — the per-node progress state recovery
    /// needs for partially dispatched loads).
    Accepted {
        /// The admitted task's id.
        task: u64,
        /// The installed plan (shard-local node ids under a sharded
        /// gateway).
        plan: TaskPlan,
    },
    /// Audit: the task parked in the defer queue under this ticket.
    Deferred {
        /// The deferred task's id.
        task: u64,
        /// The issued ticket id.
        ticket: u64,
    },
    /// Audit: the task was rejected for good.
    Rejected {
        /// The rejected task's id.
        task: u64,
        /// The planning-level cause.
        cause: Infeasible,
    },
    /// Audit: a previously deferred task was admitted by a re-test.
    Rescued {
        /// The rescued task's id.
        task: u64,
    },
    /// Audit: recovery re-verification pushed a previously accepted task
    /// back out of the waiting queue (into the defer queue, or to a
    /// rejection when past hope).
    Demoted {
        /// The demoted task's id.
        task: u64,
        /// The recovery instant.
        at: SimTime,
    },
    /// Audit: the task was booked as a reservation — the gateway promised
    /// admission at `start_at`.
    Reserved {
        /// The reserved task's id.
        task: u64,
        /// The reservation ticket id.
        ticket: u64,
        /// The promised admission instant.
        start_at: SimTime,
    },
    /// Audit: a due reservation was activated — `admitted` records whether
    /// the re-run admission test honored the promise (a miss falls back to
    /// the defer-or-reject protocol, which journals its own outcome).
    ReservationActivated {
        /// The reservation's task id.
        task: u64,
        /// The reservation ticket id.
        ticket: u64,
        /// The activation instant.
        at: SimTime,
        /// Whether the activation admission test passed.
        admitted: bool,
    },
    /// Audit: the task was refused over its tenant's quota before any
    /// admission test ran.
    Throttled {
        /// The refused task's id.
        task: u64,
        /// The over-quota tenant.
        tenant: u32,
    },
    /// Audit: a deadline-SLO scope entered `Breached` — the versioned
    /// breach record, with the offending tenant's recent tasks and their
    /// flight-recorder timelines as forensic evidence. Replay regenerates
    /// the tracker state from the inputs; the *record* is journaled so the
    /// breach and its evidence survive a crash verbatim.
    SloBreach {
        /// The versioned breach record.
        breach: rtdls_service::prelude::SloBreach,
    },
}

impl JournalEvent {
    /// `true` for the replayed command events; `false` for audit outputs.
    pub fn is_input(&self) -> bool {
        matches!(
            self,
            JournalEvent::Submitted { .. }
                | JournalEvent::RequestSubmitted { .. }
                | JournalEvent::BatchSubmitted { .. }
                | JournalEvent::Completed { .. }
                | JournalEvent::DispatchDue { .. }
                | JournalEvent::Replanned { .. }
                | JournalEvent::Retested { .. }
                | JournalEvent::ActivationDue { .. }
                | JournalEvent::Finalized { .. }
                | JournalEvent::Drained
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::*;

    fn sample_plan() -> TaskPlan {
        let params = ClusterParams::paper_baseline();
        let avail = NodeAvailability::new(&[SimTime::ZERO; 16], SimTime::ZERO);
        plan_task(
            StrategyKind::DltIit,
            &Task::new(4, 0.0, 200.0, 30_000.0),
            &avail,
            &params,
            &PlanConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let events = vec![
            JournalEvent::Submitted {
                task: Task::new(1, 2.5, 100.0, 5_000.0).with_user_nodes(Some(3)),
                at: SimTime::new(2.5),
            },
            JournalEvent::BatchSubmitted {
                tasks: vec![Task::new(2, 0.0, 50.0, 1e6), Task::new(3, 0.0, 60.0, 2e6)],
                at: SimTime::ZERO,
            },
            JournalEvent::Completed {
                node: 7,
                at: SimTime::new(123.456),
            },
            JournalEvent::DispatchDue { at: SimTime::ZERO },
            JournalEvent::Replanned {
                at: SimTime::new(9.0),
            },
            JournalEvent::Retested {
                at: SimTime::new(10.0),
            },
            JournalEvent::Finalized {
                at: SimTime::new(11.0),
            },
            JournalEvent::Drained,
            JournalEvent::RequestSubmitted {
                request: rtdls_core::prelude::SubmitRequest::new(Task::new(8, 1.0, 120.0, 9e5))
                    .with_tenant(rtdls_core::prelude::TenantId(3))
                    .with_qos(rtdls_core::prelude::QosClass::Premium)
                    .with_max_delay(Some(777.0)),
                at: SimTime::new(1.0),
            },
            JournalEvent::ActivationDue {
                at: SimTime::new(13.0),
            },
            JournalEvent::Reserved {
                task: 8,
                ticket: 2,
                start_at: SimTime::new(42.0),
            },
            JournalEvent::ReservationActivated {
                task: 8,
                ticket: 2,
                at: SimTime::new(42.0),
                admitted: true,
            },
            JournalEvent::Throttled { task: 9, tenant: 3 },
            JournalEvent::SloBreach {
                breach: rtdls_service::prelude::SloBreach {
                    version: rtdls_service::prelude::SLO_BREACH_VERSION,
                    transition: rtdls_service::slo::SloTransition {
                        tenant: Some(3),
                        qos: None,
                        objective: rtdls_service::prelude::SloObjective::Acceptance,
                        from: rtdls_service::prelude::SloHealth::Burning,
                        to: rtdls_service::prelude::SloHealth::Breached,
                        at: SimTime::new(77.0),
                    },
                    row: rtdls_service::prelude::SloStatusRow {
                        tenant: Some(3),
                        qos: None,
                        objective: rtdls_service::prelude::SloObjective::Acceptance,
                        good: 10,
                        bad: 30,
                        short_burn: 15.0,
                        long_burn: 6.5,
                        state: rtdls_service::prelude::SloHealth::Breached,
                        breaches: 1,
                    },
                    recent_tasks: vec![4, 5, 6],
                    timelines: vec!["plan shard=0 task=4 Rejected".to_string()],
                },
            },
            JournalEvent::Accepted {
                task: 4,
                plan: sample_plan(),
            },
            JournalEvent::Deferred { task: 5, ticket: 0 },
            JournalEvent::Rejected {
                task: 6,
                cause: Infeasible::NoTimeForTransmission,
            },
            JournalEvent::Rescued { task: 5 },
            JournalEvent::Demoted {
                task: 4,
                at: SimTime::new(12.0),
            },
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: JournalEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev, "{json}");
        }
    }

    #[test]
    fn input_classification_matches_the_replay_contract() {
        assert!(JournalEvent::DispatchDue { at: SimTime::ZERO }.is_input());
        assert!(JournalEvent::ActivationDue { at: SimTime::ZERO }.is_input());
        assert!(JournalEvent::RequestSubmitted {
            request: rtdls_core::prelude::SubmitRequest::new(Task::new(1, 0.0, 1.0, 1.0)),
            at: SimTime::ZERO,
        }
        .is_input());
        assert!(!JournalEvent::Rescued { task: 1 }.is_input());
        assert!(!JournalEvent::Reserved {
            task: 1,
            ticket: 0,
            start_at: SimTime::ZERO
        }
        .is_input());
        assert!(!JournalEvent::ReservationActivated {
            task: 1,
            ticket: 0,
            at: SimTime::ZERO,
            admitted: false
        }
        .is_input());
        assert!(!JournalEvent::Throttled { task: 1, tenant: 0 }.is_input());
        assert!(!JournalEvent::Accepted {
            task: 4,
            plan: sample_plan()
        }
        .is_input());
    }
}
