//! [`JournaledGateway`]: the write-ahead-logging wrapper around a gateway.
//!
//! Implements the same [`Frontend`] trait as the wrapped gateway, so it
//! drops into any `Simulation::with_frontend` run (or a real driver)
//! unchanged. Every state-mutating call is journaled **before** it is
//! applied (write-ahead order): a crash between the journal append and the
//! in-memory mutation replays the command on recovery and lands in the same
//! state. Read-only calls are not journaled.
//!
//! Input events that would be no-ops (an empty defer queue swept, a replan
//! of an empty queue, a dispatch poll with nothing due) are skipped — the
//! engine polls far more often than state changes, and replaying a no-op is
//! itself a no-op, so the log stays proportional to *actual* state changes.

use rtdls_core::prelude::{
    AdmissionFailure, Infeasible, SimTime, SubmitRequest, Task, TaskId, TaskPlan,
};
use rtdls_service::gateway::GatewayDecision;
use rtdls_service::prelude::{DeferredQueue, ServiceMetrics, Verdict};
use rtdls_sim::frontend::{Frontend, SubmitOutcome};
use rtdls_telemetry::{Stage, Telemetry};

use crate::event::JournalEvent;
use crate::journal::{Journal, JournalConfig, JournalSink};
use crate::snapshot::Recoverable;

/// A gateway whose every decision-relevant input is write-ahead journaled,
/// with periodic compacting snapshots of the full gateway state.
pub struct JournaledGateway<G: Recoverable> {
    inner: G,
    journal: Journal,
    /// Process-local recording handle (never journaled; see
    /// [`Recoverable::attach_telemetry`]). Disabled by default.
    telemetry: Telemetry,
    /// Set when this gateway was rebuilt by [`recover`](crate::recover):
    /// the instant the re-admission pass ran at, stamped onto the
    /// `Recovery` span once telemetry is attached.
    recovered_at: Option<SimTime>,
}

impl<G: Recoverable> JournaledGateway<G> {
    /// Wraps `inner`, writing the genesis snapshot into a fresh in-memory
    /// journal (use [`with_sink`](JournaledGateway::with_sink) for
    /// durability beyond the process).
    pub fn new(inner: G, cfg: JournalConfig) -> Self {
        Self::with_journal(inner, Journal::in_memory(cfg))
    }

    /// Wraps `inner`, mirroring the journal into `sink` (e.g. a
    /// [`FileSink`](crate::journal::FileSink)).
    pub fn with_sink(inner: G, cfg: JournalConfig, sink: Box<dyn JournalSink>) -> Self {
        Self::with_journal(inner, Journal::with_sink(cfg, sink))
    }

    /// Wraps `inner` over an existing (empty) journal, writing the genesis
    /// snapshot (stamped with the journal's epoch). Recovery uses this to
    /// hand back a re-journaled gateway.
    pub(crate) fn with_journal(inner: G, mut journal: Journal) -> Self {
        let mut genesis = inner.capture();
        genesis.epoch = journal.epoch();
        journal.append_snapshot(&genesis);
        JournaledGateway {
            inner,
            journal,
            telemetry: Telemetry::disabled(),
            recovered_at: None,
        }
    }

    /// Marks this gateway as recovery-built (see `recovered_at`).
    pub(crate) fn mark_recovered(&mut self, at: SimTime) {
        self.recovered_at = Some(at);
    }

    /// Attaches a telemetry handle to this wrapper *and* the wrapped
    /// gateway, so journal appends and the service layer's decision stages
    /// record into the same flight recorder. Like decision observation,
    /// telemetry is process-local — a recovered gateway starts disabled
    /// and its owner re-attaches. Attaching to a recovery-built gateway
    /// records a `Recovery` span and dumps the recorder to stderr (the
    /// crash-recovery black-box hook).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.attach_telemetry(telemetry);
        if let Some(at) = self.recovered_at {
            self.telemetry.record(
                self.telemetry.mint(),
                Stage::Recovery,
                None,
                0,
                "recovered",
                at,
                None,
            );
            self.telemetry.dump_to_stderr("crash recovery");
        }
    }

    /// Attaches a hot-path profiler handle to the journal (append/fsync
    /// phases) *and* the wrapped gateway (plan phase). Process-local, like
    /// telemetry.
    pub fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        self.journal.attach_profiler(profiler);
        self.inner.attach_profiler(profiler);
    }

    /// The wrapped gateway.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The journal (its [`bytes`](Journal::bytes) are what survives a
    /// crash).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Direct mutable journal access (e.g. to append recovery audit
    /// records).
    pub(crate) fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Completes any pending group commit in the journal's sink — the
    /// group-commit boundary a driver (e.g. the network edge's reactor)
    /// calls once per serving turn when the sink batches fsyncs
    /// ([`FsyncPolicy::Batch`](crate::journal::FsyncPolicy::Batch)).
    pub fn flush_journal(&mut self) {
        self.journal.flush();
    }

    /// The wrapped gateway's cumulative metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        self.inner.service_metrics()
    }

    /// The wrapped gateway's defer queue.
    pub fn deferred(&self) -> &DeferredQueue {
        self.inner.defer_queue()
    }

    /// Enables or disables parked-task decision observation on the wrapped
    /// gateway. Observer state is process-local (like the latency
    /// histograms), so toggling it is deliberately *not* journaled: a
    /// recovered gateway starts unobserved and its edge re-enables this.
    pub fn observe_decisions(&mut self, on: bool) {
        self.inner.observe_decisions(on);
    }

    /// Drains the wrapped gateway's parked-task decision updates (empty
    /// unless observation is enabled). Not journaled: the durable record
    /// of the same facts is the audit stream (`ReservationActivated`,
    /// `Rescued`, `Rejected`), which replay regenerates.
    pub fn take_decision_updates(&mut self) -> Vec<rtdls_service::prelude::DecisionUpdate> {
        self.inner.take_decision_updates()
    }

    /// Decides one streaming submission at time `now`, journaling the
    /// command first and the decision (with the installed plan, for
    /// accepted tasks) after.
    pub fn submit(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        self.journal
            .append_event(&JournalEvent::Submitted { task, at: now });
        let decision = self.inner.decide(task, now);
        self.audit_decision(task.id, &decision);
        self.audit_breaches();
        self.maybe_snapshot();
        decision
    }

    /// Decides one v2 submission envelope at time `now`, journaling the
    /// full request first (write-ahead: tenant, QoS, and tolerance all
    /// shape the verdict, so replay needs all of them) and the verdict
    /// after.
    pub fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict {
        // Mint the trace *before* the write-ahead append so the WAL carries
        // it: a replay then reproduces the same request the live run
        // decided (the wrapped gateway sees a nonzero trace and won't
        // re-mint).
        let mut request = *request;
        if request.trace == 0 {
            request.trace = self.telemetry.mint();
        }
        let ahead = self.telemetry.timer();
        self.journal
            .append_event(&JournalEvent::RequestSubmitted { request, at: now });
        let ahead_ns = Telemetry::elapsed_ns(ahead);
        let verdict = self.inner.decide_request(&request, now);
        let audit = self.telemetry.timer();
        self.audit_verdict(&request, &verdict);
        self.audit_breaches();
        self.maybe_snapshot();
        if self.telemetry.is_enabled() {
            // One logical append stage: the write-ahead command plus the
            // audit record, with the decision itself excluded from the
            // duration. Recorded after the decision so the span sequence
            // reads route → plan → journal append.
            self.telemetry.record_ns(
                request.trace,
                Stage::JournalAppend,
                None,
                request.task.id.0,
                "appended",
                now,
                ahead_ns + Telemetry::elapsed_ns(audit),
            );
        }
        verdict
    }

    /// Folds the wrapped gateway's native stats (service counters, engine
    /// profiles, queue depths) plus this journal's durability counters into
    /// `reg` — the ops-poll entry point for a journaled deployment.
    pub fn fold_metrics(&self, reg: &mut rtdls_telemetry::MetricsRegistry) {
        self.inner.fold_metrics(reg);
        crate::telemetry::fold_journal_metrics(reg, &self.journal);
    }

    /// Decides a whole burst at once (see `submit_batch` on the wrapped
    /// gateway), journaling the burst as one command.
    pub fn submit_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        self.journal.append_event(&JournalEvent::BatchSubmitted {
            tasks: batch.to_vec(),
            at: now,
        });
        let decisions = self.inner.decide_batch(batch, now);
        for (task, decision) in batch.iter().zip(&decisions) {
            self.audit_decision(task.id, decision);
        }
        self.audit_breaches();
        self.maybe_snapshot();
        decisions
    }

    fn audit_decision(&mut self, task: TaskId, decision: &GatewayDecision) {
        let ev = match decision {
            GatewayDecision::Accepted => JournalEvent::Accepted {
                task: task.0,
                plan: match Frontend::find_plan(&self.inner, task) {
                    Some(plan) => plan.clone(),
                    None => return, // defensively skip a plan-less accept
                },
            },
            GatewayDecision::Deferred(ticket) => JournalEvent::Deferred {
                task: task.0,
                ticket: *ticket,
            },
            GatewayDecision::Rejected(cause) => JournalEvent::Rejected {
                task: task.0,
                cause: *cause,
            },
        };
        self.journal.append_event(&ev);
    }

    fn audit_verdict(&mut self, request: &SubmitRequest, verdict: &Verdict) {
        let task = request.task.id;
        let ev = match verdict {
            Verdict::Accepted => JournalEvent::Accepted {
                task: task.0,
                plan: match Frontend::find_plan(&self.inner, task) {
                    Some(plan) => plan.clone(),
                    None => return, // defensively skip a plan-less accept
                },
            },
            Verdict::Reserved { start_at, ticket } => JournalEvent::Reserved {
                task: task.0,
                ticket: *ticket,
                start_at: *start_at,
            },
            Verdict::Deferred { ticket, .. } => JournalEvent::Deferred {
                task: task.0,
                ticket: *ticket,
            },
            Verdict::Rejected { cause, .. } => JournalEvent::Rejected {
                task: task.0,
                cause: *cause,
            },
            Verdict::Throttled => JournalEvent::Throttled {
                task: task.0,
                tenant: request.tenant.0,
            },
        };
        self.journal.append_event(&ev);
    }

    /// Appends the activation audit records the last activation sweep
    /// produced (a miss's defer-or-reject fallback is audited by the
    /// resolution drain like any other ticket outcome).
    fn audit_activations(&mut self) {
        for rec in self.inner.take_activation_log() {
            self.journal
                .append_event(&JournalEvent::ReservationActivated {
                    task: rec.task,
                    ticket: rec.ticket,
                    at: rec.at,
                    admitted: rec.admitted,
                });
        }
    }

    /// Appends any SLO-breach records the last decision or sweep cut —
    /// the durable half of breach-triggered forensics (the in-memory half
    /// is the flight-recorder dump the service layer fires).
    pub(crate) fn audit_breaches(&mut self) {
        for breach in self.inner.take_breach_log() {
            self.journal
                .append_event(&JournalEvent::SloBreach { breach });
        }
    }

    /// The wrapped gateway's deadline-SLO status table (the `Ops::Slo`
    /// surface).
    pub fn slo_rows(&self) -> Vec<rtdls_service::prelude::SloStatusRow> {
        self.inner.slo_rows()
    }

    /// Enables or disables admission explanations on the wrapped gateway.
    /// Process-local like decision observation — deliberately not
    /// journaled, so a replayed WAL decides identically whether or not the
    /// live run explained its refusals.
    pub fn enable_explanations(&mut self, on: bool) {
        self.inner.enable_explanations(on);
    }

    /// The wrapped gateway's non-mutating refusal explanation for
    /// `request` at `now` (the `Ops::Explain` surface). A pure query:
    /// nothing is journaled.
    pub fn explain_request(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        self.inner.explain_request(request, now)
    }

    fn maybe_snapshot(&mut self) {
        if self.journal.wants_snapshot() {
            let mut snap = self.inner.capture();
            snap.epoch = self.journal.epoch();
            self.journal.append_snapshot(&snap);
        }
    }

    /// The promotion epoch this gateway journals under (0 for a gateway
    /// that never failed over).
    pub fn epoch(&self) -> u64 {
        self.journal.epoch()
    }
}

impl<G: Recoverable> core::fmt::Debug for JournaledGateway<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JournaledGateway")
            .field("journal", &self.journal)
            .finish_non_exhaustive()
    }
}

impl<G: Recoverable> Frontend for JournaledGateway<G> {
    fn submit(&mut self, task: Task, now: SimTime) -> SubmitOutcome {
        match JournaledGateway::submit(self, task, now) {
            GatewayDecision::Accepted => SubmitOutcome::Accepted,
            GatewayDecision::Deferred(_) => SubmitOutcome::Pending,
            GatewayDecision::Rejected(cause) => SubmitOutcome::Rejected(cause),
        }
    }

    fn submit_request(&mut self, request: &SubmitRequest, now: SimTime) -> SubmitOutcome {
        match JournaledGateway::submit_request(self, request, now) {
            Verdict::Accepted => SubmitOutcome::Accepted,
            Verdict::Reserved { .. } | Verdict::Deferred { .. } => SubmitOutcome::Pending,
            Verdict::Rejected { cause, .. } => SubmitOutcome::Rejected(cause),
            Verdict::Throttled => SubmitOutcome::Rejected(Infeasible::NotEnoughNodes),
        }
    }

    fn replan(&mut self, now: SimTime) -> Result<(), AdmissionFailure> {
        if self.inner.waiting_len() > 0 {
            self.journal
                .append_event(&JournalEvent::Replanned { at: now });
        }
        self.inner.replan(now)
    }

    fn take_due(&mut self, now: SimTime) -> Vec<(Task, TaskPlan)> {
        // Journal *before* taking (write-ahead), but only when something is
        // actually due — the poll condition mirrors the gateway's own.
        let due_now = self
            .inner
            .next_dispatch_due()
            .is_some_and(|t| t.at_or_before_eps(now));
        if due_now {
            self.journal
                .append_event(&JournalEvent::DispatchDue { at: now });
        }
        let due = self.inner.take_due(now);
        debug_assert_eq!(due_now, !due.is_empty(), "poll condition mirrors take_due");
        if due_now {
            self.maybe_snapshot();
        }
        due
    }

    fn next_dispatch_due(&self) -> Option<SimTime> {
        self.inner.next_dispatch_due()
    }

    fn committed_release(&self, node: usize) -> SimTime {
        self.inner.committed_release(node)
    }

    fn set_node_release(&mut self, node: usize, time: SimTime) {
        self.journal
            .append_event(&JournalEvent::Completed { node, at: time });
        self.inner.set_node_release(node, time);
        self.maybe_snapshot();
    }

    fn waiting_len(&self) -> usize {
        self.inner.waiting_len()
    }

    fn find_plan(&self, task: TaskId) -> Option<&TaskPlan> {
        self.inner.find_plan(task)
    }

    fn on_event(&mut self, now: SimTime) {
        if !self.inner.defer_queue().is_empty() {
            self.journal
                .append_event(&JournalEvent::Retested { at: now });
            self.inner.on_event(now);
            self.audit_breaches();
            self.maybe_snapshot();
        }
    }

    fn activate(&mut self, now: SimTime) {
        // Activation mutates state only when a reservation is actually due
        // — mirror the gateway's own condition so the log stays
        // proportional to real state changes.
        let due = self
            .inner
            .reservation_book()
            .next_activation()
            .is_some_and(|t| t.at_or_before_eps(now));
        if due {
            self.journal
                .append_event(&JournalEvent::ActivationDue { at: now });
            self.inner.activate_reservations(now);
            self.audit_activations();
            self.audit_breaches();
            self.maybe_snapshot();
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.inner.reservation_book().next_activation()
    }

    fn drain_resolutions(&mut self) -> Vec<(Task, Option<Infeasible>)> {
        if self.inner.pending_resolutions().is_empty() {
            return Vec::new();
        }
        // Clearing the pending list is a state change: journal it as an
        // input (write-ahead), then the per-task verdicts as audit records.
        self.journal.append_event(&JournalEvent::Drained);
        let resolutions = self.inner.drain_resolutions();
        for (task, cause) in &resolutions {
            let ev = match cause {
                None => JournalEvent::Rescued { task: task.id.0 },
                Some(cause) => JournalEvent::Rejected {
                    task: task.id.0,
                    cause: *cause,
                },
            };
            self.journal.append_event(&ev);
        }
        resolutions
    }

    fn finalize(&mut self, now: SimTime) {
        self.journal
            .append_event(&JournalEvent::Finalized { at: now });
        self.inner.finalize(now);
        // End of stream closes the group-commit window: everything the
        // journal acknowledged is durable from here on.
        self.journal.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::*;
    use rtdls_service::prelude::{DeferPolicy, Gateway};

    fn gateway() -> Gateway {
        Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        )
    }

    #[test]
    fn submit_request_mints_into_the_wal_and_records_the_append_span() {
        let mut j = JournaledGateway::new(gateway(), JournalConfig::default());
        let telemetry = Telemetry::with_defaults();
        j.attach_telemetry(&telemetry);
        let req = SubmitRequest::new(Task::new(1, 0.0, 200.0, 30_000.0));
        assert_eq!(req.trace, 0, "caller left the request untraced");
        let verdict = j.submit_request(&req, SimTime::ZERO);
        assert!(verdict.is_accepted());

        // The WAL's RequestSubmitted carries the minted (nonzero) trace.
        let wal = String::from_utf8_lossy(j.journal().bytes()).into_owned();
        assert!(wal.contains("\"trace\""), "trace persisted in the WAL");
        // The append span closes the trace's decision timeline so far:
        // route/plan first (recorded by the wrapped gateway), then append.
        let spans = telemetry.recent_spans(16);
        let append = spans
            .iter()
            .find(|s| s.stage == Stage::JournalAppend)
            .expect("append span recorded");
        assert!(append.trace != 0);
        assert_eq!(append.task, 1);
        let timeline = telemetry.trace_spans(append.trace);
        assert_eq!(
            timeline.last().map(|s| s.stage),
            Some(Stage::JournalAppend),
            "append is the last stage recorded for the submission"
        );
    }

    #[test]
    fn telemetry_off_leaves_the_wal_byte_identical() {
        let run = |telemetry: Option<Telemetry>| {
            let mut j = JournaledGateway::new(gateway(), JournalConfig::default());
            if let Some(t) = &telemetry {
                j.attach_telemetry(t);
            }
            let req = SubmitRequest::new(Task::new(1, 0.0, 200.0, 30_000.0));
            let _ = j.submit_request(&req, SimTime::ZERO);
            j.journal().bytes().to_vec()
        };
        let disabled = run(None);
        let enabled = run(Some(Telemetry::with_defaults()));
        assert_ne!(disabled, enabled, "enabled run persists trace ids");
        // A disabled handle mints the untraced sentinel, so its WAL matches
        // the never-attached one byte for byte (legacy encoding preserved).
        let sentinel = run(Some(Telemetry::disabled()));
        assert_eq!(disabled, sentinel);
    }

    #[test]
    fn recovery_records_a_recovery_span_on_attach() {
        let mut j = JournaledGateway::new(gateway(), JournalConfig::default());
        let _ = j.submit_request(
            &SubmitRequest::new(Task::new(1, 0.0, 200.0, 30_000.0)),
            SimTime::ZERO,
        );
        let wal = j.journal().bytes().to_vec();
        drop(j);

        let (mut recovered, _report) =
            crate::recover::<Gateway>(&wal, SimTime::new(5.0), JournalConfig::default(), None)
                .unwrap();
        let telemetry = Telemetry::with_defaults();
        recovered.attach_telemetry(&telemetry);
        let spans = telemetry.recent_spans(4);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Recovery);
        assert_eq!(spans[0].at, SimTime::new(5.0));
        // A fresh (non-recovered) gateway attaches silently.
        let mut fresh = JournaledGateway::new(gateway(), JournalConfig::default());
        let t2 = Telemetry::with_defaults();
        fresh.attach_telemetry(&t2);
        assert_eq!(t2.spans_recorded(), 0);
    }
}
