//! Crash recovery: snapshot restore + tail replay + strict re-admission.
//!
//! [`recover`] rebuilds a gateway from nothing but journal bytes:
//!
//! 1. **Decode** the log ([`wire`](crate::wire)), tolerating a torn or
//!    corrupt tail — at most the records at the damage point are lost,
//!    never earlier ones.
//! 2. **Restore** the last intact snapshot (every journal starts with a
//!    genesis snapshot, so one always exists in an undamaged log).
//! 3. **Replay** the input events appended after that snapshot through the
//!    gateway's ordinary code paths. The gateway is a deterministic state
//!    machine over its inputs, so the replayed state equals the live
//!    pre-crash state exactly (modulo wall-clock latency samples — see
//!    [`GatewaySnapshot::normalized`]).
//! 4. **Re-verify**: re-run the strict Fig. 2 admission test over every
//!    recovered waiting plan at the recovery instant. Time passed while the
//!    gateway was down; any plan that no longer survives the strict test is
//!    *demoted* to the defer queue (journaled as
//!    [`JournalEvent::Demoted`]) rather than kept as a guarantee the
//!    cluster can no longer honor.
//!
//! The result is wrapped in a fresh [`JournaledGateway`] whose journal
//! begins with a post-recovery snapshot — recovery doubles as compaction.

use rtdls_core::prelude::{SimTime, TaskId};

use crate::event::JournalEvent;
use crate::journal::{split_at_last_snapshot, Journal, JournalConfig, JournalSink};
use crate::snapshot::{GatewaySnapshot, JournalError, Recoverable};
use crate::wire::{RecordKind, TailStatus};
use crate::JournaledGateway;

/// What a recovery did, for operators and tests.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Frames that participated in this recovery: the restored snapshot
    /// plus every frame after it. Frames *before* the last snapshot (in a
    /// non-compacted log) are superseded by it and not counted.
    pub frames_decoded: usize,
    /// Input events replayed after the restored snapshot.
    pub events_replayed: usize,
    /// Audit records observed after the restored snapshot (not replayed).
    pub audit_records: usize,
    /// How the log's tail looked (anything but `Clean` means the final
    /// record(s) were lost to the crash).
    pub tail: TailStatus,
    /// Tasks the strict re-admission pass demoted out of the waiting queue.
    pub demoted: Vec<TaskId>,
    /// The recovery instant the re-admission pass ran at.
    pub recovered_at: SimTime,
    /// The promotion epoch the recovered gateway journals under: the
    /// restored snapshot's epoch for a plain restart, one higher for a
    /// follower promotion ([`recover_at_epoch`]).
    pub epoch: u64,
}

/// Applies one replayed input event to a bare gateway through its ordinary
/// code paths. Audit events are ignored (replay regenerates them).
pub fn apply_event<G: Recoverable>(gateway: &mut G, event: &JournalEvent) {
    match event {
        JournalEvent::Submitted { task, at } => {
            let _ = gateway.decide(*task, *at);
        }
        JournalEvent::RequestSubmitted { request, at } => {
            let _ = gateway.decide_request(request, *at);
        }
        JournalEvent::ActivationDue { at } => {
            gateway.activate_reservations(*at);
            // Replay regenerates (and discards) the activation audit; the
            // recovery journal re-audits from its own fresh activations.
            let _ = gateway.take_activation_log();
        }
        JournalEvent::BatchSubmitted { tasks, at } => {
            let _ = gateway.decide_batch(tasks, *at);
        }
        JournalEvent::Completed { node, at } => gateway.set_node_release(*node, *at),
        JournalEvent::DispatchDue { at } => {
            // The physical dispatch already happened pre-crash; replay only
            // re-commits its release bookkeeping.
            let _ = gateway.take_due(*at);
        }
        JournalEvent::Replanned { at } => {
            let _ = gateway.replan(*at);
        }
        JournalEvent::Retested { at } => gateway.on_event(*at),
        JournalEvent::Finalized { at } => gateway.finalize(*at),
        JournalEvent::Drained => {
            let _ = gateway.drain_resolutions();
        }
        // Audit records carry no state.
        JournalEvent::Accepted { .. }
        | JournalEvent::Deferred { .. }
        | JournalEvent::Rejected { .. }
        | JournalEvent::Rescued { .. }
        | JournalEvent::Demoted { .. }
        | JournalEvent::Reserved { .. }
        | JournalEvent::ReservationActivated { .. }
        | JournalEvent::Throttled { .. }
        | JournalEvent::SloBreach { .. } => {}
    }
}

/// Steps 1–3 of recovery: decode, restore the last snapshot, replay the
/// tail. Returns the rebuilt bare gateway (no re-verification yet, no new
/// journal) plus the partial report — the exact pre-crash state, which the
/// replay-determinism tests compare against the live gateway.
pub fn replay<G: Recoverable>(bytes: &[u8]) -> Result<(G, RecoveryReport), JournalError> {
    let (snapshot_frame, tail_frames, tail) = split_at_last_snapshot(bytes);
    let snapshot_frame = snapshot_frame.ok_or(JournalError::NoSnapshot)?;
    let payload = String::from_utf8(snapshot_frame.payload)
        .map_err(|e| JournalError::Corrupt(e.to_string()))?;
    let snapshot: GatewaySnapshot = serde_json::from_str(&payload)?;
    let epoch = snapshot.epoch;
    let mut gateway = G::restore(&snapshot)?;
    let mut events_replayed = 0;
    let mut audit_records = 0;
    let mut frames_decoded = 1; // the snapshot frame
    for frame in tail_frames {
        frames_decoded += 1;
        debug_assert_eq!(frame.kind, RecordKind::Event, "snapshot split is exact");
        let payload =
            String::from_utf8(frame.payload).map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let event: JournalEvent = serde_json::from_str(&payload)?;
        if event.is_input() {
            apply_event(&mut gateway, &event);
            events_replayed += 1;
        } else {
            audit_records += 1;
        }
    }
    // Replay regenerates (and discards) the pre-crash breach records — the
    // original WAL already holds them; re-auditing them into the recovery
    // journal would double-book the same breaches.
    let _ = gateway.take_breach_log();
    Ok((
        gateway,
        RecoveryReport {
            frames_decoded,
            events_replayed,
            audit_records,
            tail,
            demoted: Vec::new(),
            recovered_at: SimTime::ZERO,
            epoch,
        },
    ))
}

/// Full recovery (steps 1–4) into a fresh journal: rebuild from `bytes`,
/// re-verify every recovered plan at `now` (demoting what no longer passes
/// the strict test), and wrap the result in a [`JournaledGateway`] whose
/// new journal opens with a post-recovery snapshot followed by the demotion
/// audit records.
pub fn recover<G: Recoverable>(
    bytes: &[u8],
    now: SimTime,
    cfg: JournalConfig,
    sink: Option<Box<dyn JournalSink>>,
) -> Result<(JournaledGateway<G>, RecoveryReport), JournalError> {
    let (gateway, mut report) = replay::<G>(bytes)?;
    let (journaled, demoted) = requalify(gateway, now, cfg, sink, report.epoch);
    report.demoted = demoted;
    report.recovered_at = now;
    Ok((journaled, report))
}

/// [`recover`] under an explicitly bumped epoch — the promotion path. The
/// new journal (and every snapshot it writes) is stamped `epoch` instead
/// of the crashed primary's, so the primary's late appends — still
/// carrying the old epoch — are fenced by every epoch-aware consumer.
pub fn recover_at_epoch<G: Recoverable>(
    bytes: &[u8],
    now: SimTime,
    cfg: JournalConfig,
    sink: Option<Box<dyn JournalSink>>,
    epoch: u64,
) -> Result<(JournaledGateway<G>, RecoveryReport), JournalError> {
    let (gateway, mut report) = replay::<G>(bytes)?;
    let (journaled, demoted) = requalify(gateway, now, cfg, sink, epoch);
    report.demoted = demoted;
    report.recovered_at = now;
    report.epoch = epoch;
    Ok((journaled, report))
}

/// Step 4 of recovery, shared with warm-standby promotion: re-verify every
/// waiting plan at `now` (demoting what no longer passes the strict test),
/// wrap the gateway in a fresh [`JournaledGateway`] journaling under
/// `epoch`, and journal the demotions after the genesis snapshot. Returns
/// the wrapper and the demoted task ids.
pub fn requalify<G: Recoverable>(
    mut gateway: G,
    now: SimTime,
    cfg: JournalConfig,
    sink: Option<Box<dyn JournalSink>>,
    epoch: u64,
) -> (JournaledGateway<G>, Vec<TaskId>) {
    let demoted: Vec<TaskId> = gateway.reverify(now).iter().map(|t| t.id).collect();
    let mut journal = match sink {
        Some(sink) => Journal::with_sink(cfg, sink),
        None => Journal::in_memory(cfg),
    };
    journal.set_epoch(epoch);
    let mut journaled = JournaledGateway::with_journal(gateway, journal);
    journaled.mark_recovered(now);
    for task in &demoted {
        journaled
            .journal_mut()
            .append_event(&JournalEvent::Demoted {
                task: task.0,
                at: now,
            });
    }
    // Demotions are attainment-SLO events: if the re-admission pass tipped
    // a scope into breach, that breach is new (post-crash) and belongs in
    // the fresh journal.
    journaled.audit_breaches();
    (journaled, demoted)
}

/// Convenience for the common file round trip: read `path`, recover at
/// `now`, and re-journal into the same file (the rewrite compacts the log
/// down to the post-recovery snapshot). The file is only rewritten — via
/// an atomic temp-file + rename — *after* recovery has succeeded, so a
/// failed recovery (or a crash mid-rewrite) always leaves the original
/// journal intact for a retry or an operator post-mortem.
///
/// The reattached sink syncs per append (the safest default); a server
/// that ran with group commit must say so again via
/// [`recover_file_with_policy`] — the policy is process configuration,
/// not journaled state, so recovery cannot infer it from the log.
pub fn recover_file<G: Recoverable>(
    path: impl AsRef<std::path::Path>,
    now: SimTime,
    cfg: JournalConfig,
) -> Result<(JournaledGateway<G>, RecoveryReport), JournalError> {
    recover_file_with_policy(path, now, cfg, crate::journal::FsyncPolicy::EveryAppend)
}

/// [`recover_file`] with an explicit [`FsyncPolicy`] for the reattached
/// sink, so a group-commit edge keeps its durability/cost point across a
/// restart instead of silently falling back to per-append fsync.
///
/// [`FsyncPolicy`]: crate::journal::FsyncPolicy
pub fn recover_file_with_policy<G: Recoverable>(
    path: impl AsRef<std::path::Path>,
    now: SimTime,
    cfg: JournalConfig,
    policy: crate::journal::FsyncPolicy,
) -> Result<(JournaledGateway<G>, RecoveryReport), JournalError> {
    let bytes = crate::journal::FileSink::read(&path)?;
    let (mut journaled, report) = recover(&bytes, now, cfg, None)?;
    let sink = crate::journal::FileSink::open_preserving(&path)?.with_fsync_policy(policy);
    journaled.journal_mut().attach_sink(Box::new(sink));
    Ok((journaled, report))
}
