//! `journalctl`-style audit inspector for rtdls WAL files and segment
//! directories.
//!
//! Walks a journal's frames ([`wire::decode_frames`]) and pretty-prints
//! each record with its byte offset: snapshots as one-line gateway
//! summaries, inputs as the replayed command stream, and audit records as
//! the decision history — accepted plans, defer tickets, demotions, and
//! the v2 reservation / activation / quota events. The tail status closes
//! the listing, so a torn or corrupt log is visible at a glance.
//!
//! The path may be a single WAL file or a [`SegmentedSink`] directory; in
//! the latter case every segment is walked in sequence order and each
//! record line leads with its `segment:offset` coordinate.
//!
//! ```text
//! Usage: inspect <journal-file|segment-dir> [--inputs | --audit] [--segments] [--limit N] [--json]
//! ```
//!
//! `--segments` switches to the segment ledger: one line per segment with
//! its seal point (sealed byte offset), epoch, frame count, manifest
//! checksum, and whether the bytes on disk still match it.
//!
//! `--json` switches to a machine-readable mode for edge/ops tooling: one
//! JSON object per line — `{"offset":…,"kind":"snapshot"|"event",
//! "class":"input"|"audit","record":…}` (plus `"segment":…` when reading a
//! segment directory) with the record's own JSON embedded verbatim —
//! closed by `{"omitted":…}` when `--limit` truncates, a `{"durability":…}`
//! summary of the physical log (bytes, record and snapshot counts), and a
//! final `{"tail":…}` status object.
//!
//! [`SegmentedSink`]: rtdls_journal::segment::SegmentedSink

use std::process::ExitCode;

use rtdls_journal::event::JournalEvent;
use rtdls_journal::segment::{read_segment_dir, segment_checksum, SegmentFile};
use rtdls_journal::snapshot::GatewaySnapshot;
use rtdls_journal::wire::{self, RecordKind, TailStatus};

/// One stream to inspect: `None` segment id for a single WAL file, one
/// `(Some(seq), bytes)` entry per segment for a segment directory.
type Source<'a> = (Option<u64>, &'a [u8]);

/// One line per snapshot: the gateway shape and the sizes of its books.
fn describe_snapshot(snap: &GatewaySnapshot) -> String {
    let queues: Vec<usize> = snap.shards.iter().map(|s| s.queue.len()).collect();
    format!(
        "SNAPSHOT {} {} nodes × {} shard(s) | waiting {:?} | defer {} | reservations {} | \
         tenants {} | submitted {} accepted {} rejected {}",
        if snap.sharded { "sharded" } else { "single" },
        snap.params.num_nodes,
        snap.shards.len(),
        queues,
        snap.defer.tickets.len(),
        snap.reservations.reservations.len(),
        snap.metrics.tenants.len(),
        snap.metrics.submitted,
        snap.metrics.accepted_total(),
        snap.metrics.rejected_total(),
    )
}

/// One line per event, input commands prefixed `IN`, audit records `AUDIT`.
fn describe_event(ev: &JournalEvent) -> String {
    let class = if ev.is_input() { "IN   " } else { "AUDIT" };
    let body = match ev {
        JournalEvent::Submitted { task, at } => format!(
            "submit task {} (σ={} D={}) at {at}",
            task.id.0, task.data_size, task.rel_deadline
        ),
        JournalEvent::RequestSubmitted { request, at } => format!(
            "request task {} tenant {} {:?} max_delay {:?} at {at}",
            request.task.id.0, request.tenant.0, request.qos, request.max_delay
        ),
        JournalEvent::BatchSubmitted { tasks, at } => {
            let ids: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
            format!("batch of {} {ids:?} at {at}", tasks.len())
        }
        JournalEvent::Completed { node, at } => format!("node {node} released at {at}"),
        JournalEvent::DispatchDue { at } => format!("dispatch due at {at}"),
        JournalEvent::Replanned { at } => format!("replanned at {at}"),
        JournalEvent::Retested { at } => format!("defer sweep at {at}"),
        JournalEvent::ActivationDue { at } => format!("reservation activation sweep at {at}"),
        JournalEvent::Finalized { at } => format!("finalized at {at}"),
        JournalEvent::Drained => "resolutions drained".to_string(),
        JournalEvent::Accepted { task, plan } => format!(
            "task {task} ACCEPTED on {} node(s), est completion {}",
            plan.distinct_nodes(),
            plan.est_completion
        ),
        JournalEvent::Deferred { task, ticket } => {
            format!("task {task} DEFERRED under ticket {ticket}")
        }
        JournalEvent::Rejected { task, cause } => format!("task {task} REJECTED: {cause}"),
        JournalEvent::Rescued { task } => format!("task {task} RESCUED from the defer queue"),
        JournalEvent::Demoted { task, at } => {
            format!("task {task} DEMOTED by recovery re-verification at {at}")
        }
        JournalEvent::Reserved {
            task,
            ticket,
            start_at,
        } => format!("task {task} RESERVED (ticket {ticket}) to start at {start_at}"),
        JournalEvent::ReservationActivated {
            task,
            ticket,
            at,
            admitted,
        } => format!(
            "reservation {ticket} (task {task}) activated at {at}: {}",
            if *admitted { "ADMITTED" } else { "MISSED" }
        ),
        JournalEvent::Throttled { task, tenant } => {
            format!("task {task} THROTTLED (tenant {tenant} over quota)")
        }
        JournalEvent::SloBreach { breach } => format!(
            "SLO BREACH {} {} at {} (short burn {:.2}, long burn {:.2}, {} recent task(s), {} timeline line(s))",
            breach.row.scope(),
            breach.transition.objective.label(),
            breach.transition.at,
            breach.row.short_burn,
            breach.row.long_burn,
            breach.recent_tasks.len(),
            breach.timelines.len(),
        ),
    };
    format!("{class} {body}")
}

/// The overall tail verdict for a multi-source listing: the first damage
/// found wins (earlier segments are supposed to be sealed and clean, so
/// damage there is the more alarming finding).
fn fold_tail(worst: TailStatus, tail: TailStatus) -> TailStatus {
    match worst {
        TailStatus::Clean => tail,
        damaged => damaged,
    }
}

/// Renders the whole log. `filter`: None = everything, Some(true) = inputs
/// only, Some(false) = audit records only (snapshots always print).
fn render(sources: &[Source<'_>], filter: Option<bool>, limit: usize) -> (Vec<String>, TailStatus) {
    // Describe the frames that survive the filter first, so the
    // truncation marker counts exactly what the listing omits.
    let mut entries: Vec<String> = Vec::new();
    let mut worst = TailStatus::Clean;
    for (segment, bytes) in sources {
        let (frames, tail) = wire::decode_frames(bytes);
        worst = fold_tail(worst, tail);
        for frame in &frames {
            let payload = String::from_utf8_lossy(&frame.payload);
            let line = match frame.kind {
                RecordKind::Snapshot => match serde_json::from_str::<GatewaySnapshot>(&payload) {
                    Ok(snap) => describe_snapshot(&snap),
                    Err(e) => format!("SNAPSHOT <undecodable: {e}>"),
                },
                RecordKind::Event => match serde_json::from_str::<JournalEvent>(&payload) {
                    Ok(ev) => {
                        if let Some(inputs_only) = filter {
                            if ev.is_input() != inputs_only {
                                continue;
                            }
                        }
                        describe_event(&ev)
                    }
                    Err(e) => format!("EVENT <undecodable: {e}>"),
                },
            };
            match segment {
                Some(seq) => entries.push(format!("{seq:>6}:{:>8}  {line}", frame.offset)),
                None => entries.push(format!("{:>10}  {line}", frame.offset)),
            }
        }
    }
    let omitted = entries.len().saturating_sub(limit);
    let mut lines = entries;
    if omitted > 0 {
        lines.truncate(limit);
        lines.push(format!("… {omitted} more record(s)"));
    }
    (lines, worst)
}

/// Renders the whole log as JSON lines (see the module docs for the
/// shape). Same `filter`/`limit` semantics as [`render`]; undecodable
/// payloads become `{"undecodable": "<error>"}` records rather than
/// aborting the listing.
fn render_json(
    sources: &[Source<'_>],
    filter: Option<bool>,
    limit: usize,
) -> (Vec<String>, TailStatus) {
    use serde::Value;
    let mut entries: Vec<String> = Vec::new();
    let mut worst = TailStatus::Clean;
    let mut total_bytes = 0usize;
    let mut total_frames = 0usize;
    let mut snapshots = 0usize;
    for (segment, bytes) in sources {
        let (frames, tail) = wire::decode_frames(bytes);
        worst = fold_tail(worst, tail);
        total_bytes += bytes.len();
        total_frames += frames.len();
        snapshots += frames
            .iter()
            .filter(|f| f.kind == RecordKind::Snapshot)
            .count();
        for frame in &frames {
            let payload = String::from_utf8_lossy(&frame.payload);
            let (kind, class) = match frame.kind {
                RecordKind::Snapshot => ("snapshot", None),
                RecordKind::Event => {
                    let is_input = serde_json::from_str::<JournalEvent>(&payload)
                        .map(|ev| ev.is_input())
                        .ok();
                    if let (Some(inputs_only), Some(is_input)) = (filter, is_input) {
                        if is_input != inputs_only {
                            continue;
                        }
                    }
                    ("event", is_input)
                }
            };
            let record: Value = serde_json::from_str(&payload).unwrap_or_else(|e| {
                Value::Map(vec![("undecodable".to_string(), Value::Str(e.to_string()))])
            });
            let mut obj = vec![("offset".to_string(), Value::Int(frame.offset as i64))];
            if let Some(seq) = segment {
                obj.push(("segment".to_string(), Value::Int(*seq as i64)));
            }
            obj.push(("kind".to_string(), Value::Str(kind.to_string())));
            if let Some(is_input) = class {
                obj.push((
                    "class".to_string(),
                    Value::Str(if is_input { "input" } else { "audit" }.to_string()),
                ));
            }
            obj.push(("record".to_string(), record));
            entries.push(serde_json::to_string(&Value::Map(obj)).expect("serializable"));
        }
    }
    let omitted = entries.len().saturating_sub(limit);
    let mut lines = entries;
    if omitted > 0 {
        lines.truncate(limit);
        lines.push(format!("{{\"omitted\":{omitted}}}"));
    }
    // Physical durability summary (unfiltered): what actually survives on
    // disk, for edge/ops tooling that watches WAL growth and compaction.
    lines.push(format!(
        "{{\"durability\":{{\"bytes\":{},\"records\":{},\"snapshots\":{},\"events\":{},\"segments\":{}}}}}",
        total_bytes,
        total_frames,
        snapshots,
        total_frames - snapshots,
        sources.iter().filter(|(seg, _)| seg.is_some()).count(),
    ));
    let tail_line = match worst {
        TailStatus::Clean => "{\"tail\":\"clean\"}".to_string(),
        TailStatus::Truncated { offset } => {
            format!("{{\"tail\":\"truncated\",\"offset\":{offset}}}")
        }
        TailStatus::Corrupt { offset } => format!("{{\"tail\":\"corrupt\",\"offset\":{offset}}}"),
    };
    lines.push(tail_line);
    (lines, worst)
}

/// The epoch a segment was written under: the manifest entry when sealed,
/// else the leading snapshot's stamp (the active segment has no manifest
/// line yet).
fn segment_epoch(seg: &SegmentFile, frames: &[wire::Frame]) -> Option<u64> {
    if let Some(meta) = &seg.meta {
        return Some(meta.epoch);
    }
    frames
        .iter()
        .find(|f| f.kind == RecordKind::Snapshot)
        .and_then(|f| {
            serde_json::from_str::<GatewaySnapshot>(&String::from_utf8_lossy(&f.payload)).ok()
        })
        .map(|s| s.epoch)
}

/// The `--segments` ledger: one line per segment with its seal point,
/// epoch, frame count, checksum, and verification verdict. Returns the
/// lines plus whether every sealed segment still matches its manifest.
fn render_segments(segments: &[SegmentFile], json: bool) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut all_ok = true;
    for seg in segments {
        let (frames, tail) = wire::decode_frames(&seg.bytes);
        let anchored = frames.first().map(|f| f.kind) == Some(RecordKind::Snapshot);
        let sealed = seg.meta.is_some();
        let ok = seg.checksum_ok() && (!sealed || matches!(tail, TailStatus::Clean));
        all_ok &= ok;
        let epoch = segment_epoch(seg, &frames);
        let checksum = seg
            .meta
            .as_ref()
            .map(|m| m.checksum)
            .unwrap_or_else(|| segment_checksum(&seg.bytes));
        if json {
            use serde::Value;
            let mut obj = vec![
                ("segment".to_string(), Value::Int(seg.seq as i64)),
                ("sealed".to_string(), Value::Bool(sealed)),
                ("frames".to_string(), Value::Int(frames.len() as i64)),
                ("bytes".to_string(), Value::Int(seg.bytes.len() as i64)),
                (
                    "checksum".to_string(),
                    Value::Str(format!("{checksum:016x}")),
                ),
                ("checksum_ok".to_string(), Value::Bool(ok)),
                ("anchored".to_string(), Value::Bool(anchored)),
            ];
            if let Some(epoch) = epoch {
                obj.insert(2, ("epoch".to_string(), Value::Int(epoch as i64)));
            }
            lines.push(serde_json::to_string(&Value::Map(obj)).expect("serializable"));
        } else {
            let epoch = epoch.map_or("?".to_string(), |e| e.to_string());
            lines.push(format!(
                "seg-{:06}  epoch {epoch:>3}  frames {:>5}  {} {:>9}  checksum {checksum:016x}  {}{}",
                seg.seq,
                frames.len(),
                if sealed { "sealed @" } else { "active @" },
                seg.bytes.len(),
                if ok {
                    "OK"
                } else if sealed {
                    "MISMATCH"
                } else {
                    "TORN"
                },
                if anchored { "  [snapshot-anchored]" } else { "" },
            ));
        }
    }
    (lines, all_ok)
}

const USAGE: &str =
    "Usage: inspect <journal-file|segment-dir> [--inputs | --audit] [--segments] [--limit N] [--json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut filter = None;
    let mut limit = usize::MAX;
    let mut json = false;
    let mut segments_mode = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--inputs" => filter = Some(true),
            "--audit" => filter = Some(false),
            "--json" => json = true,
            "--segments" => segments_mode = true,
            "--limit" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => limit = n,
                None => {
                    eprintln!("--limit needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let is_dir = std::fs::metadata(&path)
        .map(|m| m.is_dir())
        .unwrap_or(false);
    if segments_mode {
        if !is_dir {
            eprintln!("--segments needs a segment directory, and {path} is not one");
            return ExitCode::FAILURE;
        }
        let segs = match read_segment_dir(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read segment dir {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (lines, all_ok) = render_segments(&segs, json);
        if !json {
            println!("{path}: {} segment(s)", segs.len());
        }
        for line in lines {
            println!("{line}");
        }
        return if all_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    // Resolve the path into inspection sources: each segment of a
    // directory in sequence order, or the single file's bytes.
    let seg_files: Vec<SegmentFile>;
    let file_bytes: Vec<u8>;
    let sources: Vec<Source<'_>> = if is_dir {
        seg_files = match read_segment_dir(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read segment dir {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        seg_files
            .iter()
            .map(|s| (Some(s.seq), s.bytes.as_slice()))
            .collect()
    } else {
        file_bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        vec![(None, file_bytes.as_slice())]
    };
    if json {
        let (lines, tail) = render_json(&sources, filter, limit);
        for line in lines {
            println!("{line}");
        }
        return match tail {
            TailStatus::Clean => ExitCode::SUCCESS,
            _ => ExitCode::FAILURE,
        };
    }
    let (lines, tail) = render(&sources, filter, limit);
    let total: usize = sources.iter().map(|(_, b)| b.len()).sum();
    println!("{path}: {total} byte(s)");
    for line in lines {
        println!("{line}");
    }
    match tail {
        TailStatus::Clean => {
            println!("tail: clean");
            ExitCode::SUCCESS
        }
        TailStatus::Truncated { offset } => {
            println!("tail: TORN WRITE at byte {offset} (records before it are intact)");
            ExitCode::FAILURE
        }
        TailStatus::Corrupt { offset } => {
            println!("tail: CORRUPT at byte {offset} (records before it are intact)");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::*;
    use rtdls_journal::prelude::*;
    use rtdls_service::prelude::*;
    use rtdls_sim::frontend::Frontend;

    /// A small real WAL: one accept, one reject, a dispatch, a v2 request.
    fn sample_wal() -> Vec<u8> {
        let gateway = ShardedGateway::new(
            ClusterParams::paper_baseline(),
            2,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::RoundRobin,
            DeferPolicy::default(),
        )
        .unwrap();
        let mut j = JournaledGateway::new(gateway, JournalConfig::default());
        assert!(j
            .submit(Task::new(1, 0.0, 200.0, 30_000.0), SimTime::ZERO)
            .is_accepted());
        let _ = j.submit(Task::new(2, 0.0, 200.0, 10.0), SimTime::ZERO);
        let _ = Frontend::take_due(&mut j, SimTime::ZERO);
        let req = SubmitRequest::new(Task::new(3, 1.0, 100.0, 50_000.0))
            .with_tenant(TenantId(5))
            .with_qos(QosClass::Premium);
        assert!(j.submit_request(&req, SimTime::new(1.0)).is_accepted());
        j.journal().bytes().to_vec()
    }

    fn single(wal: &[u8]) -> Vec<Source<'_>> {
        vec![(None, wal)]
    }

    /// A real rotated segment directory: frequent compacting snapshots over
    /// a [`SegmentedSink`] seal several segments plus an active tail.
    fn sample_segment_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rtdls-inspect-seg-{tag}-{}", std::process::id()));
        let sink = SegmentedSink::create(&dir).unwrap();
        let gateway = Gateway::new(
            ClusterParams::paper_baseline(),
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        let mut j = JournaledGateway::with_sink(
            gateway,
            JournalConfig {
                snapshot_every: 2,
                compact_on_snapshot: true,
            },
            Box::new(sink),
        );
        for i in 0..6 {
            let _ = j.submit(
                Task::new(i + 1, i as f64, 200.0, 30_000.0),
                SimTime::new(i as f64),
            );
        }
        j.flush_journal();
        dir
    }

    #[test]
    fn renders_every_frame_with_offsets_and_clean_tail() {
        let wal = sample_wal();
        let (lines, tail) = render(&single(&wal), None, usize::MAX);
        assert_eq!(tail, TailStatus::Clean);
        let text = lines.join("\n");
        assert!(text.contains("SNAPSHOT sharded"), "{text}");
        assert!(text.contains("submit task 1"), "{text}");
        assert!(text.contains("ACCEPTED"), "{text}");
        assert!(text.contains("REJECTED"), "{text}");
        assert!(text.contains("dispatch due"), "{text}");
        assert!(text.contains("request task 3 tenant 5 Premium"), "{text}");
        // Every line leads with its frame byte offset.
        assert!(lines.iter().all(|l| l
            .trim_start()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())));
    }

    #[test]
    fn input_and_audit_filters_partition_the_events() {
        let wal = sample_wal();
        let (all, _) = render(&single(&wal), None, usize::MAX);
        let (inputs, _) = render(&single(&wal), Some(true), usize::MAX);
        let (audit, _) = render(&single(&wal), Some(false), usize::MAX);
        // 1 snapshot line is in all three listings.
        assert_eq!(inputs.len() + audit.len(), all.len() + 1);
        assert!(inputs.iter().any(|l| l.contains("IN   ")));
        assert!(audit.iter().all(|l| !l.contains("IN   ")));
    }

    #[test]
    fn limit_truncates_with_an_accurate_marker() {
        let wal = sample_wal();
        let (all, _) = render(&single(&wal), None, usize::MAX);
        let (lines, _) = render(&single(&wal), None, 2);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            *lines.last().unwrap(),
            format!("… {} more record(s)", all.len() - 2)
        );
        // Under a filter the marker counts only the filtered remainder.
        let (audit, _) = render(&single(&wal), Some(false), usize::MAX);
        let (limited, _) = render(&single(&wal), Some(false), 2);
        assert_eq!(
            *limited.last().unwrap(),
            format!("… {} more record(s)", audit.len() - 2)
        );
    }

    #[test]
    fn json_mode_emits_one_parseable_object_per_record() {
        let wal = sample_wal();
        let (lines, tail) = render_json(&single(&wal), None, usize::MAX);
        assert_eq!(tail, TailStatus::Clean);
        // Every line is a standalone JSON object (JSON-lines contract).
        let objects: Vec<serde::Value> = lines
            .iter()
            .map(|l| serde_json::from_str(l).expect("each line parses"))
            .collect();
        let kind_of = |v: &serde::Value| {
            v.get("kind").and_then(|k| match k {
                serde::Value::Str(s) => Some(s.clone()),
                _ => None,
            })
        };
        assert_eq!(kind_of(&objects[0]).as_deref(), Some("snapshot"));
        assert!(objects[0].get("offset").is_some());
        assert!(
            objects[0].get("segment").is_none(),
            "single-file listings carry no segment ids"
        );
        assert!(
            objects[0]
                .get("record")
                .and_then(|r| r.get("shards"))
                .is_some(),
            "the snapshot's own JSON is embedded verbatim"
        );
        // Events carry an input/audit class and their full record.
        let event = objects
            .iter()
            .find(|o| kind_of(o).as_deref() == Some("event"))
            .unwrap();
        assert!(matches!(
            event.get("class"),
            Some(serde::Value::Str(c)) if c == "input" || c == "audit"
        ));
        // The listing closes with the durability summary and tail status.
        let last = objects.last().unwrap();
        assert!(matches!(last.get("tail"), Some(serde::Value::Str(s)) if s == "clean"));
        let durability = objects[objects.len() - 2]
            .get("durability")
            .expect("durability summary precedes the tail");
        assert_eq!(
            durability.get("bytes"),
            Some(&serde::Value::Int(wal.len() as i64))
        );
        assert_eq!(durability.get("snapshots"), Some(&serde::Value::Int(1)));
        // The machine count matches the human listing's record count.
        let (human, _) = render(&single(&wal), None, usize::MAX);
        assert_eq!(
            objects.len(),
            human.len() + 2,
            "records + durability + tail objects"
        );
    }

    #[test]
    fn json_mode_respects_filters_limits_and_damage() {
        let wal = sample_wal();
        let (all, _) = render_json(&single(&wal), None, usize::MAX);
        let (inputs, _) = render_json(&single(&wal), Some(true), usize::MAX);
        let (audit, _) = render_json(&single(&wal), Some(false), usize::MAX);
        // snapshot + durability + tail appear in both filtered listings.
        assert_eq!(inputs.len() + audit.len(), all.len() + 3);
        assert!(inputs.iter().any(|l| l.contains("\"class\":\"input\"")));
        assert!(audit.iter().all(|l| !l.contains("\"class\":\"input\"")));
        // --limit truncates with a machine-readable omission marker.
        let (limited, _) = render_json(&single(&wal), None, 2);
        assert_eq!(limited.len(), 5, "2 records + omitted + durability + tail");
        let marker: serde::Value = serde_json::from_str(&limited[2]).unwrap();
        assert_eq!(
            marker.get("omitted"),
            Some(&serde::Value::Int((all.len() - 2 - 2) as i64))
        );
        // A torn tail is reported as a JSON object too.
        let mut torn = wal;
        let cut = torn.len() - 3;
        torn.truncate(cut);
        let (lines, tail) = render_json(&single(&torn), None, usize::MAX);
        assert!(matches!(tail, TailStatus::Truncated { .. }));
        let last: serde::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert!(matches!(last.get("tail"), Some(serde::Value::Str(s)) if s == "truncated"));
        assert!(last.get("offset").is_some());
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let mut wal = sample_wal();
        let cut = wal.len() - 3;
        wal.truncate(cut);
        let (lines, tail) = render(&single(&wal), None, usize::MAX);
        assert!(matches!(tail, TailStatus::Truncated { .. }));
        assert!(!lines.is_empty(), "intact frames still render");
    }

    #[test]
    fn segment_dir_listing_carries_segment_ids() {
        let dir = sample_segment_dir("listing");
        let segs = read_segment_dir(&dir).unwrap();
        assert!(
            segs.len() >= 2,
            "rotation produced {} segment(s)",
            segs.len()
        );
        let sources: Vec<Source<'_>> = segs
            .iter()
            .map(|s| (Some(s.seq), s.bytes.as_slice()))
            .collect();
        // Human listing: every line leads with its segment:offset pair.
        let (lines, tail) = render(&sources, None, usize::MAX);
        assert_eq!(tail, TailStatus::Clean);
        assert!(lines.iter().all(|l| l.contains(':')), "{lines:?}");
        // JSON listing: each record object carries its segment id, and the
        // durability summary counts the segments.
        let (json_lines, _) = render_json(&sources, None, usize::MAX);
        let objects: Vec<serde::Value> = json_lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert!(objects
            .iter()
            .filter(|o| o.get("kind").is_some())
            .all(|o| o.get("segment").is_some()));
        let durability = objects[objects.len() - 2].get("durability").unwrap();
        assert_eq!(
            durability.get("segments"),
            Some(&serde::Value::Int(segs.len() as i64))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_ledger_lists_seal_points_epochs_and_checksums() {
        let dir = sample_segment_dir("ledger");
        let mut segs = read_segment_dir(&dir).unwrap();
        let (lines, all_ok) = render_segments(&segs, false);
        assert!(all_ok, "{lines:?}");
        assert_eq!(lines.len(), segs.len());
        assert!(lines.iter().any(|l| l.contains("sealed @")), "{lines:?}");
        assert!(
            lines
                .iter()
                .all(|l| l.contains("epoch") && l.contains("checksum")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("[snapshot-anchored]")),
            "rotation anchors every sealed segment on a snapshot: {lines:?}"
        );
        // JSON ledger: one object per segment with a verdict.
        let (json_lines, _) = render_segments(&segs, true);
        for line in &json_lines {
            let obj: serde::Value = serde_json::from_str(line).unwrap();
            assert!(obj.get("segment").is_some());
            assert!(obj.get("checksum_ok").is_some());
        }
        // Flipping a byte in a sealed segment is caught by the manifest.
        let sealed = segs.iter_mut().find(|s| s.meta.is_some()).unwrap();
        sealed.bytes[0] ^= 0xff;
        let (lines, all_ok) = render_segments(&segs, false);
        assert!(!all_ok);
        assert!(lines.iter().any(|l| l.contains("MISMATCH")), "{lines:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
