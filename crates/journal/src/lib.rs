//! # rtdls-journal
//!
//! Write-ahead journaling, compacting snapshots, and crash recovery for the
//! `rtdls-service` admission gateway.
//!
//! The gateway promises hard real-time guarantees — "this task *will* meet
//! its deadline" — but (before this crate) held every promise in memory: a
//! restart silently dropped the whole book. This crate makes the promises
//! durable:
//!
//! * **[`JournaledGateway`]** wraps a [`Gateway`] or [`ShardedGateway`] and
//!   write-ahead-logs every decision-relevant input (submissions, node
//!   completions, dispatch/replan/re-test instants) into an append-only,
//!   checksummed, length-prefixed [`Journal`] — plus audit records of each
//!   decision (accepted plans with their per-node chunk maps, defer
//!   tickets, rejection causes). It implements the simulator's
//!   [`Frontend`](rtdls_sim::frontend::Frontend) trait, so it drops into
//!   any existing driver unchanged.
//! * **Snapshots** of the full gateway state (per-shard books, defer queue
//!   with its policy, cumulative metrics) are appended periodically and
//!   compact the log, bounding recovery replay time.
//! * **[`recover`]** rebuilds a gateway from nothing but journal bytes:
//!   restore the last intact snapshot, replay the input tail (the gateway
//!   is a deterministic state machine, so the replayed state equals the
//!   pre-crash state exactly), then **re-verify** every recovered plan
//!   against the strict Fig. 2 admission test at the recovery instant —
//!   demoting any now-infeasible task to the defer queue (journaled as
//!   `Demoted`) instead of carrying a guarantee the cluster can no longer
//!   honor. Torn or corrupt tail records are detected by checksum and
//!   skipped without losing earlier records.
//!
//! ```
//! use rtdls_core::prelude::*;
//! use rtdls_service::prelude::*;
//! use rtdls_journal::prelude::*;
//!
//! let gateway = ShardedGateway::new(
//!     ClusterParams::paper_baseline(),
//!     4,
//!     AlgorithmKind::EDF_DLT,
//!     PlanConfig::default(),
//!     Routing::LeastLoaded,
//!     DeferPolicy::default(),
//! )
//! .unwrap();
//! let mut journaled = JournaledGateway::new(gateway, JournalConfig::default());
//! journaled.submit(Task::new(1, 0.0, 200.0, 30_000.0), SimTime::ZERO);
//!
//! // The process dies; only the journal bytes survive.
//! let wal = journaled.journal().bytes().to_vec();
//! drop(journaled);
//!
//! let (recovered, report) = rtdls_journal::recover::<ShardedGateway>(
//!     &wal,
//!     SimTime::ZERO,
//!     JournalConfig::default(),
//!     None,
//! )
//! .unwrap();
//! assert!(report.tail.is_clean());
//! assert_eq!(recovered.inner().metrics().accepted_total(), 1);
//! assert!(report.demoted.is_empty(), "nothing became infeasible");
//! ```
//!
//! [`Gateway`]: rtdls_service::gateway::Gateway
//! [`ShardedGateway`]: rtdls_service::shard::ShardedGateway

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod gateway;
pub mod journal;
pub mod recover;
pub mod segment;
pub mod snapshot;
pub mod telemetry;
pub mod wire;

pub use event::JournalEvent;
pub use gateway::JournaledGateway;
pub use journal::{FileSink, FsyncPolicy, Journal, JournalConfig, JournalSink, SinkStats};
pub use recover::{
    apply_event, recover, recover_at_epoch, recover_file, recover_file_with_policy, replay,
    requalify, RecoveryReport,
};
pub use segment::{
    read_segment_dir, recover_segment_dir, recovery_bytes, SegmentFile, SegmentMeta, SegmentStats,
    SegmentedSink,
};
pub use snapshot::{GatewaySnapshot, JournalError, Recoverable};
pub use telemetry::fold_journal_metrics;
pub use wire::TailStatus;

/// One-stop imports for journaling users.
pub mod prelude {
    pub use crate::event::JournalEvent;
    pub use crate::gateway::JournaledGateway;
    pub use crate::journal::{
        FileSink, FsyncPolicy, Journal, JournalConfig, JournalSink, SinkStats,
    };
    pub use crate::recover::{
        recover, recover_at_epoch, recover_file, recover_file_with_policy, replay, requalify,
        RecoveryReport,
    };
    pub use crate::segment::{
        read_segment_dir, recover_segment_dir, SegmentFile, SegmentMeta, SegmentStats,
        SegmentedSink,
    };
    pub use crate::snapshot::{GatewaySnapshot, JournalError, Recoverable};
    pub use crate::telemetry::fold_journal_metrics;
    pub use crate::wire::TailStatus;
}
