//! The on-disk record framing: length-prefixed, checksummed, append-only.
//!
//! Every record travels in one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  "RJ"
//! 2       1     format version (currently 1)
//! 3       1     record kind (1 = event, 2 = snapshot)
//! 4       4     payload length, u32 little-endian
//! 8       8     FNV-1a 64 checksum over kind byte + payload, u64 LE
//! 16      len   payload (UTF-8 JSON via the in-repo serde stand-ins)
//! ```
//!
//! The decoder walks frames front to back and stops at the first anomaly,
//! classifying the tail:
//!
//! * **Truncated** — the final frame's header or payload is cut short
//!   (a torn write: the process died mid-`write`). Everything before it is
//!   intact and returned.
//! * **Corrupt** — bad magic, an unknown version/kind, or a checksum
//!   mismatch (bit rot, or a write that landed partially over garbage).
//!   Decoding stops there; earlier records are still returned.
//!
//! Either way a recovery loses at most the records at the damaged tail —
//! never an earlier one — which is exactly the write-ahead-log contract.

/// Frame magic: `RJ` (rtdls journal).
pub const MAGIC: [u8; 2] = *b"RJ";

/// Current format version.
pub const VERSION: u8 = 1;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 16;

/// What a frame's payload contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// One [`JournalEvent`](crate::event::JournalEvent).
    Event,
    /// One [`GatewaySnapshot`](crate::snapshot::GatewaySnapshot).
    Snapshot,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Event => 1,
            RecordKind::Snapshot => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RecordKind::Event),
            2 => Some(RecordKind::Snapshot),
            _ => None,
        }
    }
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Payload interpretation.
    pub kind: RecordKind,
    /// Byte offset of the frame header within the log.
    pub offset: usize,
    /// The record payload (JSON bytes).
    pub payload: Vec<u8>,
}

/// How the log's tail looked to the decoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belonged to a complete, checksum-valid frame.
    Clean,
    /// The final frame was cut short (torn write) at the given byte offset;
    /// all earlier frames were recovered.
    Truncated {
        /// Byte offset of the damaged frame's header.
        offset: usize,
    },
    /// Bad magic / version / kind / checksum at the given byte offset;
    /// decoding stopped, all earlier frames were recovered.
    Corrupt {
        /// Byte offset where the anomaly was detected.
        offset: usize,
    },
}

impl TailStatus {
    /// `true` when the whole log decoded without loss.
    pub fn is_clean(self) -> bool {
        self == TailStatus::Clean
    }
}

/// FNV-1a 64 over the kind byte followed by the payload. Not
/// cryptographic — it detects torn writes and bit rot, which is all a
/// single-writer WAL needs.
pub fn checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    eat(kind);
    for &b in payload {
        eat(b);
    }
    h
}

/// Encodes one record into its frame bytes.
pub fn encode_frame(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(kind.to_byte(), payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes every intact frame from `bytes`, classifying the tail. Never
/// fails: damage only shortens the returned list.
pub fn decode_frames(bytes: &[u8]) -> (Vec<Frame>, TailStatus) {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            return (frames, TailStatus::Truncated { offset: pos });
        }
        if rest[0..2] != MAGIC || rest[2] != VERSION {
            return (frames, TailStatus::Corrupt { offset: pos });
        }
        let Some(kind) = RecordKind::from_byte(rest[3]) else {
            return (frames, TailStatus::Corrupt { offset: pos });
        };
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        let crc = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        if rest.len() < HEADER_LEN + len {
            return (frames, TailStatus::Truncated { offset: pos });
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if checksum(rest[3], payload) != crc {
            return (frames, TailStatus::Corrupt { offset: pos });
        }
        frames.push(Frame {
            kind,
            offset: pos,
            payload: payload.to_vec(),
        });
        pos += HEADER_LEN + len;
    }
    (frames, TailStatus::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        log.extend(encode_frame(RecordKind::Snapshot, b"{\"s\":0}"));
        log.extend(encode_frame(RecordKind::Event, b"{\"e\":1}"));
        log.extend(encode_frame(RecordKind::Event, b"{\"e\":2}"));
        log
    }

    #[test]
    fn clean_log_round_trips() {
        let (frames, tail) = decode_frames(&sample_log());
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].kind, RecordKind::Snapshot);
        assert_eq!(frames[2].payload, b"{\"e\":2}");
        assert_eq!(frames[0].offset, 0);
        assert!(frames[1].offset > 0);
    }

    #[test]
    fn every_truncation_point_keeps_all_earlier_frames() {
        let log = sample_log();
        let frame_starts: Vec<usize> = decode_frames(&log).0.iter().map(|f| f.offset).collect();
        for cut in 0..=log.len() {
            let (frames, tail) = decode_frames(&log[..cut]);
            let complete_before_cut = frame_starts
                .iter()
                .zip(frame_starts.iter().skip(1).chain([&log.len()]))
                .filter(|&(_, &end)| end <= cut)
                .count();
            assert_eq!(frames.len(), complete_before_cut, "cut at {cut}");
            let on_boundary = cut == log.len() || frame_starts.contains(&cut);
            if on_boundary {
                // A cut exactly between frames is indistinguishable from a
                // shorter clean log — and loses no *written-and-synced*
                // record semantics: the frame after the cut never fully hit
                // the log.
                assert!(tail.is_clean(), "cut at {cut}: {tail:?}");
            } else {
                assert!(
                    matches!(tail, TailStatus::Truncated { .. }),
                    "cut at {cut}: {tail:?}"
                );
            }
        }
    }

    #[test]
    fn corruption_is_detected_and_earlier_frames_survive() {
        let log = sample_log();
        // Flip one payload byte of the *last* frame.
        let mut bad = log.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let (frames, tail) = decode_frames(&bad);
        assert_eq!(frames.len(), 2, "first two frames intact");
        assert!(matches!(tail, TailStatus::Corrupt { .. }));
        // Bad magic right at the start loses everything, but is *detected*.
        let mut bad = log;
        bad[0] = b'X';
        let (frames, tail) = decode_frames(&bad);
        assert!(frames.is_empty());
        assert_eq!(tail, TailStatus::Corrupt { offset: 0 });
    }

    #[test]
    fn checksum_differs_between_kinds_for_same_payload() {
        assert_ne!(checksum(1, b"abc"), checksum(2, b"abc"));
        let a = encode_frame(RecordKind::Event, b"abc");
        let b = encode_frame(RecordKind::Snapshot, b"abc");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_log_is_clean() {
        let (frames, tail) = decode_frames(&[]);
        assert!(frames.is_empty());
        assert!(tail.is_clean());
    }
}
