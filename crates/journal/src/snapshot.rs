//! Full-state gateway snapshots and the [`Recoverable`] trait.
//!
//! A [`GatewaySnapshot`] is the complete durable image of a gateway at one
//! instant: per-shard controller books (waiting queues with plans, committed
//! node releases), the defer queue with its policy and ticket ids, the
//! routing cursor, cumulative service metrics, and any undrained defer
//! resolutions. Restoring a snapshot and replaying the journal events
//! appended after it reproduces the pre-crash gateway exactly — both
//! [`Gateway`] and [`ShardedGateway`] implement [`Recoverable`] through one
//! shared snapshot shape (a single-cluster gateway is the one-shard special
//! case).

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::{
    Admission, AlgorithmKind, ClusterParams, ControllerState, Infeasible, SimTime, SubmitRequest,
    Task,
};
use rtdls_service::book::ServiceBook;
use rtdls_service::gateway::{Gateway, GatewayDecision};
use rtdls_service::prelude::{
    ActivationRecord, DecisionUpdate, DeferState, DeferredQueue, MetricsSnapshot, QuotaPolicy,
    ReservationBook, ReservationState, Routing, ServiceMetrics, ShardedGateway, SloBreach,
    SloStatusRow, SloTracker, TenantLedger, TenantLedgerState, Verdict,
};
use rtdls_sim::frontend::Frontend;

/// Errors surfaced by snapshot restore and journal recovery.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalError {
    /// The log holds no intact snapshot to restore from (even the genesis
    /// snapshot was lost to tail damage).
    NoSnapshot,
    /// A checksum-valid record failed to parse or restore — a format/version
    /// bug rather than torn-write damage.
    Corrupt(String),
    /// The snapshot disagrees with the gateway type or cluster shape being
    /// recovered (e.g. a sharded snapshot restored as a single gateway).
    Incompatible(&'static str),
    /// An I/O error from a journal file.
    Io(String),
}

impl core::fmt::Display for JournalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JournalError::NoSnapshot => f.write_str("journal holds no intact snapshot"),
            JournalError::Corrupt(m) => write!(f, "corrupt journal record: {m}"),
            JournalError::Incompatible(m) => write!(f, "incompatible snapshot: {m}"),
            JournalError::Io(m) => write!(f, "journal I/O error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<serde::Error> for JournalError {
    fn from(e: serde::Error) -> Self {
        JournalError::Corrupt(e.to_string())
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

impl From<rtdls_core::error::ModelError> for JournalError {
    fn from(e: rtdls_core::error::ModelError) -> Self {
        JournalError::Corrupt(e.to_string())
    }
}

/// The complete durable image of a gateway (see the module docs).
///
/// Deserialization is hand-written: the reservation/tenant/quota fields
/// arrived with the v2 request/verdict redesign, and a WAL written before
/// it (whose snapshots lack them) must still recover — missing fields
/// default to an empty reservation book, an empty ledger, and unlimited
/// quotas, which is exactly the pre-redesign behavior.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct GatewaySnapshot {
    /// `true` for a [`ShardedGateway`] image, `false` for a [`Gateway`].
    pub sharded: bool,
    /// Global cluster parameters the gateway fronts.
    pub params: ClusterParams,
    /// Scheduling policy × partitioning strategy.
    pub algorithm: AlgorithmKind,
    /// Routing policy (sharded gateways only).
    pub routing: Option<Routing>,
    /// Round-robin routing cursor (sharded gateways only; 0 otherwise).
    pub cursor: usize,
    /// Per-shard controller books, in shard order (exactly one entry for a
    /// single-cluster gateway).
    pub shards: Vec<ControllerState>,
    /// The defer queue: policy, ticket-id counter, parked tickets.
    pub defer: DeferState,
    /// The reservation book: ticket counter plus live reservations.
    pub reservations: ReservationState,
    /// Waiting-task → tenant ownership pairs.
    pub ledger: TenantLedgerState,
    /// The per-tenant quota policy in force.
    pub quota: QuotaPolicy,
    /// Cumulative service metrics.
    pub metrics: MetricsSnapshot,
    /// Defer/reservation verdicts reached but not yet drained by the
    /// engine.
    pub resolutions: Vec<(Task, Option<Infeasible>)>,
    /// The deadline-SLO tracker: policy, rolling windows, alarm states,
    /// and latched breach counts. Sim-time driven and deterministic, so it
    /// snapshots like any other gateway book; a recovered gateway resumes
    /// alarming exactly where the crashed one stopped.
    pub slo: SloTracker,
    /// Promotion epoch the snapshot was journaled under. [`capture`]
    /// (which is epoch-unaware) leaves it 0; the journaling wrapper stamps
    /// its journal's epoch before appending, and recovery carries the
    /// restored snapshot's epoch into the new journal. A follower
    /// promotion bumps it, fencing the previous primary's late appends.
    ///
    /// [`capture`]: Recoverable::capture
    pub epoch: u64,
}

impl Deserialize for GatewaySnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::helpers::{field, field_or_default};
        Ok(GatewaySnapshot {
            sharded: field(v, "sharded")?,
            params: field(v, "params")?,
            algorithm: field(v, "algorithm")?,
            // `routing` predates the redesign: every writer serializes it
            // (null for single-cluster images), so a missing key is
            // corruption and must fail like any other v1 field.
            routing: field(v, "routing")?,
            cursor: field(v, "cursor")?,
            shards: field(v, "shards")?,
            defer: field(v, "defer")?,
            // v2 request/verdict fields: absent in pre-redesign WALs.
            reservations: field_or_default(v, "reservations")?,
            ledger: field_or_default(v, "ledger")?,
            quota: match v.get("quota") {
                Some(q) => QuotaPolicy::from_value(q)?,
                None => QuotaPolicy::default(),
            },
            metrics: field(v, "metrics")?,
            resolutions: field(v, "resolutions")?,
            // SLO-engine field: absent in pre-SLO WALs, where a fresh
            // default-policy tracker is exactly the pre-SLO behavior.
            slo: field_or_default(v, "slo")?,
            // Replication field: pre-replication WALs are all epoch 0.
            epoch: field_or_default(v, "epoch")?,
        })
    }
}

impl GatewaySnapshot {
    /// The snapshot with its wall-clock latency histogram cleared.
    ///
    /// Everything in a snapshot is a deterministic function of the journaled
    /// input events *except* the per-decision latency samples, which measure
    /// real elapsed time and therefore differ between a live run and its
    /// replay. Compare normalized snapshots when checking replay
    /// determinism; compare raw snapshots for pure capture/restore
    /// round-trips.
    pub fn normalized(mut self) -> Self {
        self.metrics.decision_latency = Default::default();
        self.metrics.tenants = self.metrics.tenants.normalized();
        self
    }
}

/// A gateway the journal subsystem can persist and rebuild.
///
/// Implementors must be *deterministic state machines* over the journal's
/// input events: same state + same inputs ⇒ same state. Both service
/// gateways satisfy this (their only nondeterminism, wall-clock latency
/// metrics, lives outside the captured state).
pub trait Recoverable: Frontend + Sized {
    /// Captures the complete durable state.
    fn capture(&self) -> GatewaySnapshot;

    /// Rebuilds a gateway from a captured state. Inverse of
    /// [`capture`](Recoverable::capture): `restore(&g.capture())` is
    /// indistinguishable from `g`.
    fn restore(snap: &GatewaySnapshot) -> Result<Self, JournalError>;

    /// Service-level single submission (the journaled command behind
    /// [`JournalEvent::Submitted`](crate::event::JournalEvent::Submitted)).
    fn decide(&mut self, task: Task, now: SimTime) -> GatewayDecision;

    /// Service-level v2 submission (the journaled command behind
    /// [`JournalEvent::RequestSubmitted`](crate::event::JournalEvent::RequestSubmitted)).
    fn decide_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict;

    /// Service-level batched submission.
    fn decide_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision>;

    /// The gateway's reservation book.
    fn reservation_book(&self) -> &ReservationBook;

    /// Activates every due reservation at `now` (the journaled command
    /// behind [`JournalEvent::ActivationDue`](crate::event::JournalEvent::ActivationDue)).
    fn activate_reservations(&mut self, now: SimTime);

    /// Drains the activation audit records accumulated since the last
    /// call (regenerated on replay; journaled as audit output).
    fn take_activation_log(&mut self) -> Vec<ActivationRecord>;

    /// Enables or disables parked-task decision observation (the network
    /// edge's subscription channel). Observer state is process-local —
    /// never journaled, never replayed — and defaults to off on a
    /// restored gateway: an edge that recovers a journaled gateway must
    /// re-enable it.
    fn observe_decisions(&mut self, on: bool);

    /// Drains the parked-task decision updates recorded since the last
    /// call (empty unless observation is enabled).
    fn take_decision_updates(&mut self) -> Vec<DecisionUpdate>;

    /// Attaches a telemetry handle for span recording. Like observation,
    /// telemetry is process-local — never captured in snapshots, never
    /// replayed — so the owner re-attaches it after recovery. The default
    /// keeps telemetry-unaware gateways compiling.
    fn attach_telemetry(&mut self, _telemetry: &rtdls_telemetry::Telemetry) {}

    /// Attaches a hot-path profiler handle for phase timing. Process-local
    /// like telemetry; the default keeps profiler-unaware gateways
    /// compiling.
    fn attach_profiler(&mut self, _profiler: &rtdls_telemetry::Profiler) {}

    /// Folds the gateway's native stats into the unified metrics registry
    /// (the ops-poll surface). The default folds nothing, keeping
    /// telemetry-unaware gateways compiling.
    fn fold_metrics(&self, _reg: &mut rtdls_telemetry::MetricsRegistry) {}

    /// Post-recovery re-verification: re-run the strict admission test over
    /// every restored waiting plan at `now`, demoting newly infeasible
    /// tasks to the defer queue. Returns the demoted tasks.
    fn reverify(&mut self, now: SimTime) -> Vec<Task>;

    /// Drains the SLO-breach audit records cut since the last call
    /// (journaled as audit output, like activations). The default keeps
    /// SLO-unaware gateways compiling.
    fn take_breach_log(&mut self) -> Vec<SloBreach> {
        Vec::new()
    }

    /// The deadline-SLO status table (the `Ops::Slo` surface). Empty by
    /// default for SLO-unaware gateways.
    fn slo_rows(&self) -> Vec<SloStatusRow> {
        Vec::new()
    }

    /// Enables or disables admission explanations on refusal verdicts.
    /// Process-local like observation: never journaled, off on a restored
    /// gateway until its owner re-enables it.
    fn enable_explanations(&mut self, _on: bool) {}

    /// The non-mutating explanation for a request the gateway would refuse
    /// at `now` (the `Ops::Explain` surface; `None` when feasible as-is or
    /// unsupported).
    fn explain_request(
        &self,
        _request: &SubmitRequest,
        _now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        None
    }

    /// The gateway's cumulative metrics.
    fn service_metrics(&self) -> &ServiceMetrics;

    /// The gateway's defer queue.
    fn defer_queue(&self) -> &DeferredQueue;

    /// Defer verdicts reached but not yet drained by the engine.
    fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)];
}

/// Rebuilds the shared serving-layer book from a snapshot's fields.
fn book_from_snapshot(snap: &GatewaySnapshot) -> ServiceBook {
    let mut book = ServiceBook::from_parts(
        DeferredQueue::from_state(snap.defer.clone()),
        ReservationBook::from_state(snap.reservations.clone()),
        TenantLedger::from_state(snap.ledger.clone()),
        snap.quota,
        ServiceMetrics::restore(&snap.metrics),
        snap.resolutions.clone(),
    );
    book.slo = snap.slo.clone();
    book
}

impl<A: Admission> Recoverable for Gateway<A> {
    fn capture(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            sharded: false,
            params: *self.controller().params(),
            algorithm: self.controller().algorithm(),
            routing: None,
            cursor: 0,
            shards: vec![self.controller().state()],
            defer: self.deferred().state(),
            reservations: self.reservations().state(),
            ledger: self.ledger().state(),
            quota: *self.quota(),
            metrics: self.metrics().snapshot(),
            resolutions: self.pending_resolutions().to_vec(),
            slo: self.slo().clone(),
            epoch: 0,
        }
    }

    fn restore(snap: &GatewaySnapshot) -> Result<Self, JournalError> {
        if snap.sharded || snap.shards.len() != 1 {
            return Err(JournalError::Incompatible(
                "snapshot is not a single-cluster gateway image",
            ));
        }
        let ctl = A::from_state(snap.shards[0].clone())?;
        if ctl.params() != &snap.params {
            return Err(JournalError::Incompatible(
                "controller shape disagrees with the snapshot's cluster",
            ));
        }
        Ok(Gateway::from_parts(ctl, book_from_snapshot(snap)))
    }

    fn decide(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        Gateway::submit(self, task, now)
    }

    fn decide_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict {
        Gateway::submit_request(self, request, now)
    }

    fn decide_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        Gateway::submit_batch(self, batch, now)
    }

    fn reservation_book(&self) -> &ReservationBook {
        self.reservations()
    }

    fn activate_reservations(&mut self, now: SimTime) {
        Gateway::activate_reservations(self, now)
    }

    fn take_activation_log(&mut self) -> Vec<ActivationRecord> {
        Gateway::take_activation_log(self)
    }

    fn observe_decisions(&mut self, on: bool) {
        Gateway::observe_decisions(self, on)
    }

    fn take_decision_updates(&mut self) -> Vec<DecisionUpdate> {
        Gateway::take_decision_updates(self)
    }

    fn attach_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        Gateway::attach_telemetry(self, telemetry)
    }

    fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        Gateway::attach_profiler(self, profiler)
    }

    fn fold_metrics(&self, reg: &mut rtdls_telemetry::MetricsRegistry) {
        Gateway::fold_metrics(self, reg)
    }

    fn reverify(&mut self, now: SimTime) -> Vec<Task> {
        Gateway::reverify(self, now)
    }

    fn take_breach_log(&mut self) -> Vec<SloBreach> {
        Gateway::take_breach_log(self)
    }

    fn slo_rows(&self) -> Vec<SloStatusRow> {
        self.slo().rows()
    }

    fn enable_explanations(&mut self, on: bool) {
        Gateway::enable_explanations(self, on)
    }

    fn explain_request(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        Gateway::explain(self, request, now)
    }

    fn service_metrics(&self) -> &ServiceMetrics {
        self.metrics()
    }

    fn defer_queue(&self) -> &DeferredQueue {
        self.deferred()
    }

    fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)] {
        Gateway::pending_resolutions(self)
    }
}

impl<A: Admission> Recoverable for ShardedGateway<A> {
    fn capture(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            sharded: true,
            params: *self.params(),
            algorithm: self.algorithm(),
            routing: Some(self.routing()),
            cursor: self.cursor(),
            shards: self.shard_states(),
            defer: self.deferred().state(),
            reservations: self.reservations().state(),
            ledger: self.ledger().state(),
            quota: *self.quota(),
            metrics: self.metrics().snapshot(),
            resolutions: self.pending_resolutions().to_vec(),
            slo: self.slo().clone(),
            epoch: 0,
        }
    }

    fn restore(snap: &GatewaySnapshot) -> Result<Self, JournalError> {
        if !snap.sharded {
            return Err(JournalError::Incompatible(
                "snapshot is not a sharded gateway image",
            ));
        }
        let routing = snap
            .routing
            .ok_or(JournalError::Incompatible("sharded snapshot lacks routing"))?;
        ShardedGateway::from_parts(
            snap.params,
            snap.algorithm,
            routing,
            snap.cursor,
            snap.shards.clone(),
            book_from_snapshot(snap),
        )
        .map_err(JournalError::from)
    }

    fn decide(&mut self, task: Task, now: SimTime) -> GatewayDecision {
        ShardedGateway::submit(self, task, now)
    }

    fn decide_request(&mut self, request: &SubmitRequest, now: SimTime) -> Verdict {
        ShardedGateway::submit_request(self, request, now)
    }

    fn decide_batch(&mut self, batch: &[Task], now: SimTime) -> Vec<GatewayDecision> {
        ShardedGateway::submit_batch(self, batch, now)
    }

    fn reservation_book(&self) -> &ReservationBook {
        self.reservations()
    }

    fn activate_reservations(&mut self, now: SimTime) {
        ShardedGateway::activate_reservations(self, now)
    }

    fn take_activation_log(&mut self) -> Vec<ActivationRecord> {
        ShardedGateway::take_activation_log(self)
    }

    fn observe_decisions(&mut self, on: bool) {
        ShardedGateway::observe_decisions(self, on)
    }

    fn take_decision_updates(&mut self) -> Vec<DecisionUpdate> {
        ShardedGateway::take_decision_updates(self)
    }

    fn attach_telemetry(&mut self, telemetry: &rtdls_telemetry::Telemetry) {
        ShardedGateway::attach_telemetry(self, telemetry)
    }

    fn attach_profiler(&mut self, profiler: &rtdls_telemetry::Profiler) {
        ShardedGateway::attach_profiler(self, profiler)
    }

    fn fold_metrics(&self, reg: &mut rtdls_telemetry::MetricsRegistry) {
        ShardedGateway::fold_metrics(self, reg)
    }

    fn reverify(&mut self, now: SimTime) -> Vec<Task> {
        ShardedGateway::reverify(self, now)
    }

    fn take_breach_log(&mut self) -> Vec<SloBreach> {
        ShardedGateway::take_breach_log(self)
    }

    fn slo_rows(&self) -> Vec<SloStatusRow> {
        self.slo().rows()
    }

    fn enable_explanations(&mut self, on: bool) {
        ShardedGateway::enable_explanations(self, on)
    }

    fn explain_request(
        &self,
        request: &SubmitRequest,
        now: SimTime,
    ) -> Option<rtdls_core::prelude::AdmissionExplanation> {
        ShardedGateway::explain(self, request, now)
    }

    fn service_metrics(&self) -> &ServiceMetrics {
        self.metrics()
    }

    fn defer_queue(&self) -> &DeferredQueue {
        self.deferred()
    }

    fn pending_resolutions(&self) -> &[(Task, Option<Infeasible>)] {
        ShardedGateway::pending_resolutions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdls_core::prelude::*;
    use rtdls_service::prelude::DeferPolicy;

    fn busy_sharded() -> ShardedGateway {
        let params = ClusterParams::paper_baseline();
        let mut g = ShardedGateway::new(
            params,
            4,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::LeastLoaded,
            DeferPolicy {
                max_retries: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let e4 = rtdls_core::dlt::homogeneous::exec_time(&params, 400.0, 4);
        for i in 0..6 {
            g.submit(
                Task::new(i, 0.0, 400.0, e4 * (1.05 + i as f64)),
                SimTime::ZERO,
            );
        }
        // Force at least one deferral.
        g.submit(Task::new(90, 0.0, 790.0, e4 * 2.0), SimTime::ZERO);
        let _ = Frontend::take_due(&mut g, SimTime::ZERO);
        g
    }

    #[test]
    fn sharded_capture_restore_round_trips_exactly() {
        let g = busy_sharded();
        let snap = g.capture();
        assert!(snap.sharded);
        assert_eq!(snap.shards.len(), 4);
        let json = serde_json::to_string(&snap).unwrap();
        let back: GatewaySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let restored: ShardedGateway = ShardedGateway::restore(&back).unwrap();
        assert_eq!(restored.capture(), snap);
        assert_eq!(restored.shard_queue_lens(), g.shard_queue_lens());
        assert_eq!(restored.deferred().len(), g.deferred().len());
        assert_eq!(
            restored.metrics().accepted_total(),
            g.metrics().accepted_total()
        );
    }

    #[test]
    fn single_capture_restore_round_trips_exactly() {
        let params = ClusterParams::paper_baseline();
        let mut g = Gateway::new(
            params,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            DeferPolicy::default(),
        );
        g.submit(Task::new(1, 0.0, 200.0, 30_000.0), SimTime::ZERO);
        let snap = g.capture();
        assert!(!snap.sharded);
        let restored: Gateway = Gateway::restore(&snap).unwrap();
        assert_eq!(restored.capture(), snap);
        // Cross-type restores are refused.
        assert!(ShardedGateway::<AdmissionController>::restore(&snap).is_err());
        assert!(Gateway::<AdmissionController>::restore(&busy_sharded().capture()).is_err());
    }

    #[test]
    fn restored_gateway_keeps_deciding_identically() {
        let mut live = busy_sharded();
        let mut restored: ShardedGateway = ShardedGateway::restore(&live.capture()).unwrap();
        let probe = Task::new(200, 10.0, 150.0, 80_000.0);
        assert_eq!(
            live.decide(probe, SimTime::new(10.0)),
            restored.decide(probe, SimTime::new(10.0))
        );
        // Wall-clock latency samples differ between the two processes;
        // everything else must agree exactly.
        assert_eq!(live.capture().normalized(), restored.capture().normalized());
    }
}
