//! Property-based tests for the journal subsystem.
//!
//! Two families:
//!
//! * **Replay determinism** — `recover(journal(events)) == live_state(events)`:
//!   for arbitrary workloads, shard counts, routings, snapshot cadences, and
//!   kill points, restoring the last snapshot and replaying the input tail
//!   rebuilds the live gateway *exactly* (modulo wall-clock latency samples,
//!   which measure real time and cannot replay).
//! * **Torn tails** — truncating or corrupting the log at an arbitrary byte
//!   never panics recovery and never loses a record before the damage
//!   point: recovery comes back with a clean prefix of the history (or
//!   reports the genesis snapshot itself as lost).

use proptest::prelude::*;

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

fn service_inputs() -> impl Strategy<Value = (ClusterParams, usize, Routing, f64, f64, u64)> {
    (
        4usize..=20, // nodes
        1usize..=4,  // shards
        prop::sample::select(vec![
            Routing::RoundRobin,
            Routing::LeastLoaded,
            Routing::BestFit,
        ]),
        0.4f64..1.4,   // system load
        2.0f64..10.0,  // dc ratio
        0u64..100_000, // seed
    )
        .prop_map(|(n, k, routing, load, dc, seed)| {
            (
                ClusterParams::new(n, 1.0, 100.0).unwrap(),
                k.min(n),
                routing,
                load,
                dc,
                seed,
            )
        })
}

fn workload(params: ClusterParams, load: f64, dc: f64, seed: u64) -> Vec<Task> {
    let mut spec = WorkloadSpec::paper_baseline(load);
    spec.params = params;
    spec.dc_ratio = dc;
    spec.horizon = 40.0 * spec.mean_interarrival();
    let profile = BurstProfile {
        rate_factor: 3.0,
        ..BurstProfile::moderate(&spec)
    };
    BurstyPoisson::new(spec, profile, seed).collect()
}

fn journaled(
    params: ClusterParams,
    shards: usize,
    routing: Routing,
    snapshot_every: usize,
) -> JournaledGateway<ShardedGateway> {
    let gateway = ShardedGateway::new(
        params,
        shards,
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        routing,
        DeferPolicy {
            max_retries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    JournaledGateway::new(
        gateway,
        JournalConfig {
            snapshot_every,
            compact_on_snapshot: true,
        },
    )
}

/// Drives a strict simulation for at most `kill_at` events and hands back
/// the paused simulation (dead or drained).
fn drive(
    params: ClusterParams,
    tasks: Vec<Task>,
    gateway: JournaledGateway<ShardedGateway>,
    kill_at: u64,
) -> Simulation<JournaledGateway<ShardedGateway>> {
    let cfg = SimConfig::new(params, AlgorithmKind::EDF_DLT).strict();
    let mut sim = Simulation::with_frontend(cfg, gateway);
    sim.prime(tasks);
    while sim.events_processed() < kill_at && sim.step() {}
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: at *any* kill point, under *any* snapshot
    /// cadence, replaying the journal reproduces the live gateway state
    /// exactly.
    #[test]
    fn recover_equals_live_state_at_any_kill_point(
        (params, shards, routing, load, dc, seed) in service_inputs(),
        snapshot_every in 0usize..24,
        kill_at in 1u64..160,
    ) {
        let tasks = workload(params, load, dc, seed);
        let sim = drive(params, tasks, journaled(params, shards, routing, snapshot_every), kill_at);
        let live = sim.frontend().inner().capture().normalized();
        let bytes = sim.frontend().journal().bytes().to_vec();

        let (replayed, report) = replay::<ShardedGateway>(&bytes).unwrap();
        prop_assert!(report.tail.is_clean());
        prop_assert_eq!(replayed.capture().normalized(), live);
    }

    /// Compaction invariance: aggressive snapshotting (tiny cadence, log
    /// compacted down to one snapshot + short tail) recovers the same state
    /// as a genesis-only journal over the same inputs.
    #[test]
    fn snapshot_cadence_never_changes_the_recovered_state(
        (params, shards, routing, load, dc, seed) in service_inputs(),
        kill_at in 1u64..120,
    ) {
        let tasks = workload(params, load, dc, seed);
        let genesis_only =
            drive(params, tasks.clone(), journaled(params, shards, routing, 0), kill_at);
        let compacting =
            drive(params, tasks, journaled(params, shards, routing, 4), kill_at);
        let (a, _) =
            replay::<ShardedGateway>(genesis_only.frontend().journal().bytes()).unwrap();
        let (b, rep_b) =
            replay::<ShardedGateway>(compacting.frontend().journal().bytes()).unwrap();
        prop_assert_eq!(a.capture().normalized(), b.capture().normalized());
        // The compacted log replays from a much later snapshot. (The tail
        // can exceed the cadence by the handful of inputs appended between
        // two cadence checks, but never by a whole epoch.)
        prop_assert!(
            rep_b.events_replayed <= 20,
            "compacted log should have a short tail, replayed {}",
            rep_b.events_replayed
        );
    }

    /// Torn-tail safety: truncating the log at an arbitrary byte offset
    /// loses at most the records at the cut — recovery still restores a
    /// clean prefix of the history, or reports the genesis snapshot lost.
    #[test]
    fn truncated_logs_recover_a_prefix_without_panicking(
        (params, shards, routing, load, dc, seed) in service_inputs(),
        kill_at in 1u64..100,
        cut_frac in 0.0f64..1.0,
    ) {
        let tasks = workload(params, load, dc, seed);
        // Genesis-only journal: the genesis snapshot frame must survive for
        // recovery to have an anchor.
        let sim = drive(params, tasks, journaled(params, shards, routing, 0), kill_at);
        let bytes = sim.frontend().journal().bytes();
        let (frames, _) = rtdls_journal::wire::decode_frames(bytes);
        let genesis_end = frames[1..]
            .first()
            .map(|f| f.offset)
            .unwrap_or(bytes.len());
        let cut = (cut_frac * bytes.len() as f64) as usize;
        let torn = &bytes[..cut.min(bytes.len())];

        match replay::<ShardedGateway>(torn) {
            Ok((g, report)) => {
                prop_assert!(cut >= genesis_end, "genesis survived only past its end");
                prop_assert!(report.frames_decoded <= frames.len());
                // The recovered prefix is a valid gateway: capture works
                // and re-verification at the final time cannot panic.
                let mut g = g;
                let _ = g.reverify(sim.now());
            }
            Err(JournalError::NoSnapshot) => {
                prop_assert!(cut < genesis_end, "genesis lost only when cut inside it");
            }
            Err(e) => prop_assert!(false, "unexpected recovery error: {e}"),
        }
    }

    /// Bit-rot safety: flipping one byte strictly after the genesis
    /// snapshot is always detected (checksum) and never loses records
    /// before the damaged frame — recovery succeeds from the surviving
    /// prefix.
    #[test]
    fn corrupted_tails_are_detected_and_skipped(
        (params, shards, routing, load, dc, seed) in service_inputs(),
        kill_at in 1u64..100,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let tasks = workload(params, load, dc, seed);
        let sim = drive(params, tasks, journaled(params, shards, routing, 0), kill_at);
        let bytes = sim.frontend().journal().bytes();
        let (frames, _) = rtdls_journal::wire::decode_frames(bytes);
        prop_assume!(frames.len() >= 2); // need at least one event after genesis
        let genesis_end = frames[1].offset;
        let span = bytes.len() - genesis_end;
        let pos = genesis_end + ((flip_frac * span as f64) as usize).min(span - 1);

        let mut bad = bytes.to_vec();
        bad[pos] ^= 1 << flip_bit;
        let (g, report) = replay::<ShardedGateway>(&bad)
            .expect("genesis intact: recovery must succeed");
        prop_assert!(!report.tail.is_clean(), "damage must be detected");
        prop_assert!(report.frames_decoded < frames.len());
        // All records before the damaged frame were kept: replaying the
        // undamaged prefix of the same length gives the identical state.
        let damaged_frame_start = frames
            .iter()
            .map(|f| f.offset)
            .filter(|&o| o <= pos)
            .max()
            .unwrap();
        let (prefix_g, prefix_rep) =
            replay::<ShardedGateway>(&bytes[..damaged_frame_start]).unwrap();
        prop_assert_eq!(prefix_rep.frames_decoded, report.frames_decoded);
        prop_assert_eq!(
            g.capture().normalized(),
            prefix_g.capture().normalized()
        );
    }
}
