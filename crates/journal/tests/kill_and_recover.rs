//! The `examples/kill_and_recover.rs` acceptance scenario, promoted into a
//! named tier-1 test so `cargo test -q` proves the full kill→recover→resume
//! loop without relying on the CI example-smoke step: a 4-shard journaled
//! gateway serves a bursty stream into a WAL *file*, dies at an arbitrary
//! event index, is rebuilt from the file alone, and finishes the stream
//! under the strict simulator (which panics on any violated guarantee).

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_journal::wire;
use rtdls_service::prelude::*;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

type JG = JournaledGateway<ShardedGateway>;

#[test]
fn kill_and_recover_through_a_wal_file_finishes_with_all_guarantees() {
    let params = ClusterParams::paper_baseline();
    let algorithm = AlgorithmKind::EDF_DLT;
    let plan = PlanConfig {
        release_estimate: ReleaseEstimate::Uniform,
        ..Default::default()
    };

    // The example's workload, shrunk to test scale (same shape: bursty,
    // deadline-rich, defer-queue-exercising).
    let mut spec = WorkloadSpec::paper_baseline(1.2);
    spec.dc_ratio = 6.0;
    spec.horizon = 1e5;
    let profile = BurstProfile {
        rate_factor: 4.0,
        ..BurstProfile::moderate(&spec)
    };
    let tasks: Vec<Task> = BurstyPoisson::new(spec, profile, 42).collect();
    assert!(tasks.len() > 20, "workload too small to exercise a crash");

    let wal_path = std::env::temp_dir().join(format!(
        "rtdls-kill-and-recover-test-{}.wal",
        std::process::id()
    ));
    let journal_cfg = JournalConfig {
        snapshot_every: 64,
        compact_on_snapshot: true,
    };
    let gateway = ShardedGateway::new(
        params,
        4,
        algorithm,
        plan,
        Routing::LeastLoaded,
        DeferPolicy {
            max_retries: 64,
            ..Default::default()
        },
    )
    .expect("valid shard layout");
    let journaled = JournaledGateway::with_sink(
        gateway,
        journal_cfg,
        Box::new(FileSink::create(&wal_path).expect("create WAL")),
    );

    let kill_at = 2 * tasks.len() as u64 / 3;
    let cfg = SimConfig::new(params, algorithm).with_plan(plan).strict();
    let path_for_recovery = wal_path.clone();
    let (report, recovered, crashed) = run_with_crash(
        cfg,
        journaled,
        tasks,
        CrashPlan::at_event(kill_at),
        move |_dead: &JG, now| {
            // The only artifact that crosses the crash is the file on disk.
            let (recovered, rec) =
                recover_file::<ShardedGateway>(&path_for_recovery, now, journal_cfg)
                    .expect("recovery from WAL");
            assert!(rec.frames_decoded > 0, "recovery read the journal");
            recovered
        },
    );
    assert!(crashed, "the kill index must fall inside the run");

    // The example's closing assertions, verbatim.
    let m = recovered.metrics();
    assert_eq!(
        report.metrics.deadline_misses, 0,
        "no admitted deadline missed"
    );
    assert_eq!(report.metrics.estimate_overruns, 0);
    assert_eq!(
        m.submitted, report.metrics.arrivals,
        "cumulative metrics crossed the crash intact"
    );
    let wal = FileSink::read(&wal_path).expect("read WAL");
    let (frames, tail) = wire::decode_frames(&wal);
    assert!(tail.is_clean());
    assert!(
        frames.iter().any(|f| f.kind == wire::RecordKind::Snapshot),
        "compacted WAL keeps a snapshot"
    );
    let _ = std::fs::remove_file(&wal_path);
}
