//! The acceptance scenario: kill the gateway mid-stream at an arbitrary
//! event index, recover from snapshot + tail replay, and let the *strict*
//! simulator verify that every previously accepted task still meets its
//! deadline — or was explicitly demoted to the defer queue with the
//! demotion journaled. Strict mode panics on any violated guarantee, so a
//! completing run is the proof.

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::prelude::*;
use rtdls_workload::prelude::*;

type JG = JournaledGateway<ShardedGateway>;

fn params() -> ClusterParams {
    ClusterParams::paper_baseline()
}

fn bursty_tasks(seed: u64) -> Vec<Task> {
    let mut spec = WorkloadSpec::paper_baseline(1.1);
    spec.dc_ratio = 6.0;
    spec.horizon = 50.0 * spec.mean_interarrival();
    let profile = BurstProfile {
        rate_factor: 3.0,
        ..BurstProfile::moderate(&spec)
    };
    BurstyPoisson::new(spec, profile, seed).collect()
}

fn fresh_gateway(snapshot_every: usize) -> JG {
    let gateway = ShardedGateway::new(
        params(),
        4,
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        Routing::LeastLoaded,
        DeferPolicy {
            max_retries: 32,
            ..Default::default()
        },
    )
    .unwrap();
    JournaledGateway::new(
        gateway,
        JournalConfig {
            snapshot_every,
            compact_on_snapshot: true,
        },
    )
}

/// Recovers from the dead gateway's journal bytes — the only artifact a
/// real crash leaves behind — and asserts the demotion audit contract.
fn recover_from_wal(dead: &JG, now: SimTime) -> JG {
    let wal = dead.journal().bytes().to_vec();
    let (recovered, report) =
        recover::<ShardedGateway>(&wal, now, JournalConfig::default(), None).expect("recovery");
    assert!(
        report.tail.is_clean(),
        "in-memory WAL has no torn tail: {:?}",
        report.tail
    );
    // Every demotion must be journaled in the post-recovery log.
    let (frames, _) = rtdls_journal::wire::decode_frames(recovered.journal().bytes());
    let demoted_in_journal: Vec<u64> = frames
        .iter()
        .filter(|f| f.kind == rtdls_journal::wire::RecordKind::Event)
        .filter_map(|f| {
            let ev: JournalEvent =
                serde_json::from_str(std::str::from_utf8(&f.payload).unwrap()).unwrap();
            match ev {
                JournalEvent::Demoted { task, .. } => Some(task),
                _ => None,
            }
        })
        .collect();
    let demoted_ids: Vec<u64> = report.demoted.iter().map(|t| t.0).collect();
    assert_eq!(demoted_in_journal, demoted_ids, "demotions journaled");
    // Demotions re-enter the books as deferral or rejection, never vanish:
    // accepted + rejected + still-parked == submitted, at any instant.
    let m = recovered.metrics();
    assert_eq!(m.demoted, report.demoted.len() as u64);
    let parked = m.deferred - (m.rescued + m.defer_evicted + m.defer_expired + m.defer_flushed);
    assert_eq!(parked as usize, recovered.deferred().len());
    assert_eq!(
        m.accepted_total() + m.rejected_total() + parked,
        m.submitted,
        "books balance at recovery"
    );
    recovered
}

#[test]
fn kill_and_recover_at_many_event_indices_keeps_all_guarantees() {
    // Strict mode panics on any deadline miss or estimate overrun — for
    // tasks admitted before *or* after the crash — so every kill index that
    // completes is itself the acceptance proof.
    for kill_at in [3u64, 10, 40, 90, 200] {
        let cfg = SimConfig::new(params(), AlgorithmKind::EDF_DLT).strict();
        let (report, recovered, crashed) = run_with_crash(
            cfg,
            fresh_gateway(16),
            bursty_tasks(7),
            CrashPlan::at_event(kill_at),
            recover_from_wal,
        );
        assert_eq!(report.metrics.deadline_misses, 0, "kill_at={kill_at}");
        assert_eq!(report.metrics.estimate_overruns, 0, "kill_at={kill_at}");
        if crashed {
            // The recovered gateway carried its cumulative metrics across
            // the crash: it has seen every arrival the engine delivered.
            assert_eq!(
                recovered.metrics().submitted,
                report.metrics.arrivals,
                "kill_at={kill_at}: metrics survived the crash"
            );
        }
    }
}

#[test]
fn outage_long_enough_to_defeat_a_plan_demotes_it_explicitly() {
    // Build a gateway whose waiting queue holds a feasible-but-snug plan,
    // crash it, and recover after an outage long enough that the plan can
    // no longer meet its deadline. Recovery must demote the task (journaled)
    // instead of pretending the guarantee still holds.
    let p = params();
    let e16_800 = rtdls_core::dlt::homogeneous::exec_time(&p, 800.0, 16);
    let e16_400 = rtdls_core::dlt::homogeneous::exec_time(&p, 400.0, 16);
    let gateway = ShardedGateway::new(
        p,
        1,
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        Routing::RoundRobin,
        DeferPolicy::default(),
    )
    .unwrap();
    let mut j = JournaledGateway::new(gateway, JournalConfig::default());

    // A occupies the cluster until ≈ e16_800; dispatch commits it.
    let a = Task::new(1, 0.0, 800.0, e16_800 * 10.0);
    assert!(j.submit(a, SimTime::ZERO).is_accepted());
    let dispatched = Frontend::take_due(&mut j, SimTime::ZERO);
    assert_eq!(dispatched.len(), 1);
    // B queues behind A with ~5% slack: feasible now, fragile to an outage.
    let b = Task::new(2, 0.0, 400.0, e16_800 + e16_400 * 1.05);
    assert!(j.submit(b, SimTime::ZERO).is_accepted());

    let wal = j.journal().bytes().to_vec();
    drop(j); // the crash

    // Short outage: B still makes it — no demotion.
    let recover_at = SimTime::new(e16_800 * 0.5);
    let (ok, report) =
        recover::<ShardedGateway>(&wal, recover_at, JournalConfig::default(), None).unwrap();
    assert!(report.demoted.is_empty(), "{report:?}");
    assert_eq!(ok.inner().shard_queue_lens(), vec![1]);

    // Long outage: by the time the gateway is back, B's plan is hopeless.
    let recover_at = SimTime::new(e16_800 + e16_400);
    let (recovered, report) =
        recover::<ShardedGateway>(&wal, recover_at, JournalConfig::default(), None).unwrap();
    assert_eq!(report.demoted, vec![TaskId(2)], "{report:?}");
    assert_eq!(recovered.inner().shard_queue_lens(), vec![0]);
    assert_eq!(recovered.metrics().demoted, 1);
    // B is past even an idle cluster's help at that instant: it resolved as
    // a withdrawn guarantee (demote-rejection), not a parked ticket — and
    // not a submission-time rejection.
    assert!(recovered.deferred().is_empty());
    assert_eq!(recovered.metrics().demote_rejected, 1);
    assert_eq!(recovered.metrics().rejected_immediate, 0);
    assert_eq!(recovered.metrics().rejected_total(), 1);
    assert_eq!(recovered.metrics().accepted_total(), 1, "A keeps its book");
    // The tenant book mirrors the demotion correction: both tasks were
    // submitted (anonymous tenant), both accepted gross, one demoted to a
    // rejection — net admitted + rejected = submitted.
    let t0 = recovered
        .metrics()
        .tenants
        .get(TenantId(0))
        .expect("anonymous tenant book");
    assert_eq!(
        (t0.submitted, t0.accepted, t0.demoted, t0.rejected),
        (2, 2, 1, 1)
    );
    assert_eq!(t0.accepted_net() + t0.rejected, t0.submitted);
    // And the demotion is in the new journal (checked via the audit path).
    let (frames, _) = rtdls_journal::wire::decode_frames(recovered.journal().bytes());
    let has_demoted = frames.iter().any(|f| {
        f.kind == rtdls_journal::wire::RecordKind::Event
            && serde_json::from_str::<JournalEvent>(std::str::from_utf8(&f.payload).unwrap())
                .map(|e| matches!(e, JournalEvent::Demoted { task: 2, .. }))
                .unwrap_or(false)
    });
    assert!(has_demoted, "demotion audit record present");
}

#[test]
fn incremental_engine_recovers_to_the_same_state_from_the_same_wal() {
    // Engine-conformance across the durability boundary: one WAL, written
    // by a live full-replan gateway, recovered twice — once as
    // `ShardedGateway<AdmissionController>` and once as
    // `ShardedGateway<IncrementalController>`. The two engines are
    // observably identical state machines over the journal's input events,
    // so snapshot-restore + tail-replay + strict re-admission must land
    // both on the *same* per-shard `ControllerState`s, the same demotions,
    // and the same future decisions.
    type IncJG = JournaledGateway<ShardedGateway<IncrementalController>>;
    for kill_at in [5usize, 37, 120] {
        // Build the WAL with a live (full-engine) gateway driven by the
        // stepped engine API, crashing after `kill_at` events.
        let tasks = bursty_tasks(23);
        let cfg = SimConfig::new(params(), AlgorithmKind::EDF_DLT).strict();
        let mut sim = Simulation::with_frontend(cfg, fresh_gateway(16));
        sim.prime(tasks);
        while sim.events_processed() < kill_at as u64 && sim.step() {}
        let crash_time = sim.now();
        let wal = sim.frontend().journal().bytes().to_vec();

        let (full_rec, full_report) =
            recover::<ShardedGateway>(&wal, crash_time, JournalConfig::default(), None)
                .expect("full-engine recovery");
        let (inc_rec, inc_report): (IncJG, _) = recover::<ShardedGateway<IncrementalController>>(
            &wal,
            crash_time,
            JournalConfig::default(),
            None,
        )
        .expect("incremental-engine recovery");

        assert_eq!(
            full_report.demoted, inc_report.demoted,
            "kill_at={kill_at}: demotions diverged"
        );
        assert_eq!(
            full_rec.inner().shard_states(),
            inc_rec.inner().shard_states(),
            "kill_at={kill_at}: recovered ControllerStates diverged"
        );
        assert_eq!(
            full_rec.inner().capture().normalized(),
            inc_rec.inner().capture().normalized(),
            "kill_at={kill_at}: full gateway snapshots diverged"
        );
        // And both recovered gateways keep deciding identically.
        let mut full_rec = full_rec;
        let mut inc_rec = inc_rec;
        let probe = Task::new(9_000_001, crash_time.as_f64() + 1.0, 150.0, 80_000.0);
        assert_eq!(
            full_rec.submit(probe, probe.arrival),
            inc_rec.submit(probe, probe.arrival),
            "kill_at={kill_at}"
        );
        assert_eq!(
            full_rec.inner().shard_states(),
            inc_rec.inner().shard_states()
        );
    }
}

/// Recursively strips the named keys from a JSON value tree — used to
/// down-convert a current-format record into its pre-redesign shape (the
/// v2 fields did not exist, so a faithful old writer simply omits them).
fn strip_keys(v: &serde::Value, keys: &[&str]) -> serde::Value {
    match v {
        serde::Value::Map(entries) => serde::Value::Map(
            entries
                .iter()
                .filter(|(k, _)| !keys.contains(&k.as_str()))
                .map(|(k, inner)| (k.clone(), strip_keys(inner, keys)))
                .collect(),
        ),
        serde::Value::Seq(items) => {
            serde::Value::Seq(items.iter().map(|x| strip_keys(x, keys)).collect())
        }
        other => other.clone(),
    }
}

/// The v2 fields a pre-redesign writer never emitted, anywhere in a
/// snapshot tree (gateway-level books, metrics, defer tickets). The
/// whole-subtree fields (`slo`, `rejection_causes`, from the SLO-engine
/// redesign) must be stripped at the top so their *interiors* — which
/// reuse old key names like `tenants`/`qos` — don't get gutted instead.
const V2_FIELDS: &[&str] = &[
    "slo",
    "rejection_causes",
    "reservations",
    "ledger",
    "quota",
    "reserved",
    "reservations_activated",
    "reservation_misses",
    "reservations_flushed",
    "throttled",
    "tenants",
    "tenant",
    "qos",
];

#[test]
fn pre_redesign_wal_recovers_with_identical_shard_states() {
    // A WAL exactly as yesterday's writer produced it: a genesis snapshot
    // and events in the pre-v2 vocabulary, with none of the reservation /
    // tenant / quota fields. Recovery under today's gateway must accept it
    // and land on the same shard states a live gateway reaches from the
    // same command stream.
    let p = params();
    let mk_gateway = || {
        ShardedGateway::new(
            p,
            2,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::RoundRobin,
            DeferPolicy::default(),
        )
        .unwrap()
    };
    let e8 = rtdls_core::dlt::homogeneous::exec_time(&p, 400.0, 8);
    let commands = vec![
        JournalEvent::Submitted {
            task: Task::new(1, 0.0, 400.0, e8 * 6.0),
            at: SimTime::ZERO,
        },
        JournalEvent::Submitted {
            task: Task::new(2, 0.0, 400.0, e8 * 1.05),
            at: SimTime::ZERO,
        },
        JournalEvent::BatchSubmitted {
            tasks: vec![
                Task::new(3, 1.0, 200.0, e8 * 4.0),
                Task::new(4, 1.0, 400.0, e8 * 1.2), // near-miss shape
            ],
            at: SimTime::new(1.0),
        },
        JournalEvent::DispatchDue {
            at: SimTime::new(1.0),
        },
        JournalEvent::Completed {
            node: 0,
            at: SimTime::new(2.0),
        },
        JournalEvent::Retested {
            at: SimTime::new(2.0),
        },
    ];
    // The old-format WAL: genesis snapshot (v2 fields stripped) + commands.
    let live = mk_gateway();
    let genesis: serde::Value =
        serde_json::from_str(&serde_json::to_string(&live.capture()).unwrap()).unwrap();
    let old_genesis = strip_keys(&genesis, V2_FIELDS);
    let mut wal = rtdls_journal::wire::encode_frame(
        rtdls_journal::wire::RecordKind::Snapshot,
        serde_json::to_string(&old_genesis).unwrap().as_bytes(),
    );
    for ev in &commands {
        wal.extend(rtdls_journal::wire::encode_frame(
            rtdls_journal::wire::RecordKind::Event,
            serde_json::to_string(ev).unwrap().as_bytes(),
        ));
    }
    // Reference: a live gateway driven through the same commands, plus the
    // strict re-admission pass recovery always ends with.
    let mut reference = live;
    for ev in &commands {
        rtdls_journal::apply_event(&mut reference, ev);
    }
    let demoted = reference.reverify(SimTime::new(2.0));
    assert!(demoted.is_empty(), "scenario stays feasible: {demoted:?}");
    let (recovered, report) =
        recover::<ShardedGateway>(&wal, SimTime::new(2.0), JournalConfig::default(), None)
            .expect("pre-redesign WAL must recover");
    assert!(report.tail.is_clean());
    assert_eq!(report.events_replayed, commands.len());
    assert_eq!(
        recovered.inner().shard_states(),
        reference.shard_states(),
        "shard states diverged from the live reference"
    );
    assert_eq!(recovered.deferred().len(), reference.deferred().len());
    // The absent v2 fields defaulted: empty books, unlimited quotas.
    assert!(recovered.inner().reservations().is_empty());
    assert_eq!(recovered.inner().quota().max_inflight, None);
    // The recovered gateway serves v2 traffic immediately.
    let mut recovered = recovered;
    let req = SubmitRequest::new(Task::new(50, 3.0, 100.0, 1e6)).with_tenant(TenantId(4));
    assert!(recovered
        .submit_request(&req, SimTime::new(3.0))
        .is_accepted());
    assert_eq!(
        recovered
            .metrics()
            .tenants
            .get(TenantId(4))
            .unwrap()
            .accepted,
        1
    );
}

/// The deterministic EDF priority-inversion scenario on one 16-node shard:
/// all nodes committed to t=1000, a snug all-node OPR task waiting, and a
/// small earlier-deadline candidate that must be Reserved at t=1000.
fn reservation_wal() -> (Vec<u8>, SimTime, Task) {
    let p = params();
    let e16 = rtdls_core::dlt::homogeneous::exec_time(&p, 800.0, 16);
    let e15 = rtdls_core::dlt::homogeneous::exec_time(&p, 800.0, 15);
    let slack_w = (e15 - e16) * 0.75;
    let slack_c = slack_w * 0.8;
    let gateway = ShardedGateway::new(
        p,
        1,
        AlgorithmKind::EDF_OPR_MN,
        PlanConfig::default(),
        Routing::RoundRobin,
        DeferPolicy::default(),
    )
    .unwrap();
    let mut j = JournaledGateway::new(gateway, JournalConfig::default());
    for node in 0..16 {
        Frontend::set_node_release(&mut j, node, SimTime::new(1000.0));
    }
    let w = Task::new(1, 0.0, 800.0, 1000.0 + e16 + slack_w);
    assert!(j.submit(w, SimTime::ZERO).is_accepted());
    let c = Task::new(2, 0.0, 10.0, 1000.0 + e16 + slack_c);
    let req = SubmitRequest::new(c).with_max_delay(Some(2000.0));
    let verdict = j.submit_request(&req, SimTime::ZERO);
    let Verdict::Reserved { start_at, .. } = verdict else {
        panic!("expected Reserved, got {verdict:?}");
    };
    assert_eq!(start_at, SimTime::new(1000.0));
    (j.journal().bytes().to_vec(), start_at, c)
}

#[test]
fn reservation_bearing_wal_recovers_with_its_book_intact_under_both_engines() {
    let (wal, start_at, c) = reservation_wal();
    let (full_rec, _) =
        recover::<ShardedGateway>(&wal, SimTime::ZERO, JournalConfig::default(), None)
            .expect("full-engine recovery");
    let (inc_rec, _) = recover::<ShardedGateway<IncrementalController>>(
        &wal,
        SimTime::ZERO,
        JournalConfig::default(),
        None,
    )
    .expect("incremental-engine recovery");
    for (name, rec) in [
        ("full", full_rec.inner().capture()),
        ("inc", inc_rec.inner().capture()),
    ] {
        assert_eq!(rec.reservations.reservations.len(), 1, "{name}");
        let res = &rec.reservations.reservations[0];
        assert_eq!(res.task.id, c.id, "{name}");
        assert_eq!(res.start_at, start_at, "{name}");
        assert_eq!(res.ticket, 0, "{name}");
    }
    assert_eq!(
        full_rec.inner().capture().normalized(),
        inc_rec.inner().capture().normalized(),
        "recovered gateways diverged across engines"
    );
    // Both recovered gateways honor the promise: dispatch the blocker at
    // start_at, then the activation sweep admits the reserved task.
    let mut full_rec = full_rec;
    let mut inc_rec = inc_rec;
    for j in [
        &mut full_rec as &mut dyn Frontend,
        &mut inc_rec as &mut dyn Frontend,
    ] {
        assert_eq!(j.next_wakeup(), Some(start_at), "wakeup re-armed");
        let due = j.take_due(start_at);
        assert_eq!(due.len(), 1);
        j.activate(start_at);
        let resolutions = j.drain_resolutions();
        assert_eq!(resolutions.len(), 1);
        assert!(resolutions[0].1.is_none(), "activation = accepted");
    }
    assert_eq!(full_rec.metrics().reservations_activated, 1);
    assert_eq!(
        full_rec.inner().shard_states(),
        inc_rec.inner().shard_states()
    );
}

#[test]
fn tenant_counters_survive_a_crash_and_restart() {
    // Per-tenant metrics (counters + latency histograms) must round-trip
    // through snapshot()/restore() across the durability boundary: drive
    // tenant-tagged traffic (including a quota rejection), crash, recover,
    // and compare the tenant books.
    let gateway = ShardedGateway::new(
        params(),
        2,
        AlgorithmKind::EDF_DLT,
        PlanConfig::default(),
        Routing::LeastLoaded,
        DeferPolicy::default(),
    )
    .unwrap()
    .with_quota(QuotaPolicy {
        max_inflight: Some(2),
        ..Default::default()
    });
    let mut j = JournaledGateway::new(gateway, JournalConfig::default());
    let mk = |id: u64, tenant: u32| {
        SubmitRequest::new(Task::new(id, 0.0, 50.0, 1e6)).with_tenant(TenantId(tenant))
    };
    assert!(j.submit_request(&mk(1, 1), SimTime::ZERO).is_accepted());
    assert!(j.submit_request(&mk(2, 1), SimTime::ZERO).is_accepted());
    assert!(j.submit_request(&mk(3, 1), SimTime::ZERO).is_throttled());
    assert!(j.submit_request(&mk(4, 2), SimTime::ZERO).is_accepted());
    assert!(j
        .submit_request(&mk(5, 1).with_qos(QosClass::Premium), SimTime::ZERO)
        .is_accepted());
    let live_tenants = j.metrics().snapshot().tenants;
    let wal = j.journal().bytes().to_vec();
    drop(j); // the crash

    let (recovered, _) =
        recover::<ShardedGateway>(&wal, SimTime::ZERO, JournalConfig::default(), None).unwrap();
    let recovered_tenants = recovered.metrics().snapshot().tenants;
    // Counters are deterministic and must match exactly; the latency
    // histograms are wall-clock and compare only after normalization.
    assert_eq!(
        recovered_tenants.clone().normalized(),
        live_tenants.clone().normalized()
    );
    let t1 = recovered_tenants.get(TenantId(1)).unwrap();
    assert_eq!((t1.submitted, t1.accepted, t1.throttled), (4, 3, 1));
    assert_eq!(
        t1.decision_latency.count(),
        4,
        "tenant latency histogram has a serialization path"
    );
    let t2 = recovered_tenants.get(TenantId(2)).unwrap();
    assert_eq!((t2.submitted, t2.accepted), (1, 1));
    // The quota policy survived too: tenant 1 is still throttled.
    let mut recovered = recovered;
    assert!(recovered
        .submit_request(&mk(6, 1), SimTime::ZERO)
        .is_throttled());
}

#[test]
fn recovery_through_a_journal_file_survives_process_boundaries() {
    // Phase 1 writes the WAL to disk; phase 2 recovers from the file alone
    // (same process here, but nothing except the path crosses the "boundary").
    let path =
        std::env::temp_dir().join(format!("rtdls-crash-recovery-{}.wal", std::process::id()));
    let tasks = bursty_tasks(99);
    let crash_time;
    {
        let sink = FileSink::create(&path).unwrap();
        let gateway = ShardedGateway::new(
            params(),
            2,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::LeastLoaded,
            DeferPolicy::default(),
        )
        .unwrap();
        let j = JournaledGateway::with_sink(
            gateway,
            JournalConfig {
                snapshot_every: 32,
                compact_on_snapshot: true,
            },
            Box::new(sink),
        );
        let cfg = SimConfig::new(params(), AlgorithmKind::EDF_DLT).strict();
        let mut sim = Simulation::with_frontend(cfg, j);
        sim.prime(tasks);
        while sim.events_processed() < 60 && sim.step() {}
        crash_time = sim.now();
        // The process "dies": everything in memory is dropped.
    }
    let (recovered, report) =
        recover_file::<ShardedGateway>(&path, crash_time, JournalConfig::default()).unwrap();
    assert!(report.frames_decoded > 0);
    assert!(recovered.metrics().submitted > 0);
    // The file was compacted down to the post-recovery snapshot (+ audits).
    let on_disk = FileSink::read(&path).unwrap();
    assert_eq!(on_disk, recovered.journal().bytes());
    let (frames, tail) = rtdls_journal::wire::decode_frames(&on_disk);
    assert!(tail.is_clean());
    assert_eq!(
        frames
            .iter()
            .filter(|f| f.kind == rtdls_journal::wire::RecordKind::Snapshot)
            .count(),
        1
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn group_commit_crash_still_recovers_a_valid_prefix() {
    // A batched-fsync sink ([`FsyncPolicy::Batch`]) acknowledges appends
    // before syncing them, so a crash can lose the unsynced tail — but
    // writes stay ordered, so what survives is always a byte-prefix of the
    // acknowledged log. Emulate every possible survival point by cutting
    // the on-disk image and proving recovery accepts each prefix.
    let path = std::env::temp_dir().join(format!(
        "rtdls-group-commit-crash-{}.wal",
        std::process::id()
    ));
    let tasks = bursty_tasks(7);
    {
        let sink = FileSink::create(&path)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Batch(16));
        let gateway = ShardedGateway::new(
            params(),
            2,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::LeastLoaded,
            DeferPolicy::default(),
        )
        .unwrap();
        let mut j = JournaledGateway::with_sink(
            gateway,
            JournalConfig {
                snapshot_every: 0,
                compact_on_snapshot: false,
            },
            Box::new(sink),
        );
        for t in &tasks {
            let _ = j.submit(*t, t.arrival);
        }
        // The "process" dies with a group commit still open (no flush;
        // FileSink's graceful-drop sync is irrelevant here because the
        // cuts below emulate the lost page cache).
    }
    let full = FileSink::read(&path).unwrap();
    let (all_frames, tail) = rtdls_journal::wire::decode_frames(&full);
    assert!(tail.is_clean());
    assert!(all_frames.len() > tasks.len(), "genesis + events");
    // Cut anywhere past the genesis snapshot: mid-frame, on frame
    // boundaries, and at the clean end.
    let genesis_end = all_frames[1].offset;
    let span = full.len() - genesis_end;
    let cuts = [
        genesis_end + span / 4,
        genesis_end + span / 2,
        genesis_end + 3 * span / 4,
        full.len() - 3,
        full.len(),
    ];
    for cut in cuts {
        let prefix = &full[..cut];
        let (frames, _) = rtdls_journal::wire::decode_frames(prefix);
        assert!(!frames.is_empty() && frames.len() <= all_frames.len());
        for (a, b) in frames.iter().zip(&all_frames) {
            assert_eq!(a, b, "cut at {cut}: surviving frames are a prefix");
        }
        let (recovered, report) =
            recover::<ShardedGateway>(prefix, SimTime::new(0.0), JournalConfig::default(), None)
                .expect("every prefix recovers");
        let inputs = frames
            .iter()
            .filter(|f| f.kind == rtdls_journal::wire::RecordKind::Event)
            .filter(|f| {
                serde_json::from_str::<JournalEvent>(&String::from_utf8_lossy(&f.payload))
                    .map(|e| e.is_input())
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(
            report.events_replayed, inputs,
            "cut at {cut}: exactly the surviving inputs replay"
        );
        assert_eq!(
            recovered.metrics().submitted as usize,
            inputs,
            "cut at {cut}: the recovered book covers the surviving history"
        );
    }
    let _ = std::fs::remove_file(&path);
}
