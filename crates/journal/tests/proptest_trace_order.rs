//! Property: decision-trace order agrees with journal append order.
//!
//! The write-ahead discipline says every v2 submission is appended to the
//! WAL (as `RequestSubmitted`, carrying its minted trace id) and — once
//! telemetry is attached — records a `JournalAppend` span. Over arbitrary
//! op streams the two records of history must tell the same story:
//!
//! * every traced request appears exactly once in each, and
//! * the sequence of trace ids in `JournalAppend` spans (flight-recorder
//!   seq order) equals the sequence of trace ids in `RequestSubmitted`
//!   events (WAL byte order).
//!
//! Interleaved non-submission ops (dispatch polls, defer sweeps,
//! activation sweeps, node completions) must not perturb either sequence.

use proptest::prelude::*;

use rtdls_core::prelude::*;
use rtdls_journal::prelude::*;
use rtdls_service::prelude::*;
use rtdls_sim::frontend::Frontend;
use rtdls_telemetry::{Stage, Telemetry, TelemetryConfig};

/// One step of a random op stream.
#[derive(Clone, Debug)]
enum Op {
    /// Submit a request: (data size, deadline factor over a feasible base,
    /// tenant, premium?, reservation tolerance).
    Submit(f64, f64, u32, bool, Option<f64>),
    /// Poll dispatches at the current clock.
    TakeDue,
    /// Sweep the defer queue.
    Retest,
    /// Sweep due reservations.
    Activate,
    /// Release a node.
    Complete(usize),
    /// Advance the clock.
    Tick(f64),
}

fn op() -> impl Strategy<Value = Op> {
    // One flat tuple mapped by discriminant (the vendored proptest has no
    // `prop_oneof`): submissions dominate, the rest interleave.
    (
        0u8..12,
        50.0f64..800.0,
        0.02f64..4.0,
        0u32..4,
        0u8..4,
        1.0f64..200.0,
    )
        .prop_map(|(d, sz, f, tenant, aux, dt)| match d {
            0..=5 => Op::Submit(sz, f, tenant, aux % 2 == 0, (aux >= 2).then_some(dt * 25.0)),
            6 => Op::TakeDue,
            7 => Op::Retest,
            8 => Op::Activate,
            9 => Op::Complete(aux as usize),
            _ => Op::Tick(dt),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn journal_append_spans_match_wal_request_order(
        ops in prop::collection::vec(op(), 1..80),
        shards in 1usize..3,
        snapshot_every in 0usize..12,
    ) {
        let params = ClusterParams::paper_baseline();
        let gateway = ShardedGateway::new(
            params,
            shards,
            AlgorithmKind::EDF_DLT,
            PlanConfig::default(),
            Routing::LeastLoaded,
            DeferPolicy::default(),
        )
        .unwrap();
        let mut j = JournaledGateway::new(
            gateway,
            JournalConfig {
                snapshot_every,
                compact_on_snapshot: false, // keep the whole WAL for the comparison
            },
        );
        let telemetry = Telemetry::new(TelemetryConfig {
            recorder_capacity: 4096,
            ..TelemetryConfig::default()
        });
        j.attach_telemetry(&telemetry);

        let base = rtdls_core::dlt::homogeneous::exec_time(&params, 400.0, params.num_nodes);
        let mut now = 0.0f64;
        let mut id = 0u64;
        let mut submitted = 0usize;
        for op in &ops {
            let at = SimTime::new(now);
            match op {
                Op::Submit(sz, f, tenant, premium, tol) => {
                    id += 1;
                    submitted += 1;
                    let req = SubmitRequest::new(Task::new(id, now, *sz, base * f))
                        .with_tenant(TenantId(*tenant))
                        .with_qos(if *premium { QosClass::Premium } else { QosClass::Standard })
                        .with_max_delay(*tol);
                    let _ = j.submit_request(&req, at);
                }
                Op::TakeDue => {
                    let _ = Frontend::take_due(&mut j, at);
                }
                Op::Retest => Frontend::on_event(&mut j, at),
                Op::Activate => Frontend::activate(&mut j, at),
                Op::Complete(node) => {
                    let node = node % params.num_nodes;
                    // Releases must not move backwards.
                    let t = Frontend::committed_release(&j, node).as_f64().max(now);
                    Frontend::set_node_release(&mut j, node, SimTime::new(t));
                }
                Op::Tick(dt) => now += dt,
            }
        }

        // The WAL's story: trace ids of RequestSubmitted events in byte order.
        let (frames, tail) = rtdls_journal::wire::decode_frames(j.journal().bytes());
        prop_assert!(tail.is_clean());
        let mut wal_traces = Vec::new();
        for frame in &frames {
            if frame.kind != rtdls_journal::wire::RecordKind::Event {
                continue;
            }
            let ev: JournalEvent =
                serde_json::from_str(&String::from_utf8_lossy(&frame.payload)).unwrap();
            if let JournalEvent::RequestSubmitted { request, .. } = ev {
                wal_traces.push(request.trace);
            }
        }

        // The flight recorder's story: trace ids of JournalAppend spans in
        // seq order.
        let retained = telemetry.spans_recorded() as usize;
        let span_traces: Vec<u64> = telemetry
            .recent_spans(retained)
            .into_iter()
            .filter(|s| s.stage == Stage::JournalAppend)
            .map(|s| s.trace)
            .collect();

        prop_assert_eq!(wal_traces.len(), submitted);
        prop_assert_eq!(&span_traces, &wal_traces);
        // Every trace was minted: nonzero and (being mint-ordered under a
        // sequential driver) strictly increasing.
        prop_assert!(wal_traces.iter().all(|&t| t != 0));
        prop_assert!(wal_traces.windows(2).all(|w| w[0] < w[1]));
    }
}
