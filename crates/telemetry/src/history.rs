//! Metrics history: fixed-capacity time-series rings sampled from the
//! [`MetricsRegistry`].
//!
//! The registry is a point-in-time snapshot; the [`TimeSeriesStore`] gives
//! it a past. The owning layer (the edge reactor) folds a fresh registry at
//! a configurable cadence — driven by the sim/edge clock, not wall time, so
//! histories are deterministic under the sim harness — and calls
//! [`TimeSeriesStore::sample`]. Each flattened scalar becomes one series,
//! keyed `name{label=value,...}`:
//!
//! * **Gauges** record their level verbatim.
//! * **Counters** record the *delta* since the previous sample — the
//!   per-interval rate shape an operator actually plots. The first sight of
//!   a counter records 0 (there is no previous raw value to diff against).
//! * **Histograms** arrive already flattened (`_count`/`_sum` counters plus
//!   `p50`/`p90`/`p99` gauges), so percentile histories fall out for free.
//!
//! Every series is a fixed-capacity ring (same wraparound discipline as the
//! [`FlightRecorder`](crate::FlightRecorder)): the newest `capacity` points
//! survive, the rest age out. [`TimeSeriesStore::to_json_lines`] exports
//! everything retained as JSONL for post-mortem diffing against the WAL.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::SimTime;

use crate::{MetricKind, MetricsRegistry};

/// Sampling knobs for a [`TimeSeriesStore`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryConfig {
    /// Points retained per series ring.
    pub capacity: usize,
    /// Minimum sim-seconds between samples ([`TimeSeriesStore::sample`]
    /// calls inside the cadence window are no-ops).
    pub cadence: f64,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            capacity: 240,
            cadence: 1.0,
        }
    }
}

/// One retained sample of one series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Gateway clock at sample time.
    pub at: SimTime,
    /// Gauge level, or counter delta over the preceding interval.
    pub value: f64,
}

/// Fixed-capacity ring of [`SeriesPoint`]s plus the counter-delta state.
#[derive(Clone, Debug)]
struct SeriesRing {
    slots: Vec<Option<SeriesPoint>>,
    head: usize,
    pushed: u64,
    /// Last raw value seen (counters diff against this).
    last_raw: f64,
}

impl SeriesRing {
    fn new(capacity: usize) -> Self {
        SeriesRing {
            slots: vec![None; capacity.max(1)],
            head: 0,
            pushed: 0,
            last_raw: 0.0,
        }
    }

    fn push(&mut self, point: SeriesPoint) {
        self.slots[self.head] = Some(point);
        self.head = (self.head + 1) % self.slots.len();
        self.pushed += 1;
    }

    /// Retained points, oldest → newest.
    fn points(&self) -> Vec<SeriesPoint> {
        let cap = self.slots.len();
        let mut out = Vec::new();
        for i in 0..cap {
            if let Some(p) = self.slots[(self.head + i) % cap] {
                out.push(p);
            }
        }
        out
    }
}

/// Renders a flattened sample's series key: `name{label=value,...}`.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", parts.join(","))
}

/// The metrics-history store: one ring per series, cadence-gated sampling.
#[derive(Clone, Debug)]
pub struct TimeSeriesStore {
    cfg: HistoryConfig,
    series: BTreeMap<String, SeriesRing>,
    last_sample: Option<SimTime>,
    samples_taken: u64,
}

impl TimeSeriesStore {
    /// An empty store with the given sizing.
    pub fn new(cfg: HistoryConfig) -> Self {
        TimeSeriesStore {
            cfg,
            series: BTreeMap::new(),
            last_sample: None,
            samples_taken: 0,
        }
    }

    /// An empty store with default sizing.
    pub fn with_defaults() -> Self {
        TimeSeriesStore::new(HistoryConfig::default())
    }

    /// The store's sizing knobs.
    pub fn config(&self) -> HistoryConfig {
        self.cfg
    }

    /// Whether the cadence window has elapsed (always true before the
    /// first sample).
    pub fn due(&self, now: SimTime) -> bool {
        self.last_sample
            .is_none_or(|t| now.as_f64() - t.as_f64() >= self.cfg.cadence)
    }

    /// Folds one registry snapshot into the rings if the cadence window
    /// has elapsed; returns whether a sample was taken.
    pub fn sample(&mut self, now: SimTime, reg: &MetricsRegistry) -> bool {
        if !self.due(now) {
            return false;
        }
        for s in reg.flatten() {
            let key = series_key(&s.name, &s.labels);
            let capacity = self.cfg.capacity;
            let ring = self
                .series
                .entry(key)
                .or_insert_with(|| SeriesRing::new(capacity));
            let value = match s.kind {
                MetricKind::Gauge => s.value,
                // First sight of a counter has nothing to diff against;
                // record a zero delta rather than a since-boot spike.
                MetricKind::Counter if ring.pushed == 0 => {
                    ring.last_raw = s.value;
                    0.0
                }
                MetricKind::Counter => {
                    let delta = (s.value - ring.last_raw).max(0.0);
                    ring.last_raw = s.value;
                    delta
                }
            };
            ring.push(SeriesPoint { at: now, value });
        }
        self.last_sample = Some(now);
        self.samples_taken += 1;
        true
    }

    /// Samples taken so far (cadence-gated calls that fired).
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Every series name retained, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Retained points of `series`, oldest → newest (empty for unknown
    /// series).
    pub fn points(&self, series: &str) -> Vec<SeriesPoint> {
        self.series
            .get(series)
            .map(|r| r.points())
            .unwrap_or_default()
    }

    /// Retained points of `series` no older than `range` sim-seconds
    /// before `now` (`range <= 0` = everything retained), oldest → newest.
    pub fn points_in_range(&self, series: &str, now: SimTime, range: f64) -> Vec<SeriesPoint> {
        let mut points = self.points(series);
        if range > 0.0 {
            let since = now.as_f64() - range;
            points.retain(|p| p.at.as_f64() >= since);
        }
        points
    }

    /// JSONL export: one `{"series":…,"at":…,"value":…}` object per
    /// retained point, series-sorted then time-ordered — the post-mortem
    /// artifact to diff against the WAL.
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, ring) in &self.series {
            for p in ring.points() {
                let _ = writeln!(
                    out,
                    "{{\"series\":\"{name}\",\"at\":{},\"value\":{}}}",
                    p.at.as_f64(),
                    p.value
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(counter: u64, gauge: f64) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("rtdls_edge_submits", &[], counter);
        reg.gauge("rtdls_edge_pending", &[], gauge);
        reg
    }

    #[test]
    fn cadence_gates_sampling() {
        let mut store = TimeSeriesStore::new(HistoryConfig {
            capacity: 8,
            cadence: 10.0,
        });
        assert!(store.due(SimTime::ZERO));
        assert!(store.sample(SimTime::ZERO, &reg(0, 0.0)));
        assert!(
            !store.sample(SimTime::new(5.0), &reg(1, 1.0)),
            "inside window"
        );
        assert!(store.sample(SimTime::new(10.0), &reg(2, 2.0)));
        assert_eq!(store.samples_taken(), 2);
        assert_eq!(store.points("rtdls_edge_pending").len(), 2);
    }

    #[test]
    fn counters_record_deltas_and_gauges_record_levels() {
        let mut store = TimeSeriesStore::new(HistoryConfig {
            capacity: 8,
            cadence: 1.0,
        });
        store.sample(SimTime::new(0.0), &reg(100, 3.0));
        store.sample(SimTime::new(1.0), &reg(107, 5.0));
        store.sample(SimTime::new(2.0), &reg(107, 4.0));
        let deltas: Vec<f64> = store
            .points("rtdls_edge_submits")
            .iter()
            .map(|p| p.value)
            .collect();
        assert_eq!(deltas, vec![0.0, 7.0, 0.0], "first sight is 0, then deltas");
        let levels: Vec<f64> = store
            .points("rtdls_edge_pending")
            .iter()
            .map(|p| p.value)
            .collect();
        assert_eq!(levels, vec![3.0, 5.0, 4.0]);
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let mut store = TimeSeriesStore::new(HistoryConfig {
            capacity: 3,
            cadence: 1.0,
        });
        for t in 0..7 {
            let mut r = MetricsRegistry::new();
            r.gauge("g", &[], t as f64);
            store.sample(SimTime::new(t as f64), &r);
        }
        let pts = store.points("g");
        assert_eq!(pts.len(), 3, "capacity bounds the ring");
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![4.0, 5.0, 6.0], "newest three, oldest first");
        assert!(pts.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn labeled_series_get_distinct_keys() {
        let mut store = TimeSeriesStore::with_defaults();
        let mut r = MetricsRegistry::new();
        r.counter("c", &[("shard", "0")], 1);
        r.counter("c", &[("shard", "1")], 2);
        store.sample(SimTime::ZERO, &r);
        assert_eq!(
            store.series_names(),
            vec!["c{shard=0}".to_string(), "c{shard=1}".to_string()]
        );
    }

    #[test]
    fn histogram_percentiles_become_series() {
        let mut store = TimeSeriesStore::with_defaults();
        let mut r = MetricsRegistry::new();
        r.histogram("lat", &[], vec![(10, 9), (100, 1)], 10, 19.0);
        store.sample(SimTime::ZERO, &r);
        let names = store.series_names();
        assert!(names.contains(&"lat_p99".to_string()), "{names:?}");
        assert_eq!(store.points("lat_p99")[0].value, 100.0);
        assert_eq!(
            store.points("lat_count")[0].value,
            0.0,
            "count is a counter: first sight records a zero delta"
        );
    }

    #[test]
    fn range_query_and_jsonl_export() {
        let mut store = TimeSeriesStore::new(HistoryConfig {
            capacity: 16,
            cadence: 1.0,
        });
        for t in 0..5 {
            let mut r = MetricsRegistry::new();
            r.gauge("g", &[], t as f64);
            store.sample(SimTime::new(t as f64), &r);
        }
        let recent = store.points_in_range("g", SimTime::new(4.0), 2.0);
        assert_eq!(recent.len(), 3, "points at t=2,3,4");
        assert_eq!(recent[0].at, SimTime::new(2.0));
        let all = store.points_in_range("g", SimTime::new(4.0), 0.0);
        assert_eq!(all.len(), 5);

        let jsonl = store.to_json_lines();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"series\":\"g\"")));
    }

    #[test]
    fn series_point_round_trips_through_serde() {
        let p = SeriesPoint {
            at: SimTime::new(2.5),
            value: 7.0,
        };
        let back = SeriesPoint::from_value(&p.to_value()).unwrap();
        assert_eq!(back, p);
    }
}
