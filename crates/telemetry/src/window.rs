//! Sim-time rolling windows: the bucketed good/bad event rings the SLO
//! tracker evaluates burn rates over.
//!
//! A [`RollingWindow`] covers the last `span` sim-time units with a fixed
//! number of equal-width buckets. Recording an event stamps the bucket the
//! current sim-time falls into (resetting it first if it still holds data
//! from a previous rotation), so the structure is O(buckets) memory, O(1)
//! per event, and fully deterministic — the same event sequence at the same
//! sim-times produces the same window regardless of wall clock, engine, or
//! replay. That determinism is what lets SLO state live inside durable
//! gateway snapshots (see `rtdls-service`'s tracker) without breaking the
//! journal layer's byte-identical-snapshot guarantees.

use serde::{Deserialize, Serialize};

/// One bucket of a [`RollingWindow`]: the rotation epoch it was last
/// stamped for, plus its good/bad event counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowBucket {
    /// `floor(now / bucket_width)` at the last stamp; a bucket whose epoch
    /// has fallen out of the window contributes nothing.
    pub epoch: u64,
    /// Events recorded as meeting the objective.
    pub good: u64,
    /// Events recorded as violating the objective.
    pub bad: u64,
}

/// A fixed-span, fixed-bucket-count rolling counter pair over sim time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RollingWindow {
    /// Window span in sim-time units.
    span: f64,
    /// The ring, indexed by `epoch % buckets.len()`.
    buckets: Vec<WindowBucket>,
}

impl RollingWindow {
    /// A window covering the last `span` sim-time units in `buckets`
    /// equal slices. `span` must be positive; `buckets` at least 1.
    pub fn new(span: f64, buckets: usize) -> Self {
        assert!(
            span.is_finite() && span > 0.0,
            "window span must be finite and > 0, got {span}"
        );
        RollingWindow {
            span,
            buckets: vec![WindowBucket::default(); buckets.max(1)],
        }
    }

    /// The configured span in sim-time units.
    pub fn span(&self) -> f64 {
        self.span
    }

    fn width(&self) -> f64 {
        self.span / self.buckets.len() as f64
    }

    fn epoch_at(&self, now: f64) -> u64 {
        let e = (now.max(0.0) / self.width()).floor();
        if e >= u64::MAX as f64 {
            u64::MAX
        } else {
            e as u64
        }
    }

    /// Records one event at sim-time `now`.
    pub fn record(&mut self, now: f64, good: bool) {
        let epoch = self.epoch_at(now);
        let n = self.buckets.len() as u64;
        let slot = (epoch % n) as usize;
        let bucket = &mut self.buckets[slot];
        if bucket.epoch != epoch {
            *bucket = WindowBucket {
                epoch,
                good: 0,
                bad: 0,
            };
        }
        if good {
            bucket.good += 1;
        } else {
            bucket.bad += 1;
        }
    }

    /// `(good, bad)` totals over the window ending at sim-time `now`:
    /// buckets whose epoch lies within the last `buckets.len()` rotations.
    pub fn totals(&self, now: f64) -> (u64, u64) {
        let current = self.epoch_at(now);
        let n = self.buckets.len() as u64;
        let oldest = current.saturating_sub(n - 1);
        self.buckets
            .iter()
            .filter(|b| b.epoch >= oldest && b.epoch <= current)
            .fold((0, 0), |(g, bd), b| (g + b.good, bd + b.bad))
    }

    /// Events in the window at `now`.
    pub fn count(&self, now: f64) -> u64 {
        let (good, bad) = self.totals(now);
        good + bad
    }

    /// Fraction of in-window events that were bad (0 when empty).
    pub fn bad_rate(&self, now: f64) -> f64 {
        let (good, bad) = self.totals(now);
        let total = good + bad;
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roll_out_after_the_span() {
        let mut w = RollingWindow::new(10.0, 5);
        w.record(0.5, false);
        w.record(1.5, true);
        assert_eq!(w.totals(2.0), (1, 1));
        assert_eq!(w.bad_rate(2.0), 0.5);
        // 10 units later the early events have rotated out.
        assert_eq!(w.totals(12.0), (0, 0));
        assert_eq!(w.bad_rate(12.0), 0.0);
    }

    #[test]
    fn stale_bucket_resets_on_rotation() {
        let mut w = RollingWindow::new(10.0, 5);
        w.record(1.0, false); // epoch 0
        w.record(21.0, true); // epoch 10 → same slot, must reset
        assert_eq!(w.totals(21.0), (1, 0));
    }

    #[test]
    fn partial_expiry_keeps_recent_buckets() {
        let mut w = RollingWindow::new(10.0, 5);
        w.record(1.0, false); // epoch 0
        w.record(9.0, false); // epoch 4
                              // At t=11 (epoch 5) the window covers epochs 1..=5: only the
                              // second event remains.
        assert_eq!(w.totals(11.0), (0, 1));
    }

    #[test]
    fn determinism_and_serde_round_trip() {
        let mut a = RollingWindow::new(60.0, 6);
        let mut b = RollingWindow::new(60.0, 6);
        for i in 0..100 {
            let now = i as f64 * 0.7;
            let good = i % 3 != 0;
            a.record(now, good);
            b.record(now, good);
        }
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: RollingWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.bad_rate(70.0), a.bad_rate(70.0));
    }

    #[test]
    fn negative_and_huge_times_are_clamped() {
        let mut w = RollingWindow::new(10.0, 4);
        w.record(-5.0, false); // clamps to epoch 0
        assert_eq!(w.totals(0.0), (0, 1));
        w.record(f64::MAX, true); // saturates, no panic
        assert_eq!(w.totals(f64::MAX).0, 1);
    }
}
