//! Trace spans: the unit of record in the flight recorder.
//!
//! A [`Span`] is one timestamped stage of one request's journey through the
//! stack. Spans carry a `trace` id minted at the ingress point (the network
//! edge, or `submit_request` for in-process callers) and a process-global
//! `seq` number, so a request's full timeline is reconstructable by trace id
//! and totally ordered even when its stages landed in different recorder
//! stripes.

use serde::{Deserialize, Serialize};

use rtdls_core::prelude::SimTime;

/// The pipeline stage a span was recorded at.
///
/// The variants mirror the request's actual path: a framed submission enters
/// at [`Stage::EdgeReceive`], is routed to a shard ([`Stage::Route`]), runs
/// the admission test ([`Stage::Plan`]), is made durable
/// ([`Stage::JournalAppend`]), may park as a reservation
/// ([`Stage::Reserve`]) or deferral ([`Stage::DeferPark`]), later activates
/// ([`Stage::Activate`]) or resolves ([`Stage::Resolve`]), and its verdict
/// updates stream back out ([`Stage::PushUpdate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Frame decoded and request accepted for processing at the edge.
    EdgeReceive,
    /// Sharded gateway picked a target shard for the request.
    Route,
    /// Admission engine ran the schedulability test / planned the task.
    Plan,
    /// Request (or its verdict audit) appended to the write-ahead journal.
    JournalAppend,
    /// Reservation booked for a future start instant.
    Reserve,
    /// Request parked in the defer queue.
    DeferPark,
    /// Reservation reached its start instant and was re-tested.
    Activate,
    /// Deferred/reserved request reached a terminal outcome.
    Resolve,
    /// Decision update pushed to the owning edge connection.
    PushUpdate,
    /// Gateway state rebuilt from the journal (crash recovery).
    Recovery,
    /// Journal frame handed to the replication transport on the primary.
    ShipFrame,
    /// Shipped frame applied (and its input replayed) on the follower.
    FollowerReplay,
    /// Follower promoted to primary; in-flight traces get fenced here.
    Promote,
}

impl Stage {
    /// Short lower-case stage label (used in dumps and metric labels).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::EdgeReceive => "edge_receive",
            Stage::Route => "route",
            Stage::Plan => "plan",
            Stage::JournalAppend => "journal_append",
            Stage::Reserve => "reserve",
            Stage::DeferPark => "defer_park",
            Stage::Activate => "activate",
            Stage::Resolve => "resolve",
            Stage::PushUpdate => "push_update",
            Stage::Recovery => "recovery",
            Stage::ShipFrame => "ship_frame",
            Stage::FollowerReplay => "follower_replay",
            Stage::Promote => "promote",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded stage of one traced request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Trace id this span belongs to (`0` = untraced, never recorded).
    pub trace: u64,
    /// Process-global sequence number: total order across recorder stripes.
    pub seq: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Shard the stage executed on, when known.
    pub shard: Option<u32>,
    /// Task id the request carries (0 when not applicable).
    pub task: u64,
    /// Stage outcome label (verdict name, eviction cause, …).
    pub outcome: String,
    /// Gateway clock at record time.
    pub at: SimTime,
    /// Wall-clock duration of the stage in nanoseconds (0 = not timed).
    pub duration_ns: u64,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{seq} trace={trace} task={task} {stage}",
            seq = self.seq,
            trace = self.trace,
            task = self.task,
            stage = self.stage,
        )?;
        if let Some(s) = self.shard {
            write!(f, " shard={s}")?;
        }
        write!(
            f,
            " outcome={} at={:.3} dur={}ns",
            self.outcome,
            self.at.as_f64(),
            self.duration_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_round_trips_through_serde() {
        let s = Span {
            trace: 7,
            seq: 42,
            stage: Stage::Plan,
            shard: Some(3),
            task: 11,
            outcome: "Accepted".to_string(),
            at: SimTime::new(1.5),
            duration_ns: 900,
        };
        let back = Span::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stage_labels_are_distinct() {
        let all = [
            Stage::EdgeReceive,
            Stage::Route,
            Stage::Plan,
            Stage::JournalAppend,
            Stage::Reserve,
            Stage::DeferPark,
            Stage::Activate,
            Stage::Resolve,
            Stage::PushUpdate,
            Stage::Recovery,
            Stage::ShipFrame,
            Stage::FollowerReplay,
            Stage::Promote,
        ];
        let mut labels: Vec<_> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
